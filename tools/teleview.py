#!/usr/bin/env python
"""Render a telemetry JSONL span artifact as plain-text reports.

Offline companion to the in-process reports: the bench harness (or any
run under ``engine.scope(telemetry="trace")``) writes its spans with
``telemetry.write_jsonl``; this tool reloads them and renders

* a per-span-name summary (count, total/mean duration),
* the roofline report (per-operator GFLOP/s, GB/s, arithmetic
  intensity) from the operator spans' flop/byte metadata,
* the solver-convergence report (iterations, residuals, FT events), and
* the cross-rank load-imbalance report (``--ranks``) when the artifact
  holds merged rank spans from a shared-memory transport run.

With ``--postmortem`` the artifact is instead a failure post-mortem
bundle (``SuperviseResult.postmortem_path`` /
``telemetry.write_postmortem`` output) and is rendered via
``telemetry.format_postmortem``.

Usage::

    python tools/teleview.py BENCH_2026-08-05.spans.jsonl
    python tools/teleview.py run.jsonl --roofline
    python tools/teleview.py run.jsonl --convergence --residuals
    python tools/teleview.py run.jsonl --ranks
    python tools/teleview.py postmortem-exhausted-crash.json --postmortem

An artifact with zero spans (or with none of the span names the
specialised reports key on) is not an error: the tool says so plainly
and exits 0 — only an unreadable/malformed artifact exits 2.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable straight from a checkout: put src/ on the path if the
# package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.telemetry import (  # noqa: E402  (path bootstrap above)
    convergence_from_spans,
    convergence_table,
    format_postmortem,
    imbalance_table,
    rank_spans,
    read_jsonl,
    roofline_from_spans,
    roofline_table,
)
from repro.telemetry.flightrec import BUNDLE_KIND  # noqa: E402
from repro.telemetry.reports import _table  # noqa: E402


def span_summary_table(spans) -> str:
    """Per-span-name counts and durations, busiest first."""
    acc: dict = {}
    for s in spans:
        row = acc.setdefault(s.name, {"calls": 0, "seconds": 0.0})
        row["calls"] += 1
        row["seconds"] += s.duration
    if not acc:
        return "(no spans)"
    body = [
        [name, row["calls"], row["seconds"],
         row["seconds"] / row["calls"]]
        for name, row in sorted(
            acc.items(), key=lambda kv: -kv[1]["seconds"]
        )
    ]
    return _table(["span", "calls", "seconds", "mean_s"], body)


def codegen_table(spans) -> str:
    """Compile activity of the codegen cache: one row per
    ``codegen.compile`` span (a cold compile; warm hits never open a
    span, so an empty table on a warmed-up run is the success case)."""
    rows = [s for s in spans if s.name == "codegen.compile"]
    if not rows:
        return "(no codegen compiles — cache was warm or codegen off)"
    body = [[s.attrs.get("kind", "?"), s.attrs.get("key", "?"),
             s.duration] for s in rows]
    total = sum(s.duration for s in rows)
    body.append(["TOTAL", f"{len(rows)} compiles", total])
    return _table(["kind", "key", "seconds"], body)


def residual_series(spans) -> str:
    """The residual-vs-iteration series of every solve span."""
    rows = convergence_from_spans(spans)
    if not rows:
        return "(no solve spans)"
    lines = []
    for i, r in enumerate(rows):
        lines.append(f"solve[{i}] {r['solver']} on {r['operator']}: "
                     f"{r['iterations']} iters, "
                     f"converged={r['converged']}")
        for it, res in enumerate(r["residuals"]):
            if isinstance(res, list):
                text = "  ".join(f"{c:.3e}" for c in res)
            else:
                text = f"{res:.3e}"
            lines.append(f"  iter {it:4d}  {text}")
    return "\n".join(lines)


def render_postmortem(path: str) -> int:
    """Load and render a post-mortem bundle (2 on a non-bundle)."""
    import json

    try:
        with open(path) as fh:
            bundle = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"teleview: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(bundle, dict) \
            or bundle.get("kind") != BUNDLE_KIND:
        print(f"teleview: {path} is not a post-mortem bundle "
              f"(expected kind={BUNDLE_KIND!r})", file=sys.stderr)
        return 2
    print(format_postmortem(bundle))
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", help="JSONL span file "
                    "(telemetry.write_jsonl output), or a post-mortem "
                    "bundle with --postmortem")
    ap.add_argument("--spans", action="store_true",
                    help="only the per-span-name summary")
    ap.add_argument("--roofline", action="store_true",
                    help="only the roofline report")
    ap.add_argument("--convergence", action="store_true",
                    help="only the convergence report")
    ap.add_argument("--codegen", action="store_true",
                    help="only the codegen compile report")
    ap.add_argument("--ranks", action="store_true",
                    help="only the cross-rank load-imbalance report")
    ap.add_argument("--postmortem", action="store_true",
                    help="render the artifact as a failure post-mortem "
                    "bundle instead of a span file")
    ap.add_argument("--residuals", action="store_true",
                    help="with the convergence report, print the full "
                    "residual-vs-iteration series")
    args = ap.parse_args(argv)

    if args.postmortem:
        return render_postmortem(args.artifact)

    try:
        spans = read_jsonl(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"teleview: cannot read {args.artifact}: {exc}",
              file=sys.stderr)
        return 2

    if not spans:
        # An empty artifact is a finding, not a failure: say so
        # plainly instead of printing a stack of empty tables.
        print(f"# {args.artifact}: no spans recorded — the run "
              "traced nothing (telemetry below \"trace\", or nothing "
              "instrumented executed).")
        return 0

    chosen = (args.spans or args.roofline or args.convergence
              or args.codegen or args.ranks)
    # In default (no-flag) mode, specialised reports that would render
    # empty — an artifact of only unrecognised span names — collapse
    # into one note rather than a stack of placeholder tables.
    have = {
        "roofline": bool(roofline_from_spans(spans)),
        "codegen": any(s.name == "codegen.compile" for s in spans),
        "convergence": bool(convergence_from_spans(spans)),
        "ranks": bool(rank_spans(spans)),
    }
    out = [f"# {args.artifact}: {len(spans)} spans"]
    if args.spans or not chosen:
        out += ["", "## spans", span_summary_table(spans)]
    if args.roofline or (not chosen and have["roofline"]):
        out += ["", "## roofline", roofline_table(spans)]
    if args.codegen or (not chosen and have["codegen"]):
        out += ["", "## codegen", codegen_table(spans)]
    if args.convergence or (not chosen and have["convergence"]):
        out += ["", "## convergence", convergence_table(spans)]
        if args.residuals:
            out += ["", residual_series(spans)]
    if args.ranks or (not chosen and have["ranks"]):
        out += ["", "## rank imbalance", imbalance_table(spans)]
    if not chosen and not any(have.values()):
        out += ["", "(no roofline / codegen / convergence / rank "
                "activity recognised — the span summary above is "
                "everything this artifact holds)"]
    print("\n".join(out))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `teleview ... | head`
        sys.exit(0)

#!/usr/bin/env python
"""Render a telemetry JSONL span artifact as plain-text reports.

Offline companion to the in-process reports: the bench harness (or any
run under ``engine.scope(telemetry="trace")``) writes its spans with
``telemetry.write_jsonl``; this tool reloads them and renders

* a per-span-name summary (count, total/mean duration),
* the roofline report (per-operator GFLOP/s, GB/s, arithmetic
  intensity) from the operator spans' flop/byte metadata, and
* the solver-convergence report (iterations, residuals, FT events).

Usage::

    python tools/teleview.py BENCH_2026-08-05.spans.jsonl
    python tools/teleview.py run.jsonl --roofline
    python tools/teleview.py run.jsonl --convergence --residuals

Exit status: 0 on success, 2 if the artifact cannot be read.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable straight from a checkout: put src/ on the path if the
# package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.telemetry import (  # noqa: E402  (path bootstrap above)
    convergence_from_spans,
    convergence_table,
    read_jsonl,
    roofline_table,
)
from repro.telemetry.reports import _table  # noqa: E402


def span_summary_table(spans) -> str:
    """Per-span-name counts and durations, busiest first."""
    acc: dict = {}
    for s in spans:
        row = acc.setdefault(s.name, {"calls": 0, "seconds": 0.0})
        row["calls"] += 1
        row["seconds"] += s.duration
    if not acc:
        return "(no spans)"
    body = [
        [name, row["calls"], row["seconds"],
         row["seconds"] / row["calls"]]
        for name, row in sorted(
            acc.items(), key=lambda kv: -kv[1]["seconds"]
        )
    ]
    return _table(["span", "calls", "seconds", "mean_s"], body)


def codegen_table(spans) -> str:
    """Compile activity of the codegen cache: one row per
    ``codegen.compile`` span (a cold compile; warm hits never open a
    span, so an empty table on a warmed-up run is the success case)."""
    rows = [s for s in spans if s.name == "codegen.compile"]
    if not rows:
        return "(no codegen compiles — cache was warm or codegen off)"
    body = [[s.attrs.get("kind", "?"), s.attrs.get("key", "?"),
             s.duration] for s in rows]
    total = sum(s.duration for s in rows)
    body.append(["TOTAL", f"{len(rows)} compiles", total])
    return _table(["kind", "key", "seconds"], body)


def residual_series(spans) -> str:
    """The residual-vs-iteration series of every solve span."""
    rows = convergence_from_spans(spans)
    if not rows:
        return "(no solve spans)"
    lines = []
    for i, r in enumerate(rows):
        lines.append(f"solve[{i}] {r['solver']} on {r['operator']}: "
                     f"{r['iterations']} iters, "
                     f"converged={r['converged']}")
        for it, res in enumerate(r["residuals"]):
            if isinstance(res, list):
                text = "  ".join(f"{c:.3e}" for c in res)
            else:
                text = f"{res:.3e}"
            lines.append(f"  iter {it:4d}  {text}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", help="JSONL span file "
                    "(telemetry.write_jsonl output)")
    ap.add_argument("--spans", action="store_true",
                    help="only the per-span-name summary")
    ap.add_argument("--roofline", action="store_true",
                    help="only the roofline report")
    ap.add_argument("--convergence", action="store_true",
                    help="only the convergence report")
    ap.add_argument("--codegen", action="store_true",
                    help="only the codegen compile report")
    ap.add_argument("--residuals", action="store_true",
                    help="with the convergence report, print the full "
                    "residual-vs-iteration series")
    args = ap.parse_args(argv)

    try:
        spans = read_jsonl(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"teleview: cannot read {args.artifact}: {exc}",
              file=sys.stderr)
        return 2

    chosen = (args.spans or args.roofline or args.convergence
              or args.codegen)
    out = [f"# {args.artifact}: {len(spans)} spans"]
    if args.spans or not chosen:
        out += ["", "## spans", span_summary_table(spans)]
    if args.roofline or not chosen:
        out += ["", "## roofline", roofline_table(spans)]
    if args.codegen or not chosen:
        out += ["", "## codegen", codegen_table(spans)]
    if args.convergence or not chosen:
        out += ["", "## convergence", convergence_table(spans)]
        if args.residuals:
            out += ["", residual_series(spans)]
    print("\n".join(out))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `teleview ... | head`
        sys.exit(0)

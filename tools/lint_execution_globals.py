#!/usr/bin/env python
"""AST lint: no direct mutation of execution-engine globals.

Every execution decision resolves through the engine's scoped
``ExecutionPolicy`` (see DESIGN §10); the whole design collapses if
code pokes the underlying process globals directly — a write to
``_BASE_POLICY`` from a grid module bypasses the lock, the scope
stack, and the deprecation story all at once.  This lint walks the
AST of every Python file under the checked trees and rejects

* assignments (plain, augmented, annotated, starred/tuple targets),
* ``global`` declarations, and
* ``del`` statements

whose target is one of the execution globals below — whether spelled
as a bare name (``_BASE_POLICY = ...``) or as a module attribute
(``policy._BASE_POLICY = ...``).

Allowed: the engine package itself (``src/repro/engine/`` owns the
state and its locked mutation points) and the legacy-setter shim
modules (which are expected to *delegate* to
``engine.policy.update_base_policy`` but are exempted so their
save/restore helpers cannot trip the lint).  Everything else —
including tests, benchmarks and examples — must go through
``engine.scope(...)`` / ``update_base_policy(...)``.

Exit status: 0 clean, 1 with violations (one per line on stderr).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Engine-owned execution globals, plus the pre-engine toggle globals
#: they replaced (banned everywhere so the old pattern cannot creep
#: back in under the old names), plus the telemetry layer's state —
#: rebinding the registry or trace buffer from outside the telemetry
#: package would silently detach every already-imported seam from the
#: exporters.
EXECUTION_GLOBALS = frozenset({
    "_BASE_POLICY",          # repro.engine.policy — the base policy
    "_SCOPED",               # repro.engine.policy — the scope stack
    "_CONFIG",               # legacy repro.perf module global
    "_FALLBACK_ENABLED",     # legacy repro.simd.registry module global
    "_TELEMETRY_REGISTRY",   # repro.telemetry.metrics — the registry
    "_TRACE_BUFFER",         # repro.telemetry.trace — the span buffer
    "_ACTIVE_SPAN",          # repro.telemetry.trace — span nesting var
    "_MEMORY",               # repro.codegen.cache — compiled-kernel memo
    "_DISK",                 # repro.codegen.cache — disk-dir override
})

#: Files allowed to mutate them: the engine (owner), the
#: deprecation-shim modules, and the telemetry modules that own the
#: telemetry globals.
ALLOWLIST = frozenset({
    "src/repro/engine/policy.py",
    "src/repro/perf/__init__.py",
    "src/repro/simd/registry.py",
    "src/repro/telemetry/metrics.py",
    "src/repro/telemetry/trace.py",
    "src/repro/codegen/cache.py",
})

DEFAULT_TREES = ("src", "tests", "benchmarks", "examples", "tools")


def _target_name(node: ast.AST) -> str:
    """The banned-name candidate of an assignment target, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _flatten_targets(node: ast.AST):
    """Yield leaf targets of (possibly tuple/list/starred) assignment."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _flatten_targets(elt)
    elif isinstance(node, ast.Starred):
        yield from _flatten_targets(node.value)
    else:
        yield node


def check_source(path: str, source: str) -> list:
    """All violations in one file as ``(lineno, message)`` tuples."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]
    out = []

    def hit(node: ast.AST, name: str, what: str) -> None:
        out.append((
            node.lineno,
            f"{what} of execution global {name!r}; use "
            f"repro.engine.scope(...) or update_base_policy(...)",
        ))

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for raw in targets:
                for target in _flatten_targets(raw):
                    name = _target_name(target)
                    if name in EXECUTION_GLOBALS:
                        hit(node, name, "direct mutation")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = _target_name(target)
                if name in EXECUTION_GLOBALS:
                    hit(node, name, "deletion")
        elif isinstance(node, ast.Global):
            for name in node.names:
                if name in EXECUTION_GLOBALS:
                    hit(node, name, "'global' declaration")
    return out


def lint_paths(root: Path, trees) -> list:
    """All violations under ``trees`` as ``(relpath, lineno, msg)``."""
    violations = []
    for tree in trees:
        base = root / tree
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWLIST:
                continue
            for lineno, msg in check_source(rel, path.read_text()):
                violations.append((rel, lineno, msg))
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trees", nargs="*", default=list(DEFAULT_TREES),
                        help="directories to lint (default: %(default)s)")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    violations = lint_paths(Path(args.root).resolve(), args.trees)
    for rel, lineno, msg in violations:
        print(f"{rel}:{lineno}: {msg}", file=sys.stderr)
    if violations:
        print(f"{len(violations)} execution-global violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

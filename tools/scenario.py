#!/usr/bin/env python
"""Scenario-matrix CLI: list, run, diff, promote.

The command-line front end of :mod:`repro.scenarios` (see DESIGN §13).
Four subcommands:

* ``list`` — print the generated case keys (``--mode pairwise`` or
  ``cartesian``, ``--filter`` to narrow) without running anything;
* ``run`` — execute the generated cases into a result-matrix JSON
  (``--out``); ``--diff BASELINE`` additionally gates the fresh matrix
  against a committed baseline and exits non-zero on any regression,
  hash drift, lost cell, or new failure (the CI job's one-liner);
* ``diff`` — compare two persisted matrices; exit status is the gate;
* ``promote`` — overwrite the committed baseline with a (clean)
  current matrix after printing what changes; refuses to promote a
  matrix containing silent corruptions unless ``--force``.

Quick start::

    python tools/scenario.py list --mode pairwise --seed 0 | head
    python tools/scenario.py run --mode pairwise --seed 0 \
        --min-cases 64 --out scenario-matrix.json \
        --diff scenarios/baseline_matrix.json
    python tools/scenario.py diff scenarios/baseline_matrix.json \
        scenario-matrix.json
    python tools/scenario.py promote scenario-matrix.json \
        --baseline scenarios/baseline_matrix.json

The filter language is the sampler's: comma-separated substrings of
the case key, all required; a leading ``!`` negates one
(``--filter 'operator=wilson,!fault=none'``).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

#: The committed baseline the CI gate diffs against.
DEFAULT_BASELINE = "scenarios/baseline_matrix.json"


def _generate(args):
    from repro.scenarios.defaults import default_spec
    from repro.scenarios.sampler import (
        cartesian_cases,
        filter_cases,
        pairwise_sample,
    )

    spec = default_spec()
    cube = cartesian_cases(spec)
    if args.mode == "cartesian":
        cases = cube
    else:
        cases = pairwise_sample(spec, seed=args.seed, cube=cube,
                                min_cases=args.min_cases)
    if args.filter:
        cases = filter_cases(cases, args.filter)
    return spec, cases


def cmd_list(args) -> int:
    spec, cases = _generate(args)
    for case in cases:
        marks = []
        if spec.skip_for(case) is not None:
            marks.append("skip")
        rule = spec.xfail_for(case)
        if rule is not None:
            marks.append(f"xfail->{rule.expect}")
        suffix = f"   [{', '.join(marks)}]" if marks else ""
        print(f"{case.key}{suffix}")
    print(f"# {len(cases)} case(s) ({args.mode}, seed={args.seed})",
          file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    from repro.scenarios.matrix import ResultMatrix, diff_matrices, gate_diff
    from repro.scenarios.runner import run_cases

    spec, cases = _generate(args)
    if not cases:
        print("filter matched no cases", file=sys.stderr)
        return 2

    def progress(cell):
        if not args.quiet:
            print(f"  {cell.status:<9} {cell.key}", file=sys.stderr)

    matrix = run_cases(spec, cases, mode=args.mode, seed=args.seed,
                       base_seed=args.base_seed, progress=progress)
    print(matrix.format_summary())
    if args.out:
        matrix.save(args.out)
        print(f"wrote {args.out}")
    rc = 0
    for cell in matrix.failures():
        print(f"SILENT CORRUPTION  {cell.key}: {cell.detail}")
        rc = 1
    if args.diff:
        baseline = ResultMatrix.load(args.diff)
        diff = diff_matrices(baseline, matrix)
        report = diff.format_report()
        print(report)
        if args.report:
            with open(args.report, "w") as fh:
                fh.write(report + "\n")
        failures = gate_diff(diff)
        for line in failures:
            print(f"GATE FAIL: {line}")
        if failures:
            rc = 1
    return rc


def cmd_diff(args) -> int:
    from repro.scenarios.matrix import ResultMatrix, diff_matrices, gate_diff

    baseline = ResultMatrix.load(args.baseline)
    current = ResultMatrix.load(args.current)
    diff = diff_matrices(baseline, current)
    report = diff.format_report()
    print(report)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(report + "\n")
    failures = gate_diff(diff)
    for line in failures:
        print(f"GATE FAIL: {line}")
    return 1 if failures else 0


def cmd_promote(args) -> int:
    from repro.scenarios.matrix import ResultMatrix, diff_matrices

    current = ResultMatrix.load(args.matrix)
    bad = current.failures()
    if bad and not args.force:
        for cell in bad:
            print(f"refusing to promote: silent corruption in "
                  f"{cell.key}", file=sys.stderr)
        return 1
    if os.path.exists(args.baseline):
        old = ResultMatrix.load(args.baseline)
        diff = diff_matrices(old, current)
        print(diff.format_report())
        if diff.clean and not diff.promotable:
            print("baseline already matches; nothing to promote")
            return 0
    shutil.copyfile(args.matrix, args.baseline)
    print(f"promoted {args.matrix} -> {args.baseline}")
    return 0


def _add_generation_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mode", choices=("pairwise", "cartesian"),
                   default="pairwise")
    p.add_argument("--seed", type=int, default=0,
                   help="sampler seed (default: %(default)s)")
    p.add_argument("--min-cases", type=int, default=64,
                   help="pad the pairwise sample up to this many cells "
                        "(default: %(default)s)")
    p.add_argument("--filter", default="",
                   help="comma-separated key substrings, ! negates")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="scenario.py", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="print generated case keys")
    _add_generation_args(p)
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run cases into a result matrix")
    _add_generation_args(p)
    p.add_argument("--base-seed", type=int, default=0,
                   help="offset folded into every per-case fault seed")
    p.add_argument("--out", default="",
                   help="write the result matrix JSON here")
    p.add_argument("--diff", default="",
                   help="gate against this baseline matrix (exit 1 on "
                        "regression)")
    p.add_argument("--report", default="",
                   help="also write the diff report text here")
    p.add_argument("--quiet", action="store_true",
                   help="no per-cell progress on stderr")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("diff", help="compare two persisted matrices")
    p.add_argument("baseline")
    p.add_argument("current")
    p.add_argument("--report", default="",
                   help="also write the diff report text here")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("promote",
                       help="make a current matrix the committed baseline")
    p.add_argument("matrix")
    p.add_argument("--baseline", default=DEFAULT_BASELINE)
    p.add_argument("--force", action="store_true",
                   help="promote even with silent-corruption cells")
    p.set_defaults(fn=cmd_promote)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

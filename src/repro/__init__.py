"""repro — reproduction of "SVE-enabling Lattice QCD Codes" (CLUSTER/REV-A 2018).

The package is organised as the paper's system stack, bottom up:

``repro.sve``
    A functional simulator for the ARM Scalable Vector Extension (SVE)
    ISA: vector/predicate/scalar register files, flat memory, and
    lane-accurate semantics for the instructions used by lattice-QCD
    kernels (predicated loads/stores, structure loads, FMA chains, the
    FCMLA/FCADD complex-arithmetic instructions, permutes, precision
    conversion).  A textual assembler and machine executor allow the
    paper's assembly listings to run verbatim.

``repro.acle``
    The ARM C Language Extensions (ACLE) intrinsics surface
    (``svld1``, ``svcmla_x``, ``svcntd`` ...) implemented on top of the
    simulator semantics, following the vector-length-agnostic (VLA)
    programming model.

``repro.vectorizer``
    A miniature loop auto-vectorizer that compiles a small scalar-loop
    IR to SVE assembly.  Its ``complex_isa`` feature flag reproduces the
    armclang 18 / LLVM 5 behaviour analysed in the paper: without the
    flag, complex loops lower to structure loads + real arithmetic
    (Section IV-B); FCMLA is only reachable via intrinsics
    (Sections IV-C/IV-D).

``repro.armie``
    An ArmIE-like emulator front-end: run an assembled program at a
    command-line-selected vector length, with instruction tracing and
    optional toolchain-fault injection (Section V-D).

``repro.simd``
    Grid's machine-specific abstraction layer: pluggable SIMD backends
    (generic, the fixed-width families of Table I, and the two SVE
    complex-arithmetic strategies of Sections V-C and V-E).

``repro.grid``
    A Grid-like lattice QCD framework: cartesian grids with
    virtual-node SIMD decomposition, vectorized SU(3)/spinor tensors,
    circular shifts with lane permutes, the Wilson hopping term of
    Eq. (1), Krylov solvers, a simulated rank decomposition with halo
    exchange, and fp16 communication compression.

``repro.verification``
    The Section V-D verification harness: a battery of representative
    Grid tests/benchmarks run across SVE vector lengths.
"""

from repro.sve.vl import VL, LEGAL_VLS

__all__ = ["VL", "LEGAL_VLS", "__version__"]

__version__ = "1.0.0"

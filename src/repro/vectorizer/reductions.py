"""Reduction-kernel code generation: dot products and norms.

The Conjugate Gradient iteration (Section II-A) needs two global
reductions per step — ``<r, r>`` and ``<p, A p>`` — so a complete SVE
port must also vectorize reductions.  The generated shape is the
canonical SVE reduction loop: a vector accumulator updated with
predicated FMA (real case) or chained FCMLA (complex conjugated dot),
collapsed to a scalar with ``FADDV`` after the loop.

For the complex dot ``sum conj(x)*y`` the interleaved accumulator holds
(re, im) pairs; the real part is the ``FADDV`` over even lanes and the
imaginary part over odd lanes, with the even/odd predicates built from
``INDEX`` + ``AND`` + ``CMPEQ`` — a nice exercise of the predicate
machinery beyond loop control.

Calling convention: ``x0`` = element count (complex elements for
``c128``), ``x1``/``x2`` = input arrays, ``x3`` = output address
receiving the scalar (1 double for real, re+im pair for complex).
"""

from __future__ import annotations

from repro.sve.decoder import assemble
from repro.sve.program import Program

#: Real dot product: z = sum x[i]*y[i].
_REAL_DOT = """
    mov     x8, xzr
    whilelo p1.d, xzr, x0
    ptrue   p0.d
    mov     z2.d, #0
.Ldot_loop:
    ld1d    {z0.d}, p1/z, [x1, x8, lsl #3]
    ld1d    {z1.d}, p1/z, [x2, x8, lsl #3]
    fmla    z2.d, p1/m, z0.d, z1.d
    incd    x8
    whilelo p2.d, x8, x0
    brkns   p2.b, p0/z, p1.b, p2.b
    mov     p1.b, p2.b
    b.mi    .Ldot_loop
    ptrue   p0.d
    faddv   d0, p0, z2.d
    st1d    {z0.d}, p0, [x3, xzr, lsl #3]
"""

#: Sum-of-squares: z = sum x[i]^2 (the norm2 kernel).
_REAL_NORM2 = """
    mov     x8, xzr
    whilelo p1.d, xzr, x0
    ptrue   p0.d
    mov     z2.d, #0
.Lnorm_loop:
    ld1d    {z0.d}, p1/z, [x1, x8, lsl #3]
    fmla    z2.d, p1/m, z0.d, z0.d
    incd    x8
    whilelo p2.d, x8, x0
    brkns   p2.b, p0/z, p1.b, p2.b
    mov     p1.b, p2.b
    b.mi    .Lnorm_loop
    ptrue   p0.d
    faddv   d0, p0, z2.d
    st1d    {z0.d}, p0, [x3, xzr, lsl #3]
"""

#: Complex conjugated dot: z = sum conj(x[i]) * y[i], interleaved
#: accumulator, FCMLA rotations (0, 270) per Eq. (2); the final
#: even/odd predicates are built with INDEX/AND/CMPEQ.
_CPLX_DOT = """
    lsl     x8, x0, #1
    mov     x9, xzr
    mov     z2.d, #0
.Lcdot_loop:
    whilelo p0.d, x9, x8
    ld1d    {z0.d}, p0/z, [x1, x9, lsl #3]
    ld1d    {z1.d}, p0/z, [x2, x9, lsl #3]
    fcmla   z2.d, p0/m, z0.d, z1.d, #0
    fcmla   z2.d, p0/m, z0.d, z1.d, #270
    incd    x9
    cmp     x9, x8
    b.lo    .Lcdot_loop
    ptrue   p0.d
    index   z4.d, #0, #1
    and     z4.d, z4.d, #1
    mov     z5.d, #0
    cmpeq   p1.d, p0/z, z4.d, z5.d
    cmpne   p2.d, p0/z, z4.d, z5.d
    faddv   d0, p1, z2.d
    faddv   d1, p2, z2.d
    st1d    {z0.d}, p0, [x3, xzr, lsl #3]
"""


def dot_program(scalar_type: str = "f64") -> Program:
    """The dot-product reduction program for the given scalar type."""
    if scalar_type == "f64":
        return assemble(_REAL_DOT)
    if scalar_type == "c128":
        return assemble(_CPLX_DOT)
    raise ValueError(f"no dot-product codegen for {scalar_type!r}")


def norm2_program() -> Program:
    """The sum-of-squares reduction program (f64)."""
    return assemble(_REAL_NORM2)


def run_dot(x, y, vl, fault_model=None):
    """Execute the dot reduction on the emulator; returns the scalar.

    ``x``/``y`` may be float64 or complex128 arrays; for complex inputs
    this computes ``sum conj(x) * y`` (the CG inner product).
    """
    import numpy as np

    from repro.sve.machine import Machine
    from repro.sve.memory import Memory
    from repro.sve.ops.cplx import interleave_complex
    from repro.sve.vl import VL

    x = np.asarray(x)
    complex_in = x.dtype.kind == "c"
    prog = dot_program("c128" if complex_in else "f64")
    n = x.size
    mem = Memory(max(1 << 20, 64 * n * 16))
    if complex_in:
        ax = mem.alloc_array(interleave_complex(x))
        ay = mem.alloc_array(interleave_complex(np.asarray(y)))
    else:
        ax = mem.alloc_array(np.asarray(x, dtype=np.float64))
        ay = mem.alloc_array(np.asarray(y, dtype=np.float64))
    az = mem.alloc(VL(vl if isinstance(vl, int) else vl.bits).bytes)
    m = Machine(VL(vl) if isinstance(vl, int) else vl, memory=mem,
                fault_model=fault_model)
    m.call(prog, n, ax, ay, az)
    if complex_in:
        return complex(m.read_fp_scalar(0), m.read_fp_scalar(1))
    return m.read_fp_scalar(0)

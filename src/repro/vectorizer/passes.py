"""IR simplification passes run before lowering.

The lowering in :mod:`repro.vectorizer.autovec` fuses ``acc + b*c``
into a single predicated FMA (fmla/fmls, or FCMLA pairs on the
complex-ISA path) — the software analogue of the paper's chained-FCMLA
instruction-economy argument.  It only recognises the literal
``Add(x, Mul(a, b))`` / ``Sub(x, Mul(a, b))`` shapes, though, so this
module canonicalises expressions toward them and folds what can be
folded at compile time.

Every rewrite here is IEEE-exact, not merely algebraic:

* ``Neg(Neg(x)) -> x`` and ``Conj(Conj(x)) -> x`` (involutions);
* ``Add(x, Neg(y)) -> Sub(x, y)`` and ``Sub(x, Neg(y)) -> Add(x, y)``
  (IEEE-754 defines ``x + (-y)`` and ``x - y`` identically) — this is
  what exposes ``acc - b*c`` hiding under a negation to the fmls
  lowering;
* constant folding, evaluated **in the kernel's dtype** so an f32
  kernel folds in f32 exactly as the machine would have computed it;
* ``Mul(Const(1), x) -> x`` and (real kernels) ``Mul(Const(-1), x) ->
  Neg(x)``.

Rules like ``x + 0 -> x`` or ``x * 0 -> 0`` are deliberately absent:
they are wrong for signed zeros / non-finite inputs, and bit-identity
with the unoptimised lowering is the contract the trace cache relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.vectorizer import ir


@dataclass
class PassStats:
    """What the simplifier did to one kernel expression."""

    folded: int = 0       # constant subtrees collapsed
    fused: int = 0        # Add/Sub(Neg) rewrites exposing FMA shapes
    eliminated: int = 0   # involutions and identity multiplies removed

    def total(self) -> int:
        return self.folded + self.fused + self.eliminated


@dataclass
class OptResult:
    kernel: ir.Kernel
    stats: PassStats = field(default_factory=PassStats)


def _fold_const(kernel: ir.Kernel, value) -> ir.Const:
    """Fold to a Const in the kernel dtype (bit-exact vs. runtime)."""
    v = kernel.dtype.type(value)
    return ir.Const(complex(v) if kernel.is_complex else float(v))


def simplify(kernel: ir.Kernel) -> OptResult:
    """Return an equivalent kernel with a canonicalised expression."""
    stats = PassStats()
    dt = kernel.dtype.type

    def rw(e: ir.Expr) -> ir.Expr:
        if isinstance(e, (ir.Load, ir.Const)):
            return e
        if isinstance(e, ir.Neg):
            a = rw(e.a)
            if isinstance(a, ir.Neg):
                stats.eliminated += 1
                return a.a
            if isinstance(a, ir.Const):
                stats.folded += 1
                return _fold_const(kernel, -dt(a.value))
            return ir.Neg(a)
        if isinstance(e, ir.Conj):
            a = rw(e.a)
            if isinstance(a, ir.Conj):
                stats.eliminated += 1
                return a.a
            if isinstance(a, ir.Const):
                stats.folded += 1
                return _fold_const(kernel, np.conj(dt(a.value)))
            return ir.Conj(a)
        if isinstance(e, ir.Add):
            a, b = rw(e.a), rw(e.b)
            if isinstance(a, ir.Const) and isinstance(b, ir.Const):
                stats.folded += 1
                return _fold_const(kernel, dt(a.value) + dt(b.value))
            # x + (-y) == x - y exactly; exposes fmls to the lowering.
            if isinstance(b, ir.Neg):
                stats.fused += 1
                return ir.Sub(a, b.a)
            if isinstance(a, ir.Neg):
                stats.fused += 1
                return ir.Sub(b, a.a)
            return ir.Add(a, b)
        if isinstance(e, ir.Sub):
            a, b = rw(e.a), rw(e.b)
            if isinstance(a, ir.Const) and isinstance(b, ir.Const):
                stats.folded += 1
                return _fold_const(kernel, dt(a.value) - dt(b.value))
            # x - (-y) == x + y exactly; exposes fmla to the lowering.
            if isinstance(b, ir.Neg):
                stats.fused += 1
                return ir.Add(a, b.a)
            return ir.Sub(a, b)
        if isinstance(e, ir.Mul):
            a, b = rw(e.a), rw(e.b)
            if isinstance(a, ir.Const) and isinstance(b, ir.Const):
                stats.folded += 1
                return _fold_const(kernel, dt(a.value) * dt(b.value))
            for c, x in ((a, b), (b, a)):
                if isinstance(c, ir.Const):
                    if dt(c.value) == dt(1):
                        stats.eliminated += 1
                        return x
                    # Neg has no complex-ISA lowering; real kernels only.
                    if not kernel.is_complex and dt(c.value) == dt(-1):
                        stats.eliminated += 1
                        return rw(ir.Neg(x))
            return ir.Mul(a, b)
        raise TypeError(f"not an expression node: {e!r}")

    expr = rw(kernel.expr)
    if stats.total() == 0:
        return OptResult(kernel, stats)
    return OptResult(replace(kernel, expr=expr), stats)


def optimize_kernel(kernel: ir.Kernel) -> ir.Kernel:
    """:func:`simplify`, returning just the kernel."""
    return simplify(kernel).kernel

"""The scalar-loop IR consumed by the auto-vectorizer.

A :class:`Kernel` is an element-wise loop::

    for i in range(n):
        out[i] = expr(in0[i], in1[i], ...)

over arrays of one scalar type (``f64``, ``f32``, ``c128``, ``c64``) —
the shape of the paper's examples (``z[i] = x[i] * y[i]``) and of the
hot inner operations of Grid's expression templates.

Expression nodes: :class:`Load` (an input array element),
:class:`Const`, :class:`Add`, :class:`Sub`, :class:`Mul`, :class:`Neg`,
and :class:`Conj` (complex conjugation, complex kernels only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

#: IR scalar types -> numpy dtypes.
SCALAR_DTYPES = {
    "f64": np.float64,
    "f32": np.float32,
    "c128": np.complex128,
    "c64": np.complex64,
}

#: The element type of the *registers* that hold each scalar type
#: (complex numbers are interleaved pairs of reals).
REAL_DTYPES = {
    "f64": np.float64,
    "f32": np.float32,
    "c128": np.float64,
    "c64": np.float32,
}


def is_complex(scalar_type: str) -> bool:
    return scalar_type.startswith("c")


@dataclass(frozen=True)
class Array:
    """A kernel array argument."""

    name: str
    const: bool = True  # inputs are const; the output is not


class Expr:
    """Base class for expression nodes."""

    def __add__(self, other: "Expr") -> "Add":
        return Add(self, _as_expr(other))

    def __sub__(self, other: "Expr") -> "Sub":
        return Sub(self, _as_expr(other))

    def __mul__(self, other: "Expr") -> "Mul":
        return Mul(self, _as_expr(other))

    def __neg__(self) -> "Neg":
        return Neg(self)


def _as_expr(v) -> "Expr":
    if isinstance(v, Expr):
        return v
    if isinstance(v, (int, float, complex)):
        return Const(v)
    raise TypeError(f"cannot use {type(v).__name__} in a kernel expression")


@dataclass(frozen=True)
class Load(Expr):
    """``in<k>[i]``: element *i* of input array *k*."""

    arg: int


@dataclass(frozen=True)
class Const(Expr):
    """A loop-invariant scalar constant."""

    value: Union[float, complex]


@dataclass(frozen=True)
class Add(Expr):
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Sub(Expr):
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Mul(Expr):
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Neg(Expr):
    a: Expr


@dataclass(frozen=True)
class Conj(Expr):
    """Complex conjugation (complex kernels only)."""

    a: Expr


@dataclass
class Kernel:
    """An element-wise loop kernel.

    Parameters
    ----------
    name:
        Symbol name (cosmetic).
    scalar_type:
        One of ``f64``, ``f32``, ``c128``, ``c64``.
    inputs:
        The input arrays; ``Load(k)`` refers to ``inputs[k]``.
    expr:
        The per-element expression.
    output:
        The destination array.
    """

    name: str
    scalar_type: str
    inputs: list = field(default_factory=list)
    expr: Expr = None
    output: Array = None

    def __post_init__(self) -> None:
        if self.scalar_type not in SCALAR_DTYPES:
            raise ValueError(f"unknown scalar type {self.scalar_type!r}")
        if self.output is None:
            self.output = Array("out", const=False)
        self._validate(self.expr)

    def _validate(self, e: Expr) -> None:
        if isinstance(e, Load):
            if not 0 <= e.arg < len(self.inputs):
                raise ValueError(f"Load({e.arg}) out of range")
        elif isinstance(e, Const):
            if isinstance(e.value, complex) and not is_complex(self.scalar_type):
                raise ValueError("complex constant in a real kernel")
        elif isinstance(e, (Add, Sub, Mul)):
            self._validate(e.a)
            self._validate(e.b)
        elif isinstance(e, (Neg, Conj)):
            if isinstance(e, Conj) and not is_complex(self.scalar_type):
                raise ValueError("Conj in a real kernel")
            self._validate(e.a)
        else:
            raise TypeError(f"not an expression node: {e!r}")

    @property
    def dtype(self):
        return np.dtype(SCALAR_DTYPES[self.scalar_type])

    @property
    def real_dtype(self):
        return np.dtype(REAL_DTYPES[self.scalar_type])

    @property
    def is_complex(self) -> bool:
        return is_complex(self.scalar_type)


def reference_eval(kernel: Kernel, arrays: list) -> np.ndarray:
    """Evaluate the kernel with numpy — the scalar-loop oracle."""

    def ev(e: Expr) -> np.ndarray:
        if isinstance(e, Load):
            return np.asarray(arrays[e.arg], dtype=kernel.dtype)
        if isinstance(e, Const):
            return np.asarray(e.value, dtype=kernel.dtype)
        if isinstance(e, Add):
            return ev(e.a) + ev(e.b)
        if isinstance(e, Sub):
            return ev(e.a) - ev(e.b)
        if isinstance(e, Mul):
            return ev(e.a) * ev(e.b)
        if isinstance(e, Neg):
            return -ev(e.a)
        if isinstance(e, Conj):
            return np.conj(ev(e.a))
        raise TypeError(f"not an expression node: {e!r}")

    return ev(kernel.expr).astype(kernel.dtype)


# ----------------------------------------------------------------------
# Ready-made kernels used across tests, benches and examples
# ----------------------------------------------------------------------

def mult_real_kernel(scalar_type: str = "f64") -> Kernel:
    """Section IV-A: ``z[i] = x[i] * y[i]`` over reals."""
    return Kernel(
        name="mult_real",
        scalar_type=scalar_type,
        inputs=[Array("x"), Array("y")],
        expr=Mul(Load(0), Load(1)),
        output=Array("z", const=False),
    )


def mult_cplx_kernel(scalar_type: str = "c128") -> Kernel:
    """Sections IV-B/C/D: ``z[i] = x[i] * y[i]`` over complexes."""
    return Kernel(
        name="mult_cplx",
        scalar_type=scalar_type,
        inputs=[Array("x"), Array("y")],
        expr=Mul(Load(0), Load(1)),
        output=Array("z", const=False),
    )


def axpy_kernel(alpha, scalar_type: str = "c128") -> Kernel:
    """``z[i] = alpha * x[i] + y[i]`` — the CG update kernel."""
    return Kernel(
        name="axpy",
        scalar_type=scalar_type,
        inputs=[Array("x"), Array("y")],
        expr=Add(Mul(Const(alpha), Load(0)), Load(1)),
        output=Array("z", const=False),
    )


def conj_mul_kernel(scalar_type: str = "c128") -> Kernel:
    """``z[i] = conj(x[i]) * y[i]`` — the inner-product kernel shape."""
    return Kernel(
        name="conj_mul",
        scalar_type=scalar_type,
        inputs=[Array("x"), Array("y")],
        expr=Mul(Conj(Load(0)), Load(1)),
        output=Array("z", const=False),
    )

"""A miniature loop auto-vectorizer targeting SVE.

The paper's Section IV contrasts what the armclang 18.3 / LLVM 5
compiler *can* auto-vectorize with what requires intrinsics:

* real element-wise loops vectorize into the predicated VLA loop of
  Section IV-A;
* ``std::complex`` loops vectorize into **structure loads + real
  arithmetic** (Section IV-B) because "the compiler does not exploit
  the full SVE ISA ... The reason is the lack of support for complex
  arithmetics in the LLVM 5 backend";
* the FCMLA complex instructions are reachable only through ACLE
  intrinsics (Sections IV-C/IV-D).

This package reproduces that compiler: :func:`vectorize` compiles a
small element-wise kernel IR (:mod:`repro.vectorizer.ir`) to SVE
assembly.  The ``complex_isa`` flag selects the backend generation:
``False`` models LLVM 5 (ld2d/st2d + fmul/fmla/fnmls, never fcmla);
``True`` models a complex-aware backend (interleaved ld1d + fcmla
pairs, the code a human wrote with intrinsics in the paper).
"""

from repro.vectorizer.ir import (
    Add,
    Array,
    Conj,
    Const,
    Kernel,
    Load,
    Mul,
    Neg,
    Sub,
    reference_eval,
)
from repro.vectorizer.autovec import VectorizeError, vectorize
from repro.vectorizer.passes import OptResult, PassStats, optimize_kernel, simplify

__all__ = [
    "Add", "Array", "Conj", "Const", "Kernel", "Load", "Mul", "Neg", "Sub",
    "reference_eval", "vectorize", "VectorizeError",
    "OptResult", "PassStats", "optimize_kernel", "simplify",
]

"""IR -> SVE assembly code generation.

Three generators, matching the paper's three code shapes:

* :func:`vectorize` with a real kernel — the predicated VLA loop of
  Section IV-A (``whilelo``/``brkns`` loop control, ``ld1``/``st1``).
* :func:`vectorize` with a complex kernel and ``complex_isa=False`` —
  the LLVM 5 auto-vectorizer behaviour of Section IV-B: structure
  loads (``ld2d``) splitting real/imaginary parts, complex arithmetic
  expanded to ``fmul``/``fmla``/``fnmls`` (+ ``movprfx``), **no
  fcmla**.
* :func:`vectorize` with ``complex_isa=True`` — the code a
  complex-aware backend (or a human with ACLE intrinsics,
  Section IV-C) produces: interleaved ``ld1d`` and chained ``fcmla``
  pairs, with the ``whilelo``-at-top / ``cmp``+``b.lo``-at-bottom loop
  of the paper's listing.

:func:`vectorize_fixed` emits the loop-free, vector-length-specific
variant of Section IV-D used by Grid's ``vec<T>`` kernels.

Generated programs follow a simple calling convention: ``x0`` = element
count (complex elements for complex kernels), ``x1..`` = input array
base addresses in order, then the output address.
"""

from __future__ import annotations

from typing import Optional

from repro.sve.decoder import assemble
from repro.sve.program import Program
from repro.vectorizer import ir


class VectorizeError(ValueError):
    """Raised when a kernel cannot be lowered (e.g. bare Conj on the
    FCMLA path, which has no single-instruction lowering)."""


class _RegAlloc:
    """Trivial z-register allocator with pinning."""

    def __init__(self) -> None:
        self._free = list(range(31, -1, -1))
        self.pinned: set[int] = set()

    def alloc(self, pin: bool = False) -> int:
        if not self._free:
            raise VectorizeError("expression too deep: out of vector registers")
        r = self._free.pop()
        if pin:
            self.pinned.add(r)
        return r

    def free(self, reg: int) -> None:
        if reg in self.pinned:
            return
        self._free.append(reg)


class _Builder:
    """Accumulates assembly lines."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []
        self._label = 0

    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def label(self, prefix: str = "L") -> str:
        self._label += 1
        return f".{prefix}{self.name}_{self._label}"

    def place(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _suffix(kernel: ir.Kernel) -> str:
    return "d" if kernel.real_dtype.itemsize == 8 else "s"


def _shift(kernel: ir.Kernel) -> int:
    return 3 if kernel.real_dtype.itemsize == 8 else 2


def _msuf(suffix: str) -> str:
    """Memory-access mnemonic suffix: .d loads are ld1d, .s loads ld1w."""
    return {"d": "d", "s": "w"}[suffix]


# ======================================================================
# Real kernels — Section IV-A shape
# ======================================================================

class _RealGen:
    """Real-arithmetic expression lowering over single registers."""

    def __init__(self, b: _Builder, ra: _RegAlloc, kernel: ir.Kernel,
                 pred: str) -> None:
        self.b = b
        self.ra = ra
        self.k = kernel
        self.pred = pred  # load predicate register name, e.g. "p1"
        self.suf = _suffix(kernel)
        self.sh = _shift(kernel)
        self.loaded: dict[int, int] = {}
        self.consts: dict[float, int] = {}

    def hoist_consts(self, e: ir.Expr) -> None:
        """Materialise loop-invariant constants before the loop."""
        if isinstance(e, ir.Const):
            v = float(e.value)
            if v not in self.consts:
                r = self.ra.alloc(pin=True)
                self.b.emit(f"fmov z{r}.{self.suf}, #{v!r}")
                self.consts[v] = r
        elif isinstance(e, (ir.Add, ir.Sub, ir.Mul)):
            self.hoist_consts(e.a)
            self.hoist_consts(e.b)
        elif isinstance(e, (ir.Neg, ir.Conj)):
            self.hoist_consts(e.a)

    def load(self, arg: int, index_reg: str) -> int:
        if arg in self.loaded:
            return self.loaded[arg]
        r = self.ra.alloc(pin=True)  # pinned for the iteration (CSE)
        self.b.emit(
            f"ld1{_msuf(self.suf)} {{z{r}.{self.suf}}}, {self.pred}/z, "
            f"[x{arg + 1}, {index_reg}, lsl #{self.sh}]"
        )
        self.loaded[arg] = r
        return r

    def begin_iteration(self) -> None:
        for r in self.loaded.values():
            self.ra.pinned.discard(r)
            self.ra.free(r)
        self.loaded.clear()

    def eval(self, e: ir.Expr, index_reg: str) -> int:
        s = self.suf
        if isinstance(e, ir.Load):
            # Copy so destructive consumers don't clobber the CSE'd load.
            src = self.load(e.arg, index_reg)
            return src
        if isinstance(e, ir.Const):
            return self.consts[float(e.value)]
        if isinstance(e, ir.Add):
            # FMA fusion: a + b*c -> fmla (the vectorizer's strength).
            fused = self._try_fma(e.a, e.b, "fmla", index_reg)
            if fused is None:
                fused = self._try_fma(e.b, e.a, "fmla", index_reg)
            if fused is not None:
                return fused
            ra_, rb = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rd = self._fresh()
            self.b.emit(f"fadd z{rd}.{s}, z{ra_}.{s}, z{rb}.{s}")
            self._drop(ra_, rb)
            return rd
        if isinstance(e, ir.Sub):
            fused = self._try_fma(e.a, e.b, "fmls", index_reg)
            if fused is not None:
                return fused
            ra_, rb = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rd = self._fresh()
            self.b.emit(f"fsub z{rd}.{s}, z{ra_}.{s}, z{rb}.{s}")
            self._drop(ra_, rb)
            return rd
        if isinstance(e, ir.Mul):
            ra_, rb = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rd = self._fresh()
            self.b.emit(f"fmul z{rd}.{s}, z{ra_}.{s}, z{rb}.{s}")
            self._drop(ra_, rb)
            return rd
        if isinstance(e, ir.Neg):
            ra_ = self.eval(e.a, index_reg)
            rd = self._fresh()
            self.b.emit(f"fneg z{rd}.{s}, z{ra_}.{s}")
            self._drop(ra_)
            return rd
        raise VectorizeError(f"cannot lower {e!r} in a real kernel")

    def _try_fma(self, acc_e: ir.Expr, mul_e: ir.Expr, op: str,
                 index_reg: str) -> Optional[int]:
        """Lower ``acc ± b*c`` to a single predicated FMA."""
        if not isinstance(mul_e, ir.Mul):
            return None
        s = self.suf
        r_acc = self.eval(acc_e, index_reg)
        rb = self.eval(mul_e.a, index_reg)
        rc = self.eval(mul_e.b, index_reg)
        rd = self._fresh()
        self.b.emit(f"movprfx z{rd}, z{r_acc}")
        self.b.emit(f"{op} z{rd}.{s}, {self.pred}/m, z{rb}.{s}, z{rc}.{s}")
        self._drop(r_acc, rb, rc)
        return rd

    def _fresh(self) -> int:
        return self.ra.alloc()

    def _drop(self, *regs: int) -> None:
        for r in regs:
            if r not in self.ra.pinned:
                self.ra.free(r)


def _gen_real(kernel: ir.Kernel) -> Program:
    b = _Builder(kernel.name)
    ra = _RegAlloc()
    out_x = len(kernel.inputs) + 1
    s = _suffix(kernel)
    gen = _RealGen(b, ra, kernel, pred="p1")
    # Constants hoisted before the loop (loop-invariant code motion).
    gen.hoist_consts(kernel.expr)
    # Loop scaffolding — exactly the Section IV-A structure.
    b.emit("mov x8, xzr")
    b.emit(f"whilelo p1.{s}, xzr, x0")
    b.emit(f"ptrue p0.{s}")
    loop = b.label("LBB_")
    b.place(loop)
    gen.begin_iteration()
    r = gen.eval(kernel.expr, "x8")
    b.emit(f"st1{_msuf(s)} {{z{r}.{s}}}, p1, [x{out_x}, x8, lsl #{_shift(kernel)}]")
    b.emit(f"inc{'d' if s == 'd' else 'w'} x8")
    b.emit(f"whilelo p2.{s}, x8, x0")
    b.emit("brkns p2.b, p0/z, p1.b, p2.b")
    b.emit("mov p1.b, p2.b")
    b.emit(f"b.mi {loop}")
    b.emit("ret")
    return assemble(b.source())


# ======================================================================
# Complex kernels without complex ISA — Section IV-B shape
# ======================================================================

class _CplxRealGen:
    """Complex expression lowering over (re, im) register pairs."""

    def __init__(self, b: _Builder, ra: _RegAlloc, kernel: ir.Kernel,
                 pred: str, full_pred: str, use_movprfx: bool) -> None:
        self.b = b
        self.ra = ra
        self.k = kernel
        self.pred = pred            # loop predicate (loads/stores)
        self.full = full_pred      # ptrue predicate (FMA merging)
        self.movprfx = use_movprfx
        self.suf = _suffix(kernel)
        self.sh = _shift(kernel)
        self.loaded: dict[int, tuple[int, int]] = {}
        self.consts: dict[complex, tuple[int, int]] = {}

    def hoist_consts(self, e: ir.Expr) -> None:
        if isinstance(e, ir.Const):
            v = complex(e.value)
            if v not in self.consts:
                rr = self.ra.alloc(pin=True)
                ri = self.ra.alloc(pin=True)
                self.b.emit(f"fmov z{rr}.{self.suf}, #{v.real!r}")
                self.b.emit(f"fmov z{ri}.{self.suf}, #{v.imag!r}")
                self.consts[v] = (rr, ri)
        elif isinstance(e, (ir.Add, ir.Sub, ir.Mul)):
            self.hoist_consts(e.a)
            self.hoist_consts(e.b)
        elif isinstance(e, (ir.Neg, ir.Conj)):
            self.hoist_consts(e.a)

    def begin_iteration(self) -> None:
        for rr, ri in self.loaded.values():
            for r in (rr, ri):
                self.ra.pinned.discard(r)
                self.ra.free(r)
        self.loaded.clear()

    def load(self, arg: int, index_reg: str) -> tuple[int, int]:
        if arg in self.loaded:
            return self.loaded[arg]
        rr = self.ra.alloc(pin=True)
        ri = self.ra.alloc(pin=True)
        s = self.suf
        self.b.emit(
            f"ld2{_msuf(s)} {{z{rr}.{s}, z{ri}.{s}}}, {self.pred}/z, "
            f"[x{arg + 1}, {index_reg}, lsl #{self.sh}]"
        )
        self.loaded[arg] = (rr, ri)
        return rr, ri

    def eval(self, e: ir.Expr, index_reg: str) -> tuple[int, int]:
        s = self.suf
        if isinstance(e, ir.Load):
            return self.load(e.arg, index_reg)
        if isinstance(e, ir.Const):
            return self.consts[complex(e.value)]
        if isinstance(e, ir.Add):
            (ar, ai), (br, bi) = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rr, ri = self._fresh(), self._fresh()
            self.b.emit(f"fadd z{rr}.{s}, z{ar}.{s}, z{br}.{s}")
            self.b.emit(f"fadd z{ri}.{s}, z{ai}.{s}, z{bi}.{s}")
            self._drop(ar, ai, br, bi)
            return rr, ri
        if isinstance(e, ir.Sub):
            (ar, ai), (br, bi) = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rr, ri = self._fresh(), self._fresh()
            self.b.emit(f"fsub z{rr}.{s}, z{ar}.{s}, z{br}.{s}")
            self.b.emit(f"fsub z{ri}.{s}, z{ai}.{s}, z{bi}.{s}")
            self._drop(ar, ai, br, bi)
            return rr, ri
        if isinstance(e, ir.Mul):
            return self._mul(e.a, e.b, index_reg)
        if isinstance(e, ir.Neg):
            ar, ai = self.eval(e.a, index_reg)
            rr, ri = self._fresh(), self._fresh()
            self.b.emit(f"fneg z{rr}.{s}, z{ar}.{s}")
            self.b.emit(f"fneg z{ri}.{s}, z{ai}.{s}")
            self._drop(ar, ai)
            return rr, ri
        if isinstance(e, ir.Conj):
            ar, ai = self.eval(e.a, index_reg)
            ri = self._fresh()
            self.b.emit(f"fneg z{ri}.{s}, z{ai}.{s}")
            self._drop(ai)
            return ar, ri
        raise VectorizeError(f"cannot lower {e!r}")

    def _mul(self, ea: ir.Expr, eb: ir.Expr, index_reg: str) -> tuple[int, int]:
        """Complex multiply via real arithmetic — the Section IV-B mix:
        2x fmul + movprfx+fmla + movprfx+fnmls.

        re = -(ai*bi) + ar*br   (fnmls with acc = ai*bi)
        im =  (ai*br) + ar*bi   (fmla  with acc = ai*br)
        """
        s = self.suf
        (ar, ai) = self.eval(ea, index_reg)
        (br, bi) = self.eval(eb, index_reg)
        t1, t2 = self._fresh(), self._fresh()
        self.b.emit(f"fmul z{t1}.{s}, z{ai}.{s}, z{bi}.{s}")
        self.b.emit(f"fmul z{t2}.{s}, z{ai}.{s}, z{br}.{s}")
        if self.movprfx:
            rr, ri = self._fresh(), self._fresh()
            self.b.emit(f"movprfx z{ri}, z{t2}")
            self.b.emit(f"fmla z{ri}.{s}, {self.full}/m, z{ar}.{s}, z{bi}.{s}")
            self.b.emit(f"movprfx z{rr}, z{t1}")
            self.b.emit(f"fnmls z{rr}.{s}, {self.full}/m, z{ar}.{s}, z{br}.{s}")
            self._drop(t1, t2)
        else:
            rr, ri = t1, t2
            self.b.emit(f"fmla z{ri}.{s}, {self.full}/m, z{ar}.{s}, z{bi}.{s}")
            self.b.emit(f"fnmls z{rr}.{s}, {self.full}/m, z{ar}.{s}, z{br}.{s}")
        self._drop(ar, ai, br, bi)
        return rr, ri

    def _fresh(self) -> int:
        return self.ra.alloc()

    def _drop(self, *regs: int) -> None:
        for r in regs:
            if r not in self.ra.pinned:
                self.ra.free(r)


def _gen_cplx_real(kernel: ir.Kernel, use_movprfx: bool) -> Program:
    b = _Builder(kernel.name)
    ra = _RegAlloc()
    out_x = len(kernel.inputs) + 1
    s = _suffix(kernel)
    gen = _CplxRealGen(b, ra, kernel, pred="p0", full_pred="p1",
                       use_movprfx=use_movprfx)
    gen.hoist_consts(kernel.expr)
    # Section IV-B loop scaffolding: predicate over complex elements,
    # byte index doubled via x9 = x8 << 1.
    b.emit("mov x8, xzr")
    b.emit(f"whilelo p0.{s}, xzr, x0")
    b.emit(f"ptrue p1.{s}")
    loop = b.label("LBB_")
    b.place(loop)
    gen.begin_iteration()
    b.emit("lsl x9, x8, #1")
    rr, ri = gen.eval(kernel.expr, "x9")
    b.emit(f"st2{_msuf(s)} {{z{rr}.{s}, z{ri}.{s}}}, p0, "
           f"[x{out_x}, x9, lsl #{_shift(kernel)}]")
    b.emit(f"inc{'d' if s == 'd' else 'w'} x8")
    b.emit(f"whilelo p2.{s}, x8, x0")
    b.emit("brkns p2.b, p1/z, p0.b, p2.b")
    b.emit("mov p0.b, p2.b")
    b.emit(f"b.mi {loop}")
    b.emit("ret")
    return assemble(b.source())


# ======================================================================
# Complex kernels with complex ISA — Section IV-C shape (FCMLA)
# ======================================================================

class _CplxIsaGen:
    """Complex expression lowering over interleaved registers + FCMLA."""

    def __init__(self, b: _Builder, ra: _RegAlloc, kernel: ir.Kernel,
                 pred: str) -> None:
        self.b = b
        self.ra = ra
        self.k = kernel
        self.pred = pred
        self.suf = _suffix(kernel)
        self.sh = _shift(kernel)
        self.zero: Optional[int] = None
        self.loaded: dict[int, int] = {}
        self.consts: dict[complex, int] = {}

    def hoist(self, e: ir.Expr) -> None:
        """Hoist the zero register and interleaved constants."""
        if isinstance(e, ir.Mul):
            # Conservative: a Mul may lower as accumulate-onto-zero
            # (exact only when unfused, but hoisting is free).
            self._ensure_zero()
        if isinstance(e, ir.Const):
            v = complex(e.value)
            if v not in self.consts:
                rr = self.ra.alloc()
                ri = self.ra.alloc()
                rc = self.ra.alloc(pin=True)
                s = self.suf
                self.b.emit(f"fmov z{rr}.{s}, #{v.real!r}")
                self.b.emit(f"fmov z{ri}.{s}, #{v.imag!r}")
                self.b.emit(f"zip1 z{rc}.{s}, z{rr}.{s}, z{ri}.{s}")
                self.ra.free(rr)
                self.ra.free(ri)
                self.consts[v] = rc
        if isinstance(e, (ir.Add, ir.Sub, ir.Mul)):
            self.hoist(e.a)
            self.hoist(e.b)
        elif isinstance(e, (ir.Neg, ir.Conj)):
            self.hoist(e.a)

    def _ensure_zero(self) -> None:
        if self.zero is None:
            self.zero = self.ra.alloc(pin=True)
            self.b.emit(f"mov z{self.zero}.{self.suf}, #0")

    def begin_iteration(self) -> None:
        for r in self.loaded.values():
            self.ra.pinned.discard(r)
            self.ra.free(r)
        self.loaded.clear()

    def load(self, arg: int, index_reg: str) -> int:
        if arg in self.loaded:
            return self.loaded[arg]
        r = self.ra.alloc(pin=True)
        s = self.suf
        self.b.emit(
            f"ld1{_msuf(s)} {{z{r}.{s}}}, {self.pred}/z, "
            f"[x{arg + 1}, {index_reg}, lsl #{self.sh}]"
        )
        self.loaded[arg] = r
        return r

    def eval(self, e: ir.Expr, index_reg: str) -> int:
        s = self.suf
        if isinstance(e, ir.Load):
            return self.load(e.arg, index_reg)
        if isinstance(e, ir.Const):
            return self.consts[complex(e.value)]
        if isinstance(e, ir.Add):
            # Fusion: c + a*b -> copy c, two FCMLAs accumulate into it.
            fused = self._try_cfma(e.a, e.b, negate=False, index_reg=index_reg)
            if fused is None:
                fused = self._try_cfma(e.b, e.a, negate=False, index_reg=index_reg)
            if fused is not None:
                return fused
            ra_, rb = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rd = self._fresh()
            self.b.emit(f"fadd z{rd}.{s}, z{ra_}.{s}, z{rb}.{s}")
            self._drop(ra_, rb)
            return rd
        if isinstance(e, ir.Sub):
            fused = self._try_cfma(e.a, e.b, negate=True, index_reg=index_reg)
            if fused is not None:
                return fused
            ra_, rb = self.eval(e.a, index_reg), self.eval(e.b, index_reg)
            rd = self._fresh()
            self.b.emit(f"fsub z{rd}.{s}, z{ra_}.{s}, z{rb}.{s}")
            self._drop(ra_, rb)
            return rd
        if isinstance(e, ir.Mul):
            self._ensure_zero()
            return self._fcmla_acc(self.zero, e, negate=False,
                                   index_reg=index_reg)
        if isinstance(e, ir.Neg):
            ra_ = self.eval(e.a, index_reg)
            rd = self._fresh()
            self.b.emit(f"fneg z{rd}.{s}, z{ra_}.{s}")
            self._drop(ra_)
            return rd
        if isinstance(e, ir.Conj):
            raise VectorizeError(
                "bare Conj has no FCMLA lowering (conjugation is only "
                "available fused into a multiply, Eq. (2) of the paper); "
                "rewrite as Mul(Conj(x), y)"
            )
        raise VectorizeError(f"cannot lower {e!r}")

    def _try_cfma(self, acc_e: ir.Expr, mul_e: ir.Expr, negate: bool,
                  index_reg: str) -> Optional[int]:
        if not isinstance(mul_e, ir.Mul):
            return None
        r_acc = self.eval(acc_e, index_reg)
        return self._fcmla_acc(r_acc, mul_e, negate, index_reg)

    def _fcmla_acc(self, r_acc: int, mul_e: ir.Mul, negate: bool,
                   index_reg: str) -> int:
        """acc ± x*y (or ± conj(x)*y) via two chained FCMLAs (Eq. (2))."""
        s = self.suf
        ex, ey = mul_e.a, mul_e.b
        conj = False
        if isinstance(ex, ir.Conj):
            conj, ex = True, ex.a
        elif isinstance(ey, ir.Conj):
            # x * conj(y) == conj(conj(x) * y) has no two-FCMLA form;
            # but conj(y)*x reverses operand roles, which FCMLA allows.
            conj, ex, ey = True, ey.a, ex
        rx = self.eval(ex, index_reg)
        ry = self.eval(ey, index_reg)
        rd = self._fresh()
        self.b.emit(f"mov z{rd}.{s}, z{r_acc}.{s}")
        #            +x*y      -x*y        +conj(x)*y   -conj(x)*y
        rots = {(False, False): (90, 0), (True, False): (270, 180),
                (False, True): (270, 0), (True, True): (90, 180)}[
                    (negate, conj)]
        for rot in rots:
            self.b.emit(
                f"fcmla z{rd}.{s}, {self.pred}/m, z{rx}.{s}, z{ry}.{s}, #{rot}"
            )
        self._drop(r_acc, rx, ry)
        return rd

    def _fresh(self) -> int:
        return self.ra.alloc()

    def _drop(self, *regs: int) -> None:
        for r in regs:
            if r not in self.ra.pinned:
                self.ra.free(r)


def _gen_cplx_isa(kernel: ir.Kernel) -> Program:
    b = _Builder(kernel.name)
    ra = _RegAlloc()
    out_x = len(kernel.inputs) + 1
    s = _suffix(kernel)
    gen = _CplxIsaGen(b, ra, kernel, pred="p0")
    # Section IV-C loop scaffolding: iterate over 2n real elements of
    # the interleaved layout; whilelo at the top, cmp/b.lo at the bottom.
    b.emit("mov x9, xzr")
    gen.hoist(kernel.expr)
    b.emit("lsl x8, x0, #1")
    loop = b.label("LBB_")
    b.place(loop)
    gen.begin_iteration()
    b.emit(f"whilelo p0.{s}, x9, x8")
    r = gen.eval(kernel.expr, "x9")
    b.emit(f"st1{_msuf(s)} {{z{r}.{s}}}, p0, [x{out_x}, x9, lsl #{_shift(kernel)}]")
    b.emit(f"inc{'d' if s == 'd' else 'w'} x9")
    b.emit("cmp x9, x8")
    b.emit(f"b.lo {loop}")
    b.emit("ret")
    return assemble(b.source())


# ======================================================================
# Public entry points
# ======================================================================

def vectorize(kernel: ir.Kernel, complex_isa: bool = False,
              use_movprfx: bool = True) -> Program:
    """Compile a kernel to an SVE VLA loop.

    ``complex_isa`` selects the complex-arithmetic lowering for complex
    kernels (ignored for real kernels): ``False`` = the LLVM 5
    behaviour (Section IV-B), ``True`` = FCMLA (Section IV-C).
    """
    if kernel.is_complex:
        if complex_isa:
            return _gen_cplx_isa(kernel)
        return _gen_cplx_real(kernel, use_movprfx)
    return _gen_real(kernel)


def vectorize_fixed(kernel: ir.Kernel, complex_isa: bool = True) -> Program:
    """Compile the loop-free, register-sized variant (Section IV-D).

    The kernel is assumed to process exactly one vector register of
    data ("eminently suitable for small arrays of the size of vector
    registers"); the resulting binary "will only be operating correctly
    on matching SVE hardware".
    """
    b = _Builder(kernel.name + "_vlf")
    ra = _RegAlloc()
    out_x = len(kernel.inputs) + 1
    s = _suffix(kernel)
    b.emit(f"ptrue p0.{s}")
    if kernel.is_complex and complex_isa:
        gen = _CplxIsaGen(b, ra, kernel, pred="p0")
        gen.hoist(kernel.expr)
        # Loads use no index register: [xN] directly.
        gen.load = _fixed_load_interleaved(gen)  # type: ignore[assignment]
        r = gen.eval(kernel.expr, "xzr")
        b.emit(f"st1{_msuf(s)} {{z{r}.{s}}}, p0, [x{out_x}]")
    elif kernel.is_complex:
        gen2 = _CplxRealGen(b, ra, kernel, pred="p0", full_pred="p0",
                            use_movprfx=True)
        gen2.hoist_consts(kernel.expr)
        gen2.load = _fixed_load_structure(gen2)  # type: ignore[assignment]
        rr, ri = gen2.eval(kernel.expr, "xzr")
        b.emit(f"st2{_msuf(s)} {{z{rr}.{s}, z{ri}.{s}}}, p0, [x{out_x}]")
    else:
        gen3 = _RealGen(b, ra, kernel, pred="p0")
        gen3.hoist_consts(kernel.expr)
        gen3.load = _fixed_load_real(gen3)  # type: ignore[assignment]
        r = gen3.eval(kernel.expr, "xzr")
        b.emit(f"st1{_msuf(s)} {{z{r}.{s}}}, p0, [x{out_x}]")
    b.emit("ret")
    return assemble(b.source())


def _fixed_load_interleaved(gen: _CplxIsaGen):
    def load(arg: int, index_reg: str) -> int:
        if arg in gen.loaded:
            return gen.loaded[arg]
        r = gen.ra.alloc(pin=True)
        s = gen.suf
        gen.b.emit(f"ld1{_msuf(s)} {{z{r}.{s}}}, {gen.pred}/z, [x{arg + 1}]")
        gen.loaded[arg] = r
        return r
    return load


def _fixed_load_structure(gen: _CplxRealGen):
    def load(arg: int, index_reg: str) -> tuple[int, int]:
        if arg in gen.loaded:
            return gen.loaded[arg]
        rr = gen.ra.alloc(pin=True)
        ri = gen.ra.alloc(pin=True)
        s = gen.suf
        gen.b.emit(f"ld2{_msuf(s)} {{z{rr}.{s}, z{ri}.{s}}}, {gen.pred}/z, [x{arg + 1}]")
        gen.loaded[arg] = (rr, ri)
        return rr, ri
    return load


def _fixed_load_real(gen: _RealGen):
    def load(arg: int, index_reg: str) -> int:
        if arg in gen.loaded:
            return gen.loaded[arg]
        r = gen.ra.alloc(pin=True)
        s = gen.suf
        gen.b.emit(f"ld1{_msuf(s)} {{z{r}.{s}}}, {gen.pred}/z, [x{arg + 1}]")
        gen.loaded[arg] = r
        return r
    return load

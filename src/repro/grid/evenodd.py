"""Even-odd (red-black) preconditioning of the Wilson operator.

The standard LQCD solver optimization (used throughout Grid): the
hopping term of Eq. (1) only couples sites of opposite checkerboard
parity, so in the parity-ordered basis the Wilson matrix is

    M = [ Mee  Meo ]      Mee = Moo = (4 + m) * 1
        [ Moe  Moo ]      Meo/Moe = -(1/2) D_h restricted

and solving ``M psi = b`` reduces to a half-volume Schur-complement
system on the odd sites,

    S = Moo - Moe Mee^{-1} Meo,
    S psi_o = b_o - Moe Mee^{-1} b_e,

followed by back-substitution for ``psi_e``.  ``S`` inherits
gamma5-hermiticity, so CGNE applies; the Krylov space halves and the
condition number improves — fewer iterations for the same physics,
which the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.grid.lattice import Lattice
from repro.grid.solver import SolverResult, conjugate_gradient
from repro.grid.wilson import SPINOR, WilsonDirac


class SchurWilson:
    """Schur-preconditioned Wilson solves on a checkerboarded lattice.

    Parity projection is implemented with site masks over the
    (osites, lanes) geometry — the virtual-node layout interleaves
    parities across lanes, so a mask (rather than a half-sized grid)
    keeps the SIMD layout intact, exactly the complication a
    vectorized checkerboard implementation has to handle.
    """

    def __init__(self, dirac: WilsonDirac) -> None:
        self.dirac = dirac
        self.grid = dirac.grid
        self.diag = 4.0 + dirac.mass
        parity = self.grid.parity_mask()  # (osites, nlanes), 0 = even
        shape = (self.grid.osites,) + tuple(1 for _ in SPINOR) + \
            (self.grid.nlanes,)
        par = parity.reshape(self.grid.osites, *(1 for _ in SPINOR),
                             self.grid.nlanes)
        self._even = (par == 0)
        self._odd = (par == 1)

    # ------------------------------------------------------------------
    # Parity projections
    # ------------------------------------------------------------------
    def project(self, psi: Lattice, parity: str) -> Lattice:
        """Zero the sites of the other parity."""
        mask = self._even if parity == "even" else self._odd
        out = psi.new_like()
        out.data = np.where(mask, psi.data, 0.0)
        return out

    def _hop(self, psi: Lattice) -> Lattice:
        """The off-diagonal block action: ``-(1/2) D_h psi``.

        Applied to a single-parity field this lands entirely on the
        other parity (asserted by the tests — it is the checkerboard
        property itself).
        """
        return self.dirac.dhop(psi) * (-0.5)

    # ------------------------------------------------------------------
    # The Schur operator on odd-support fields
    # ------------------------------------------------------------------
    def schur(self, psi_o: Lattice) -> Lattice:
        """``S psi_o = (4+m) psi_o - Moe Mee^-1 Meo psi_o``."""
        meo = self.project(self._hop(psi_o), "even")
        moe = self.project(self._hop(meo), "odd")
        return psi_o * self.diag - moe * (1.0 / self.diag)

    def schur_dagger(self, psi_o: Lattice) -> Lattice:
        """``S^dagger`` via gamma5-hermiticity (gamma5 commutes with
        the parity projection)."""
        from repro.grid import gamma as g

        be = self.grid.backend
        tmp = Lattice(self.grid, SPINOR, g.gamma5_apply(be, psi_o.data))
        tmp = self.schur(tmp)
        return Lattice(self.grid, SPINOR, g.gamma5_apply(be, tmp.data))

    def schur_norm(self, psi_o: Lattice) -> Lattice:
        """``S^dagger S`` — hermitian positive definite on odd sites."""
        return self.schur_dagger(self.schur(psi_o))

    # FermionOperator protocol: the operator this object *is* for a
    # solver is the Schur complement on odd-support fields.
    apply = schur
    apply_dagger = schur_dagger
    mdag_m = schur_norm

    @property
    def geometry(self):
        """Protocol metadata — the Schur operator acts on (the
        odd-parity half of) the same grid as the underlying Wilson
        operator."""
        return self.dirac.geometry

    def flops_per_site(self) -> int:
        """Two half-volume hops per Schur application ~ one full dhop
        plus the diagonal updates; the community dslash count stands."""
        return self.dirac.flops_per_site()

    def bytes_per_site(self) -> int:
        return self.dirac.bytes_per_site()

    # ------------------------------------------------------------------
    # The full preconditioned solve
    # ------------------------------------------------------------------
    def solve(self, b: Lattice, tol: float = 1e-8,
              max_iter: int = 1000) -> SolverResult:
        """Solve ``M psi = b`` through the odd-site Schur system."""
        b_e = self.project(b, "even")
        b_o = self.project(b, "odd")
        # RHS of the Schur system: b_o - Moe Mee^-1 b_e.
        rhs = b_o - self.project(self._hop(b_e), "odd") * (1.0 / self.diag)
        # CGNE on S (gamma5-hermitian, like M itself).
        rhs_n = self.schur_dagger(rhs)
        inner = conjugate_gradient(self.schur_norm, rhs_n, tol=tol,
                                   max_iter=max_iter)
        psi_o = self.project(inner.x, "odd")
        # Back-substitution: psi_e = Mee^-1 (b_e - Meo psi_o).
        psi_e = (b_e - self.project(self._hop(psi_o), "even")) \
            * (1.0 / self.diag)
        psi = psi_e + psi_o
        true_res = (b - self.dirac.apply(psi)).norm2() ** 0.5 \
            / b.norm2() ** 0.5
        return SolverResult(
            x=psi,
            converged=inner.converged and true_res < 10 * tol,
            iterations=inner.iterations,
            residual=true_res,
            residual_history=inner.residual_history,
        )

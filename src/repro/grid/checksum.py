"""Deterministic lattice checksums for verification reporting.

The Section V-D verification harness compares runs across vector
lengths and backends; a short stable digest of the canonical field
content makes mismatches reportable without dumping whole fields.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.grid.lattice import Lattice


def field_checksum(lat: Lattice, ndigits: int = 12) -> str:
    """SHA-256 over the canonical bytes, rounded to ``ndigits``.

    Rounding makes the digest robust against the last-bit differences
    legitimate reorderings (e.g. different summation trees) can
    produce, while still catching real defects.
    """
    can = lat.to_canonical()
    rounded = np.round(can.view(np.float64), ndigits)
    return hashlib.sha256(rounded.tobytes()).hexdigest()[:16]


def scalar_checksum(value: complex, ndigits: int = 10) -> str:
    """Digest of a scalar observable."""
    v = complex(value)
    payload = f"{round(v.real, ndigits)}:{round(v.imag, ndigits)}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]

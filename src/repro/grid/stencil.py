"""Precomputed nearest-neighbour stencil.

Grid's high-performance operators don't call ``Cshift`` per
application; they precompute, once per (grid, direction, displacement),
the gather table — which outer site to read and whether a virtual-node
lane permutation is needed — and replay it each time.  This module is
that optimization: :class:`HaloStencil` precomputes per-direction
gather plans, and :meth:`HaloStencil.gather` applies one.

The plan makes the paper's Fig. 1 story concrete and inspectable: the
fraction of outer sites that need a permute along dimension ``d`` is
exactly ``1 / odims[d]`` (only the block-boundary layer), which the
Fig. 1 benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.coordinates import indices_of
from repro.grid.cshift import _lane_rotation_map, _shift_plan
from repro.grid.lattice import Lattice


@dataclass(frozen=True)
class GatherPlan:
    """One direction's precomputed shift-by-±1 plan.

    ``src_osites``: source outer site per destination outer site.
    ``permute_sel``: destination outer sites whose lanes rotate.
    ``rotation``: virtual-node rotation amount (0 or ±1 mod S).
    ``lane_map``: the lane permutation for those sites.
    ``permute_level``: Grid permute level when ``S == 2``, else -1.
    """

    dim: int
    shift: int
    src_osites: np.ndarray
    permute_sel: np.ndarray
    rotation: int
    lane_map: np.ndarray
    permute_level: int

    @property
    def permute_fraction(self) -> float:
        """Fraction of outer sites requiring a lane permutation."""
        return self.permute_sel.size / self.src_osites.size


class HaloStencil:
    """Per-grid gather plans for all ±1 displacements."""

    def __init__(self, grid: GridCartesian) -> None:
        self.grid = grid
        self.plans: dict[tuple[int, int], GatherPlan] = {}
        for dim in range(grid.ndim):
            for shift in (+1, -1):
                self.plans[(dim, shift)] = self._build(dim, shift)

    def _build(self, dim: int, shift: int) -> GatherPlan:
        grid = self.grid
        L = grid.odims[dim]
        s = shift % grid.ldims[dim]
        ocoor = grid.ocoor_table()
        o_d = ocoor[:, dim]
        k = (o_d + s) // L
        src_ocoor = ocoor.copy()
        src_ocoor[:, dim] = (o_d + s) - k * L
        src_osites = indices_of(src_ocoor, grid.odims)
        S = grid.simd_layout[dim]
        rotation = int(np.unique(k[k > 0])[0] % S) if (k > 0).any() else 0
        permute_sel = np.nonzero((k % S) != 0)[0]
        lane_map = _lane_rotation_map(grid, dim, rotation)
        level = -1
        if S == 2 and rotation:
            level = grid.permute_level(dim)
        return GatherPlan(
            dim=dim, shift=shift, src_osites=src_osites,
            permute_sel=permute_sel, rotation=rotation,
            lane_map=lane_map, permute_level=level,
        )

    def gather(self, lat: Lattice, dim: int, shift: int) -> np.ndarray:
        """Neighbour field data: ``out(x) = in(x + shift e_dim)``.

        Equivalent to :func:`repro.grid.cshift.cshift` for ±1 shifts,
        but replaying the precomputed plan.
        """
        plan = self.plans[(dim, shift)]
        grid = self.grid
        out = lat.data[plan.src_osites]
        if plan.permute_sel.size:
            block = out[plan.permute_sel]
            if plan.permute_level >= 0:
                block = grid.backend.permute(block, plan.permute_level)
            else:
                block = np.take(block, plan.lane_map, axis=-1)
            out[plan.permute_sel] = block
        return out


def stencil_cshift(stencil: HaloStencil, lat: Lattice, dim: int,
                   shift: int) -> Lattice:
    """A Lattice-returning wrapper over :meth:`HaloStencil.gather`."""
    out = lat.new_like()
    out.data = stencil.gather(lat, dim, shift)
    return out


def halo_dependency(grid: GridCartesian):
    """Interior/boundary-shell split of the outer-site axis for the
    rank-decomposed ±1 stencil.

    A destination outer site *depends on the dim-``d`` halo* when the
    shift-by-±1 gather along ``d`` sources any of its lanes across the
    local (rank) boundary — i.e. the site lands in a ``k >= 1``
    virtual-node group of that shift.  Returns ``(interior, shells)``:

    * ``interior`` — outer sites touching no halo in any direction
      (computable while every halo is still in flight);
    * ``shells[d]`` — outer sites whose *highest* halo-dependent
      dimension is ``d`` (computable once the halos for dimensions
      ``<= d`` have landed).

    Together they partition ``range(osites)``, which is what lets the
    overlap engine (:mod:`repro.grid.overlap`) write every output site
    exactly once — bit-identity to the ordered sweep by disjointness.
    Dimensions whose local shift is zero (``ldims[d] == 1``: the whole
    extent lives on other ranks and the "shift" is a rank renumbering)
    contribute no halo dependence.
    """
    ndim = grid.ndim
    depends = np.zeros((ndim, grid.osites), dtype=bool)
    for dim in range(ndim):
        for sign in (+1, -1):
            s = (sign % grid.gdims[dim]) % grid.ldims[dim]
            if s == 0:
                continue
            for k, sel, _src, nbr_lanes in _shift_plan(grid, dim, s):
                if k != 0 and np.any(nbr_lanes):
                    depends[dim, sel] = True
    interior = np.nonzero(~depends.any(axis=0))[0]
    shells = []
    for d in range(ndim):
        higher = depends[d + 1:].any(axis=0)
        shells.append(np.nonzero(depends[d] & ~higher)[0])
    return interior, shells

"""A Grid-like lattice QCD framework (the port target of the paper).

Reproduces, in miniature but faithfully, the parts of Grid [4] the
paper's port touches:

* the **data layout**: cartesian grids whose sub-lattice is decomposed
  over virtual nodes so that "neighboring lattice sites will be
  assigned to different vectors" (Section II-B, Fig. 1);
* the **machine-specific abstraction layer** (Section II-C), consumed
  here through :mod:`repro.simd` backends;
* the **main computational task**: the Wilson hopping term of Eq. (1)
  and the Wilson Dirac operator built on it, plus the iterative
  solvers it feeds (Section II-A);
* the coarser parallelization levels: a simulated rank decomposition
  with halo exchange, including the fp16 compression Grid applies to
  network data (Section V-B).
"""

from repro.grid.cartesian import GridCartesian, default_simd_layout
from repro.grid.lattice import Lattice
from repro.grid.cshift import cshift
from repro.grid.gamma import GAMMA, GAMMA5, NDIRS
from repro.grid.su3 import random_su3_field, unit_gauge
from repro.grid.wilson import WilsonDirac
from repro.grid.solver import bicgstab, conjugate_gradient, minimal_residual
from repro.grid.random import random_gauge, random_spinor

__all__ = [
    "GridCartesian",
    "default_simd_layout",
    "Lattice",
    "cshift",
    "GAMMA",
    "GAMMA5",
    "NDIRS",
    "random_su3_field",
    "unit_gauge",
    "WilsonDirac",
    "conjugate_gradient",
    "bicgstab",
    "minimal_residual",
    "random_gauge",
    "random_spinor",
]

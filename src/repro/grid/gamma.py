"""Dirac gamma matrices and Wilson spin projection.

Chiral (Weyl) basis, Grid's convention.  The hopping term of Eq. (1)
applies ``(1 + gamma_mu)`` to the forward neighbour and
``(1 - gamma_mu)`` to the backward neighbour; because these projectors
have rank 2, the standard optimization projects the 4-spinor to a
2-component half-spinor before the SU(3) multiplication and
reconstructs afterwards — halving the colour arithmetic.  The
projection/reconstruction formulas below use only the machine-specific
operations of Section II-C (add, sub, ``TimesI``, ``TimesMinusI``),
which is why they matter for an ISA port.
"""

from __future__ import annotations

import numpy as np

#: Number of space-time directions.
NDIRS = 4

_I = 1j

#: Dirac matrices in the chiral basis, indexed mu = 0(x),1(y),2(z),3(t).
GAMMA = np.array([
    # gamma_x
    [[0, 0, 0, _I],
     [0, 0, _I, 0],
     [0, -_I, 0, 0],
     [-_I, 0, 0, 0]],
    # gamma_y
    [[0, 0, 0, -1],
     [0, 0, 1, 0],
     [0, 1, 0, 0],
     [-1, 0, 0, 0]],
    # gamma_z
    [[0, 0, _I, 0],
     [0, 0, 0, -_I],
     [-_I, 0, 0, 0],
     [0, _I, 0, 0]],
    # gamma_t
    [[0, 0, 1, 0],
     [0, 0, 0, 1],
     [1, 0, 0, 0],
     [0, 1, 0, 0]],
], dtype=np.complex128)

#: gamma_5 = gamma_x gamma_y gamma_z gamma_t (diagonal in this basis).
GAMMA5 = np.diag([1.0, 1.0, -1.0, -1.0]).astype(np.complex128)


def spin_matrix_apply(backend, mat: np.ndarray, psi: np.ndarray) -> np.ndarray:
    """Dense 4x4 spin-matrix application via backend ops.

    ``psi`` has shape ``(osites, 4, 3, nlanes)``; the matrix acts on
    the spin axis.  Used by tests and the unoptimized operator paths.
    """
    out = np.zeros_like(psi)
    for i in range(4):
        for j in range(4):
            c = complex(mat[i, j])
            if c == 0:
                continue
            if c == 1:
                out[:, i] = backend.add(out[:, i], psi[:, j])
            elif c == -1:
                out[:, i] = backend.sub(out[:, i], psi[:, j])
            elif c == _I:
                out[:, i] = backend.add(out[:, i], backend.times_i(psi[:, j]))
            elif c == -_I:
                out[:, i] = backend.add(out[:, i],
                                        backend.times_minus_i(psi[:, j]))
            else:
                out[:, i] = backend.add(out[:, i],
                                        backend.scale(psi[:, j], c))
    return out


# ----------------------------------------------------------------------
# Half-spinor projection:  h = P^{±}_mu psi  (2 spin components)
#
# Derived from the GAMMA matrices above; each case uses only
# add/sub/times_i — Grid's spProjXp/spProjXm etc.
# ----------------------------------------------------------------------

def project(backend, psi: np.ndarray, mu: int, sign: int) -> np.ndarray:
    """``(1 + sign*gamma_mu) psi`` reduced to its 2 independent spin
    components; shape ``(osites, 2, 3, nlanes)``."""
    if sign not in (+1, -1):
        raise ValueError("sign must be +1 or -1")
    p0, p1, p2, p3 = psi[:, 0], psi[:, 1], psi[:, 2], psi[:, 3]
    ti, tmi = backend.times_i, backend.times_minus_i
    add, sub = backend.add, backend.sub
    if mu == 0:  # gamma_x
        if sign > 0:
            h0, h1 = add(p0, ti(p3)), add(p1, ti(p2))
        else:
            h0, h1 = sub(p0, ti(p3)), sub(p1, ti(p2))
    elif mu == 1:  # gamma_y
        if sign > 0:
            h0, h1 = sub(p0, p3), add(p1, p2)
        else:
            h0, h1 = add(p0, p3), sub(p1, p2)
    elif mu == 2:  # gamma_z
        if sign > 0:
            h0, h1 = add(p0, ti(p2)), add(p1, tmi(p3))
        else:
            h0, h1 = sub(p0, ti(p2)), sub(p1, tmi(p3))
    elif mu == 3:  # gamma_t
        if sign > 0:
            h0, h1 = add(p0, p2), add(p1, p3)
        else:
            h0, h1 = sub(p0, p2), sub(p1, p3)
    else:
        raise ValueError(f"no direction {mu}")
    return np.stack([h0, h1], axis=1)


def reconstruct(backend, h: np.ndarray, mu: int, sign: int) -> np.ndarray:
    """Rebuild the full 4-spinor from a projected half-spinor.

    The lower two spin components of ``(1 + sign*gamma_mu) psi`` are
    fixed linear images of the upper two.
    """
    if sign not in (+1, -1):
        raise ValueError("sign must be +1 or -1")
    h0, h1 = h[:, 0], h[:, 1]
    ti, tmi = backend.times_i, backend.times_minus_i
    neg = backend.neg
    if mu == 0:
        # (1+gx): psi2 = -i h1, psi3 = -i h0 ; (1-gx): +i
        f = tmi if sign > 0 else ti
        p2, p3 = f(h1), f(h0)
    elif mu == 1:
        # (1+gy): psi2 = h1, psi3 = -h0 ; (1-gy): psi2 = -h1, psi3 = h0
        if sign > 0:
            p2, p3 = h1, neg(h0)
        else:
            p2, p3 = neg(h1), h0
    elif mu == 2:
        # (1+gz): psi2 = -i h0, psi3 = +i h1 ; (1-gz): opposite
        if sign > 0:
            p2, p3 = tmi(h0), ti(h1)
        else:
            p2, p3 = ti(h0), tmi(h1)
    elif mu == 3:
        # (1+gt): psi2 = h0, psi3 = h1 ; (1-gt): negated
        if sign > 0:
            p2, p3 = h0, h1
        else:
            p2, p3 = neg(h0), neg(h1)
    else:
        raise ValueError(f"no direction {mu}")
    return np.stack([h0, h1, p2, p3], axis=1)


def gamma5_apply(backend, psi: np.ndarray) -> np.ndarray:
    """``gamma_5 psi`` (diagonal in the chiral basis)."""
    return np.stack(
        [psi[:, 0], psi[:, 1], backend.neg(psi[:, 2]), backend.neg(psi[:, 3])],
        axis=1,
    )

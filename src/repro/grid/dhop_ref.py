"""Site-by-site scalar reference implementation of the Wilson operator.

A deliberately *independent* oracle: dense gamma matrices, canonical
(site-ordered) arrays, ``np.roll`` neighbours — no SIMD layout, no
backend, no shared code with :mod:`repro.grid.wilson`.  Agreement
between the two implementations validates the entire vectorized stack
(layout, cshift lane permutes, projection tricks, backend arithmetic).
"""

from __future__ import annotations

import numpy as np

from repro.grid.gamma import GAMMA

_ID4 = np.eye(4, dtype=np.complex128)


def _roll_sites(field: np.ndarray, dims, mu: int, shift: int) -> np.ndarray:
    """Shift a canonical (lsites, ...) field: out(x) = in(x + shift e_mu).

    Canonical order is lexicographic with dimension 0 fastest, so the
    site axis reshapes to (reversed dims) with dimension mu at axis
    ``ndim-1-mu``.
    """
    ndim = len(dims)
    shaped = field.reshape(tuple(reversed(dims)) + field.shape[1:])
    rolled = np.roll(shaped, -shift, axis=ndim - 1 - mu)
    return rolled.reshape(field.shape)


def dhop_reference(u_canonical: list, psi_canonical: np.ndarray,
                   dims) -> np.ndarray:
    """Eq. (1) on canonical arrays.

    Parameters
    ----------
    u_canonical:
        Per-direction gauge fields, each ``(lsites, 3, 3)``.
    psi_canonical:
        Spinor field ``(lsites, 4, 3)``.
    dims:
        Lattice dimensions (dimension 0 fastest).
    """
    psi = np.asarray(psi_canonical, dtype=np.complex128)
    out = np.zeros_like(psi)
    ndim = len(dims)
    for mu in range(ndim):
        u = np.asarray(u_canonical[mu], dtype=np.complex128)
        p_plus = _ID4 + GAMMA[mu]
        p_minus = _ID4 - GAMMA[mu]
        # Forward: U_mu(x) (1+gamma_mu) psi(x+mu)
        psi_fwd = _roll_sites(psi, dims, mu, +1)
        proj = np.einsum("ij,sjc->sic", p_plus, psi_fwd)
        out += np.einsum("sab,sib->sia", u, proj)
        # Backward: U_mu(x-mu)^+ (1-gamma_mu) psi(x-mu)
        psi_bwd = _roll_sites(psi, dims, mu, -1)
        u_bwd = _roll_sites(u, dims, mu, -1)
        proj = np.einsum("ij,sjc->sic", p_minus, psi_bwd)
        out += np.einsum("sba,sib->sia", u_bwd.conj(), proj)
    return out


def wilson_m_reference(u_canonical: list, psi_canonical: np.ndarray,
                       dims, mass: float) -> np.ndarray:
    """``M psi = (4 + m) psi - (1/2) D_h psi`` on canonical arrays."""
    return ((4.0 + mass) * np.asarray(psi_canonical, dtype=np.complex128)
            - 0.5 * dhop_reference(u_canonical, psi_canonical, dims))


def dense_wilson_matrix(u_canonical: list, dims, mass: float) -> np.ndarray:
    """The full ``(12V, 12V)`` Wilson matrix, built column by column.

    Only feasible for tiny lattices; used by tests to check spectra
    and gamma5-hermiticity at the matrix level.
    """
    vol = int(np.prod(dims))
    n = vol * 12
    mat = np.zeros((n, n), dtype=np.complex128)
    for col in range(n):
        e = np.zeros(n, dtype=np.complex128)
        e[col] = 1.0
        psi = e.reshape(vol, 4, 3)
        mat[:, col] = wilson_m_reference(u_canonical, psi, dims, mass).ravel()
    return mat

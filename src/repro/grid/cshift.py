"""Circular shifts on SIMD-decomposed lattices.

The subtlety the virtual-node layout introduces (Section II-B): a
nearest-neighbour access usually lands at a different *outer site* in
the same lane, but when it crosses a virtual-node block boundary the
data lives in a *different lane* — requiring one of the machine-specific
lane permutations (Section II-C).  Concretely, for a shift by ``s``
along dimension ``d`` with block extent ``L = odims[d]`` and lane
extent ``S = simd_layout[d]``, outer sites split into groups by
``k = (o + s) // L``: group *k* sources from outer coordinate
``(o + s) mod L`` with its lanes rotated by ``k`` in dimension ``d``'s
lane sub-axis.

When ``S == 2`` (Grid's common case) and the rotation is by one, the
lane rotation *is* the block-swap ``Permute<level>`` and is routed
through the backend, so the instruction shows up in the machine-specific
instruction counts; other rotations use the general extract/merge path
(as Grid's ``Cshift_comms_simd`` does).

For distributed lattices, an output slot (outer ``o`` in group ``k``,
lane with dim-coordinate ``v``) sources across the rank boundary
exactly when ``v + k >= S`` — the wrap is per *lane*, not per group.
``cshift_local`` therefore accepts the +dim neighbour rank's field and
blends it in lane-wise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.plan import register_plan_host
from repro.engine.policy import current_policy
from repro.grid.coordinates import indices_of
from repro.grid.lattice import Lattice
from repro.perf.counters import counters as _perf_counters


def _lane_rotation_map(grid, dim: int, k: int) -> np.ndarray:
    """Lane map for a rotation by ``k`` virtual nodes along ``dim``:
    output lane sources from the lane whose dim-coordinate is
    ``(v + k) mod S``."""
    vc = grid.vcoor_table()
    vc[:, dim] = (vc[:, dim] + k) % grid.simd_layout[dim]
    return indices_of(vc, grid.simd_layout)


def _apply_lane_rotation(lat_data: np.ndarray, grid, dim: int, k: int) -> np.ndarray:
    """Rotate lanes by ``k`` virtual nodes along ``dim``."""
    S = grid.simd_layout[dim]
    k %= S
    if k == 0:
        return lat_data
    if S == 2:
        # Block permute — the machine-specific op, counted by the backend.
        return grid.backend.permute(lat_data, grid.permute_level(dim))
    # General rotation: Grid's extract/merge path.
    src = _lane_rotation_map(grid, dim, k)
    return np.take(lat_data, src, axis=-1)


def _shift_groups(grid, dim: int, s: int) -> list:
    """The gather recipe for a shift: per virtual-node group ``k``,
    the output sites, the source sites, and the boundary-lane mask.

    Depends only on (grid geometry, dim, s) — never on field data — so
    the performance engine memoizes it per grid instance; the gauge
    links and every CG iteration replay the same handful of shifts.
    """
    L = grid.odims[dim]
    S = grid.simd_layout[dim]
    ocoor = grid.ocoor_table()
    o_d = ocoor[:, dim]
    vc_d = grid.vcoor_table()[:, dim]
    groups = []
    for k in np.unique((o_d + s) // L):
        k = int(k)
        sel = np.nonzero((o_d + s) // L == k)[0]
        src_ocoor = ocoor[sel].copy()
        src_ocoor[:, dim] = (o_d[sel] + s) - k * L
        src_osites = indices_of(src_ocoor, grid.odims)
        # Output lane (dim-coordinate v) crossed the rank boundary
        # iff v + k >= S.
        groups.append((k, sel, src_osites, (vc_d + k) >= S))
    return groups


def _as_range(idx: np.ndarray):
    """``idx`` as a :class:`slice` when it is a contiguous ascending
    range (a plain-slice index is a view, not a gather copy)."""
    if len(idx) and idx[-1] - idx[0] == len(idx) - 1 \
            and np.array_equal(idx, np.arange(idx[0], idx[-1] + 1)):
        return slice(int(idx[0]), int(idx[-1]) + 1)
    return idx


def _shift_plan(grid, dim: int, s: int) -> list:
    """Memoized :func:`_shift_groups` (caches on), per grid instance.

    Index arrays that turn out to be contiguous ranges (the
    slowest-varying dimension always produces these) are stored as
    slices, turning the gather+scatter into a view plus one copy.
    """
    plans = grid.__dict__.get("_cshift_plans")
    if plans is None:
        plans = grid.__dict__.setdefault("_cshift_plans", {})
        register_plan_host(grid)
    plan = plans.get((dim, s))
    if plan is not None:
        _perf_counters().bump("cshift_plan_hits")
        return plan
    _perf_counters().bump("cshift_plan_misses")
    plan = [(k, _as_range(sel), _as_range(src), nbr)
            for k, sel, src, nbr in _shift_groups(grid, dim, s)]
    plans[(dim, s)] = plan
    return plan


def cshift_local(lat: Lattice, dim: int, shift: int,
                 boundary_from: Optional[np.ndarray] = None) -> Lattice:
    """``out(x) = in(x + shift * e_dim)`` with periodic wrap.

    ``boundary_from`` (used by the distributed layer) is the full local
    field of the **+dim neighbour rank**; slots whose source crosses
    the local boundary gather from it instead of wrapping around.
    (Shifts are normalised into ``[0, ldims[dim])``, so only the +dim
    neighbour is ever needed.)
    """
    grid = lat.grid
    if not 0 <= dim < grid.ndim:
        raise ValueError(f"no dimension {dim} in {grid.ndim}-d grid")
    ld = grid.ldims[dim]
    s = shift % ld
    if s == 0 and boundary_from is None:
        out = lat.new_like()
        out.data = lat.data.copy()
        return out

    if current_policy().caches_active:
        groups = _shift_plan(grid, dim, s)
        # The groups partition the outer-site axis, so every slot is
        # written below — skip the zero fill.
        out = Lattice(grid, lat.tensor_shape,
                      np.empty(lat.data.shape, dtype=lat.data.dtype))
    else:
        groups = _shift_groups(grid, dim, s)
        out = lat.new_like()

    for k, sel, src_osites, nbr_lanes in groups:
        rotated = _apply_lane_rotation(lat.data[src_osites], grid, dim, k)
        if boundary_from is not None and k > 0:
            rotated_nbr = _apply_lane_rotation(
                boundary_from[src_osites], grid, dim, k
            )
            rotated = np.where(nbr_lanes, rotated_nbr, rotated)
        out.data[sel] = rotated
    return out


def cshift(lat: Lattice, dim: int, shift: int) -> Lattice:
    """Periodic circular shift of a single-rank lattice."""
    return cshift_local(lat, dim, shift)

"""Circular shifts on SIMD-decomposed lattices.

The subtlety the virtual-node layout introduces (Section II-B): a
nearest-neighbour access usually lands at a different *outer site* in
the same lane, but when it crosses a virtual-node block boundary the
data lives in a *different lane* — requiring one of the machine-specific
lane permutations (Section II-C).  Concretely, for a shift by ``s``
along dimension ``d`` with block extent ``L = odims[d]`` and lane
extent ``S = simd_layout[d]``, outer sites split into groups by
``k = (o + s) // L``: group *k* sources from outer coordinate
``(o + s) mod L`` with its lanes rotated by ``k`` in dimension ``d``'s
lane sub-axis.

When ``S == 2`` (Grid's common case) and the rotation is by one, the
lane rotation *is* the block-swap ``Permute<level>`` and is routed
through the backend, so the instruction shows up in the machine-specific
instruction counts; other rotations use the general extract/merge path
(as Grid's ``Cshift_comms_simd`` does).

For distributed lattices, an output slot (outer ``o`` in group ``k``,
lane with dim-coordinate ``v``) sources across the rank boundary
exactly when ``v + k >= S`` — the wrap is per *lane*, not per group.
``cshift_local`` therefore accepts the +dim neighbour rank's field and
blends it in lane-wise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.grid.coordinates import indices_of
from repro.grid.lattice import Lattice


def _lane_rotation_map(grid, dim: int, k: int) -> np.ndarray:
    """Lane map for a rotation by ``k`` virtual nodes along ``dim``:
    output lane sources from the lane whose dim-coordinate is
    ``(v + k) mod S``."""
    vc = grid.vcoor_table()
    vc[:, dim] = (vc[:, dim] + k) % grid.simd_layout[dim]
    return indices_of(vc, grid.simd_layout)


def _apply_lane_rotation(lat_data: np.ndarray, grid, dim: int, k: int) -> np.ndarray:
    """Rotate lanes by ``k`` virtual nodes along ``dim``."""
    S = grid.simd_layout[dim]
    k %= S
    if k == 0:
        return lat_data
    if S == 2:
        # Block permute — the machine-specific op, counted by the backend.
        return grid.backend.permute(lat_data, grid.permute_level(dim))
    # General rotation: Grid's extract/merge path.
    src = _lane_rotation_map(grid, dim, k)
    return np.take(lat_data, src, axis=-1)


def cshift_local(lat: Lattice, dim: int, shift: int,
                 boundary_from: Optional[np.ndarray] = None) -> Lattice:
    """``out(x) = in(x + shift * e_dim)`` with periodic wrap.

    ``boundary_from`` (used by the distributed layer) is the full local
    field of the **+dim neighbour rank**; slots whose source crosses
    the local boundary gather from it instead of wrapping around.
    (Shifts are normalised into ``[0, ldims[dim])``, so only the +dim
    neighbour is ever needed.)
    """
    grid = lat.grid
    if not 0 <= dim < grid.ndim:
        raise ValueError(f"no dimension {dim} in {grid.ndim}-d grid")
    L = grid.odims[dim]
    S = grid.simd_layout[dim]
    ld = grid.ldims[dim]
    s = shift % ld
    out = lat.new_like()
    if s == 0 and boundary_from is None:
        out.data = lat.data.copy()
        return out

    ocoor = grid.ocoor_table()
    o_d = ocoor[:, dim]
    vc_d = grid.vcoor_table()[:, dim]

    for k in np.unique((o_d + s) // L):
        k = int(k)
        sel = np.nonzero((o_d + s) // L == k)[0]
        src_ocoor = ocoor[sel].copy()
        src_ocoor[:, dim] = (o_d[sel] + s) - k * L
        src_osites = indices_of(src_ocoor, grid.odims)
        rotated = _apply_lane_rotation(lat.data[src_osites], grid, dim, k)
        if boundary_from is not None and k > 0:
            rotated_nbr = _apply_lane_rotation(
                boundary_from[src_osites], grid, dim, k
            )
            # Output lane (dim-coordinate v) crossed the rank boundary
            # iff v + k >= S.
            nbr_lanes = (vc_d + k) >= S
            rotated = np.where(nbr_lanes, rotated_nbr, rotated)
        out.data[sel] = rotated
    return out


def cshift(lat: Lattice, dim: int, shift: int) -> Lattice:
    """Periodic circular shift of a single-rank lattice."""
    return cshift_local(lat, dim, shift)

"""Multi-RHS batched spinor fields.

Grid amortises everything it can across right-hand sides: one halo
exchange, one set of neighbour gathers and one pass over the gauge
links serve a whole batch of sources (propagator workloads solve 12+
systems on the same configuration).  This module is that batch type
for the reproduction: a *batch* is an ordinary :class:`Lattice` /
:class:`DistributedLattice` whose tensor is ``(nrhs, 4, 3)`` — column
``j`` of the batch is bit-for-bit the single-RHS field ``j``, stored
with the batch axis ahead of spin/colour so the lane axis stays
innermost and every per-column view is a plain stride.

The Wilson operators dispatch on this tensor shape (see
:meth:`repro.grid.wilson.WilsonDirac.dhop` and the distributed
equivalent): gathers and halo messages are issued once per sweep, the
arithmetic loops over column views — so ``nrhs`` right-hand sides cost
exactly 1× the halo messages of one (asserted by the `halo_messages`
benchmark).  The per-column helpers below give the block solver its
column-wise scalar recursions.
"""

from __future__ import annotations

import numpy as np

from repro.grid.comms import DistributedLattice
from repro.grid.lattice import Lattice
from repro.grid.wilson import is_spinor_batch


def nrhs(batch) -> int:
    """Batch width of a stacked field."""
    if not is_spinor_batch(batch.tensor_shape):
        raise ValueError(f"not a spinor batch: tensor {batch.tensor_shape}")
    return batch.tensor_shape[0]


def stack_rhs(fields):
    """Stack single-RHS spinor fields into one batch field.

    All fields must share the grid (and, distributed, the comms
    config).  Column ``j`` of the result equals ``fields[j]``
    bit-for-bit.
    """
    if not fields:
        raise ValueError("need at least one field to stack")
    first = fields[0]
    n = len(fields)
    if isinstance(first, DistributedLattice):
        out = first.clone_empty(tensor_shape=(n,) + first.tensor_shape)
        for r in range(first.ranks.nranks):
            data = np.stack([f.locals[r].data for f in fields], axis=1)
            out.locals.append(Lattice(out.grids[r], out.tensor_shape, data))
        return out
    data = np.stack([f.data for f in fields], axis=1)
    return Lattice(first.grid, (n,) + first.tensor_shape, data)


def split_rhs(batch):
    """Inverse of :func:`stack_rhs`: independent single-RHS copies."""
    n = nrhs(batch)
    single = batch.tensor_shape[1:]
    if isinstance(batch, DistributedLattice):
        outs = []
        for j in range(n):
            f = batch.clone_empty(tensor_shape=single)
            for r in range(batch.ranks.nranks):
                f.locals.append(Lattice(
                    f.grids[r], single,
                    np.ascontiguousarray(batch.locals[r].data[:, j]),
                ))
            outs.append(f)
        return outs
    return [Lattice(batch.grid, single,
                    np.ascontiguousarray(batch.data[:, j]))
            for j in range(n)]


def batch_copy(batch):
    """A deep copy of a batch (or any) field."""
    if isinstance(batch, DistributedLattice):
        out = batch.clone_empty()
        out.locals = [lat.copy() for lat in batch.locals]
        return out
    return batch.copy()


def batch_zero_like(batch):
    """A zero field with ``batch``'s geometry and tensor."""
    if isinstance(batch, DistributedLattice):
        out = batch.clone_empty()
        out.locals = [lat.new_like() for lat in batch.locals]
        return out
    return batch.new_like()


# ----------------------------------------------------------------------
# Per-column reductions and updates (the block solver's kernels)
# ----------------------------------------------------------------------
def _col_blocks(batch, j: int):
    """The column-``j`` data blocks (one per rank)."""
    if isinstance(batch, DistributedLattice):
        return [lat.data[:, j] for lat in batch.locals]
    return [batch.data[:, j]]


def col_inner(a, b, j: int) -> complex:
    """``<a_j, b_j>`` — rank-local dots + simulated allreduce."""
    return sum(complex(np.vdot(x, y))
               for x, y in zip(_col_blocks(a, j), _col_blocks(b, j)))


def col_norm2(a, j: int) -> float:
    return float(col_inner(a, a, j).real)


def col_axpy(y, alpha, x, j: int) -> None:
    """``y_j += alpha * x_j`` in place (other columns untouched)."""
    for yb, xb in zip(_col_blocks(y, j), _col_blocks(x, j)):
        yb += alpha * xb


def col_xpby(y, x, beta, j: int) -> None:
    """``y_j = x_j + beta * y_j`` in place (the CG direction update)."""
    for yb, xb in zip(_col_blocks(y, j), _col_blocks(x, j)):
        yb[...] = xb + beta * yb


def col_copy(dst, src, j: int) -> None:
    """``dst_j = src_j`` in place."""
    for db, sb in zip(_col_blocks(dst, j), _col_blocks(src, j)):
        db[...] = sb

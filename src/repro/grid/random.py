"""Deterministic, layout-independent random field generation.

Fields are drawn in *canonical global site order* and then scattered
into whatever (SIMD layout x rank decomposition) the target grid uses.
Consequence: the same seed produces the *same physics* on every
backend, vector length and rank count — the property all
layout-equivalence and verification tests (Section V-D style) build on.
"""

from __future__ import annotations

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.lattice import Lattice
from repro.grid.pauli import random_su3


def global_gaussian_spinor(gdims, seed: int) -> np.ndarray:
    """Canonical global spinor field ``(gsites, 4, 3)``."""
    gsites = int(np.prod(gdims))
    rng = np.random.default_rng(seed)
    re = rng.normal(size=(gsites, 4, 3))
    im = rng.normal(size=(gsites, 4, 3))
    return (re + 1j * im).astype(np.complex128)


def global_su3_links(gdims, seed: int, spread: float = 1.0) -> list:
    """Canonical global gauge links: 4 arrays ``(gsites, 3, 3)``."""
    gsites = int(np.prod(gdims))
    rng = np.random.default_rng(seed)
    links = []
    for _mu in range(len(gdims)):
        u = np.empty((gsites, 3, 3), dtype=np.complex128)
        for s in range(gsites):
            u[s] = random_su3(rng, spread)
        links.append(u)
    return links


def _local_slice(grid: GridCartesian, rank_coor, global_field: np.ndarray) -> np.ndarray:
    """Extract this rank's canonical sites from a canonical global field."""
    from repro.grid.coordinates import coordinate_table, indices_of

    local_coors = coordinate_table(grid.ldims)
    offs = np.array([rc * ld for rc, ld in zip(rank_coor, grid.ldims)])
    global_coors = local_coors + offs[None, :]
    idx = indices_of(global_coors, grid.gdims)
    return global_field[idx]


def random_spinor(grid: GridCartesian, seed: int = 7,
                  rank_coor=None) -> Lattice:
    """A Gaussian spinor lattice, identical physics for every layout."""
    if rank_coor is None:
        rank_coor = [0] * grid.ndim
    glob = global_gaussian_spinor(grid.gdims, seed)
    lat = Lattice(grid, (4, 3))
    lat.from_canonical(_local_slice(grid, rank_coor, glob))
    return lat


def random_gauge(grid: GridCartesian, seed: int = 11, spread: float = 1.0,
                 rank_coor=None) -> list:
    """Random SU(3) gauge links, identical physics for every layout."""
    if rank_coor is None:
        rank_coor = [0] * grid.ndim
    glob = global_su3_links(grid.gdims, seed, spread)
    links = []
    for mu in range(grid.ndim):
        lat = Lattice(grid, (3, 3))
        lat.from_canonical(_local_slice(grid, rank_coor, glob[mu]))
        links.append(lat)
    return links

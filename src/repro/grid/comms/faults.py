"""The fault-hook seam between transports and the resilience layer.

Transports never import :mod:`repro.resilience`; they see only the
duck-typed hook surface defined here: ``deliver(payload, message,
attempt, stats) -> list[np.ndarray]`` — zero copies is a drop, one is
a delivery (possibly corrupted or truncated), several are duplicates.
:class:`repro.resilience.inject.CommsFaultInjector` implements it; so
does the :class:`NullFaultHook` perfect link.

:func:`adapt_fault_hook` normalises whatever the policy or constructor
handed over (``None``, an injector, anything with ``deliver``) into
that surface, and is what the shared-memory rank workers use on the
injector pickled across the process boundary — the resilience layer's
drop/corrupt/retry machinery applied, unchanged, to real wire traffic.
"""

from __future__ import annotations

from typing import Optional


class NullFaultHook:
    """The perfect link: every payload is delivered verbatim."""

    def deliver(self, payload, message: int, attempt: int,
                stats) -> list:
        return [payload]


def adapt_fault_hook(injector) -> Optional[object]:
    """Normalise ``injector`` to the fault-hook surface (or ``None``).

    ``None`` stays ``None`` — the wire keeps its pristine fast path —
    and anything exposing ``deliver`` passes through untouched.  A
    non-conforming object fails loudly here, at the seam, instead of
    deep inside a rank worker's retry loop.
    """
    if injector is None:
        return None
    if not callable(getattr(injector, "deliver", None)):
        raise TypeError(
            "comms fault injector must expose deliver(payload, "
            f"message, attempt, stats); got {type(injector)!r}"
        )
    return injector

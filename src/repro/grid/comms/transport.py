"""The Transport protocol: the pluggable wire under the distributed
lattice.

A transport owns the four seams the distributed operators consume —
nothing else touches rank internals:

* ``post_halo(dist, src_rank, dim) -> HaloHandle`` — start the +dim
  neighbour-field exchange for one rank, performing every
  deterministic wire step (accounting, compression, fault injection,
  checksum/retry) immediately;
* ``wait(handle)`` / ``drain()`` — completion, through the shared
  :class:`~repro.grid.comms.queue.AsyncCommsQueue` semantics;
* ``run_dhop(op, psi, plan)`` — the whole-sweep hook: a backend that
  executes rank sweeps itself (the shared-memory rank runtime) returns
  the finished field; the in-process reference returns ``None`` and
  the operator computes in the calling process;
* ``reset()`` / ``close()`` — counter hygiene and runtime teardown.

:class:`InProcessTransport` is the bit-identical reference: the
historical simulated exchange, byte-for-byte.  Every other backend is
measured against it.  Selection is a policy knob
(``engine.scope(transport="shmem")``) resolved into the
:class:`~repro.engine.plan.KernelPlan` like every other dispatch
decision; :func:`make_transport` maps the knob value to a backend.
"""

from __future__ import annotations

import sys

from repro.grid.comms.queue import AsyncCommsQueue, HaloHandle, LatencyModel
from repro.grid.comms.wire import exchange_field

#: Legal ``ExecutionPolicy.transport`` values (mirrored by
#: :attr:`repro.engine.policy.ExecutionPolicy.TRANSPORTS`).
TRANSPORTS = ("in-process", "shmem")


class Transport:
    """Base transport: in-process wire semantics over an async queue.

    Subclasses that move the sweep elsewhere override ``run_dhop``
    (and ``close``); the halo/wire surface below is shared — the
    shared-memory backend, for instance, still routes parent-side
    shifts (gauge-link gathers, observables) through this exact
    reference wire.
    """

    #: The policy-knob value this transport answers to.
    name = "in-process"

    def __init__(self, latency: LatencyModel = None) -> None:
        self.queue = AsyncCommsQueue(latency)

    # -- halo surface ---------------------------------------------------
    def post_halo(self, dist, src_rank: int, dim: int) -> HaloHandle:
        """Post the +dim neighbour's field exchange for ``src_rank`` to
        the in-flight queue.  Volume is accounted as the genuine halo —
        one boundary slab — although the simulation hands over the full
        array for simplicity.

        Every deterministic step of the wire path — accounting,
        compression, fault injection, checksum verification, retry —
        runs *here at post time*; the latency model delays only the
        availability of the (already final) received data.  That is
        what makes the overlapped exchange bit-identical to the
        ordered one by construction.
        """
        nbr = dist.ranks.neighbour(src_rank, dim, +1)
        data = dist.locals[nbr].data
        grid = dist.grids[src_rank]
        n_complex, nbytes = dist._halo_sizes_for(dim)
        dist.stats.record(n_complex, dist.compress_halos, grid.dtype)
        out = exchange_field(
            data, compress=dist.compress_halos,
            checksum=dist.checksum_halos, injector=dist.comms_faults,
            stats=dist.stats, max_retries=dist.max_retries,
            dtype=grid.dtype,
        )
        return self.queue.post(out, nbytes, f"r{src_rank}+d{dim}")

    def wait(self, handle: HaloHandle):
        """Block until ``handle`` lands; returns the received data."""
        return self.queue.wait(handle)

    def drain(self) -> None:
        self.queue.drain()

    # -- whole-sweep hook -----------------------------------------------
    def run_dhop(self, op, psi, plan):
        """Execute a whole distributed hopping-term sweep, or return
        ``None`` to let the caller compute in-process (the reference
        behaviour)."""
        return None

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Zero queue counters and discard in-flight halos (between
        benchmark repetitions / campaign runs)."""
        self.queue.reset()

    def close(self) -> None:
        """Release any backend runtime (processes, shared segments).
        The reference transport holds none."""


class InProcessTransport(Transport):
    """The bit-identical reference wire (see module docstring)."""

    name = "in-process"


def make_transport(kind, latency: LatencyModel = None) -> Transport:
    """Resolve a policy knob value (or a ready transport) to a
    :class:`Transport` instance."""
    if isinstance(kind, Transport):
        return kind
    if kind is None or kind == "in-process":
        return InProcessTransport(latency)
    if kind == "shmem":
        from repro.grid.comms.shmem import SharedMemoryTransport

        return SharedMemoryTransport(latency)
    raise ValueError(
        f"transport must be one of {TRANSPORTS} or a Transport "
        f"instance, got {kind!r}"
    )


def shutdown_transport_runtimes() -> dict:
    """Tear down every live shared-memory rank runtime (workers joined,
    segments unlinked).  Returns ``{"runtimes": n, "segments": m}``.

    Lazy by construction: if the shmem backend was never imported there
    is nothing to shut down and nothing is imported now — so
    ``engine.reset_all`` can call this unconditionally without paying
    the :mod:`multiprocessing` import.
    """
    mod = sys.modules.get("repro.grid.comms.shmem")
    if mod is None:
        return {"runtimes": 0, "segments": 0}
    return mod.shutdown_runtimes()

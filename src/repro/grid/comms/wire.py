"""The byte-level wire: encode, transmit-with-retry, decode.

This is the self-healing link layer every transport shares.  A halo
message is (optionally) fp16-compressed into its wire image
(:func:`encode_wire`), pushed through the possibly faulty link
(:func:`transmit` — CRC-32 detection and bounded exponential-backoff
retransmission when ``checksum`` is armed, silent degradation when it
is not), and decoded back to working precision (:func:`decode_wire`).

The functions are transport-agnostic pure byte plumbing: the
in-process reference transport runs them at post time in the parent;
the shared-memory transport runs the *same* functions inside each rank
worker on the frames that actually crossed the process boundary — so
drop/corrupt/truncate/duplicate faults and the retry protocol behave
identically on a real parallel wire.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.grid import compression


class HaloExchangeError(RuntimeError):
    """A halo message could not be delivered intact within the retry
    budget (detected, but unrecovered)."""


def transmit(payload: np.ndarray, *, stats, injector, checksum: bool,
             max_retries: int, msg_id: int) -> np.ndarray:
    """Send one message through the (possibly faulty) link.

    ``payload`` is the flat uint8 wire image.  Returns the received
    bytes.  With checksums enabled a bad delivery is detected and
    retransmitted (bounded, exponential backoff); without them the
    receiver has no way to know and degrades silently.  ``stats`` is
    the :class:`~repro.grid.comms.lattice.CommsStats` block charged
    with the protocol-visible events; ``injector`` the duck-typed
    fault hook (``deliver(payload, message, attempt, stats) ->
    list[np.ndarray]``), or ``None`` for a perfect link.
    """
    if injector is None and not checksum:
        return payload
    for attempt in range(max_retries + 1):
        if injector is None:
            copies = [payload]
        else:
            copies = injector.deliver(payload, message=msg_id,
                                      attempt=attempt, stats=stats)
        if not checksum:
            # No detection: take the first delivery at face value.
            if not copies:
                return np.zeros_like(payload)  # "timeout" -> zeros
            got = copies[0]
            if got.size < payload.size:  # truncated -> zero-padded
                got = np.concatenate(
                    [got, np.zeros(payload.size - got.size,
                                   dtype=np.uint8)]
                )
            return got[:payload.size]
        # Checksummed path: CRC over the intact payload travels in
        # the (never-corrupted) message envelope.
        crc = zlib.crc32(payload.tobytes())
        good = None
        for i, got in enumerate(copies):
            ok = (got.size == payload.size
                  and zlib.crc32(got.tobytes()) == crc)
            if ok and good is None:
                good = got
            elif i > 0:
                stats.duplicates_discarded += 1
        if good is not None:
            if attempt > 0:
                stats.recovered_messages += 1
            return good
        if not copies:
            stats.detected_drops += 1
        else:
            stats.detected_corruptions += 1
        if attempt < max_retries:
            stats.retries += 1
            stats.backoff_units += 1 << attempt
    stats.unrecovered_failures += 1
    raise HaloExchangeError(
        f"halo message {msg_id} undeliverable after "
        f"{max_retries} retries"
    )


def encode_wire(data: np.ndarray, compress: bool) -> np.ndarray:
    """The flat uint8 wire image of a complex field (fp16-interleaved
    when ``compress``, raw bytes otherwise)."""
    if compress:
        wire16 = compression.compress_complex(data)
        return np.ascontiguousarray(wire16).view(np.uint8).ravel()
    return np.ascontiguousarray(data).view(np.uint8).ravel()


def decode_wire(received: np.ndarray, compress: bool, dtype,
                shape) -> np.ndarray:
    """Invert :func:`encode_wire` on the received bytes (always a
    fresh array — the wire owns its buffers)."""
    if compress:
        return compression.decompress_complex(
            received.copy().view(np.float16), dtype
        ).reshape(shape)
    return received.copy().view(dtype).reshape(shape)


def exchange_field(data: np.ndarray, *, compress: bool, checksum: bool,
                   injector, stats, max_retries: int, dtype) -> np.ndarray:
    """One full wire transaction on a field: encode, transmit, decode.

    The caller has already charged ``stats.record`` for this message
    (the 0-based ordinal the injector schedules against is therefore
    ``stats.messages - 1``).  With a pristine uncompressed link this
    is the zero-copy fast path: the field itself is the "received"
    array, exactly as the historical in-process exchange behaved.
    """
    pristine = injector is None
    msg_id = stats.messages - 1
    if not compress and pristine and not checksum:
        return data
    wire = encode_wire(data, compress)
    if compress and pristine and not checksum:
        received = wire
    else:
        received = transmit(wire, stats=stats, injector=injector,
                            checksum=checksum, max_retries=max_retries,
                            msg_id=msg_id)
    return decode_wire(received, compress, dtype, data.shape)

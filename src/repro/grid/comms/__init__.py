"""Rank-level domain decomposition behind a pluggable transport.

Layering (each module imports only downward):

* :mod:`~repro.grid.comms.queue` — async in-flight halo queue +
  latency model (monotonic clock, deterministic drain order);
* :mod:`~repro.grid.comms.wire` — byte-level codec: fp16 wire images,
  CRC-32 detection, bounded-backoff retransmission;
* :mod:`~repro.grid.comms.faults` — the duck-typed fault-hook seam to
  the resilience layer;
* :mod:`~repro.grid.comms.transport` — the :class:`Transport`
  protocol and the bit-identical :class:`InProcessTransport`
  reference;
* :mod:`~repro.grid.comms.shmem` — the :class:`SharedMemoryTransport`
  rank runtime on ``multiprocessing`` (imported lazily, only when the
  ``shmem`` backend is actually selected);
* :mod:`~repro.grid.comms.lattice` — :class:`DistributedLattice`
  itself: geometry, scatter/gather, distributed shift, arithmetic.

This package is the drop-in successor of the old monolithic
``repro.grid.comms`` module: every public (and test-visible) name is
re-exported here.
"""

from repro.grid.comms.faults import NullFaultHook, adapt_fault_hook
from repro.grid.comms.lattice import (
    _LIVE_COMMS,
    _collect_comms_metrics,
    CommsStats,
    DistributedLattice,
    RankGeometry,
    invalidate_comms_plans,
    reset_all_comms,
)
from repro.grid.comms.queue import AsyncCommsQueue, HaloHandle, LatencyModel
from repro.grid.comms.transport import (
    TRANSPORTS,
    InProcessTransport,
    Transport,
    make_transport,
    shutdown_transport_runtimes,
)
from repro.grid.comms.wire import (
    HaloExchangeError,
    decode_wire,
    encode_wire,
    exchange_field,
    transmit,
)

__all__ = [
    "AsyncCommsQueue",
    "CommsStats",
    "DistributedLattice",
    "HaloExchangeError",
    "HaloHandle",
    "InProcessTransport",
    "LatencyModel",
    "NullFaultHook",
    "RankGeometry",
    "TRANSPORTS",
    "Transport",
    "adapt_fault_hook",
    "decode_wire",
    "encode_wire",
    "exchange_field",
    "invalidate_comms_plans",
    "make_transport",
    "reset_all_comms",
    "shutdown_transport_runtimes",
    "transmit",
    "_LIVE_COMMS",
    "_collect_comms_metrics",
]

"""SharedMemoryTransport: the rank runtime on ``multiprocessing``.

The first *real* transport backend: each simulated rank becomes an OS
process, lattice shards live in ``multiprocessing.shared_memory``
segments, and halo traffic crosses an actual process boundary through
per-edge single-slot mailboxes (one shared segment + a filled/empty
semaphore pair per directed edge ``(dst_rank, mu, kind)``).

Protocol (command-lockstep)
---------------------------
The parent drives every sweep as one synchronous command round:

1. parent writes each rank's ``psi`` shard (and, when the operator
   changed, its gauge-link shards) into that rank's segments, then
   sends one ``dhop`` command per worker over its pipe;
2. every worker first *posts* its own raw field into the mailboxes of
   both ``mu``-neighbours (for every ``mu``), then *receives* its two
   neighbour fields per ``mu`` — all sends precede all receives and
   each mailbox is written exactly once per command, so the round is
   deadlock-free by construction;
3. each worker runs the rank-local hopping sweep exactly as the
   in-process reference does — :func:`~repro.grid.cshift.cshift_local`
   with the neighbour field as the boundary, fused or layered
   accumulation in ascending-``mu``, +1-then-−1 order — and writes its
   ``out`` shard;
4. workers reply with their local :class:`~repro.grid.comms.lattice.
   CommsStats` and how long they blocked on halo arrival; the parent
   merges stats, feeds the PR 5 halo-wait histograms, and only then
   may start the next command — which is what guarantees every mailbox
   is empty again at the start of each round.

Bit-identity
------------
The mailboxes carry **raw, lossless** fields — the analogue of the
in-process path reading ``locals[src]`` directly.  The wire codec
(fp16 compression, CRC/retry, fault hooks —
:func:`~repro.grid.comms.wire.exchange_field`) is applied by the
*receiver*, to exactly the fields the in-process exchange wires: the
+mu neighbour's field for the forward boundary and the rank's own
field for the backward boundary.  Message and byte accounting
therefore match the reference totals, and with a pristine link every
boundary value is bit-identical — which the transport tests assert all
the way through CG solves.  A :class:`~repro.grid.comms.queue.
LatencyModel` never changes content, only availability, so it is
simply ignored here: the wire is real.

Lifecycle
---------
Runtimes are keyed ``(nranks, ndim)`` and started lazily on first use
(fork start method).  All segments are created by the parent, which
owns unlink; workers attach by name and deregister from the resource
tracker (Python registers on attach too — bpo-39959 — which would
otherwise double-unlink at worker exit).  :func:`shutdown_runtimes`
joins every worker and unlinks every segment; it is called by
``engine.reset_all`` (via :func:`~repro.grid.comms.transport.
shutdown_transport_runtimes`) and at interpreter exit, so teardown
leaves no live shared-memory segments behind.
"""

from __future__ import annotations

import atexit
import time
import traceback

import numpy as np

from repro.engine.policy import current_policy
from repro.engine.policy import scope as _engine_scope
from repro.grid import compression
from repro.grid.comms.faults import adapt_fault_hook
from repro.grid.comms.queue import LatencyModel
from repro.grid.comms.transport import Transport
from repro.grid.comms.wire import exchange_field
from repro.telemetry import flightrec as _telemetry_flightrec
from repro.telemetry import merge as _telemetry_merge
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry_trace
from repro.telemetry.rankcollect import RankCollector

#: Seconds the parent waits for one worker reply before declaring the
#: runtime dead (a generous bound — one rank sweep is milliseconds).
COMMAND_TIMEOUT_S = 120.0


def _columns(acc, fwd, bwd, ncols: int):
    """Column views of (output, fwd, bwd) data — one triple for a
    plain spinor field, one per RHS for a batch (tensor
    ``(nrhs, 4, 3)``).  Mirrors the in-process sweep's helper."""
    if not ncols:
        yield acc, fwd, bwd
        return
    for j in range(ncols):
        yield acc[:, j], fwd[:, j], bwd[:, j]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _attach(cache: dict, name: str):
    """Attach a named segment (memoized per worker).

    Attaching registers with the resource tracker too (bpo-39959), but
    under fork the workers share the parent's tracker and its cache is
    a set — the duplicate registration collapses into the parent's own
    and the parent's unlink-time deregistration clears it, so no
    worker-side bookkeeping is needed (an explicit ``unregister`` here
    would make the parent's one a double-remove)."""
    shm = cache.get(name)
    if shm is None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        if len(cache) > 256:  # stale names from resized segments
            for old in cache.values():
                old.close()
            cache.clear()
        cache[name] = shm
    return shm


def _worker_grid(cache: dict, cmd: dict):
    """The (memoized) local grid for a command's geometry."""
    key = (cmd["gdims"], cmd["mpi_layout"], cmd["simd_layout"],
           cmd["backend"], cmd["dtype"])
    grid = cache.get(key)
    if grid is None:
        from repro.grid.cartesian import GridCartesian
        from repro.simd.registry import get_backend

        grid = GridCartesian(list(cmd["gdims"]),
                             get_backend(cmd["backend"], resilient=False),
                             simd_layout=list(cmd["simd_layout"]),
                             mpi_layout=list(cmd["mpi_layout"]),
                             dtype=np.dtype(cmd["dtype"]))
        cache[key] = grid
    return grid


def _worker_dhop(rank: int, cmd: dict, sems: dict, seg_cache: dict,
                 grid_cache: dict) -> dict:
    """One rank's share of a distributed hopping sweep."""
    # The collector anchors the round at command receipt — build it
    # first so ``round_t0`` precedes every recorded span.  With the
    # knob off the sweep pays one ``is None`` check per seam.
    collector = (RankCollector(rank)
                 if cmd.get("telemetry") == "trace" else None)
    from repro.engine.plan import fused_safe_backend
    from repro.grid import gamma as g
    from repro.grid.comms.lattice import CommsStats
    from repro.grid.cshift import cshift_local
    from repro.grid.lattice import Lattice
    from repro.grid.tensor import su3_dagger_mul_vec, su3_mul_vec
    from repro.perf.fused import fused_dhop_rank

    grid = _worker_grid(grid_cache, cmd)
    dtype = grid.dtype
    tensor = tuple(cmd["tensor_shape"])
    shape = (grid.osites,) + tensor + (grid.nlanes,)
    lshape = (grid.osites, 3, 3, grid.nlanes)
    ncols = tensor[0] if len(tensor) == 3 else 0
    ndim = grid.ndim

    def view(name, shp):
        return np.ndarray(shp, dtype=dtype,
                          buffer=_attach(seg_cache, name).buf)

    own = view(cmd["psi_seg"], shape)
    acc = view(cmd["out_seg"], shape)
    links = [view(n, lshape) for n in cmd["link_segs"]]
    links_back = [view(n, lshape) for n in cmd["linkb_segs"]]

    # -- post: my raw field into both mu-neighbours' mailboxes --------
    # (every send precedes every receive; each mailbox starts empty at
    # command start — the lockstep protocol makes this deadlock-free).
    for mu in range(ndim):
        for key, name in (cmd["produce_f"][mu], cmd["produce_b"][mu]):
            filled, empty = sems[tuple(key)]
            empty.acquire()
            view(name, shape)[...] = own
            filled.release()

    # -- receive: my two neighbour fields per mu ------------------------
    waited = 0.0
    raw_next, raw_prev = [], []
    for mu in range(ndim):
        fields = []
        for key, name in (cmd["consume_f"][mu], cmd["consume_b"][mu]):
            filled, empty = sems[tuple(key)]
            t0 = time.perf_counter()
            filled.acquire()
            t1 = time.perf_counter()
            waited += t1 - t0
            if collector is not None:
                collector.record("rank.mailbox_wait", t0, t1,
                                 mu=mu, kind=key[2])
            # Read in place: the producer cannot rewrite this mailbox
            # until the next command round, which starts only after
            # every reply has reached the parent.
            fields.append(view(name, shape))
            empty.release()
        raw_next.append(fields[0])
        raw_prev.append(fields[1])

    stats = CommsStats()
    injector = adapt_fault_hook(cmd["injector"])
    compress = cmd["compress"]
    checksum = cmd["checksum"]
    max_retries = cmd["max_retries"]
    backend = grid.backend
    fused = cmd["fused"] and fused_safe_backend(backend)
    own_lat = Lattice(grid, tensor, data=own)

    def wired(field):
        """One wire transaction on a boundary field — the receiver
        applies exactly the codec the in-process exchange applies."""
        halo_sites = grid.lsites // grid.ldims[mu]
        n_complex = halo_sites * int(np.prod(tensor)) if tensor else \
            halo_sites
        stats.record(n_complex, compress, dtype)
        if collector is None:
            return exchange_field(field, compress=compress,
                                  checksum=checksum, injector=injector,
                                  stats=stats, max_retries=max_retries,
                                  dtype=dtype)
        t0 = time.perf_counter()
        out = exchange_field(field, compress=compress,
                             checksum=checksum, injector=injector,
                             stats=stats, max_retries=max_retries,
                             dtype=dtype)
        collector.record("rank.wire", t0, time.perf_counter(), mu=mu)
        return out

    acc[...] = 0
    # Worker compute runs the in-process reference semantics: no
    # nested transports, serial tiles (each rank IS the parallelism).
    with _engine_scope(enabled=True, workers=1, transport="in-process",
                       comms_faults=None, latency=None, telemetry="off"):
        for mu in range(ndim):
            t_dir = time.perf_counter() if collector is not None else 0.0
            gd = grid.gdims[mu]
            ld = grid.ldims[mu]
            steps_f, sf = divmod(1 % gd, ld)
            steps_b, sb = divmod((-1) % gd, ld)
            # fwd: src is me (ld > 1) or my +mu neighbour (ld == 1);
            # its boundary comes from *its* +mu neighbour through the
            # wire — the same field the reference path wires.
            if sf != 0:
                pf = cshift_local(own_lat, mu, sf,
                                  boundary_from=wired(raw_next[mu])).data
            else:
                pf = raw_next[mu] if steps_f else own
            # bwd: src is my -mu neighbour; its +mu boundary is my own
            # field, again through the wire.
            if sb != 0:
                src = Lattice(grid, tensor, data=raw_prev[mu])
                pb = cshift_local(src, mu, sb,
                                  boundary_from=wired(own)).data
            else:
                pb = raw_prev[mu] if steps_b else own
            for acc_c, pf_c, pb_c in _columns(acc, pf, pb, ncols):
                if fused:
                    fused_dhop_rank(acc_c, links[mu], links_back[mu],
                                    pf_c, pb_c, mu, plan=None)
                else:
                    be = backend
                    h = g.project(be, pf_c, mu, +1)
                    uh = su3_mul_vec(be, links[mu], h)
                    a2 = be.add(acc_c, g.reconstruct(be, uh, mu, +1))
                    h = g.project(be, pb_c, mu, -1)
                    uh = su3_dagger_mul_vec(be, links_back[mu], h)
                    acc_c[...] = be.add(a2, g.reconstruct(be, uh, mu, -1))
            if collector is not None:
                collector.record("rank.dhop_dir", t_dir,
                                 time.perf_counter(), mu=mu,
                                 fused=fused)
    return {"ok": True, "stats": stats, "wait_seconds": waited,
            "telemetry": None if collector is None
            else collector.payload()}


def _worker_main(rank: int, conn, sems: dict) -> None:
    """Rank worker: serve commands until ``exit`` (or EOF)."""
    seg_cache: dict = {}
    grid_cache: dict = {}
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            break
        if cmd.get("op") == "exit":
            break
        try:
            reply = _worker_dhop(rank, cmd, sems, seg_cache, grid_cache)
        except BaseException:
            reply = {"ok": False, "error": traceback.format_exc()}
        try:
            conn.send(reply)
        except BrokenPipeError:  # parent went away mid-reply
            break
    for shm in seg_cache.values():
        shm.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class _RankRuntime:
    """One pool of rank workers + their shared segments, keyed
    ``(nranks, ndim)``.  Geometry, fields and wire config travel per
    command, so one runtime serves every lattice of its rank count."""

    def __init__(self, nranks: int, ndim: int) -> None:
        import multiprocessing as mp

        self.nranks = int(nranks)
        self.ndim = int(ndim)
        self.poisoned = False
        self.rounds = 0           # lockstep rounds driven (telemetry)
        methods = mp.get_all_start_methods()
        self.ctx = mp.get_context("fork" if "fork" in methods
                                  else "spawn")
        # One filled/empty semaphore pair per directed edge mailbox.
        self.sems = {}
        for dst in range(self.nranks):
            for mu in range(self.ndim):
                for kind in ("f", "b"):
                    self.sems[(dst, mu, kind)] = (
                        self.ctx.Semaphore(0), self.ctx.Semaphore(1)
                    )
        self.segments: dict = {}      # role -> SharedMemory (parent-owned)
        self._link_owner = None       # (id(op), weakref) of resident links
        if self.ctx.get_start_method() == "fork":
            # Start the resource tracker *before* forking: the first
            # segment is only created after the workers exist, and a
            # worker with no inherited tracker would spawn its own,
            # which warns about every attach-registered segment at
            # worker exit (see _attach for the shared-tracker story).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        self.pipes = []
        self.procs = []
        for r in range(self.nranks):
            parent_conn, child_conn = self.ctx.Pipe()
            proc = self.ctx.Process(target=_worker_main,
                                    args=(r, child_conn, self.sems),
                                    daemon=True,
                                    name=f"repro-rank-{r}")
            proc.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.procs.append(proc)

    # -- segments -------------------------------------------------------
    def _segment(self, role, nbytes: int):
        """The parent-owned segment for ``role``, grown on demand
        (a grown segment gets a fresh name; commands always carry
        current names, so workers re-attach transparently)."""
        from multiprocessing import shared_memory

        seg = self.segments.get(role)
        if seg is None or seg.size < nbytes:
            if seg is not None:
                seg.close()
                seg.unlink()
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            self.segments[role] = seg
        return seg

    def _load(self, role, array: np.ndarray) -> str:
        """Copy ``array`` into the role's segment; returns its name."""
        seg = self._segment(role, array.nbytes)
        np.ndarray(array.shape, dtype=array.dtype,
                   buffer=seg.buf)[...] = array
        return seg.name

    def _load_links(self, op) -> tuple:
        """Gauge-link shards are static per operator: re-upload only
        when a different (or reborn) operator arrives."""
        import weakref

        owner = self._link_owner
        if owner is not None and owner[0] == id(op) \
                and owner[1]() is op:
            return self._link_names()
        for mu in range(self.ndim):
            for r in range(self.nranks):
                self._load(("link", mu, r), op.links[mu].locals[r].data)
                self._load(("linkb", mu, r),
                           op.links_back[mu].locals[r].data)
        self._link_owner = (id(op), weakref.ref(op))
        return self._link_names()

    def _link_names(self) -> tuple:
        link = [[self.segments[("link", mu, r)].name
                 for mu in range(self.ndim)]
                for r in range(self.nranks)]
        linkb = [[self.segments[("linkb", mu, r)].name
                  for mu in range(self.ndim)]
                 for r in range(self.nranks)]
        return link, linkb

    # -- the sweep ------------------------------------------------------
    def dhop(self, op, psi, plan=None):
        """Run one distributed hopping sweep across the rank workers;
        returns the hop field as a new :class:`DistributedLattice`."""
        if self.poisoned:
            raise RuntimeError("shared-memory rank runtime is poisoned "
                               "(a previous command failed); reset_all "
                               "tears it down")
        g0 = psi.grids[0]
        shape = psi.locals[0].data.shape
        nbytes = psi.locals[0].data.nbytes
        ranks = psi.ranks
        link_names, linkb_names = self._load_links(op)
        psi_names, out_names = [], []
        for r in range(self.nranks):
            psi_names.append(self._load(("psi", r), psi.locals[r].data))
            out_names.append(self._segment(("out", r), nbytes).name)
        mbox = {}
        for dst in range(self.nranks):
            for mu in range(self.ndim):
                for kind in ("f", "b"):
                    role = ("mbox", dst, mu, kind)
                    mbox[(dst, mu, kind)] = self._segment(role,
                                                          nbytes).name
        policy = current_policy()
        base = {
            "op": "dhop",
            # Workers collect spans only when told to: the command is
            # how the parent's scoped policy crosses the process
            # boundary (workers never see the parent's ContextVar).
            "telemetry": "trace" if policy.trace_active else "off",
            "gdims": tuple(int(d) for d in g0.gdims),
            "mpi_layout": tuple(int(m) for m in ranks.mpi_layout),
            "simd_layout": tuple(int(s) for s in g0.simd_layout),
            "backend": g0.backend.name,
            "dtype": str(g0.dtype),
            "tensor_shape": tuple(psi.tensor_shape),
            "compress": psi.compress_halos,
            "checksum": psi.checksum_halos,
            "max_retries": psi.max_retries,
            "injector": psi.comms_faults,
            # The plan's arithmetic route travels with the command
            # (fused and codegen bodies are bit-identical to layered,
            # but the sweep should follow the resolved plan).
            "fused": bool(plan is None
                          or plan.fused or plan.codegen != "off"),
        }
        send_times = []
        for r in range(self.nranks):
            nxt = {mu: ranks.neighbour(r, mu, +1)
                   for mu in range(self.ndim)}
            prv = {mu: ranks.neighbour(r, mu, -1)
                   for mu in range(self.ndim)}
            cmd = dict(base)
            cmd["psi_seg"] = psi_names[r]
            cmd["out_seg"] = out_names[r]
            cmd["link_segs"] = link_names[r]
            cmd["linkb_segs"] = linkb_names[r]
            # Mailbox (dst, mu, 'f') carries the field of dst's +mu
            # neighbour; (dst, mu, 'b') the field of its -mu
            # neighbour.  I produce into my neighbours' boxes and
            # consume my own.
            cmd["produce_f"] = [((prv[mu], mu, "f"),
                                 mbox[(prv[mu], mu, "f")])
                                for mu in range(self.ndim)]
            cmd["produce_b"] = [((nxt[mu], mu, "b"),
                                 mbox[(nxt[mu], mu, "b")])
                                for mu in range(self.ndim)]
            cmd["consume_f"] = [((r, mu, "f"), mbox[(r, mu, "f")])
                                for mu in range(self.ndim)]
            cmd["consume_b"] = [((r, mu, "b"), mbox[(r, mu, "b")])
                                for mu in range(self.ndim)]
            # The send timestamp is the clock-normalisation anchor for
            # this rank's spans: taken immediately before the pipe
            # write so the residual offset error is one pipe delivery.
            send_times.append(time.perf_counter())
            self.pipes[r].send(cmd)
        replies = []
        for r in range(self.nranks):
            if not self.pipes[r].poll(COMMAND_TIMEOUT_S):
                self.poisoned = True
                raise RuntimeError(
                    f"rank {r} did not reply within "
                    f"{COMMAND_TIMEOUT_S:.0f}s; runtime poisoned"
                )
            replies.append(self.pipes[r].recv())
        bad = [(r, rep) for r, rep in enumerate(replies)
               if not rep.get("ok")]
        if bad:
            self.poisoned = True
            r, rep = bad[0]
            raise RuntimeError(
                f"rank {r} sweep failed:\n{rep.get('error')}"
            )
        for rep in replies:
            psi.stats.merge(rep["stats"])
        round_index = self.rounds
        self.rounds += 1
        self._observe(psi, replies, send_times, round_index)
        from repro.grid.lattice import Lattice

        out = psi.clone_empty()
        for r in range(self.nranks):
            seg = self.segments[("out", r)]
            data = np.ndarray(shape, dtype=g0.dtype,
                              buffer=seg.buf).copy()
            out.locals.append(Lattice(psi.grids[r], psi.tensor_shape,
                                      data=data))
        return out

    def _observe(self, psi, replies, send_times, round_index) -> None:
        """Feed transport counters, the PR 5 halo-wait histograms, and
        the cross-rank merge layer (per-rank labelled tallies at
        ``metrics``; shipped worker spans into the unified timeline at
        ``trace``)."""
        policy = current_policy()
        if not policy.metrics_active:
            return
        reg = _telemetry_metrics.registry()
        reg.counter("transport.shmem.sweeps").inc()
        reg.counter("transport.shmem.messages").inc(
            sum(rep["stats"].messages for rep in replies)
        )
        reg.counter("transport.shmem.bytes").inc(
            sum(rep["stats"].bytes_sent for rep in replies)
        )
        reg.gauge("transport.shmem.segments").set(
            float(len(self.segments))
        )
        hist = reg.histogram("comms.halo_wait_seconds")
        for rep in replies:
            hist.observe(rep["wait_seconds"])
        # Per-rank tallies come from the replies the protocol already
        # carries, so the ``metrics`` level needs no worker-side work.
        for r, rep in enumerate(replies):
            _telemetry_merge.record_rank_metrics(r, {
                "rank.messages": rep["stats"].messages,
                "rank.bytes": rep["stats"].bytes_sent,
                "rank.wait_seconds": rep["wait_seconds"],
                "rank.sweeps": 1,
            })
        merged = 0
        if policy.trace_active:
            merged = _telemetry_merge.ingest_round(
                [rep.get("telemetry") for rep in replies],
                send_times, round_index,
            )
        _telemetry_flightrec.record(
            "shmem.round", round=round_index, nranks=self.nranks,
            spans_merged=merged,
            max_wait_s=max(rep["wait_seconds"] for rep in replies),
        )

    # -- teardown -------------------------------------------------------
    def close(self) -> int:
        """Join workers and unlink every segment; returns how many
        segments were released."""
        for conn in self.pipes:
            try:
                conn.send({"op": "exit"})
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self.pipes:
            conn.close()
        released = 0
        for seg in self.segments.values():
            try:
                seg.close()
                seg.unlink()
                released += 1
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.segments.clear()
        self.pipes = []
        self.procs = []
        return released


#: Live runtimes keyed (nranks, ndim).
_RUNTIMES: dict = {}


def runtime_for(nranks: int, ndim: int) -> _RankRuntime:
    """The (lazily started) rank runtime for this shape."""
    key = (int(nranks), int(ndim))
    rt = _RUNTIMES.get(key)
    if rt is None or rt.poisoned:
        if rt is not None:
            rt.close()
        rt = _RankRuntime(*key)
        _RUNTIMES[key] = rt
    return rt


def live_segments() -> list:
    """Names of every parent-owned shared-memory segment still live
    (the leaked-segment check asserts this is empty after teardown)."""
    return sorted(
        seg.name
        for rt in _RUNTIMES.values()
        for seg in rt.segments.values()
    )


def shutdown_runtimes() -> dict:
    """Tear down every runtime: workers joined, segments unlinked.
    Returns ``{"runtimes": n, "segments": m}``."""
    runtimes = 0
    segments = 0
    for key in list(_RUNTIMES):
        rt = _RUNTIMES.pop(key)
        segments += rt.close()
        runtimes += 1
    return {"runtimes": runtimes, "segments": segments}


atexit.register(shutdown_runtimes)


class SharedMemoryTransport(Transport):
    """Halo exchange and rank sweeps over real OS processes.

    The parent-side halo surface (``post_halo``/``wait`` — used by the
    distributed shift for gauge gathers and observables) is inherited
    from the reference transport unchanged; what this class overrides
    is the whole-sweep hook: ``run_dhop`` ships the field to the rank
    runtime and returns the finished hop field.
    """

    name = "shmem"

    def __init__(self, latency: LatencyModel = None) -> None:
        # The latency model shapes the *simulated* wire; this wire is
        # real, so the model is accepted (for the inherited in-process
        # surface) but never applied to rank-runtime traffic.
        super().__init__(latency)

    def run_dhop(self, op, psi, plan):
        g0 = psi.grids[0]
        backend = g0.backend
        if not _reconstructible(backend):
            # A backend the workers cannot rebuild by registry key
            # (resilient wrapper, test double): decline — the caller
            # falls back to the bit-identical in-process sweep.
            return None
        runtime = runtime_for(psi.ranks.nranks, g0.ndim)
        if not _telemetry_trace.tracing():
            return runtime.dhop(op, psi, plan)
        with _telemetry_trace.span(
            "transport.shmem.dhop",
            nranks=psi.ranks.nranks,
            backend=backend.name,
            sites=g0.gsites,
        ):
            return runtime.dhop(op, psi, plan)

    def close(self) -> None:
        shutdown_runtimes()


def _reconstructible(backend) -> bool:
    """True when a worker's ``get_backend(backend.name)`` yields the
    exact backend type the parent computes with (subclassed test
    doubles and resilient wrappers change semantics and must decline)."""
    from repro.simd.registry import get_backend

    name = getattr(backend, "name", None)
    if not name:
        return False
    try:
        rebuilt = get_backend(name, resilient=False)
    except Exception:
        return False
    return type(rebuilt) is type(backend)


# Re-exported for callers that reason about wire volume without a
# runtime (the bench harness).
def wire_bytes_for(psi, ndim: int = None) -> int:
    """Total wire bytes one dhop sweep moves (all ranks, all dims)."""
    g0 = psi.grids[0]
    ndim = g0.ndim if ndim is None else ndim
    total = 0
    for mu in range(ndim):
        if g0.ldims[mu] <= 1 and psi.ranks.mpi_layout[mu] > 1:
            continue  # whole-rank renumbering: no wire message
        halo_sites = g0.lsites // g0.ldims[mu]
        n_complex = halo_sites * int(np.prod(psi.tensor_shape))
        total += 2 * psi.ranks.nranks * compression.wire_bytes(
            n_complex, psi.compress_halos, g0.dtype
        )
    return total

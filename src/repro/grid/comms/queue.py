"""The asynchronous halo queue: post now, wait later.

Real halo exchange is non-blocking (``MPI_Isend``/``MPI_Irecv``); Grid
hides it behind interior compute.  Here the split is explicit: a
transport performs the deterministic wire work (accounting,
compression, checksum/retry) immediately at post time and hands back a
:class:`HaloHandle` whose *availability* is delayed by a pluggable
:class:`LatencyModel`; :class:`AsyncCommsQueue` tracks the in-flight
set and blocks in ``wait``.  With no latency model (the default) a
wait returns instantly and the behaviour is exactly the old
synchronous exchange.

Timing discipline
-----------------
All deadlines use ``time.monotonic()`` exclusively: halo readiness is
a *duration* measurement, and a wall-clock source (or a mix of clock
sources across transports) could travel backwards across an NTP step
and reorder completion semantics.  Handles additionally carry a
monotonically increasing per-queue sequence number, and ``drain``
completes outstanding messages in ``(ready_at, seq)`` order — so two
messages with equal deadlines always complete in post order, no matter
which transport produced them or how the clock ticks between posts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.policy import current_policy
from repro.perf.counters import counters as _perf_counters
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry_trace


@dataclass(frozen=True)
class LatencyModel:
    """Simulated wire latency for the async halo exchange.

    A posted message becomes available ``latency_s + nbytes *
    seconds_per_byte`` after its post (an alpha-beta network model).
    The *content* of the message is computed deterministically at post
    time; the model delays only availability — so results are
    bit-identical at any latency, while wall-clock behaviour shows the
    serial-vs-overlapped difference the benchmarks measure.
    """

    latency_s: float = 0.0
    seconds_per_byte: float = 0.0

    def delay_for(self, nbytes: int) -> float:
        return self.latency_s + nbytes * self.seconds_per_byte


class HaloHandle:
    """One in-flight halo message (the simulated ``MPI_Request``).

    ``seq`` is the queue-local post ordinal: the deterministic
    tie-breaker for equal ``ready_at`` deadlines (see ``drain``).
    """

    __slots__ = ("data", "ready_at", "nbytes", "tag", "done",
                 "posted_at", "seq")

    def __init__(self, data, ready_at: float, nbytes: int, tag: str,
                 posted_at: float = 0.0, seq: int = 0) -> None:
        self.data = data
        self.ready_at = ready_at
        self.nbytes = nbytes
        self.tag = tag
        self.done = False
        self.posted_at = posted_at
        self.seq = seq


class AsyncCommsQueue:
    """The in-flight halo queue: post now, wait later.

    Tracks how many messages are simultaneously outstanding
    (``max_in_flight`` — 1 for the ordered serial exchange, up to
    2·ndim·nranks for the overlap engine) and how long ``wait``
    actually blocked (``wait_seconds`` — the latency the overlap
    failed to hide).
    """

    def __init__(self, latency: LatencyModel = None) -> None:
        self.latency = latency
        self.in_flight: list = []
        self.posted = 0
        self.completed = 0
        self.max_in_flight = 0
        self.wait_seconds = 0.0

    def post(self, data, nbytes: int, tag: str = "") -> HaloHandle:
        now = time.monotonic()
        delay = self.latency.delay_for(nbytes) if self.latency else 0.0
        handle = HaloHandle(data, now + delay, int(nbytes), tag,
                            posted_at=now, seq=self.posted)
        self.in_flight.append(handle)
        self.posted += 1
        self.max_in_flight = max(self.max_in_flight, len(self.in_flight))
        _perf_counters().bump("halo_posts")
        return handle

    def wait(self, handle: HaloHandle):
        """Block until ``handle`` lands; returns the received data."""
        if not handle.done:
            blocked = 0.0
            remaining = handle.ready_at - time.monotonic()
            if remaining > 0:
                t0 = time.monotonic()
                if remaining > 1e-3:
                    time.sleep(remaining - 5e-4)
                while time.monotonic() < handle.ready_at:
                    pass  # sub-millisecond tail: spin for accuracy
                blocked = time.monotonic() - t0
                self.wait_seconds += blocked
            handle.done = True
            self.in_flight.remove(handle)
            self.completed += 1
            _perf_counters().bump("halo_waits")
            policy = current_policy()
            if policy.metrics_active:
                done_at = time.monotonic()
                _telemetry_metrics.registry().histogram(
                    "comms.halo_inflight_seconds"
                ).observe(done_at - handle.posted_at)
                _telemetry_metrics.registry().histogram(
                    "comms.halo_wait_seconds"
                ).observe(blocked)
                if policy.trace_active:
                    _telemetry_trace.record_span(
                        "halo", handle.posted_at, done_at,
                        tag=handle.tag, nbytes=handle.nbytes,
                        wait_seconds=blocked,
                    )
        return handle.data

    def drain(self) -> None:
        """Complete every outstanding message, in deterministic
        ``(ready_at, seq)`` order: earliest deadline first, post order
        breaking ties — never the accident of list position under a
        racing clock."""
        for handle in sorted(self.in_flight,
                             key=lambda h: (h.ready_at, h.seq)):
            self.wait(handle)

    @property
    def pending(self) -> int:
        return len(self.in_flight)

    def reset(self) -> None:
        """Discard in-flight messages and zero the queue counters."""
        self.in_flight.clear()
        self.posted = 0
        self.completed = 0
        self.max_in_flight = 0
        self.wait_seconds = 0.0

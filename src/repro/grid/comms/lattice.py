"""Simulated rank-level domain decomposition with halo exchange.

The coarsest parallelization level of Section II-A: "a set of
sub-lattices is distributed over (a very large number of) different
processes, e.g., different MPI ranks."  Each "rank" is a sub-lattice
of one :class:`DistributedLattice`; how bytes move between ranks is
the business of the pluggable :class:`~repro.grid.comms.transport.
Transport` — the in-process reference copies buffers through the
byte-level wire codec (:mod:`repro.grid.comms.wire`), the
shared-memory backend (:mod:`repro.grid.comms.shmem`) runs real rank
processes over ``multiprocessing.shared_memory`` segments.  The
transferred volume is accounted either way so benchmarks can report
wire bytes.

The distributed circular shift reuses :func:`repro.grid.cshift.
cshift_local`, handing it the +dim neighbour rank's field for the
boundary lanes — so the virtual-node lane permutes and the rank halo
logic compose exactly as they do in Grid.

Resilience
----------
Production halo exchange runs for days over flaky interconnects, so
the wire path is byte-level and self-healing: every message can carry
a CRC-32 (``checksum_halos=True``), a :class:`repro.resilience.inject.
CommsFaultInjector` can drop/corrupt/truncate/duplicate messages, and
a detected-bad message is retransmitted with exponential backoff up to
``max_retries`` times before :class:`~repro.grid.comms.wire.
HaloExchangeError` is raised.  Without checksums the same faults are
applied *silently*: a dropped or truncated message is zero-filled, a
corrupted one is used as-is — the classic silent-data-corruption
failure mode the checksummed path exists to prevent.  With no injector
and no faults the checksummed path is bit-identical to the plain one.

Transport selection
-------------------
Which backend a lattice talks through is a scoped policy knob: the
``transport`` property resolves ``engine.scope(transport=...)`` into a
live backend instance on demand (memoized per backend name, shared
with clones), so existing code switches to the shared-memory rank
runtime with no changes beyond the scope.  A ``transport=`` ctor
argument pins a lattice to one backend regardless of policy.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.engine.policy import current_policy
from repro.grid import compression
from repro.grid.cartesian import GridCartesian
from repro.grid.comms.queue import AsyncCommsQueue, HaloHandle, LatencyModel
from repro.grid.comms.transport import Transport, make_transport
from repro.grid.coordinates import coordinate_table, index_of, indices_of
from repro.grid.cshift import cshift_local
from repro.grid.lattice import Lattice
from repro.telemetry import metrics as _telemetry_metrics

__all__ = [
    "CommsStats", "RankGeometry", "DistributedLattice",
    "reset_all_comms", "invalidate_comms_plans",
]

#: Live distributed lattices, for :func:`reset_all_comms` (weakly held
#: so benchmark/test fixtures can reset stray state without keeping
#: lattices alive).
_LIVE_COMMS: "weakref.WeakSet" = weakref.WeakSet()


def reset_all_comms() -> int:
    """Clear the comms state of every live :class:`DistributedLattice`:
    traffic/resilience counters and any halo still in the in-flight
    queue of any of its transports.  Returns how many lattices were
    touched.  Called between benchmark repetitions and campaign runs
    (the comms analogue of :func:`repro.simd.resilient.
    reset_all_degraded`) so one run's counters cannot bleed into the
    next's gated metrics."""
    n = 0
    for dl in list(_LIVE_COMMS):
        dl.stats.reset()
        for tr in dl._transports.values():
            tr.reset()
        n += 1
    return n


def _collect_comms_metrics() -> dict:
    """Aggregate traffic/resilience stats and queue counters over every
    live :class:`DistributedLattice`, as a telemetry collector.

    Clones share their parent's ``stats`` and transport table, so
    aggregation dedupes by object identity.  The collector is a *view*:
    it resets with its owner (:func:`reset_all_comms`), which is what
    lets ``engine.reset_all`` produce a provably all-zero snapshot.
    """
    stats_seen: dict = {}
    queues_seen: dict = {}
    for dl in list(_LIVE_COMMS):
        stats_seen[id(dl.stats)] = dl.stats
        for tr in dl._transports.values():
            queues_seen[id(tr.queue)] = tr.queue
    out = {
        "comms.messages": 0, "comms.complex_sent": 0,
        "comms.bytes_sent": 0, "comms.retries": 0,
        "comms.detected_corruptions": 0, "comms.detected_drops": 0,
        "comms.duplicates_discarded": 0, "comms.recovered_messages": 0,
        "comms.unrecovered_failures": 0, "comms.backoff_units": 0,
        "comms.halo_posted": 0, "comms.halo_completed": 0,
        "comms.halo_pending": 0, "comms.max_in_flight": 0,
        "comms.wait_seconds": 0.0,
    }
    for st in stats_seen.values():
        out["comms.messages"] += st.messages
        out["comms.complex_sent"] += st.complex_sent
        out["comms.bytes_sent"] += st.bytes_sent
        out["comms.retries"] += st.retries
        out["comms.detected_corruptions"] += st.detected_corruptions
        out["comms.detected_drops"] += st.detected_drops
        out["comms.duplicates_discarded"] += st.duplicates_discarded
        out["comms.recovered_messages"] += st.recovered_messages
        out["comms.unrecovered_failures"] += st.unrecovered_failures
        out["comms.backoff_units"] += st.backoff_units
    for q in queues_seen.values():
        out["comms.halo_posted"] += q.posted
        out["comms.halo_completed"] += q.completed
        out["comms.halo_pending"] += q.pending
        out["comms.max_in_flight"] = max(out["comms.max_in_flight"],
                                         q.max_in_flight)
        out["comms.wait_seconds"] += q.wait_seconds
    return out


_telemetry_metrics.registry().register_collector(
    "comms", _collect_comms_metrics
)


def invalidate_comms_plans() -> int:
    """Drop the memoized shift decompositions and halo message sizes of
    every live :class:`DistributedLattice` (both are pure geometry, so
    this forces re-derivation without changing any result).  Part of
    :func:`repro.engine.reset_all` — these memos are caches and are
    treated uniformly with the trace and plan caches.  Returns how many
    lattices were touched."""
    n = 0
    for dl in list(_LIVE_COMMS):
        dl._shift_params.clear()
        dl._halo_sizes.clear()
        n += 1
    return n


@dataclass
class CommsStats:
    """Accounting of simulated network traffic and link health.

    The resilience counters record only what the *protocol* can
    observe: CRC mismatches, timeouts, retransmissions.  Whether a
    fault actually fired is known to the injector (and its campaign),
    not to the receiver.
    """

    messages: int = 0
    complex_sent: int = 0
    bytes_sent: int = 0
    # -- self-healing path ---------------------------------------------
    retries: int = 0
    detected_corruptions: int = 0
    detected_drops: int = 0
    duplicates_discarded: int = 0
    recovered_messages: int = 0
    unrecovered_failures: int = 0
    backoff_units: int = 0

    def record(self, n_complex: int, compressed: bool, dtype) -> None:
        self.messages += 1
        self.complex_sent += n_complex
        self.bytes_sent += compression.wire_bytes(n_complex, compressed, dtype)

    @property
    def detected_failures(self) -> int:
        """All protocol-visible delivery failures."""
        return self.detected_corruptions + self.detected_drops

    def merge(self, other: "CommsStats") -> None:
        """Fold another stats block into this one (rank workers keep
        local stats; the parent merges them after each sweep)."""
        self.messages += other.messages
        self.complex_sent += other.complex_sent
        self.bytes_sent += other.bytes_sent
        self.retries += other.retries
        self.detected_corruptions += other.detected_corruptions
        self.detected_drops += other.detected_drops
        self.duplicates_discarded += other.duplicates_discarded
        self.recovered_messages += other.recovered_messages
        self.unrecovered_failures += other.unrecovered_failures
        self.backoff_units += other.backoff_units

    def reset(self) -> None:
        """Zero every counter (between benchmark reps / campaign runs)."""
        self.messages = 0
        self.complex_sent = 0
        self.bytes_sent = 0
        self.retries = 0
        self.detected_corruptions = 0
        self.detected_drops = 0
        self.duplicates_discarded = 0
        self.recovered_messages = 0
        self.unrecovered_failures = 0
        self.backoff_units = 0


class RankGeometry:
    """The process grid: rank coordinate <-> rank index."""

    def __init__(self, mpi_layout) -> None:
        self.mpi_layout = [int(r) for r in mpi_layout]
        self.nranks = int(np.prod(self.mpi_layout))
        self._coors = coordinate_table(self.mpi_layout)

    def coor_of(self, rank: int):
        return tuple(int(c) for c in self._coors[rank])

    def rank_of(self, coor) -> int:
        coor = [c % r for c, r in zip(coor, self.mpi_layout)]
        return index_of(coor, self.mpi_layout)

    def neighbour(self, rank: int, dim: int, step: int) -> int:
        coor = list(self.coor_of(rank))
        coor[dim] += step
        return self.rank_of(coor)


class DistributedLattice:
    """One logical lattice split over ranks.

    Each rank holds a :class:`Lattice` over a local
    :class:`GridCartesian` (same backend and SIMD layout everywhere).

    Parameters
    ----------
    checksum_halos:
        Verify every halo message with a CRC-32 and retransmit on
        mismatch/timeout (the self-healing path).
    comms_faults:
        Optional fault injector (duck-typed: ``deliver(payload,
        message, attempt, stats) -> list[np.ndarray]``) applied to
        every wire message.  ``None`` means a perfect network.
    max_retries:
        Retransmissions allowed per message before the exchange gives
        up and raises :class:`~repro.grid.comms.wire.HaloExchangeError`
        (checksummed path only).
    latency:
        Optional :class:`LatencyModel` delaying halo availability
        (``None`` means a zero-latency wire, i.e. the old synchronous
        behaviour).
    transport:
        Pin this lattice to one backend: a name from
        :data:`repro.grid.comms.transport.TRANSPORTS` or a ready
        :class:`Transport` instance.  The default (``None``) resolves
        the backend dynamically from the scoped policy knob on every
        use, so ``engine.scope(transport="shmem")`` re-routes existing
        lattices too.

    ``comms_faults`` and ``latency`` default to the corresponding
    fields of the current :class:`repro.engine.ExecutionPolicy` when
    not given explicitly, so whole campaigns can be scoped onto a
    degraded network with ``engine.scope(latency=..., comms_faults=...)``
    instead of threading the models through every constructor.
    """

    def __init__(self, gdims, backend, mpi_layout, tensor_shape,
                 simd_layout=None, compress_halos: bool = False,
                 dtype=np.complex128, checksum_halos: bool = False,
                 comms_faults=None, max_retries: int = 3,
                 latency: LatencyModel = None, transport=None) -> None:
        policy = current_policy()
        if comms_faults is None:
            comms_faults = policy.comms_faults
        if latency is None:
            latency = policy.latency
        self.ranks = RankGeometry(mpi_layout)
        self.compress_halos = compress_halos
        self.checksum_halos = checksum_halos
        self.comms_faults = comms_faults
        self.max_retries = int(max_retries)
        self.latency = latency
        self.stats = CommsStats()
        self._transports: dict = {}
        self._pinned_transport = None
        if transport is not None:
            self._pinned_transport = make_transport(transport, latency)
            self._transports[self._pinned_transport.name] = \
                self._pinned_transport
        self._shift_params: dict = {}
        self._halo_sizes: dict = {}
        self.grids = []
        self.locals: list[Lattice] = []
        for r in range(self.ranks.nranks):
            grid = GridCartesian(gdims, backend, simd_layout=simd_layout,
                                 mpi_layout=mpi_layout, dtype=dtype)
            self.grids.append(grid)
            self.locals.append(Lattice(grid, tensor_shape))
        self.gdims = self.grids[0].gdims
        self.tensor_shape = self.locals[0].tensor_shape
        _LIVE_COMMS.add(self)

    # ------------------------------------------------------------------
    # Transport resolution
    # ------------------------------------------------------------------
    @property
    def transport(self) -> Transport:
        """The live backend this lattice talks through *right now*:
        the pinned one if the ctor fixed it, otherwise the scoped
        ``ExecutionPolicy.transport`` knob (falling back to the
        in-process reference whenever the engine is disabled).
        Instances are memoized per backend name and shared with
        clones, so counters and in-flight queues stay coherent."""
        if self._pinned_transport is not None:
            return self._pinned_transport
        policy = current_policy()
        name = policy.transport if policy.transport_active else "in-process"
        tr = self._transports.get(name)
        if tr is None:
            tr = make_transport(name, self.latency)
            self._transports[name] = tr
        return tr

    @property
    def comms_queue(self) -> AsyncCommsQueue:
        """The current transport's in-flight halo queue (historical
        attribute, preserved as a view)."""
        return self.transport.queue

    def clone_empty(self, tensor_shape=None) -> "DistributedLattice":
        """A new distributed field sharing geometry, comms config,
        stats and transports (hence in-flight queues) with ``self``
        but holding no local lattices yet.  ``tensor_shape`` overrides
        the per-site tensor (used by the multi-RHS batch type); the
        halo-size cache is shared only when the tensor is unchanged."""
        out = DistributedLattice.__new__(DistributedLattice)
        out.ranks = self.ranks
        out.compress_halos = self.compress_halos
        out.checksum_halos = self.checksum_halos
        out.comms_faults = self.comms_faults
        out.max_retries = self.max_retries
        out.latency = self.latency
        out.stats = self.stats
        out._transports = self._transports
        out._pinned_transport = self._pinned_transport
        out._shift_params = self._shift_params
        out.grids = self.grids
        out.gdims = self.gdims
        if tensor_shape is None:
            out.tensor_shape = self.tensor_shape
            out._halo_sizes = self._halo_sizes
        else:
            out.tensor_shape = tuple(int(t) for t in tensor_shape)
            out._halo_sizes = {}
        out.locals = []
        _LIVE_COMMS.add(out)
        return out

    def new_like(self) -> "DistributedLattice":
        """A zero field on the same geometry (what the Krylov solvers
        ask of any field type)."""
        out = self.clone_empty()
        out.locals = [lat.new_like() for lat in self.locals]
        return out

    def copy(self) -> "DistributedLattice":
        """A deep copy of the field data (shared geometry/comms)."""
        out = self.clone_empty()
        out.locals = [lat.copy() for lat in self.locals]
        return out

    # ------------------------------------------------------------------
    # Global <-> local data movement
    # ------------------------------------------------------------------
    def scatter(self, global_canonical: np.ndarray) -> "DistributedLattice":
        """Load a canonical global array ``(gsites, *tensor)``."""
        g0 = self.grids[0]
        expected = (g0.gsites,) + self.tensor_shape
        global_canonical = np.asarray(global_canonical, dtype=g0.dtype)
        if global_canonical.shape != expected:
            raise ValueError(
                f"global canonical shape {global_canonical.shape} != "
                f"{expected}"
            )
        local_coors = coordinate_table(g0.ldims)
        for r, lat in enumerate(self.locals):
            rc = self.ranks.coor_of(r)
            offs = np.array([c * ld for c, ld in zip(rc, g0.ldims)])
            idx = indices_of(local_coors + offs[None, :], self.gdims)
            lat.from_canonical(global_canonical[idx])
        return self

    def gather(self) -> np.ndarray:
        """Export to a canonical global array (inverse of scatter)."""
        g0 = self.grids[0]
        out = np.empty((g0.gsites,) + self.tensor_shape, dtype=g0.dtype)
        local_coors = coordinate_table(g0.ldims)
        for r, lat in enumerate(self.locals):
            rc = self.ranks.coor_of(r)
            offs = np.array([c * ld for c, ld in zip(rc, g0.ldims)])
            idx = indices_of(local_coors + offs[None, :], self.gdims)
            out[idx] = lat.to_canonical()
        return out

    # ------------------------------------------------------------------
    # Halo exchange + shift (delegated to the transport)
    # ------------------------------------------------------------------
    def _halo_sizes_for(self, dim: int):
        """(n_complex, wire_bytes) of one +dim halo message — memoized
        only while the engine's cache knob is on (cache semantics are
        uniform across the stack: with ``caches_active`` off, no cache
        is consulted or populated)."""
        caching = current_policy().caches_active
        sizes = self._halo_sizes.get(dim) if caching else None
        if sizes is None:
            grid = self.grids[0]
            halo_sites = grid.lsites // grid.ldims[dim]
            n_complex = halo_sites * int(np.prod(self.tensor_shape))
            sizes = (n_complex, compression.wire_bytes(
                n_complex, self.compress_halos, grid.dtype))
            if caching:
                self._halo_sizes[dim] = sizes
        return sizes

    def _post_halo(self, src_rank: int, dim: int) -> HaloHandle:
        """Post the +dim neighbour-field exchange for ``src_rank``
        through the current transport (historical entry point,
        preserved as a delegation)."""
        return self.transport.post_halo(self, src_rank, dim)

    def _exchanged_field(self, src_rank: int, dim: int) -> np.ndarray:
        """The +dim neighbour's local field, through the (optionally
        compressing, optionally checksummed) wire — the ordered
        synchronous exchange: post, then immediately wait."""
        transport = self.transport
        return transport.wait(transport.post_halo(self, src_rank, dim))

    def _dist_shift_params(self, dim: int, shift: int):
        """(rank_steps, local_shift) decomposition of a global shift —
        the distributed half of the per-geometry plan cache (the
        rank-local half lives in :mod:`repro.grid.cshift`), memoized
        under the same engine cache knob as every other plan cache."""
        key = (dim, shift)
        caching = current_policy().caches_active
        params = self._shift_params.get(key) if caching else None
        if params is None:
            gshift = shift % self.gdims[dim]
            params = divmod(gshift, self.grids[0].ldims[dim])
            if caching:
                self._shift_params[key] = params
        return params

    def cshift(self, dim: int, shift: int) -> "DistributedLattice":
        """Distributed circular shift: ``out(x) = in(x + shift e_dim)``.

        Shifts are normalised into ``[0, ldims[dim])`` plus whole-rank
        steps, so arbitrary shifts work; each rank then shifts locally
        with its +dim neighbour's data covering the boundary lanes.
        """
        rank_steps, local_shift = self._dist_shift_params(dim, shift)
        out = self.clone_empty()
        for r in range(self.ranks.nranks):
            # The data for rank r comes from the rank `rank_steps`
            # ahead (plus a local shift with that rank's +dim halo).
            src = self.ranks.neighbour(r, dim, rank_steps)
            boundary = None
            if local_shift != 0:
                boundary = self._fetch_for(src, dim)
            shifted = cshift_local(self.locals[src], dim, local_shift,
                                   boundary_from=boundary)
            out.locals.append(shifted)
        return out

    def _fetch_for(self, rank: int, dim: int) -> np.ndarray:
        return self._exchanged_field(rank, dim)

    # ------------------------------------------------------------------
    # Field arithmetic (rank-local + allreduce)
    # ------------------------------------------------------------------
    def binary(self, other: "DistributedLattice", fn) -> "DistributedLattice":
        out = self.clone_empty()
        out.locals = [fn(a, b) for a, b in zip(self.locals, other.locals)]
        return out

    def __add__(self, other):
        return self.binary(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self.binary(other, lambda a, b: a - b)

    def __mul__(self, scalar):
        out = self.clone_empty()
        out.locals = [a * scalar for a in self.locals]
        return out

    __rmul__ = __mul__

    def inner_product(self, other: "DistributedLattice") -> complex:
        """Rank-local inner products + simulated allreduce."""
        return sum(a.inner_product(b)
                   for a, b in zip(self.locals, other.locals))

    def norm2(self) -> float:
        return float(self.inner_product(self).real)

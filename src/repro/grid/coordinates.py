"""Lexicographic coordinate utilities.

Convention throughout the package: dimension 0 is fastest-varying
(Grid's own lexicographic order), i.e. for dims ``[Lx, Ly, Lz, Lt]``
the index of coordinate ``(x, y, z, t)`` is
``x + Lx*(y + Ly*(z + Lz*t))``.
"""

from __future__ import annotations

import numpy as np


def index_of(coor, dims) -> int:
    """Lexicographic index of one coordinate tuple."""
    idx = 0
    stride = 1
    for c, d in zip(coor, dims):
        if not 0 <= c < d:
            raise ValueError(f"coordinate {tuple(coor)} outside dims {list(dims)}")
        idx += c * stride
        stride *= d
    return idx


def coor_of(index: int, dims) -> tuple:
    """Coordinate tuple of a lexicographic index."""
    total = int(np.prod(dims))
    if not 0 <= index < total:
        raise ValueError(f"index {index} outside volume {total}")
    coor = []
    for d in dims:
        coor.append(index % d)
        index //= d
    return tuple(coor)


def coordinate_table(dims) -> np.ndarray:
    """(volume, ndim) array of all coordinates in lexicographic order."""
    dims = list(dims)
    vol = int(np.prod(dims))
    table = np.empty((vol, len(dims)), dtype=np.int64)
    idx = np.arange(vol)
    for k, d in enumerate(dims):
        table[:, k] = idx % d
        idx = idx // d
    return table


def indices_of(coors: np.ndarray, dims) -> np.ndarray:
    """Vectorized :func:`index_of` on an (N, ndim) coordinate array."""
    coors = np.asarray(coors)
    out = np.zeros(coors.shape[0], dtype=np.int64)
    stride = 1
    for k, d in enumerate(dims):
        out += coors[:, k] * stride
        stride *= d
    return out


def parity(coor) -> int:
    """Even/odd checkerboard parity of a coordinate (0 = even)."""
    return int(sum(int(c) for c in coor) % 2)

"""Vectorized colour/spin tensor contractions.

Every contraction is expressed as a loop over *tensor* indices with
backend calls over ``(osites, ..., nlanes)`` slices, so each backend
call is one whole-lattice vector operation — Grid's "one instruction
per lattice-wide tensor element" execution shape.  The complex
multiply-adds inside are exactly the operations the paper implements
with FCMLA (Section V-C) or real arithmetic (Section V-E).
"""

from __future__ import annotations

import numpy as np


def su3_mul_vec(backend, U: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``out_a = sum_b U[a,b] v[..., b]``.

    ``U``: ``(osites, 3, 3, nlanes)``; ``v``: ``(osites, *mid, 3,
    nlanes)`` where ``mid`` is typically the half-spinor axis.  The
    colour axis of ``v`` must be axis ``-2``.
    """
    out = np.zeros_like(v)
    mid_shape = v.shape[1:-2]
    for a in range(3):
        for b in range(3):
            u_ab = U[:, a, b]  # (osites, nlanes)
            if mid_shape:
                u_ab = u_ab[:, None]  # broadcast over the spin axis
                u_ab = np.broadcast_to(u_ab, v[..., b, :].shape)
            out[..., a, :] = backend.madd(out[..., a, :], u_ab, v[..., b, :])
    return out


def su3_dagger_mul_vec(backend, U: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``out_a = sum_b conj(U[b,a]) v[..., b]`` — the adjoint link."""
    out = np.zeros_like(v)
    mid_shape = v.shape[1:-2]
    for a in range(3):
        for b in range(3):
            u_ba = U[:, b, a]
            if mid_shape:
                u_ba = np.broadcast_to(u_ba[:, None], v[..., b, :].shape)
            out[..., a, :] = backend.conj_madd(out[..., a, :], u_ba,
                                               v[..., b, :])
    return out


def colour_mm(backend, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """3x3 colour matrix product ``A B`` per site."""
    out = np.zeros_like(A)
    for a in range(3):
        for c in range(3):
            for b in range(3):
                out[:, a, c] = backend.madd(out[:, a, c], A[:, a, b],
                                            B[:, b, c])
    return out


def colour_mm_dagger_right(backend, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``A B^dagger`` per site."""
    out = np.zeros_like(A)
    for a in range(3):
        for c in range(3):
            for b in range(3):
                # (A B^+)_{ac} = sum_b A_{ab} conj(B_{cb})
                #             = sum_b conj(B_{cb}) A_{ab}
                out[:, a, c] = backend.conj_madd(out[:, a, c], B[:, c, b],
                                                 A[:, a, b])
    return out


def colour_trace_re(backend, A: np.ndarray) -> float:
    """``sum_sites Re tr A`` (plaquette accumulation)."""
    total = 0.0
    for a in range(3):
        total += backend.reduce_sum(A[:, a, a]).real
    return total


def colour_inner(backend, x: np.ndarray, y: np.ndarray) -> complex:
    """``sum conj(x) . y`` over every index — generic inner product."""
    return backend.reduce_sum(backend.conj_mul(x, y))

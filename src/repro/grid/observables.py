"""Gauge-field observables: Wilson loops and Polyakov lines.

Beyond the plaquette (the 1x1 Wilson loop), rectangular Wilson loops
and the Polyakov line are the standard first observables of a lattice
gauge code; they exercise long chains of the colour matrix products and
circular shifts that the SIMD backends accelerate.
"""

from __future__ import annotations


from repro.grid.cartesian import GridCartesian
from repro.grid.cshift import cshift
from repro.grid.lattice import Lattice
from repro.grid.tensor import colour_mm, colour_mm_dagger_right, \
    colour_trace_re


def line_product(links: list, grid: GridCartesian, mu: int,
                 length: int) -> Lattice:
    """``L_mu(x; n) = U_mu(x) U_mu(x+mu) ... U_mu(x+(n-1)mu)``."""
    seg = links[mu].copy()
    hop = links[mu]
    for step in range(1, length):
        hop = cshift(hop, mu, +1)
        seg = Lattice(grid, (3, 3),
                      colour_mm(grid.backend, seg.data, hop.data))
    return seg


def wilson_loop(links: list, grid: GridCartesian, mu: int, nu: int,
                r: int, t: int) -> float:
    """Average R x T Wilson loop in the (mu, nu) plane.

    ``W = Re tr [ L_mu(x;R) L_nu(x+R mu;T) L_mu(x+T nu;R)^+
    L_nu(x;T)^+ ] / 3``; reduces to the plaquette for R = T = 1.
    """
    if mu == nu:
        raise ValueError("Wilson loop needs two distinct directions")
    be = grid.backend
    bottom = line_product(links, grid, mu, r)           # L_mu(x; R)
    right = line_product(links, grid, nu, t)            # L_nu(x; T)
    right_shift = right
    for _ in range(r):
        right_shift = cshift(right_shift, mu, +1)       # L_nu(x+R mu; T)
    top = bottom
    for _ in range(t):
        top = cshift(top, nu, +1)                       # L_mu(x+T nu; R)
    m1 = colour_mm(be, bottom.data, right_shift.data)
    m2 = colour_mm_dagger_right(be, m1, top.data)
    m3 = colour_mm_dagger_right(be, m2, right.data)
    return colour_trace_re(be, m3) / (3.0 * grid.lsites)


def average_plaquette(links: list, grid: GridCartesian) -> float:
    """All-plane average 1x1 Wilson loop (same as ``su3.plaquette``)."""
    total = 0.0
    planes = 0
    for mu in range(grid.ndim):
        for nu in range(mu + 1, grid.ndim):
            total += wilson_loop(links, grid, mu, nu, 1, 1)
            planes += 1
    return total / planes


def polyakov_loop(links: list, grid: GridCartesian,
                  time_dir: int = 3) -> complex:
    """Volume-averaged Polyakov line: ``<tr prod_t U_t(x, t)> / 3``.

    The product winds once around the (periodic) time direction; its
    expectation value is the deconfinement order parameter.
    """
    lt = grid.ldims[time_dir]
    line = line_product(links, grid, time_dir, lt)
    # tr over colour, then average over the 3d volume (every site along
    # the loop carries the same value's cyclic permutation; averaging
    # over all sites is equivalent and simpler in this layout).
    be = grid.backend
    tr = 0.0 + 0.0j
    for a in range(3):
        tr += be.reduce_sum(line.data[:, a, a])
    return complex(tr) / (3.0 * grid.lsites)

"""The Wilson hopping term (Eq. (1)) and Wilson Dirac operator.

The paper's Eq. (1)::

    psi'_x = D_h psi
           = sum_mu { U_{x,mu} (1 + gamma_mu) psi_{x+mu}
                    + U^+_{x-mu,mu} (1 - gamma_mu) psi_{x-mu} }

"The most compute-intensive task typically is the product of the
lattice Dirac operator and a quark field" (Section II-A) — this module
is that task.  Implementation follows Grid's cshift-based operator:
each direction gathers the neighbour field (a circular shift that
lane-permutes at virtual-node boundaries), spin-projects to a
half-spinor, applies the SU(3) link, and reconstructs.

The full Wilson operator used by the solvers is
``M = (4 + m) - (1/2) D_h`` with bare mass ``m``; it satisfies
gamma5-hermiticity, ``gamma_5 M gamma_5 = M^dagger``, which the test
suite asserts.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence


from repro.engine.operators import OperatorGeometry
from repro.engine.plan import kernel_plan
from repro.grid import gamma as g
from repro.telemetry import trace as _telemetry
from repro.grid.cartesian import GridCartesian
from repro.grid.cshift import cshift
from repro.grid.lattice import Lattice
from repro.grid.tensor import su3_dagger_mul_vec, su3_mul_vec
from repro.perf.fused import fused_dhop

#: Spinor tensor shape: (spin, colour).
SPINOR = (4, 3)


def is_spinor_batch(tensor_shape: tuple) -> bool:
    """True for a multi-RHS batch tensor ``(nrhs, 4, 3)`` (see
    :mod:`repro.grid.multirhs`)."""
    return len(tensor_shape) == 3 and tensor_shape[1:] == SPINOR \
        and tensor_shape[0] >= 1


class WilsonDirac:
    """Wilson fermion matrix over a gauge configuration.

    Parameters
    ----------
    links:
        Four gauge-link lattices (tensor shape ``(3, 3)``), one per
        direction.
    mass:
        The bare quark mass ``m``.
    cshift_fn:
        Shift implementation; the distributed layer substitutes a
        halo-exchanging variant.  Defaults to the single-rank
        :func:`repro.grid.cshift.cshift`.
    """

    def __init__(self, links: Sequence[Lattice], mass: float = 0.1,
                 cshift_fn: Optional[Callable] = None) -> None:
        if len(links) != links[0].grid.ndim:
            raise ValueError("need one gauge link field per direction")
        self.links = list(links)
        self.grid: GridCartesian = links[0].grid
        self.mass = float(mass)
        self._cshift = cshift_fn if cshift_fn is not None else cshift
        # U_mu(x - mu) gathered to x, needed for the backward hop; the
        # links are static so this is precomputed once (Grid does the
        # same inside its stencil setup).
        self._links_back = [self._cshift(u, mu, -1)
                            for mu, u in enumerate(self.links)]

    # ------------------------------------------------------------------
    def dhop(self, psi: Lattice) -> Lattice:
        """Apply the hopping term ``D_h`` of Eq. (1).

        Dispatch is resolved by the execution engine: the grid's
        :class:`~repro.engine.plan.KernelPlan` (cached per policy)
        decides between the fused+tiled sweep and the layered
        reference, and whether a multi-RHS batch (tensor
        ``(nrhs, 4, 3)``) shares one set of neighbour gathers or is
        swept column by column.  Every route is bit-identical.

        With telemetry tracing on, the sweep is wrapped in a span
        carrying the flop/byte metadata the roofline report consumes;
        the span *observes* the call (one timer around an unchanged
        body), so results are bit-identical with tracing on or off.
        """
        if not _telemetry.tracing():
            return self._dhop_impl(psi)
        ncols = psi.tensor_shape[0] if len(psi.tensor_shape) == 3 else 0
        with _telemetry.span(
            "dhop.batched" if ncols else "dhop",
            sites=self.grid.gsites * max(ncols, 1),
            flops_per_site=self.flops_per_site(),
            bytes_per_site=self.bytes_per_site(),
            backend=self.grid.backend.name,
            nrhs=ncols,
        ):
            return self._dhop_impl(psi)

    def _dhop_impl(self, psi: Lattice) -> Lattice:
        ncols = self._check(psi)
        plan = kernel_plan(self.grid, "dhop")
        if ncols and not plan.batched:
            # Batching off: apply column by column (nrhs independent
            # sweeps, nrhs x the gathers — the unamortised reference).
            from repro.grid.multirhs import split_rhs, stack_rhs

            return stack_rhs([self.dhop(c) for c in split_rhs(psi)])
        if plan.codegen != "off":
            # Generated, exec-compiled sweep from the codegen cache —
            # bit-identical to both paths below (tests/codegen pins it).
            from repro.codegen import compiled_dhop

            return compiled_dhop(self, psi, plan=plan)
        if plan.fused:
            # Fused+tiled engine sweep — bit-identical to the layered
            # path below (see repro.perf.fused for the argument).
            return fused_dhop(self, psi, plan=plan)
        plan.stages.bump("layered_sweeps")
        be = self.grid.backend
        out = Lattice(self.grid, psi.tensor_shape)
        for mu in range(self.grid.ndim):
            # One gather per direction, shared across the batch.
            psi_fwd = self._cshift(psi, mu, +1)
            psi_bwd = self._cshift(psi, mu, -1)
            cols = range(ncols) if ncols else (slice(None),)
            for j in cols:
                acc = out.data[:, j]
                # Forward: U_{x,mu} (1 + gamma_mu) psi_{x+mu}
                h = g.project(be, psi_fwd.data[:, j], mu, +1)
                uh = su3_mul_vec(be, self.links[mu].data, h)
                full = g.reconstruct(be, uh, mu, +1)
                acc2 = be.add(acc, full)
                # Backward: U^+_{x-mu,mu} (1 - gamma_mu) psi_{x-mu}
                h = g.project(be, psi_bwd.data[:, j], mu, -1)
                uh = su3_dagger_mul_vec(be, self._links_back[mu].data, h)
                full = g.reconstruct(be, uh, mu, -1)
                out.data[:, j] = be.add(acc2, full)
        return out

    def apply(self, psi: Lattice) -> Lattice:
        """The Wilson matrix ``M psi = (4 + m) psi - 1/2 D_h psi``."""
        self._check(psi)
        hop = self.dhop(psi)
        return psi * (4.0 + self.mass) - hop * 0.5

    # Grid naming convenience.
    M = apply

    def _gamma5(self, psi: Lattice) -> Lattice:
        """``gamma_5 psi``, column-wise for a batch (gamma acts on the
        spin axis, which sits behind the batch axis)."""
        be = self.grid.backend
        ncols = self._check(psi)
        if not ncols:
            return Lattice(self.grid, psi.tensor_shape,
                           g.gamma5_apply(be, psi.data))
        out = Lattice(self.grid, psi.tensor_shape)
        for j in range(ncols):
            out.data[:, j] = g.gamma5_apply(be, psi.data[:, j])
        return out

    def apply_dagger(self, psi: Lattice) -> Lattice:
        """``M^dagger psi`` via gamma5-hermiticity:
        ``M^dagger = gamma_5 M gamma_5``."""
        return self._gamma5(self.apply(self._gamma5(psi)))

    Mdag = apply_dagger

    def mdag_m(self, psi: Lattice) -> Lattice:
        """The hermitian positive-definite ``M^dagger M`` (CG target)."""
        return self.apply_dagger(self.apply(psi))

    # ------------------------------------------------------------------
    # FermionOperator protocol metadata
    # ------------------------------------------------------------------
    @property
    def geometry(self) -> OperatorGeometry:
        """Where and on what this operator acts (protocol metadata)."""
        return OperatorGeometry(
            gdims=tuple(self.grid.gdims),
            tensor_shape=SPINOR,
            dtype=str(self.grid.dtype),
            backend=self.grid.backend.name,
        )

    def flops_per_site(self) -> int:
        """Nominal floating-point operations per lattice site of dhop.

        The community-standard count for Wilson dslash is 1320 flops
        per site (8 directions x SU(3) half-spinor multiplies + spin
        projection/reconstruction), used to convert benchmark timings
        to Flop/s.
        """
        return 1320

    def bytes_per_site(self) -> int:
        """Nominal dhop memory traffic per site: read 8 neighbour
        spinors (12 complex each) and 8 links (9 complex each), write
        one spinor — the count used for arithmetic-intensity
        estimates (perfect caching assumed)."""
        n_complex = 8 * 12 + 8 * 9 + 12
        return n_complex * self.grid.dtype.itemsize

    def _check(self, psi: Lattice) -> int:
        """Validate the field; returns the batch width (0 = plain)."""
        if psi.tensor_shape != SPINOR and \
                not is_spinor_batch(psi.tensor_shape):
            raise ValueError(
                f"Wilson operator acts on spinors {SPINOR} or batches "
                f"(nrhs,) + {SPINOR}, got {psi.tensor_shape}"
            )
        if psi.grid.odims != self.grid.odims:
            raise ValueError("spinor lives on a different grid")
        return psi.tensor_shape[0] if len(psi.tensor_shape) == 3 else 0

"""Quark propagators and meson correlators.

The physics payload that motivates the whole stack (Section II-A): a
quark propagator is the set of solutions ``M S = delta`` for the twelve
point sources (4 spins x 3 colours), and the pion two-point function is
its spin-colour-summed modulus per timeslice,

    C(t) = sum_{x, s, s', c, c'} |S(x, t)^{s s'}_{c c'}|^2 ,

which decays exponentially with the pion mass.  Each correlator costs
12 Krylov solves — the reason "a significant fraction of
time-to-solution of LQCD applications is spent in solving a linear set
of equations".
"""

from __future__ import annotations

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.lattice import Lattice
from repro.grid.solver import SolverResult, solve_wilson_cgne
from repro.grid.wilson import SPINOR, WilsonDirac


def point_source(grid: GridCartesian, coor, spin: int, colour: int) -> Lattice:
    """A delta source at local coordinate ``coor`` with one spin-colour
    component set to 1."""
    src = Lattice(grid, SPINOR)
    val = np.zeros(SPINOR, dtype=grid.dtype)
    val[spin, colour] = 1.0
    src.poke_site(coor, val)
    return src


def propagator(dirac: WilsonDirac, coor, tol: float = 1e-8,
               max_iter: int = 2000, solver=solve_wilson_cgne):
    """The 12 columns ``S^{s c} = M^{-1} delta^{s c}``.

    Returns ``(columns, results)`` where ``columns[s][c]`` is a spinor
    lattice and ``results`` the per-solve convergence records.
    """
    columns = [[None] * 3 for _ in range(4)]
    results: list[SolverResult] = []
    for spin in range(4):
        for colour in range(3):
            src = point_source(dirac.grid, coor, spin, colour)
            res = solver(dirac, src, tol=tol, max_iter=max_iter)
            if not res.converged:
                raise RuntimeError(
                    f"propagator column (s={spin}, c={colour}) did not "
                    f"converge: residual {res.residual:.2e}"
                )
            columns[spin][colour] = res.x
            results.append(res)
    return columns, results


def timeslice_sums(field: Lattice, time_dir: int = 3) -> np.ndarray:
    """``sum_x |field(x, t)|^2`` per timeslice (canonical ordering)."""
    grid = field.grid
    can = field.to_canonical()  # (lsites, ...) dim0 fastest
    spatial = int(np.prod([d for i, d in enumerate(grid.ldims)
                           if i != time_dir]))
    lt = grid.ldims[time_dir]
    if time_dir != grid.ndim - 1:
        raise NotImplementedError("timeslices along the last dim only")
    mags = (np.abs(can.reshape(lt, spatial, -1)) ** 2).sum(axis=(1, 2))
    return mags


def pion_correlator(dirac: WilsonDirac, source_coor=None, tol: float = 1e-8,
                    max_iter: int = 2000) -> np.ndarray:
    """The pion two-point function ``C(t)`` from a point source.

    For the pion interpolator the gamma5 factors square to one, so the
    correlator is simply the summed modulus of the propagator.
    """
    grid = dirac.grid
    if source_coor is None:
        source_coor = tuple(0 for _ in grid.ldims)
    columns, _ = propagator(dirac, source_coor, tol=tol, max_iter=max_iter)
    lt = grid.ldims[-1]
    corr = np.zeros(lt)
    for spin in range(4):
        for colour in range(3):
            corr += timeslice_sums(columns[spin][colour])
    # Shift so the source sits at t = 0.
    t0 = source_coor[-1]
    return np.roll(corr, -t0)


def effective_mass(corr: np.ndarray) -> np.ndarray:
    """``m_eff(t) = log C(t) / C(t+1)`` — plateaus at the pion mass.

    Only the first half (before the periodic image dominates) is
    meaningful on a small lattice.
    """
    corr = np.asarray(corr)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(corr[:-1] / corr[1:])

"""Cartesian grids with virtual-node SIMD decomposition (Fig. 1).

Grid's central layout idea (Section II-B of the paper): within a
thread, the sub-lattice is distributed over a set of *virtual nodes*,
one per SIMD lane.  Each virtual node owns a contiguous block of the
sub-lattice; lane *l* of every vector register holds the data of
virtual node *l* at the same block-local ("outer") site.  Because the
blocks are large, nearest-neighbour sites live in different *vectors*
(different outer sites), not different lanes of one vector — except at
block boundaries, where a lane permutation is required (implemented in
:mod:`repro.grid.cshift`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.grid.coordinates import coordinate_table, indices_of
from repro.simd.backend import SimdBackend


def default_simd_layout(local_dims: Sequence[int], nlanes: int) -> list[int]:
    """Distribute ``nlanes`` SIMD lanes over lattice dimensions.

    Greedy: repeatedly halve the dimension whose per-virtual-node block
    is currently largest (and still even), mirroring Grid's default of
    keeping the virtual-node sub-lattice as chunky as possible so that
    most neighbour accesses stay within a block.
    """
    if nlanes < 1 or nlanes & (nlanes - 1):
        raise ValueError(f"lane count must be a power of two, got {nlanes}")
    layout = [1] * len(local_dims)
    blocks = [int(d) for d in local_dims]
    remaining = nlanes
    while remaining > 1:
        candidates = [i for i, b in enumerate(blocks) if b % 2 == 0]
        if not candidates:
            raise ValueError(
                f"cannot spread {nlanes} lanes over local dims "
                f"{list(local_dims)}: blocks {blocks} all odd"
            )
        i = max(candidates, key=lambda j: (blocks[j], -j))
        blocks[i] //= 2
        layout[i] *= 2
        remaining //= 2
    return layout


@dataclass
class GridCartesian:
    """Geometry of one rank's sub-lattice, SIMD-decomposed.

    Parameters
    ----------
    gdims:
        Global lattice dimensions, dimension 0 fastest (e.g.
        ``[X, Y, Z, T]``).
    backend:
        The SIMD backend; its complex lane count is the number of
        virtual nodes.
    simd_layout:
        Lanes per dimension (product = lane count).  ``None`` chooses
        :func:`default_simd_layout`.
    mpi_layout:
        Ranks per dimension for distributed grids; this object then
        describes one rank's local volume.
    dtype:
        Lattice scalar precision (``complex128`` or ``complex64``).
    """

    gdims: list
    backend: SimdBackend
    simd_layout: Optional[list] = None
    mpi_layout: Optional[list] = None
    dtype: np.dtype = np.complex128

    ldims: list = field(init=False)
    odims: list = field(init=False)
    osites: int = field(init=False)
    nlanes: int = field(init=False)

    def __post_init__(self) -> None:
        self.gdims = [int(d) for d in self.gdims]
        self.dtype = np.dtype(self.dtype)
        if self.mpi_layout is None:
            self.mpi_layout = [1] * len(self.gdims)
        self.mpi_layout = [int(r) for r in self.mpi_layout]
        if len(self.mpi_layout) != len(self.gdims):
            raise ValueError("mpi_layout rank mismatch")
        for d, r in zip(self.gdims, self.mpi_layout):
            if d % r:
                raise ValueError(
                    f"global dims {self.gdims} not divisible by rank grid "
                    f"{self.mpi_layout}"
                )
        self.ldims = [d // r for d, r in zip(self.gdims, self.mpi_layout)]
        self.nlanes = self.backend.clanes(self.dtype)
        if self.simd_layout is None:
            self.simd_layout = default_simd_layout(self.ldims, self.nlanes)
        self.simd_layout = [int(s) for s in self.simd_layout]
        if int(np.prod(self.simd_layout)) != self.nlanes:
            raise ValueError(
                f"simd_layout {self.simd_layout} does not use the "
                f"{self.nlanes} lanes of backend {self.backend.name}"
            )
        for d, s in zip(self.ldims, self.simd_layout):
            if d % s:
                raise ValueError(
                    f"local dims {self.ldims} not divisible by simd layout "
                    f"{self.simd_layout}"
                )
        self.odims = [d // s for d, s in zip(self.ldims, self.simd_layout)]
        self.osites = int(np.prod(self.odims))
        # Precomputed coordinate tables.
        self._ocoor = coordinate_table(self.odims)          # (osites, ndim)
        self._vcoor = coordinate_table(self.simd_layout)    # (nlanes, ndim)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.gdims)

    @property
    def lsites(self) -> int:
        """Local (per-rank) volume."""
        return int(np.prod(self.ldims))

    @property
    def gsites(self) -> int:
        """Global volume."""
        return int(np.prod(self.gdims))

    @property
    def nranks(self) -> int:
        return int(np.prod(self.mpi_layout))

    def ocoor_table(self) -> np.ndarray:
        """(osites, ndim) outer-site coordinates (copy)."""
        return self._ocoor.copy()

    def vcoor_table(self) -> np.ndarray:
        """(nlanes, ndim) virtual-node coordinates (copy)."""
        return self._vcoor.copy()

    # ------------------------------------------------------------------
    # Site mapping: (osite, lane) <-> local coordinate
    # ------------------------------------------------------------------
    def local_coor(self, osite: int, lane: int) -> tuple:
        """Local coordinate held by (outer site, lane).

        Virtual node *lane* owns the block starting at
        ``vcoor * odims``; within the block, the outer coordinate is
        the offset — Fig. 1's decomposition.
        """
        oc = self._ocoor[osite]
        vc = self._vcoor[lane]
        return tuple(int(o + od * v) for o, od, v in
                     zip(oc, self.odims, vc))

    def osite_lane_of(self, coor) -> tuple[int, int]:
        """Inverse of :func:`local_coor`."""
        oc = []
        vc = []
        for c, od, s in zip(coor, self.odims, self.simd_layout):
            if not 0 <= c < od * s:
                raise ValueError(f"coordinate {tuple(coor)} outside local dims")
            oc.append(int(c) % od)
            vc.append(int(c) // od)
        osite = indices_of(np.array([oc]), self.odims)[0]
        lane = indices_of(np.array([vc]), self.simd_layout)[0]
        return int(osite), int(lane)

    def local_coor_tables(self) -> np.ndarray:
        """(osites, nlanes, ndim) local coordinates of every slot."""
        oc = self._ocoor[:, None, :]
        vc = self._vcoor[None, :, :]
        od = np.array(self.odims)[None, None, :]
        return oc + od * vc

    def lane_stride(self, dim: int) -> int:
        """Lexicographic stride of dimension ``dim`` in lane index space."""
        return int(np.prod(self.simd_layout[:dim], dtype=np.int64))

    def permute_level(self, dim: int) -> int:
        """Grid permute level exchanging neighbours along ``dim``'s lanes.

        Valid when ``simd_layout[dim] == 2``: crossing the virtual-node
        boundary in that dimension toggles one bit of the lane index,
        i.e. swaps lane blocks of size :func:`lane_stride` — Grid's
        ``Permute<level>``.
        """
        if self.simd_layout[dim] != 2:
            raise ValueError(
                f"dimension {dim} has simd extent {self.simd_layout[dim]}; "
                "a single block permute needs extent 2"
            )
        block = self.lane_stride(dim)
        level = int(np.log2(self.nlanes // (2 * block)))
        return level

    # ------------------------------------------------------------------
    # Checkerboard
    # ------------------------------------------------------------------
    def parity_mask(self) -> np.ndarray:
        """(osites, nlanes) array of site parities (0 even, 1 odd)."""
        coors = self.local_coor_tables()
        return (coors.sum(axis=-1) % 2).astype(np.int8)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridCartesian(gdims={self.gdims}, mpi={self.mpi_layout}, "
            f"simd={self.simd_layout}, odims={self.odims}, "
            f"backend={self.backend.name})"
        )

"""Simulated rank-level domain decomposition with halo exchange.

The coarsest parallelization level of Section II-A: "a set of
sub-lattices is distributed over (a very large number of) different
processes, e.g., different MPI ranks."  Here the "ranks" are in-process
sub-lattices of one :class:`DistributedLattice`; the exchange is a
deterministic buffer copy, optionally through the fp16 compression Grid
applies to network data (Section V-B), with the transferred volume
accounted so benchmarks can report wire bytes.

The distributed circular shift reuses :func:`repro.grid.cshift.
cshift_local`, handing it the +dim neighbour rank's field for the
boundary lanes — so the virtual-node lane permutes and the rank halo
logic compose exactly as they do in Grid.

Resilience
----------
Production halo exchange runs for days over flaky interconnects, so the
wire path here is byte-level and self-healing: every message can carry
a CRC-32 (``checksum_halos=True``), a :class:`repro.resilience.inject.
CommsFaultInjector` can drop/corrupt/truncate/duplicate messages, and a
detected-bad message is retransmitted with exponential backoff up to
``max_retries`` times before :class:`HaloExchangeError` is raised.
Without checksums the same faults are applied *silently*: a dropped or
truncated message is zero-filled, a corrupted one is used as-is — the
classic silent-data-corruption failure mode the checksummed path
exists to prevent.  With no injector and no faults the checksummed
path is bit-identical to the plain one.

Asynchronous exchange
---------------------
Real halo exchange is non-blocking (``MPI_Isend``/``MPI_Irecv``); Grid
hides it behind interior compute.  Here the split is explicit:
:meth:`DistributedLattice._post_halo` performs the deterministic wire
work (accounting, compression, checksum/retry) immediately and hands
back a :class:`HaloHandle` whose *availability* is delayed by a
pluggable :class:`LatencyModel`; :class:`AsyncCommsQueue` tracks the
in-flight set and blocks in ``wait``.  With no latency model (the
default) a wait returns instantly and the behaviour is exactly the old
synchronous exchange.  The overlap engine (:mod:`repro.grid.overlap`)
posts every halo up front and computes interior sites while the
messages are "in flight", which is what makes the overlap observable
and benchmarkable without real MPI.
"""

from __future__ import annotations

import time
import weakref
import zlib
from dataclasses import dataclass

import numpy as np

from repro.engine.policy import current_policy
from repro.grid import compression
from repro.grid.cartesian import GridCartesian
from repro.grid.coordinates import coordinate_table, index_of, indices_of
from repro.grid.cshift import cshift_local
from repro.grid.lattice import Lattice
from repro.perf.counters import counters as _perf_counters
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry_trace


class HaloExchangeError(RuntimeError):
    """A halo message could not be delivered intact within the retry
    budget (detected, but unrecovered)."""


#: Live distributed lattices, for :func:`reset_all_comms` (weakly held
#: so benchmark/test fixtures can reset stray state without keeping
#: lattices alive).
_LIVE_COMMS: "weakref.WeakSet" = weakref.WeakSet()


def reset_all_comms() -> int:
    """Clear the comms state of every live :class:`DistributedLattice`:
    traffic/resilience counters and any halo still in the in-flight
    queue.  Returns how many lattices were touched.  Called between
    benchmark repetitions and campaign runs (the comms analogue of
    :func:`repro.simd.resilient.reset_all_degraded`) so one run's
    counters cannot bleed into the next's gated metrics."""
    n = 0
    for dl in list(_LIVE_COMMS):
        dl.stats.reset()
        dl.comms_queue.reset()
        n += 1
    return n


def _collect_comms_metrics() -> dict:
    """Aggregate traffic/resilience stats and queue counters over every
    live :class:`DistributedLattice`, as a telemetry collector.

    Clones share their parent's ``stats``/``comms_queue`` objects, so
    aggregation dedupes by object identity.  The collector is a *view*:
    it resets with its owner (:func:`reset_all_comms`), which is what
    lets ``engine.reset_all`` produce a provably all-zero snapshot.
    """
    stats_seen: dict = {}
    queues_seen: dict = {}
    for dl in list(_LIVE_COMMS):
        stats_seen[id(dl.stats)] = dl.stats
        queues_seen[id(dl.comms_queue)] = dl.comms_queue
    out = {
        "comms.messages": 0, "comms.complex_sent": 0,
        "comms.bytes_sent": 0, "comms.retries": 0,
        "comms.detected_corruptions": 0, "comms.detected_drops": 0,
        "comms.duplicates_discarded": 0, "comms.recovered_messages": 0,
        "comms.unrecovered_failures": 0, "comms.backoff_units": 0,
        "comms.halo_posted": 0, "comms.halo_completed": 0,
        "comms.halo_pending": 0, "comms.max_in_flight": 0,
        "comms.wait_seconds": 0.0,
    }
    for st in stats_seen.values():
        out["comms.messages"] += st.messages
        out["comms.complex_sent"] += st.complex_sent
        out["comms.bytes_sent"] += st.bytes_sent
        out["comms.retries"] += st.retries
        out["comms.detected_corruptions"] += st.detected_corruptions
        out["comms.detected_drops"] += st.detected_drops
        out["comms.duplicates_discarded"] += st.duplicates_discarded
        out["comms.recovered_messages"] += st.recovered_messages
        out["comms.unrecovered_failures"] += st.unrecovered_failures
        out["comms.backoff_units"] += st.backoff_units
    for q in queues_seen.values():
        out["comms.halo_posted"] += q.posted
        out["comms.halo_completed"] += q.completed
        out["comms.halo_pending"] += q.pending
        out["comms.max_in_flight"] = max(out["comms.max_in_flight"],
                                         q.max_in_flight)
        out["comms.wait_seconds"] += q.wait_seconds
    return out


_telemetry_metrics.registry().register_collector(
    "comms", _collect_comms_metrics
)


def invalidate_comms_plans() -> int:
    """Drop the memoized shift decompositions and halo message sizes of
    every live :class:`DistributedLattice` (both are pure geometry, so
    this forces re-derivation without changing any result).  Part of
    :func:`repro.engine.reset_all` — these memos are caches and are
    treated uniformly with the trace and plan caches.  Returns how many
    lattices were touched."""
    n = 0
    for dl in list(_LIVE_COMMS):
        dl._shift_params.clear()
        dl._halo_sizes.clear()
        n += 1
    return n


@dataclass(frozen=True)
class LatencyModel:
    """Simulated wire latency for the async halo exchange.

    A posted message becomes available ``latency_s + nbytes *
    seconds_per_byte`` after its post (an alpha-beta network model).
    The *content* of the message is computed deterministically at post
    time; the model delays only availability — so results are
    bit-identical at any latency, while wall-clock behaviour shows the
    serial-vs-overlapped difference the benchmarks measure.
    """

    latency_s: float = 0.0
    seconds_per_byte: float = 0.0

    def delay_for(self, nbytes: int) -> float:
        return self.latency_s + nbytes * self.seconds_per_byte


class HaloHandle:
    """One in-flight halo message (the simulated ``MPI_Request``)."""

    __slots__ = ("data", "ready_at", "nbytes", "tag", "done", "posted_at")

    def __init__(self, data, ready_at: float, nbytes: int, tag: str,
                 posted_at: float = 0.0) -> None:
        self.data = data
        self.ready_at = ready_at
        self.nbytes = nbytes
        self.tag = tag
        self.done = False
        self.posted_at = posted_at


class AsyncCommsQueue:
    """The in-flight halo queue: post now, wait later.

    Tracks how many messages are simultaneously outstanding
    (``max_in_flight`` — 1 for the ordered serial exchange, up to
    2·ndim·nranks for the overlap engine) and how long ``wait``
    actually blocked (``wait_seconds`` — the latency the overlap
    failed to hide).
    """

    def __init__(self, latency: LatencyModel = None) -> None:
        self.latency = latency
        self.in_flight: list = []
        self.posted = 0
        self.completed = 0
        self.max_in_flight = 0
        self.wait_seconds = 0.0

    def post(self, data, nbytes: int, tag: str = "") -> HaloHandle:
        now = time.perf_counter()
        delay = self.latency.delay_for(nbytes) if self.latency else 0.0
        handle = HaloHandle(data, now + delay, int(nbytes), tag,
                            posted_at=now)
        self.in_flight.append(handle)
        self.posted += 1
        self.max_in_flight = max(self.max_in_flight, len(self.in_flight))
        _perf_counters().bump("halo_posts")
        return handle

    def wait(self, handle: HaloHandle):
        """Block until ``handle`` lands; returns the received data."""
        if not handle.done:
            blocked = 0.0
            remaining = handle.ready_at - time.perf_counter()
            if remaining > 0:
                t0 = time.perf_counter()
                if remaining > 1e-3:
                    time.sleep(remaining - 5e-4)
                while time.perf_counter() < handle.ready_at:
                    pass  # sub-millisecond tail: spin for accuracy
                blocked = time.perf_counter() - t0
                self.wait_seconds += blocked
            handle.done = True
            self.in_flight.remove(handle)
            self.completed += 1
            _perf_counters().bump("halo_waits")
            policy = current_policy()
            if policy.metrics_active:
                done_at = time.perf_counter()
                _telemetry_metrics.registry().histogram(
                    "comms.halo_inflight_seconds"
                ).observe(done_at - handle.posted_at)
                _telemetry_metrics.registry().histogram(
                    "comms.halo_wait_seconds"
                ).observe(blocked)
                if policy.trace_active:
                    _telemetry_trace.record_span(
                        "halo", handle.posted_at, done_at,
                        tag=handle.tag, nbytes=handle.nbytes,
                        wait_seconds=blocked,
                    )
        return handle.data

    def drain(self) -> None:
        """Complete every outstanding message."""
        for handle in list(self.in_flight):
            self.wait(handle)

    @property
    def pending(self) -> int:
        return len(self.in_flight)

    def reset(self) -> None:
        """Discard in-flight messages and zero the queue counters."""
        self.in_flight.clear()
        self.posted = 0
        self.completed = 0
        self.max_in_flight = 0
        self.wait_seconds = 0.0


@dataclass
class CommsStats:
    """Accounting of simulated network traffic and link health.

    The resilience counters record only what the *protocol* can
    observe: CRC mismatches, timeouts, retransmissions.  Whether a
    fault actually fired is known to the injector (and its campaign),
    not to the receiver.
    """

    messages: int = 0
    complex_sent: int = 0
    bytes_sent: int = 0
    # -- self-healing path ---------------------------------------------
    retries: int = 0
    detected_corruptions: int = 0
    detected_drops: int = 0
    duplicates_discarded: int = 0
    recovered_messages: int = 0
    unrecovered_failures: int = 0
    backoff_units: int = 0

    def record(self, n_complex: int, compressed: bool, dtype) -> None:
        self.messages += 1
        self.complex_sent += n_complex
        self.bytes_sent += compression.wire_bytes(n_complex, compressed, dtype)

    @property
    def detected_failures(self) -> int:
        """All protocol-visible delivery failures."""
        return self.detected_corruptions + self.detected_drops

    def reset(self) -> None:
        """Zero every counter (between benchmark reps / campaign runs)."""
        self.messages = 0
        self.complex_sent = 0
        self.bytes_sent = 0
        self.retries = 0
        self.detected_corruptions = 0
        self.detected_drops = 0
        self.duplicates_discarded = 0
        self.recovered_messages = 0
        self.unrecovered_failures = 0
        self.backoff_units = 0


class RankGeometry:
    """The process grid: rank coordinate <-> rank index."""

    def __init__(self, mpi_layout) -> None:
        self.mpi_layout = [int(r) for r in mpi_layout]
        self.nranks = int(np.prod(self.mpi_layout))
        self._coors = coordinate_table(self.mpi_layout)

    def coor_of(self, rank: int):
        return tuple(int(c) for c in self._coors[rank])

    def rank_of(self, coor) -> int:
        coor = [c % r for c, r in zip(coor, self.mpi_layout)]
        return index_of(coor, self.mpi_layout)

    def neighbour(self, rank: int, dim: int, step: int) -> int:
        coor = list(self.coor_of(rank))
        coor[dim] += step
        return self.rank_of(coor)


class DistributedLattice:
    """One logical lattice split over simulated ranks.

    Each rank holds a :class:`Lattice` over a local
    :class:`GridCartesian` (same backend and SIMD layout everywhere).

    Parameters
    ----------
    checksum_halos:
        Verify every halo message with a CRC-32 and retransmit on
        mismatch/timeout (the self-healing path).
    comms_faults:
        Optional fault injector (duck-typed: ``deliver(payload,
        message, attempt, stats) -> list[np.ndarray]``) applied to
        every wire message.  ``None`` means a perfect network.
    max_retries:
        Retransmissions allowed per message before the exchange gives
        up and raises :class:`HaloExchangeError` (checksummed path
        only).
    latency:
        Optional :class:`LatencyModel` delaying halo availability
        (``None`` means a zero-latency wire, i.e. the old synchronous
        behaviour).

    ``comms_faults`` and ``latency`` default to the corresponding
    fields of the current :class:`repro.engine.ExecutionPolicy` when
    not given explicitly, so whole campaigns can be scoped onto a
    degraded network with ``engine.scope(latency=..., comms_faults=...)``
    instead of threading the models through every constructor.
    """

    def __init__(self, gdims, backend, mpi_layout, tensor_shape,
                 simd_layout=None, compress_halos: bool = False,
                 dtype=np.complex128, checksum_halos: bool = False,
                 comms_faults=None, max_retries: int = 3,
                 latency: LatencyModel = None) -> None:
        policy = current_policy()
        if comms_faults is None:
            comms_faults = policy.comms_faults
        if latency is None:
            latency = policy.latency
        self.ranks = RankGeometry(mpi_layout)
        self.compress_halos = compress_halos
        self.checksum_halos = checksum_halos
        self.comms_faults = comms_faults
        self.max_retries = int(max_retries)
        self.latency = latency
        self.stats = CommsStats()
        self.comms_queue = AsyncCommsQueue(latency)
        self._shift_params: dict = {}
        self._halo_sizes: dict = {}
        self.grids = []
        self.locals: list[Lattice] = []
        for r in range(self.ranks.nranks):
            grid = GridCartesian(gdims, backend, simd_layout=simd_layout,
                                 mpi_layout=mpi_layout, dtype=dtype)
            self.grids.append(grid)
            self.locals.append(Lattice(grid, tensor_shape))
        self.gdims = self.grids[0].gdims
        self.tensor_shape = self.locals[0].tensor_shape
        _LIVE_COMMS.add(self)

    def clone_empty(self, tensor_shape=None) -> "DistributedLattice":
        """A new distributed field sharing geometry, comms config,
        stats and the in-flight queue with ``self`` but holding no
        local lattices yet.  ``tensor_shape`` overrides the per-site
        tensor (used by the multi-RHS batch type); the halo-size cache
        is shared only when the tensor is unchanged."""
        out = DistributedLattice.__new__(DistributedLattice)
        out.ranks = self.ranks
        out.compress_halos = self.compress_halos
        out.checksum_halos = self.checksum_halos
        out.comms_faults = self.comms_faults
        out.max_retries = self.max_retries
        out.latency = self.latency
        out.stats = self.stats
        out.comms_queue = self.comms_queue
        out._shift_params = self._shift_params
        out.grids = self.grids
        out.gdims = self.gdims
        if tensor_shape is None:
            out.tensor_shape = self.tensor_shape
            out._halo_sizes = self._halo_sizes
        else:
            out.tensor_shape = tuple(int(t) for t in tensor_shape)
            out._halo_sizes = {}
        out.locals = []
        _LIVE_COMMS.add(out)
        return out

    # ------------------------------------------------------------------
    # Global <-> local data movement
    # ------------------------------------------------------------------
    def scatter(self, global_canonical: np.ndarray) -> "DistributedLattice":
        """Load a canonical global array ``(gsites, *tensor)``."""
        g0 = self.grids[0]
        expected = (g0.gsites,) + self.tensor_shape
        global_canonical = np.asarray(global_canonical, dtype=g0.dtype)
        if global_canonical.shape != expected:
            raise ValueError(
                f"global canonical shape {global_canonical.shape} != "
                f"{expected}"
            )
        local_coors = coordinate_table(g0.ldims)
        for r, lat in enumerate(self.locals):
            rc = self.ranks.coor_of(r)
            offs = np.array([c * ld for c, ld in zip(rc, g0.ldims)])
            idx = indices_of(local_coors + offs[None, :], self.gdims)
            lat.from_canonical(global_canonical[idx])
        return self

    def gather(self) -> np.ndarray:
        """Export to a canonical global array (inverse of scatter)."""
        g0 = self.grids[0]
        out = np.empty((g0.gsites,) + self.tensor_shape, dtype=g0.dtype)
        local_coors = coordinate_table(g0.ldims)
        for r, lat in enumerate(self.locals):
            rc = self.ranks.coor_of(r)
            offs = np.array([c * ld for c, ld in zip(rc, g0.ldims)])
            idx = indices_of(local_coors + offs[None, :], self.gdims)
            out[idx] = lat.to_canonical()
        return out

    # ------------------------------------------------------------------
    # The wire: byte-level transmit with detection and retry
    # ------------------------------------------------------------------
    def _transmit(self, payload: np.ndarray) -> np.ndarray:
        """Send one message through the (possibly faulty) link.

        ``payload`` is the flat uint8 wire image.  Returns the received
        bytes.  With checksums enabled a bad delivery is detected and
        retransmitted (bounded, exponential backoff); without them the
        receiver has no way to know and degrades silently.
        """
        injector = self.comms_faults
        if injector is None and not self.checksum_halos:
            return payload
        # record() has already counted this message; its 0-based ordinal:
        msg_id = self.stats.messages - 1
        for attempt in range(self.max_retries + 1):
            if injector is None:
                copies = [payload]
            else:
                copies = injector.deliver(payload, message=msg_id,
                                          attempt=attempt, stats=self.stats)
            if not self.checksum_halos:
                # No detection: take the first delivery at face value.
                if not copies:
                    return np.zeros_like(payload)  # "timeout" -> zeros
                got = copies[0]
                if got.size < payload.size:  # truncated -> zero-padded
                    got = np.concatenate(
                        [got, np.zeros(payload.size - got.size,
                                       dtype=np.uint8)]
                    )
                return got[:payload.size]
            # Checksummed path: CRC over the intact payload travels in
            # the (never-corrupted) message envelope.
            crc = zlib.crc32(payload.tobytes())
            good = None
            for i, got in enumerate(copies):
                ok = (got.size == payload.size
                      and zlib.crc32(got.tobytes()) == crc)
                if ok and good is None:
                    good = got
                elif i > 0:
                    self.stats.duplicates_discarded += 1
            if good is not None:
                if attempt > 0:
                    self.stats.recovered_messages += 1
                return good
            if not copies:
                self.stats.detected_drops += 1
            else:
                self.stats.detected_corruptions += 1
            if attempt < self.max_retries:
                self.stats.retries += 1
                self.stats.backoff_units += 1 << attempt
        self.stats.unrecovered_failures += 1
        raise HaloExchangeError(
            f"halo message {msg_id} undeliverable after "
            f"{self.max_retries} retries"
        )

    # ------------------------------------------------------------------
    # Halo exchange + shift
    # ------------------------------------------------------------------
    def _halo_sizes_for(self, dim: int):
        """(n_complex, wire_bytes) of one +dim halo message — memoized
        only while the engine's cache knob is on (cache semantics are
        uniform across the stack: with ``caches_active`` off, no cache
        is consulted or populated)."""
        caching = current_policy().caches_active
        sizes = self._halo_sizes.get(dim) if caching else None
        if sizes is None:
            grid = self.grids[0]
            halo_sites = grid.lsites // grid.ldims[dim]
            n_complex = halo_sites * int(np.prod(self.tensor_shape))
            sizes = (n_complex, compression.wire_bytes(
                n_complex, self.compress_halos, grid.dtype))
            if caching:
                self._halo_sizes[dim] = sizes
        return sizes

    def _post_halo(self, src_rank: int, dim: int) -> HaloHandle:
        """Post the +dim neighbour's field exchange for ``src_rank`` to
        the in-flight queue.  Volume is accounted as the genuine halo —
        one boundary slab — although the simulation hands over the full
        array for simplicity.

        Every deterministic step of the wire path — accounting,
        compression, fault injection, checksum verification, retry —
        runs *here at post time*; the latency model delays only the
        availability of the (already final) received data.  That is
        what makes the overlapped exchange bit-identical to the
        ordered one by construction.
        """
        nbr = self.ranks.neighbour(src_rank, dim, +1)
        data = self.locals[nbr].data
        grid = self.grids[src_rank]
        n_complex, nbytes = self._halo_sizes_for(dim)
        self.stats.record(n_complex, self.compress_halos, grid.dtype)
        pristine = self.comms_faults is None
        tag = f"r{src_rank}+d{dim}"
        if not self.compress_halos:
            if pristine and not self.checksum_halos:
                return self.comms_queue.post(data, nbytes, tag)
            wire = np.ascontiguousarray(data).view(np.uint8).ravel()
            received = self._transmit(wire)
            out = received.copy().view(grid.dtype).reshape(data.shape)
            return self.comms_queue.post(out, nbytes, tag)
        wire16 = compression.compress_complex(data)
        wire = np.ascontiguousarray(wire16).view(np.uint8).ravel()
        received = self._transmit(wire) if not pristine or \
            self.checksum_halos else wire
        out = compression.decompress_complex(
            received.copy().view(np.float16), grid.dtype
        ).reshape(data.shape)
        return self.comms_queue.post(out, nbytes, tag)

    def _exchanged_field(self, src_rank: int, dim: int) -> np.ndarray:
        """The +dim neighbour's local field, through the (optionally
        compressing, optionally checksummed) wire — the ordered
        synchronous exchange: post, then immediately wait."""
        return self.comms_queue.wait(self._post_halo(src_rank, dim))

    def _dist_shift_params(self, dim: int, shift: int):
        """(rank_steps, local_shift) decomposition of a global shift —
        the distributed half of the per-geometry plan cache (the
        rank-local half lives in :mod:`repro.grid.cshift`), memoized
        under the same engine cache knob as every other plan cache."""
        key = (dim, shift)
        caching = current_policy().caches_active
        params = self._shift_params.get(key) if caching else None
        if params is None:
            gshift = shift % self.gdims[dim]
            params = divmod(gshift, self.grids[0].ldims[dim])
            if caching:
                self._shift_params[key] = params
        return params

    def cshift(self, dim: int, shift: int) -> "DistributedLattice":
        """Distributed circular shift: ``out(x) = in(x + shift e_dim)``.

        Shifts are normalised into ``[0, ldims[dim])`` plus whole-rank
        steps, so arbitrary shifts work; each rank then shifts locally
        with its +dim neighbour's data covering the boundary lanes.
        """
        rank_steps, local_shift = self._dist_shift_params(dim, shift)
        out = self.clone_empty()
        for r in range(self.ranks.nranks):
            # The data for rank r comes from the rank `rank_steps`
            # ahead (plus a local shift with that rank's +dim halo).
            src = self.ranks.neighbour(r, dim, rank_steps)
            boundary = None
            if local_shift != 0:
                boundary = self._fetch_for(src, dim)
            shifted = cshift_local(self.locals[src], dim, local_shift,
                                   boundary_from=boundary)
            out.locals.append(shifted)
        return out

    def _fetch_for(self, rank: int, dim: int) -> np.ndarray:
        return self._exchanged_field(rank, dim)

    # ------------------------------------------------------------------
    # Field arithmetic (rank-local + allreduce)
    # ------------------------------------------------------------------
    def binary(self, other: "DistributedLattice", fn) -> "DistributedLattice":
        out = self.clone_empty()
        out.locals = [fn(a, b) for a, b in zip(self.locals, other.locals)]
        return out

    def __add__(self, other):
        return self.binary(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self.binary(other, lambda a, b: a - b)

    def __mul__(self, scalar):
        out = self.clone_empty()
        out.locals = [a * scalar for a in self.locals]
        return out

    __rmul__ = __mul__

    def inner_product(self, other: "DistributedLattice") -> complex:
        """Rank-local inner products + simulated allreduce."""
        return sum(a.inner_product(b)
                   for a, b in zip(self.locals, other.locals))

    def norm2(self) -> float:
        return float(self.inner_product(self).real)

"""Simulated rank-level domain decomposition with halo exchange.

The coarsest parallelization level of Section II-A: "a set of
sub-lattices is distributed over (a very large number of) different
processes, e.g., different MPI ranks."  Here the "ranks" are in-process
sub-lattices of one :class:`DistributedLattice`; the exchange is a
deterministic buffer copy, optionally through the fp16 compression Grid
applies to network data (Section V-B), with the transferred volume
accounted so benchmarks can report wire bytes.

The distributed circular shift reuses :func:`repro.grid.cshift.
cshift_local`, handing it the +dim neighbour rank's field for the
boundary lanes — so the virtual-node lane permutes and the rank halo
logic compose exactly as they do in Grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.grid import compression
from repro.grid.cartesian import GridCartesian
from repro.grid.coordinates import coordinate_table, index_of, indices_of
from repro.grid.cshift import cshift_local
from repro.grid.lattice import Lattice


@dataclass
class CommsStats:
    """Accounting of simulated network traffic."""

    messages: int = 0
    complex_sent: int = 0
    bytes_sent: int = 0

    def record(self, n_complex: int, compressed: bool, dtype) -> None:
        self.messages += 1
        self.complex_sent += n_complex
        self.bytes_sent += compression.wire_bytes(n_complex, compressed, dtype)


class RankGeometry:
    """The process grid: rank coordinate <-> rank index."""

    def __init__(self, mpi_layout) -> None:
        self.mpi_layout = [int(r) for r in mpi_layout]
        self.nranks = int(np.prod(self.mpi_layout))
        self._coors = coordinate_table(self.mpi_layout)

    def coor_of(self, rank: int):
        return tuple(int(c) for c in self._coors[rank])

    def rank_of(self, coor) -> int:
        coor = [c % r for c, r in zip(coor, self.mpi_layout)]
        return index_of(coor, self.mpi_layout)

    def neighbour(self, rank: int, dim: int, step: int) -> int:
        coor = list(self.coor_of(rank))
        coor[dim] += step
        return self.rank_of(coor)


class DistributedLattice:
    """One logical lattice split over simulated ranks.

    Each rank holds a :class:`Lattice` over a local
    :class:`GridCartesian` (same backend and SIMD layout everywhere).
    """

    def __init__(self, gdims, backend, mpi_layout, tensor_shape,
                 simd_layout=None, compress_halos: bool = False,
                 dtype=np.complex128) -> None:
        self.ranks = RankGeometry(mpi_layout)
        self.compress_halos = compress_halos
        self.stats = CommsStats()
        self.grids = []
        self.locals: list[Lattice] = []
        for r in range(self.ranks.nranks):
            grid = GridCartesian(gdims, backend, simd_layout=simd_layout,
                                 mpi_layout=mpi_layout, dtype=dtype)
            self.grids.append(grid)
            self.locals.append(Lattice(grid, tensor_shape))
        self.gdims = self.grids[0].gdims
        self.tensor_shape = self.locals[0].tensor_shape

    # ------------------------------------------------------------------
    # Global <-> local data movement
    # ------------------------------------------------------------------
    def scatter(self, global_canonical: np.ndarray) -> "DistributedLattice":
        """Load a canonical global array ``(gsites, *tensor)``."""
        g0 = self.grids[0]
        expected = (g0.gsites,) + self.tensor_shape
        global_canonical = np.asarray(global_canonical, dtype=g0.dtype)
        if global_canonical.shape != expected:
            raise ValueError(
                f"global canonical shape {global_canonical.shape} != "
                f"{expected}"
            )
        local_coors = coordinate_table(g0.ldims)
        for r, lat in enumerate(self.locals):
            rc = self.ranks.coor_of(r)
            offs = np.array([c * ld for c, ld in zip(rc, g0.ldims)])
            idx = indices_of(local_coors + offs[None, :], self.gdims)
            lat.from_canonical(global_canonical[idx])
        return self

    def gather(self) -> np.ndarray:
        """Export to a canonical global array (inverse of scatter)."""
        g0 = self.grids[0]
        out = np.empty((g0.gsites,) + self.tensor_shape, dtype=g0.dtype)
        local_coors = coordinate_table(g0.ldims)
        for r, lat in enumerate(self.locals):
            rc = self.ranks.coor_of(r)
            offs = np.array([c * ld for c, ld in zip(rc, g0.ldims)])
            idx = indices_of(local_coors + offs[None, :], self.gdims)
            out[idx] = lat.to_canonical()
        return out

    # ------------------------------------------------------------------
    # Halo exchange + shift
    # ------------------------------------------------------------------
    def _exchanged_field(self, src_rank: int, dim: int) -> np.ndarray:
        """The +dim neighbour's local field, through the (optionally
        compressing) wire.  Volume is accounted as the genuine halo —
        one boundary slab — although the simulation hands over the full
        array for simplicity."""
        nbr = self.ranks.neighbour(src_rank, dim, +1)
        data = self.locals[nbr].data
        grid = self.grids[src_rank]
        halo_sites = grid.lsites // grid.ldims[dim]
        n_complex = halo_sites * int(np.prod(self.tensor_shape))
        self.stats.record(n_complex, self.compress_halos, grid.dtype)
        if not self.compress_halos:
            return data
        wire = compression.compress_complex(data)
        return compression.decompress_complex(wire, grid.dtype).reshape(
            data.shape
        )

    def cshift(self, dim: int, shift: int) -> "DistributedLattice":
        """Distributed circular shift: ``out(x) = in(x + shift e_dim)``.

        Shifts are normalised into ``[0, ldims[dim])`` plus whole-rank
        steps, so arbitrary shifts work; each rank then shifts locally
        with its +dim neighbour's data covering the boundary lanes.
        """
        g0 = self.grids[0]
        gshift = shift % self.gdims[dim]
        rank_steps, local_shift = divmod(gshift, g0.ldims[dim])
        out = DistributedLattice.__new__(DistributedLattice)
        out.ranks = self.ranks
        out.compress_halos = self.compress_halos
        out.stats = self.stats
        out.grids = self.grids
        out.gdims = self.gdims
        out.tensor_shape = self.tensor_shape
        out.locals = []
        for r in range(self.ranks.nranks):
            # The data for rank r comes from the rank `rank_steps`
            # ahead (plus a local shift with that rank's +dim halo).
            src = self.ranks.neighbour(r, dim, rank_steps)
            boundary = None
            if local_shift != 0:
                boundary = self._fetch_for(src, dim)
            shifted = cshift_local(self.locals[src], dim, local_shift,
                                   boundary_from=boundary)
            out.locals.append(shifted)
        return out

    def _fetch_for(self, rank: int, dim: int) -> np.ndarray:
        return self._exchanged_field(rank, dim)

    # ------------------------------------------------------------------
    # Field arithmetic (rank-local + allreduce)
    # ------------------------------------------------------------------
    def binary(self, other: "DistributedLattice", fn) -> "DistributedLattice":
        out = DistributedLattice.__new__(DistributedLattice)
        out.ranks = self.ranks
        out.compress_halos = self.compress_halos
        out.stats = self.stats
        out.grids = self.grids
        out.gdims = self.gdims
        out.tensor_shape = self.tensor_shape
        out.locals = [fn(a, b) for a, b in zip(self.locals, other.locals)]
        return out

    def __add__(self, other):
        return self.binary(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self.binary(other, lambda a, b: a - b)

    def __mul__(self, scalar):
        out = DistributedLattice.__new__(DistributedLattice)
        out.ranks = self.ranks
        out.compress_halos = self.compress_halos
        out.stats = self.stats
        out.grids = self.grids
        out.gdims = self.gdims
        out.tensor_shape = self.tensor_shape
        out.locals = [a * scalar for a in self.locals]
        return out

    __rmul__ = __mul__

    def inner_product(self, other: "DistributedLattice") -> complex:
        """Rank-local inner products + simulated allreduce."""
        return sum(a.inner_product(b)
                   for a, b in zip(self.locals, other.locals))

    def norm2(self) -> float:
        return float(self.inner_product(self).real)

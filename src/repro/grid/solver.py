"""Krylov solvers for the Wilson system.

"A significant fraction of time-to-solution of LQCD applications is
spent in solving a linear set of equations, for which iterative solvers
like Conjugate Gradient are used" (Section II-A).  CG requires a
hermitian positive-definite operator, so the Wilson system ``M x = b``
is solved through the normal equations ``M^dagger M x = M^dagger b``
(CGNE); BiCGSTAB and MR work on ``M`` directly.

Each recursion is wrapped by
:func:`repro.telemetry.reports.traced_solver`: with
``engine.scope(telemetry="trace")`` active, one ``"solve"`` span
carrying the convergence record (iterations, residual history,
breakdown) is emitted per run — including runs that enter through the
bench harness or the mixed-precision inner loop rather than through
:func:`repro.engine.solve.solve_fermion`.  With telemetry off the
wrapper is one policy flag check; the recursion itself is untouched
either way, so iterates stay bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.grid.lattice import Lattice
from repro.grid.multirhs import (
    batch_copy,
    batch_zero_like,
    col_axpy,
    col_inner,
    col_norm2,
    col_xpby,
    nrhs,
)
from repro.telemetry.reports import traced_solver


@dataclass
class SolverResult:
    """Convergence record of one solve.

    ``breakdown`` is empty for a normal run; on a numeric breakdown
    (zero denominator, non-finite residual) it names the hazard and the
    result is returned non-converged with the last finite iterate —
    NaNs are never propagated to the caller.
    """

    x: Lattice
    converged: bool
    iterations: int
    residual: float
    residual_history: list = field(default_factory=list)
    breakdown: str = ""


def _finite_nonzero(value: float) -> bool:
    return math.isfinite(value) and value != 0.0


@traced_solver("cg")
def conjugate_gradient(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> SolverResult:
    """CG for a hermitian positive-definite ``op``.

    Terminates when ``|r| / |b| <= tol``.
    """
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    p = r.copy()
    rr = r.norm2()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return SolverResult(x=b.new_like(), converged=True, iterations=0,
                            residual=0.0)
    history = [rr ** 0.5 / bnorm]
    for it in range(1, max_iter + 1):
        ap = op(p)
        denom = p.inner_product(ap).real
        if not _finite_nonzero(denom):
            return SolverResult(x=x, converged=False, iterations=it,
                                residual=history[-1],
                                residual_history=history,
                                breakdown=f"cg: pAp denominator {denom!r}")
        alpha = rr / denom
        x = x + p * alpha
        r = r - ap * alpha
        rr_new = r.norm2()
        if not math.isfinite(rr_new):
            return SolverResult(x=x, converged=False, iterations=it,
                                residual=history[-1],
                                residual_history=history,
                                breakdown="cg: non-finite residual norm")
        rel = rr_new ** 0.5 / bnorm
        history.append(rel)
        if rel <= tol:
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=rel, residual_history=history)
        beta = rr_new / rr
        p = r + p * beta
        rr = rr_new
    return SolverResult(x=x, converged=False, iterations=max_iter,
                        residual=history[-1], residual_history=history)


def solve_wilson_cgne(dirac, b: Lattice, tol: float = 1e-8,
                      max_iter: int = 1000) -> SolverResult:
    """Solve ``M x = b`` via CG on the normal equations.

    Delegates to the unified solver entry
    (:func:`repro.engine.solve_fermion` with ``method="cg"``), which
    reproduces this wrapper's RHS preparation and true-residual report
    bit for bit.
    """
    from repro.engine.solve import solve_fermion

    return solve_fermion(dirac, b, method="cg", tol=tol,
                         max_iter=max_iter)


# ----------------------------------------------------------------------
# Multi-RHS block solver
# ----------------------------------------------------------------------
@dataclass
class BlockSolverResult:
    """Convergence record of one batched solve.

    ``x`` is the batch field; the ``col_*`` lists hold the per-column
    outcome.  ``iterations`` counts *batched operator applications* —
    the quantity the batching amortises — so comparing it against the
    summed iterations of per-RHS solves measures the saving directly.
    """

    x: object
    converged: bool
    iterations: int
    residual: float
    col_converged: list = field(default_factory=list)
    col_iterations: list = field(default_factory=list)
    col_residuals: list = field(default_factory=list)
    residual_history: list = field(default_factory=list)
    breakdown: str = ""


@traced_solver("block-cg")
def batched_conjugate_gradient(
    op: Callable,
    b,
    x0=None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> BlockSolverResult:
    """CG over a stacked RHS batch (tensor ``(nrhs, 4, 3)``).

    Each column runs the standard CG scalar recursion, but every
    iteration issues **one** batched operator application serving all
    still-active columns — halo messages, neighbour gathers and link
    passes are paid once per iteration instead of once per RHS.
    Converged (or broken-down) columns are frozen: their alpha/beta
    updates stop, so their iterates no longer change while the rest of
    the batch keeps iterating.  Mathematically each column follows the
    same recursion as :func:`conjugate_gradient` on it alone; the
    iterates agree to rounding (reduction order of the strided column
    views differs), which is what the equivalence tests assert.
    """
    n = nrhs(b)
    x = batch_zero_like(b) if x0 is None else batch_copy(x0)
    r = batch_copy(b) if x0 is None else b - op(x)
    p = batch_copy(r)
    rr = [col_norm2(r, j) for j in range(n)]
    bnorm = [col_norm2(b, j) ** 0.5 for j in range(n)]
    converged = [bn == 0.0 for bn in bnorm]
    active = [not c for c in converged]
    col_iters = [0] * n
    col_res = [0.0 if c else rr[j] ** 0.5 / bnorm[j]
               for j, c in enumerate(converged)]
    history = [list(col_res)]
    breakdown = ""
    it = 0
    while it < max_iter and any(active):
        it += 1
        ap = op(p)
        for j in range(n):
            if not active[j]:
                continue
            denom = col_inner(p, ap, j).real
            if not _finite_nonzero(denom):
                active[j] = False
                breakdown += (f"[col {j}] cg: pAp denominator {denom!r} "
                              f"at iter {it}; ")
                col_iters[j] = it
                continue
            alpha = rr[j] / denom
            col_axpy(x, alpha, p, j)
            col_axpy(r, -alpha, ap, j)
            rr_new = col_norm2(r, j)
            if not math.isfinite(rr_new):
                active[j] = False
                breakdown += (f"[col {j}] cg: non-finite residual at "
                              f"iter {it}; ")
                col_iters[j] = it
                continue
            rel = rr_new ** 0.5 / bnorm[j]
            col_res[j] = rel
            if rel <= tol:
                active[j] = False
                converged[j] = True
                col_iters[j] = it
                rr[j] = rr_new
                continue
            col_xpby(p, r, rr_new / rr[j], j)
            rr[j] = rr_new
        history.append(list(col_res))
    for j in range(n):
        if active[j]:
            col_iters[j] = max_iter
    return BlockSolverResult(
        x=x, converged=all(converged), iterations=it,
        residual=max(col_res) if col_res else 0.0,
        col_converged=converged, col_iterations=col_iters,
        col_residuals=col_res, residual_history=history,
        breakdown=breakdown.strip(),
    )


def solve_wilson_cgne_batched(dirac, b, tol: float = 1e-8,
                              max_iter: int = 1000) -> BlockSolverResult:
    """Solve ``M x_j = b_j`` for a whole RHS batch via CGNE.

    One batched ``M^dagger`` prepares all the normal-equation right
    hand sides, then :func:`batched_conjugate_gradient` runs them to
    tolerance together.  Reports per-column true residuals of the
    original system.

    Delegates to the unified solver entry
    (:func:`repro.engine.solve_fermion`, which detects the batch by
    tensor shape), bit-identically.
    """
    from repro.engine.solve import solve_fermion

    return solve_fermion(dirac, b, method="cg", tol=tol,
                         max_iter=max_iter)


@traced_solver("bicgstab")
def bicgstab(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> SolverResult:
    """BiCGSTAB for a general (non-hermitian) operator."""
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    r0 = r.copy()
    rho = alpha = omega = 1.0 + 0j
    v = b.new_like()
    p = b.new_like()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return SolverResult(x=b.new_like(), converged=True, iterations=0,
                            residual=0.0)
    history = [r.norm2() ** 0.5 / bnorm]
    breakdown = ""
    for it in range(1, max_iter + 1):
        rho_new = r0.inner_product(r)
        if not _finite_nonzero(abs(rho_new)):
            breakdown = f"bicgstab: rho breakdown ({rho_new!r})"
            break
        if not _finite_nonzero(abs(omega)):
            breakdown = f"bicgstab: omega breakdown ({omega!r})"
            break
        beta = (rho_new / rho) * (alpha / omega)
        p = r + (p - v * omega) * beta
        v = op(p)
        r0v = r0.inner_product(v)
        if not _finite_nonzero(abs(r0v)):
            breakdown = f"bicgstab: (r0, v) denominator {r0v!r}"
            break
        alpha = rho_new / r0v
        s = r - v * alpha
        s_rel = s.norm2() ** 0.5 / bnorm
        if not math.isfinite(s_rel):
            breakdown = "bicgstab: non-finite intermediate residual"
            break
        if s_rel <= tol:
            x = x + p * alpha
            history.append(s_rel)
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=history[-1],
                                residual_history=history)
        t = op(s)
        tt = t.inner_product(t)
        if not _finite_nonzero(abs(tt)):
            breakdown = f"bicgstab: (t, t) denominator {tt!r}"
            break
        omega = t.inner_product(s) / tt
        x = x + p * alpha + s * omega
        r = s - t * omega
        rel = r.norm2() ** 0.5 / bnorm
        if not math.isfinite(rel):
            breakdown = "bicgstab: non-finite residual norm"
            break
        history.append(rel)
        if rel <= tol:
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=rel, residual_history=history)
        rho = rho_new
    return SolverResult(x=x, converged=False,
                        iterations=it if breakdown else max_iter,
                        residual=history[-1], residual_history=history,
                        breakdown=breakdown)


@traced_solver("mr")
def minimal_residual(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 2000,
    overrelax: float = 1.0,
) -> SolverResult:
    """Minimal-residual iteration (simple, for small well-conditioned
    systems and as a smoother)."""
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return SolverResult(x=b.new_like(), converged=True, iterations=0,
                            residual=0.0)
    history = [r.norm2() ** 0.5 / bnorm]
    breakdown = ""
    for it in range(1, max_iter + 1):
        ar = op(r)
        denom = ar.norm2()
        if not _finite_nonzero(denom):
            breakdown = f"mr: |Ar|^2 denominator {denom!r}"
            break
        alpha = overrelax * ar.inner_product(r) / denom
        x = x + r * alpha
        r = r - ar * alpha
        rel = r.norm2() ** 0.5 / bnorm
        if not math.isfinite(rel):
            breakdown = "mr: non-finite residual norm"
            break
        history.append(rel)
        if rel <= tol:
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=rel, residual_history=history)
    return SolverResult(x=x, converged=False,
                        iterations=it if breakdown else max_iter,
                        residual=history[-1], residual_history=history,
                        breakdown=breakdown)

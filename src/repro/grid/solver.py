"""Krylov solvers for the Wilson system.

"A significant fraction of time-to-solution of LQCD applications is
spent in solving a linear set of equations, for which iterative solvers
like Conjugate Gradient are used" (Section II-A).  CG requires a
hermitian positive-definite operator, so the Wilson system ``M x = b``
is solved through the normal equations ``M^dagger M x = M^dagger b``
(CGNE); BiCGSTAB and MR work on ``M`` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.grid.lattice import Lattice


@dataclass
class SolverResult:
    """Convergence record of one solve.

    ``breakdown`` is empty for a normal run; on a numeric breakdown
    (zero denominator, non-finite residual) it names the hazard and the
    result is returned non-converged with the last finite iterate —
    NaNs are never propagated to the caller.
    """

    x: Lattice
    converged: bool
    iterations: int
    residual: float
    residual_history: list = field(default_factory=list)
    breakdown: str = ""


def _finite_nonzero(value: float) -> bool:
    return math.isfinite(value) and value != 0.0


def conjugate_gradient(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> SolverResult:
    """CG for a hermitian positive-definite ``op``.

    Terminates when ``|r| / |b| <= tol``.
    """
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    p = r.copy()
    rr = r.norm2()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return SolverResult(x=b.new_like(), converged=True, iterations=0,
                            residual=0.0)
    history = [rr ** 0.5 / bnorm]
    for it in range(1, max_iter + 1):
        ap = op(p)
        denom = p.inner_product(ap).real
        if not _finite_nonzero(denom):
            return SolverResult(x=x, converged=False, iterations=it,
                                residual=history[-1],
                                residual_history=history,
                                breakdown=f"cg: pAp denominator {denom!r}")
        alpha = rr / denom
        x = x + p * alpha
        r = r - ap * alpha
        rr_new = r.norm2()
        if not math.isfinite(rr_new):
            return SolverResult(x=x, converged=False, iterations=it,
                                residual=history[-1],
                                residual_history=history,
                                breakdown="cg: non-finite residual norm")
        rel = rr_new ** 0.5 / bnorm
        history.append(rel)
        if rel <= tol:
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=rel, residual_history=history)
        beta = rr_new / rr
        p = r + p * beta
        rr = rr_new
    return SolverResult(x=x, converged=False, iterations=max_iter,
                        residual=history[-1], residual_history=history)


def solve_wilson_cgne(dirac, b: Lattice, tol: float = 1e-8,
                      max_iter: int = 1000) -> SolverResult:
    """Solve ``M x = b`` via CG on the normal equations."""
    rhs = dirac.apply_dagger(b)
    result = conjugate_gradient(dirac.mdag_m, rhs, tol=tol,
                                max_iter=max_iter)
    # Report the true residual of the original system.
    true_r = (b - dirac.apply(result.x)).norm2() ** 0.5 / b.norm2() ** 0.5
    result.residual = true_r
    return result


def bicgstab(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> SolverResult:
    """BiCGSTAB for a general (non-hermitian) operator."""
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    r0 = r.copy()
    rho = alpha = omega = 1.0 + 0j
    v = b.new_like()
    p = b.new_like()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return SolverResult(x=b.new_like(), converged=True, iterations=0,
                            residual=0.0)
    history = [r.norm2() ** 0.5 / bnorm]
    breakdown = ""
    for it in range(1, max_iter + 1):
        rho_new = r0.inner_product(r)
        if not _finite_nonzero(abs(rho_new)):
            breakdown = f"bicgstab: rho breakdown ({rho_new!r})"
            break
        if not _finite_nonzero(abs(omega)):
            breakdown = f"bicgstab: omega breakdown ({omega!r})"
            break
        beta = (rho_new / rho) * (alpha / omega)
        p = r + (p - v * omega) * beta
        v = op(p)
        r0v = r0.inner_product(v)
        if not _finite_nonzero(abs(r0v)):
            breakdown = f"bicgstab: (r0, v) denominator {r0v!r}"
            break
        alpha = rho_new / r0v
        s = r - v * alpha
        s_rel = s.norm2() ** 0.5 / bnorm
        if not math.isfinite(s_rel):
            breakdown = "bicgstab: non-finite intermediate residual"
            break
        if s_rel <= tol:
            x = x + p * alpha
            history.append(s_rel)
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=history[-1],
                                residual_history=history)
        t = op(s)
        tt = t.inner_product(t)
        if not _finite_nonzero(abs(tt)):
            breakdown = f"bicgstab: (t, t) denominator {tt!r}"
            break
        omega = t.inner_product(s) / tt
        x = x + p * alpha + s * omega
        r = s - t * omega
        rel = r.norm2() ** 0.5 / bnorm
        if not math.isfinite(rel):
            breakdown = "bicgstab: non-finite residual norm"
            break
        history.append(rel)
        if rel <= tol:
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=rel, residual_history=history)
        rho = rho_new
    return SolverResult(x=x, converged=False,
                        iterations=it if breakdown else max_iter,
                        residual=history[-1], residual_history=history,
                        breakdown=breakdown)


def minimal_residual(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 2000,
    overrelax: float = 1.0,
) -> SolverResult:
    """Minimal-residual iteration (simple, for small well-conditioned
    systems and as a smoother)."""
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return SolverResult(x=b.new_like(), converged=True, iterations=0,
                            residual=0.0)
    history = [r.norm2() ** 0.5 / bnorm]
    breakdown = ""
    for it in range(1, max_iter + 1):
        ar = op(r)
        denom = ar.norm2()
        if not _finite_nonzero(denom):
            breakdown = f"mr: |Ar|^2 denominator {denom!r}"
            break
        alpha = overrelax * ar.inner_product(r) / denom
        x = x + r * alpha
        r = r - ar * alpha
        rel = r.norm2() ** 0.5 / bnorm
        if not math.isfinite(rel):
            breakdown = "mr: non-finite residual norm"
            break
        history.append(rel)
        if rel <= tol:
            return SolverResult(x=x, converged=True, iterations=it,
                                residual=rel, residual_history=history)
    return SolverResult(x=x, converged=False,
                        iterations=it if breakdown else max_iter,
                        residual=history[-1], residual_history=history,
                        breakdown=breakdown)

"""Quenched SU(3) Monte Carlo: Wilson-action Metropolis sweeps.

The gauge configurations everything else consumes do not fall from the
sky: production codes generate them by importance sampling of the
Wilson plaquette action

    S[U] = -(beta/3) sum_{x, mu<nu} Re tr P_munu(x) .

This module implements the standard Metropolis update with SU(2)
subgroup hits: for each link, the *staple* sum collects the six
neighbouring plaquette contributions, a trial link is proposed by
multiplying with a random near-identity SU(3) element, and the change
is accepted with probability ``min(1, exp(-dS))``.

Besides supplying physical configurations for the solver examples, the
sweep is a second full-application workload over the cshift/colour
machinery of the SIMD layout — updates must respect the checkerboard
(links of one parity can be updated in parallel because their staples
only involve the other parity's sites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.cshift import cshift
from repro.grid.lattice import Lattice
from repro.grid.pauli import random_su3
from repro.grid.su3 import plaquette, reunitarize
from repro.grid.tensor import colour_mm, colour_mm_dagger_right


def staple_field(links, grid: GridCartesian, mu: int) -> np.ndarray:
    """The staple sum ``V_mu(x)``: ``sum_{nu != mu}`` of the up and
    down staples, such that ``Re tr [U_mu(x) V_mu(x)]`` is the part of
    the action containing ``U_mu(x)``."""
    be = grid.backend
    total = None
    u_mu = links[mu]
    for nu in range(grid.ndim):
        if nu == mu:
            continue
        u_nu = links[nu]
        u_nu_xpmu = cshift(u_nu, mu, +1)     # U_nu(x+mu)
        u_mu_xpnu = cshift(u_mu, nu, +1)     # U_mu(x+nu)
        # Up staple: U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+
        up = colour_mm_dagger_right(
            be, colour_mm_dagger_right(be, u_nu_xpmu.data, u_mu_xpnu.data),
            u_nu.data,
        )
        # Down staple: U_nu(x+mu-nu)^+ U_mu(x-nu)^+ U_nu(x-nu)
        u_nu_xmnu = cshift(u_nu, nu, -1)                 # U_nu(x-nu)
        u_mu_xmnu = cshift(u_mu, nu, -1)                 # U_mu(x-nu)
        u_nu_xpmu_mnu = cshift(u_nu_xpmu, nu, -1)        # U_nu(x+mu-nu)
        dagger = np.conj(np.swapaxes(u_nu_xpmu_mnu.data, 1, 2))
        down = colour_mm(
            be,
            colour_mm_dagger_right(be, dagger, u_mu_xmnu.data),
            u_nu_xmnu.data,
        )
        contrib = up + down
        total = contrib if total is None else total + contrib
    return total


def local_action(u_site: np.ndarray, staple: np.ndarray,
                 beta: float) -> float:
    """``-(beta/3) Re tr [U V]`` for one site's link and staple."""
    return -(beta / 3.0) * np.real(np.einsum("ab,ba->", u_site, staple))


@dataclass
class SweepStats:
    """Acceptance bookkeeping for Metropolis sweeps."""

    proposed: int = 0
    accepted: int = 0

    @property
    def acceptance(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0


@dataclass
class Metropolis:
    """Metropolis updater for the quenched SU(3) Wilson action.

    Parameters
    ----------
    beta:
        The inverse coupling (larger = smoother fields).
    spread:
        Width of the proposal distribution (tuned for ~50 % acceptance).
    hits:
        Metropolis hits per link per sweep.
    """

    beta: float = 5.5
    spread: float = 0.15
    hits: int = 2
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(1234)
    )
    stats: SweepStats = field(default_factory=SweepStats)

    def sweep(self, links, grid: GridCartesian) -> None:
        """One full update of every link (in place).

        Links are visited per (direction, canonical site); the staple
        field for the direction is recomputed after updating it, which
        keeps detailed balance at the sweep level (staples never
        involve same-direction same-site links).
        """
        for mu in range(grid.ndim):
            staples = staple_field(links, grid, mu)
            can_u = links[mu].to_canonical()
            can_v = Lattice(grid, (3, 3), staples).to_canonical()
            for s in range(grid.lsites):
                u_old = can_u[s]
                v = can_v[s]
                s_old = local_action(u_old, v, self.beta)
                for _hit in range(self.hits):
                    g = random_su3(self.rng, spread=self.spread, hits=1)
                    u_new = reunitarize(g @ u_old)
                    s_new = local_action(u_new, v, self.beta)
                    self.stats.proposed += 1
                    if (s_new <= s_old or
                            self.rng.random() < np.exp(s_old - s_new)):
                        u_old = u_new
                        s_old = s_new
                        self.stats.accepted += 1
                can_u[s] = u_old
            links[mu].from_canonical(can_u)

    def thermalize(self, links, grid: GridCartesian, sweeps: int = 10,
                   observer=None) -> list:
        """Run ``sweeps`` updates, recording the plaquette after each."""
        history = []
        for i in range(sweeps):
            self.sweep(links, grid)
            p = plaquette(links, grid)
            history.append(p)
            if observer is not None:
                observer(i, p)
        return history

"""Fermion boundary phases (anti-periodic time direction et al.).

Physical Wilson fermions use anti-periodic boundary conditions in time
(finite-temperature field theory requires it; it also lifts the exact
zero mode of the free operator).  The standard implementation trick —
used by Grid and every production code — is to fold the phase into the
gauge links: every link in direction ``mu`` that crosses the lattice
boundary (``x_mu = L_mu - 1``) is multiplied by the phase, after which
the plain periodic hopping term of Eq. (1) implements the twisted
fermion while the gauge observables continue to use the unmodified
links.

General U(1) twist phases ``exp(i theta)`` are supported; ``-1`` gives
anti-periodic, ``+1`` is periodic.
"""

from __future__ import annotations

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.wilson import WilsonDirac

#: The physical choice: periodic space, anti-periodic time.
ANTIPERIODIC_TIME = (1.0, 1.0, 1.0, -1.0)


def apply_boundary_phases(links, grid: GridCartesian, phases) -> list:
    """Return phase-folded copies of the gauge links.

    ``phases[mu]`` multiplies ``U_mu(x)`` on the boundary slice
    ``x_mu = L_mu - 1`` (the links that wrap around).
    """
    phases = list(phases)
    if len(phases) != grid.ndim:
        raise ValueError(f"need {grid.ndim} phases, got {len(phases)}")
    out = []
    coors = grid.local_coor_tables()  # (osites, nlanes, ndim)
    for mu, u in enumerate(links):
        phase = complex(phases[mu])
        twisted = u.copy()
        if phase != 1.0:
            if abs(abs(phase) - 1.0) > 1e-12:
                raise ValueError(
                    f"boundary phase for dim {mu} must be a pure phase, "
                    f"got |{phase}| != 1"
                )
            boundary = coors[:, :, mu] == grid.ldims[mu] - 1
            # Broadcast over the colour axes: (osites, 1, 1, nlanes).
            mask = boundary[:, None, None, :]
            twisted.data = np.where(mask, twisted.data * phase,
                                    twisted.data)
        out.append(twisted)
    return out


class TwistedWilson(WilsonDirac):
    """Wilson operator with fermion boundary phases.

    The gauge links passed in stay untouched (gauge observables use
    them as-is); the operator internally works on phase-folded copies.
    """

    def __init__(self, links, mass: float = 0.1,
                 phases=ANTIPERIODIC_TIME, cshift_fn=None) -> None:
        grid = links[0].grid
        self.phases = tuple(complex(p) for p in phases)
        twisted = apply_boundary_phases(links, grid, self.phases)
        super().__init__(twisted, mass=mass, cshift_fn=cshift_fn)

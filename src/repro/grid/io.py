"""Gauge-configuration I/O.

Production lattice codes archive configurations in site-ordered binary
formats with a self-describing header and checksums (NERSC, ILDG/LIME,
SciDAC).  This module implements a simple format in that family:

* an ASCII header (dimensions, precision, plaquette, checksum, note),
* the canonical site-ordered link data (``mu`` slowest, then the
  lexicographic site index, then the 3x3 colour matrix),

so a configuration written under one SIMD layout / rank decomposition
reads back bit-identically under any other — the layout-transparency
contract of the canonical ordering, applied to persistence.

Durability: :func:`save_gauge` writes atomically (temp file in the
same directory, flush + fsync, then :func:`os.replace`), so a crash
mid-save can never leave a torn file under the target name — the old
configuration, if any, survives intact.  The header additionally
carries a CRC-32 of the whole binary payload; :func:`load_gauge`
verifies it before any parsing of the link data, so truncation or bit
rot is rejected up front rather than discovered (or missed) by the
per-link checks.  Files written before the CRC existed (no
``payload_crc`` header line) still load.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.checksum import field_checksum
from repro.grid.lattice import Lattice
from repro.grid.su3 import max_unitarity_defect, plaquette

MAGIC = "REPRO_GAUGE_V1"


class ConfigFormatError(ValueError):
    """Raised for malformed or corrupted configuration files."""


@dataclass
class ConfigHeader:
    """Parsed configuration-file header."""

    dims: list
    dtype: str
    plaquette: float
    checksums: list
    note: str = ""
    payload_crc: Optional[int] = None

    def render(self) -> str:
        lines = [
            f"BEGIN_HEADER {MAGIC}",
            f"dims = {' '.join(str(d) for d in self.dims)}",
            f"dtype = {self.dtype}",
            f"plaquette = {self.plaquette!r}",
            f"checksums = {' '.join(self.checksums)}",
        ]
        if self.payload_crc is not None:
            lines.append(f"payload_crc = {self.payload_crc}")
        lines += [
            f"note = {self.note}",
            "END_HEADER",
        ]
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "ConfigHeader":
        lines = [ln.strip() for ln in text.splitlines()]
        if not lines or not lines[0].startswith("BEGIN_HEADER"):
            raise ConfigFormatError("missing BEGIN_HEADER")
        if MAGIC not in lines[0]:
            raise ConfigFormatError(f"not a {MAGIC} file")
        fields = {}
        for ln in lines[1:]:
            if ln == "END_HEADER":
                break
            if "=" in ln:
                k, v = ln.split("=", 1)
                fields[k.strip()] = v.strip()
        else:
            raise ConfigFormatError("missing END_HEADER")
        try:
            return cls(
                dims=[int(d) for d in fields["dims"].split()],
                dtype=fields["dtype"],
                plaquette=float(fields["plaquette"]),
                checksums=fields["checksums"].split(),
                note=fields.get("note", ""),
                payload_crc=(int(fields["payload_crc"])
                             if "payload_crc" in fields else None),
            )
        except (KeyError, ValueError) as e:
            if isinstance(e, ValueError):
                raise ConfigFormatError(f"malformed header field: {e}") \
                    from None
            raise ConfigFormatError(f"header missing field {e}") from None


def atomic_write(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file in the same
    directory, flush + fsync, then :func:`os.replace`.  A crash at any
    point leaves either the old file or the new one under ``path``,
    never a torn mixture."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:  # pragma: no cover - platform-dependent
        dfd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:
        pass


def save_gauge(path, links, grid: GridCartesian, note: str = "") -> ConfigHeader:
    """Write gauge links to ``path`` in canonical site order.

    The write is atomic (see :func:`atomic_write`) and the header
    carries a CRC-32 of the binary payload, so a crash mid-save leaves
    the previous file intact and any later corruption of the payload
    is caught by :func:`load_gauge` before parsing."""
    payload = b"".join(
        np.ascontiguousarray(u.to_canonical()).tobytes() for u in links
    )
    header = ConfigHeader(
        dims=list(grid.ldims),
        dtype=str(grid.dtype),
        plaquette=plaquette(links, grid),
        checksums=[field_checksum(u) for u in links],
        note=note,
        payload_crc=zlib.crc32(payload),
    )
    atomic_write(path, header.render().encode() + payload)
    return header


def load_gauge(path, grid: GridCartesian, verify: bool = True) -> list:
    """Read gauge links written by :func:`save_gauge`.

    ``verify`` re-checks the stored per-link checksums, the plaquette,
    and link unitarity — the paranoia every archive reader applies.
    """
    with open(path, "rb") as f:
        raw = f.read()
    end = raw.find(b"END_HEADER")
    if end < 0:
        raise ConfigFormatError("missing END_HEADER")
    end = raw.index(b"\n", end) + 1
    header = ConfigHeader.parse(raw[:end].decode())
    if header.dims != list(grid.ldims):
        raise ConfigFormatError(
            f"file dims {header.dims} != grid dims {grid.ldims}"
        )
    if header.dtype != str(grid.dtype):
        raise ConfigFormatError(
            f"file dtype {header.dtype} != grid dtype {grid.dtype}"
        )
    body = raw[end:]
    if verify and header.payload_crc is not None and \
            zlib.crc32(body) != header.payload_crc:
        raise ConfigFormatError(
            "payload CRC mismatch (truncated or bit-rotted file?)"
        )
    per_link = grid.lsites * 9 * grid.dtype.itemsize
    if len(body) != grid.ndim * per_link:
        raise ConfigFormatError(
            f"payload is {len(body)} bytes, expected "
            f"{grid.ndim * per_link}"
        )
    links = []
    for mu in range(grid.ndim):
        chunk = body[mu * per_link:(mu + 1) * per_link]
        can = np.frombuffer(chunk, dtype=grid.dtype).reshape(
            grid.lsites, 3, 3).copy()
        lat = Lattice(grid, (3, 3)).from_canonical(can)
        links.append(lat)
    if verify:
        for mu, u in enumerate(links):
            if field_checksum(u) != header.checksums[mu]:
                raise ConfigFormatError(
                    f"checksum mismatch for direction {mu} "
                    "(corrupted file?)"
                )
            if max_unitarity_defect(u) > 1e-7:
                raise ConfigFormatError(
                    f"direction {mu} links are not unitary"
                )
        p = plaquette(links, grid)
        if not np.isclose(p, header.plaquette, atol=1e-10):
            raise ConfigFormatError(
                f"plaquette mismatch: file says {header.plaquette}, "
                f"data gives {p}"
            )
    return links

"""The Lattice container: one tensor field over a SIMD-decomposed grid.

Storage layout is Grid's: ``data[osite][tensor indices...][lane]`` —
the lane axis is innermost so that one tensor element across all
virtual nodes is exactly one vector register.  All arithmetic routes
through the grid's SIMD backend, the machine-specific layer the paper
ports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.coordinates import indices_of


class Lattice:
    """A field of shape ``(osites, *tensor_shape, nlanes)``."""

    def __init__(self, grid: GridCartesian, tensor_shape: tuple = (),
                 data: Optional[np.ndarray] = None) -> None:
        self.grid = grid
        self.tensor_shape = tuple(int(t) for t in tensor_shape)
        shape = (grid.osites,) + self.tensor_shape + (grid.nlanes,)
        if data is None:
            self.data = np.zeros(shape, dtype=grid.dtype)
        else:
            data = np.asarray(data, dtype=grid.dtype)
            if data.shape != shape:
                raise ValueError(
                    f"data shape {data.shape} != lattice shape {shape}"
                )
            self.data = data

    # ------------------------------------------------------------------
    # Constructors / copies
    # ------------------------------------------------------------------
    def new_like(self) -> "Lattice":
        return Lattice(self.grid, self.tensor_shape)

    def copy(self) -> "Lattice":
        return Lattice(self.grid, self.tensor_shape, self.data.copy())

    @property
    def backend(self):
        return self.grid.backend

    # ------------------------------------------------------------------
    # Element-wise arithmetic via the backend
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Lattice") -> None:
        if self.grid is not other.grid and (
            self.grid.odims != other.grid.odims
            or self.grid.simd_layout != other.grid.simd_layout
        ):
            raise ValueError("lattices live on different grids")
        if self.tensor_shape != other.tensor_shape:
            raise ValueError(
                f"tensor shapes differ: {self.tensor_shape} vs "
                f"{other.tensor_shape}"
            )

    def __add__(self, other: "Lattice") -> "Lattice":
        self._check_compatible(other)
        return Lattice(self.grid, self.tensor_shape,
                       self.backend.add(self.data, other.data))

    def __sub__(self, other: "Lattice") -> "Lattice":
        self._check_compatible(other)
        return Lattice(self.grid, self.tensor_shape,
                       self.backend.sub(self.data, other.data))

    def __neg__(self) -> "Lattice":
        return Lattice(self.grid, self.tensor_shape,
                       self.backend.neg(self.data))

    def __mul__(self, scalar) -> "Lattice":
        return Lattice(self.grid, self.tensor_shape,
                       self.backend.scale(self.data, scalar))

    __rmul__ = __mul__

    def axpy(self, a, x: "Lattice") -> "Lattice":
        """``self + a*x`` (solver update kernel)."""
        self._check_compatible(x)
        return self + x * a

    def conj(self) -> "Lattice":
        return Lattice(self.grid, self.tensor_shape,
                       self.backend.conj(self.data))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def inner_product(self, other: "Lattice") -> complex:
        """Global ``<self, other> = sum conj(self) * other``."""
        self._check_compatible(other)
        prod = self.backend.conj_mul(self.data, other.data)
        return self.backend.reduce_sum(prod)

    def norm2(self) -> float:
        """Global squared norm."""
        return float(self.inner_product(self).real)

    def sum(self) -> complex:
        return self.backend.reduce_sum(self.data)

    # ------------------------------------------------------------------
    # Canonical (layout-independent) import/export
    # ------------------------------------------------------------------
    def to_canonical(self) -> np.ndarray:
        """Export to a ``(lsites, *tensor_shape)`` array in lexicographic
        local-site order — independent of the SIMD layout.

        This is the bridge between the vectorized layout and the
        site-ordered world of reference implementations and I/O, and
        the basis of layout-equivalence tests: any two decompositions
        of the same physics export identical canonical arrays.
        """
        g = self.grid
        coors = g.local_coor_tables().reshape(-1, g.ndim)
        site_idx = indices_of(coors, g.ldims)
        out = np.empty((g.lsites,) + self.tensor_shape, dtype=g.dtype)
        # data axes: (osite, *tensor, lane) -> move lane next to osite
        flat = np.moveaxis(self.data, -1, 1).reshape(
            g.osites * g.nlanes, *self.tensor_shape
        )
        out[site_idx] = flat
        return out

    def from_canonical(self, canonical: np.ndarray) -> "Lattice":
        """Import from a canonical array (inverse of :func:`to_canonical`)."""
        g = self.grid
        canonical = np.asarray(canonical, dtype=g.dtype)
        expected = (g.lsites,) + self.tensor_shape
        if canonical.shape != expected:
            raise ValueError(
                f"canonical shape {canonical.shape} != {expected}"
            )
        coors = g.local_coor_tables().reshape(-1, g.ndim)
        site_idx = indices_of(coors, g.ldims)
        flat = canonical[site_idx].reshape(
            g.osites, g.nlanes, *self.tensor_shape
        )
        self.data = np.ascontiguousarray(np.moveaxis(flat, 1, -1))
        return self

    # ------------------------------------------------------------------
    # Point access (slow; for tests and examples)
    # ------------------------------------------------------------------
    def peek_site(self, coor) -> np.ndarray:
        """Tensor value at a local coordinate."""
        osite, lane = self.grid.osite_lane_of(coor)
        return self.data[osite, ..., lane].copy()

    def poke_site(self, coor, value) -> None:
        """Set the tensor value at a local coordinate."""
        osite, lane = self.grid.osite_lane_of(coor)
        self.data[osite, ..., lane] = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Lattice tensor={self.tensor_shape} osites={self.grid.osites} "
            f"lanes={self.grid.nlanes} backend={self.backend.name}>"
        )

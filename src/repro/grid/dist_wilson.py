"""The Wilson operator over a rank-decomposed lattice.

Combines all three parallelization levels of Section II-A: rank-level
domain decomposition (simulated halo exchange, optionally fp16
compressed), the virtual-node SIMD layout within each rank, and the
vector backend below that.  Tests assert bit-identical agreement with
the single-rank :class:`repro.grid.wilson.WilsonDirac`.

Two engine upgrades sit on top of the ordered reference sweep:

* **Overlap** — when the engine's resolved
  :class:`~repro.engine.plan.KernelPlan` says so,
  :func:`repro.grid.overlap.overlapped_dhop` posts every halo up front
  and hides the simulated wire latency behind interior compute,
  bit-identically to the ordered path.
* **Multi-RHS batching** — a field whose tensor is ``(nrhs, 4, 3)``
  (see :mod:`repro.grid.multirhs`) is swept column-by-column over one
  shared set of halo exchanges and neighbour gathers, so ``nrhs``
  right-hand sides cost exactly the halo messages of one.
"""

from __future__ import annotations

from typing import Sequence


from repro.engine.operators import OperatorGeometry
from repro.engine.plan import kernel_plan
from repro.grid import gamma as g
from repro.grid.comms import DistributedLattice, LatencyModel
from repro.grid.overlap import overlapped_dhop
from repro.grid.tensor import su3_dagger_mul_vec, su3_mul_vec
from repro.grid.wilson import SPINOR, is_spinor_batch
from repro.perf.counters import counters as _perf_counters
from repro.perf.fused import fused_dhop_rank
from repro.telemetry import trace as _telemetry


class DistributedWilson:
    """Wilson fermion matrix over distributed gauge links.

    Parameters
    ----------
    links:
        Four :class:`DistributedLattice` gauge fields (one per
        direction), all on the same rank geometry.
    mass:
        Bare quark mass.
    """

    def __init__(self, links: Sequence[DistributedLattice],
                 mass: float = 0.1) -> None:
        self.links = list(links)
        self.mass = float(mass)
        self.ranks = links[0].ranks
        self.ndim = len(links[0].gdims)
        if len(self.links) != self.ndim:
            raise ValueError("need one gauge field per direction")
        # Backward links gathered once (they are static).
        self.links_back = [self.links[mu].cshift(mu, -1)
                           for mu in range(self.ndim)]

    def _zero_like(self, psi: DistributedLattice) -> DistributedLattice:
        out = psi.clone_empty()
        out.locals = [lat.new_like() for lat in psi.locals]
        return out

    def _check(self, psi: DistributedLattice) -> int:
        """Validate the field; returns the batch width (0 = plain)."""
        if psi.tensor_shape == SPINOR:
            return 0
        if is_spinor_batch(psi.tensor_shape):
            return psi.tensor_shape[0]
        raise ValueError(
            "distributed Wilson operator acts on spinors "
            f"{SPINOR} or (nrhs,) + {SPINOR}, got {psi.tensor_shape}"
        )

    def dhop(self, psi: DistributedLattice) -> DistributedLattice:
        """Apply Eq. (1) with halo exchange at rank boundaries.

        Dispatch is resolved once by the execution engine (every rank
        shares one backend object, so one :class:`~repro.engine.plan.
        KernelPlan` covers the whole sweep): overlapped vs ordered
        exchange, fused vs layered rank-local arithmetic, and batched
        vs column-by-column multi-RHS handling.  Every route is
        bit-identical.

        With telemetry tracing on, the sweep is wrapped in a span
        carrying the flop/byte metadata the roofline report consumes
        (the timer observes an unchanged body, so results stay
        bit-identical).
        """
        if not _telemetry.tracing():
            return self._dhop_impl(psi)
        ncols = (psi.tensor_shape[0]
                 if len(psi.tensor_shape) == 3 else 0)
        grid = self.links[0].grids[0]
        with _telemetry.span(
            "dhop.batched" if ncols else "dhop",
            sites=grid.gsites * max(ncols, 1),
            flops_per_site=self.flops_per_site(),
            bytes_per_site=self.bytes_per_site(),
            backend=grid.backend.name,
            nranks=self.ranks.nranks,
            nrhs=ncols,
        ):
            return self._dhop_impl(psi)

    def _dhop_impl(self, psi: DistributedLattice) -> DistributedLattice:
        ncols = self._check(psi)
        plan = kernel_plan(psi.grids[0], "dist-dhop")
        if ncols and not plan.batched:
            # Batching off: nrhs independent sweeps, each paying its
            # own halo exchange (the unamortised reference).
            from repro.grid.multirhs import split_rhs, stack_rhs

            return stack_rhs([self.dhop(c) for c in split_rhs(psi)])
        if plan.transport != "in-process":
            # A real transport backend owns the whole sweep: halo
            # traffic crosses an actual process boundary and the
            # rank-local arithmetic runs where the shards live.  The
            # backend may decline (None) — e.g. a geometry it cannot
            # host — and the reference path below takes over.
            hopped = psi.transport.run_dhop(self, psi, plan)
            if hopped is not None:
                return hopped
        if plan.overlap:
            # Post-all-halos / interior / shells schedule — same
            # message order and per-site arithmetic as the ordered
            # sweep below (see repro.grid.overlap for the argument).
            return overlapped_dhop(self, psi, kplan=plan)
        if ncols:
            _perf_counters().bump("batched_dhop_calls")
        out = self._zero_like(psi)
        for mu in range(self.ndim):
            # Halo exchange stays serial and ordered (comms protocol);
            # only the rank-local arithmetic below is fused/tiled.
            # A batched psi shares this one exchange across columns.
            fwd = psi.cshift(mu, +1)
            bwd = psi.cshift(mu, -1)
            plan.stages.bump("exchange", 2)
            for r in range(self.ranks.nranks):
                be = psi.grids[r].backend
                if plan.fused or plan.codegen != "off":
                    for acc, pf, pb in _columns(
                        out.locals[r].data, fwd.locals[r].data,
                        bwd.locals[r].data, ncols,
                    ):
                        fused_dhop_rank(
                            acc,
                            self.links[mu].locals[r].data,
                            self.links_back[mu].locals[r].data,
                            pf, pb, mu, plan=plan,
                        )
                    continue
                for acc, pf, pb in _columns(
                    out.locals[r].data, fwd.locals[r].data,
                    bwd.locals[r].data, ncols,
                ):
                    h = g.project(be, pf, mu, +1)
                    uh = su3_mul_vec(be, self.links[mu].locals[r].data, h)
                    acc2 = be.add(acc, g.reconstruct(be, uh, mu, +1))
                    h = g.project(be, pb, mu, -1)
                    uh = su3_dagger_mul_vec(
                        be, self.links_back[mu].locals[r].data, h
                    )
                    acc[...] = be.add(acc2, g.reconstruct(be, uh, mu, -1))
        return out

    def apply(self, psi: DistributedLattice) -> DistributedLattice:
        """``M psi = (4 + m) psi - 1/2 D_h psi``."""
        hop = self.dhop(psi)
        return psi * (4.0 + self.mass) - hop * 0.5

    M = apply

    def apply_dagger(self, psi: DistributedLattice) -> DistributedLattice:
        """``M^dagger`` via gamma5-hermiticity, rank by rank."""
        ncols = self._check(psi)
        tmp = self._zero_like(psi)
        for r, lat in enumerate(psi.locals):
            be = psi.grids[r].backend
            _gamma5_into(be, tmp.locals[r].data, lat.data, ncols)
        tmp = self.apply(tmp)
        out = self._zero_like(psi)
        for r, lat in enumerate(tmp.locals):
            be = psi.grids[r].backend
            _gamma5_into(be, out.locals[r].data, lat.data, ncols)
        return out

    def mdag_m(self, psi: DistributedLattice) -> DistributedLattice:
        return self.apply_dagger(self.apply(psi))

    # ------------------------------------------------------------------
    # FermionOperator protocol metadata
    # ------------------------------------------------------------------
    @property
    def geometry(self) -> OperatorGeometry:
        """Where and on what this operator acts (protocol metadata);
        ``gdims`` is the *global* lattice, ``nranks`` the simulated
        rank decomposition."""
        grid = self.links[0].grids[0]
        return OperatorGeometry(
            gdims=tuple(self.links[0].gdims),
            tensor_shape=SPINOR,
            dtype=str(grid.dtype),
            backend=grid.backend.name,
            nranks=self.ranks.nranks,
        )

    def flops_per_site(self) -> int:
        """Same 1320-flop Wilson-dslash count as the single-rank
        operator; the decomposition moves data, not arithmetic."""
        return 1320

    def bytes_per_site(self) -> int:
        """Same nominal traffic as the single-rank operator (8 spinor
        + 8 link reads, one spinor write), per local site."""
        grid = self.links[0].grids[0]
        return (8 * 12 + 8 * 9 + 12) * grid.dtype.itemsize


def _columns(acc, fwd, bwd, ncols: int):
    """Column views of (output, fwd, bwd) data — one triple for a plain
    spinor field, one per RHS for a batch (tensor ``(nrhs, 4, 3)``)."""
    if not ncols:
        yield acc, fwd, bwd
        return
    for j in range(ncols):
        yield acc[:, j], fwd[:, j], bwd[:, j]


def _gamma5_into(be, out, data, ncols: int) -> None:
    """``out = gamma_5 data`` (column-wise for a batch; gamma acts on
    the spin axis, which sits behind the batch axis)."""
    if not ncols:
        out[...] = g.gamma5_apply(be, data)
        return
    for j in range(ncols):
        out[:, j] = g.gamma5_apply(be, data[:, j])


def distribute_gauge(links, gdims, backend, mpi_layout,
                     simd_layout=None, compress_halos: bool = False,
                     checksum_halos: bool = False, comms_faults=None,
                     max_retries: int = 3,
                     latency: LatencyModel = None) -> list:
    """Scatter single-rank gauge links into distributed fields."""
    out = []
    for u in links:
        dl = DistributedLattice(gdims, backend, mpi_layout, (3, 3),
                                simd_layout=simd_layout,
                                compress_halos=compress_halos,
                                checksum_halos=checksum_halos,
                                comms_faults=comms_faults,
                                max_retries=max_retries,
                                latency=latency)
        dl.scatter(u.to_canonical())
        out.append(dl)
    return out

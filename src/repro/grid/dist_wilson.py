"""The Wilson operator over a rank-decomposed lattice.

Combines all three parallelization levels of Section II-A: rank-level
domain decomposition (simulated halo exchange, optionally fp16
compressed), the virtual-node SIMD layout within each rank, and the
vector backend below that.  Tests assert bit-identical agreement with
the single-rank :class:`repro.grid.wilson.WilsonDirac`.
"""

from __future__ import annotations

from typing import Sequence


from repro.grid import gamma as g
from repro.grid.comms import DistributedLattice
from repro.grid.tensor import su3_dagger_mul_vec, su3_mul_vec
from repro.grid.wilson import SPINOR
from repro.perf.fused import engine_active, fused_dhop_rank


class DistributedWilson:
    """Wilson fermion matrix over distributed gauge links.

    Parameters
    ----------
    links:
        Four :class:`DistributedLattice` gauge fields (one per
        direction), all on the same rank geometry.
    mass:
        Bare quark mass.
    """

    def __init__(self, links: Sequence[DistributedLattice],
                 mass: float = 0.1) -> None:
        self.links = list(links)
        self.mass = float(mass)
        self.ranks = links[0].ranks
        self.ndim = len(links[0].gdims)
        if len(self.links) != self.ndim:
            raise ValueError("need one gauge field per direction")
        # Backward links gathered once (they are static).
        self.links_back = [self.links[mu].cshift(mu, -1)
                           for mu in range(self.ndim)]

    def _zero_like(self, psi: DistributedLattice) -> DistributedLattice:
        out = psi.clone_empty()
        out.locals = [lat.new_like() for lat in psi.locals]
        return out

    def dhop(self, psi: DistributedLattice) -> DistributedLattice:
        """Apply Eq. (1) with halo exchange at rank boundaries."""
        if psi.tensor_shape != SPINOR:
            raise ValueError("distributed Wilson operator acts on spinors")
        out = self._zero_like(psi)
        for mu in range(self.ndim):
            # Halo exchange stays serial and ordered (comms protocol);
            # only the rank-local arithmetic below is fused/tiled.
            fwd = psi.cshift(mu, +1)
            bwd = psi.cshift(mu, -1)
            for r in range(self.ranks.nranks):
                be = psi.grids[r].backend
                if engine_active(be):
                    fused_dhop_rank(
                        out.locals[r].data,
                        self.links[mu].locals[r].data,
                        self.links_back[mu].locals[r].data,
                        fwd.locals[r].data, bwd.locals[r].data, mu,
                    )
                    continue
                acc = out.locals[r].data
                h = g.project(be, fwd.locals[r].data, mu, +1)
                uh = su3_mul_vec(be, self.links[mu].locals[r].data, h)
                acc = be.add(acc, g.reconstruct(be, uh, mu, +1))
                h = g.project(be, bwd.locals[r].data, mu, -1)
                uh = su3_dagger_mul_vec(
                    be, self.links_back[mu].locals[r].data, h
                )
                acc = be.add(acc, g.reconstruct(be, uh, mu, -1))
                out.locals[r].data = acc
        return out

    def apply(self, psi: DistributedLattice) -> DistributedLattice:
        """``M psi = (4 + m) psi - 1/2 D_h psi``."""
        hop = self.dhop(psi)
        return psi * (4.0 + self.mass) - hop * 0.5

    M = apply

    def apply_dagger(self, psi: DistributedLattice) -> DistributedLattice:
        """``M^dagger`` via gamma5-hermiticity, rank by rank."""
        tmp = self._zero_like(psi)
        for r, lat in enumerate(psi.locals):
            be = psi.grids[r].backend
            tmp.locals[r].data = g.gamma5_apply(be, lat.data)
        tmp = self.apply(tmp)
        out = self._zero_like(psi)
        for r, lat in enumerate(tmp.locals):
            be = psi.grids[r].backend
            out.locals[r].data = g.gamma5_apply(be, lat.data)
        return out

    def mdag_m(self, psi: DistributedLattice) -> DistributedLattice:
        return self.apply_dagger(self.apply(psi))


def distribute_gauge(links, gdims, backend, mpi_layout,
                     simd_layout=None, compress_halos: bool = False,
                     checksum_halos: bool = False, comms_faults=None,
                     max_retries: int = 3) -> list:
    """Scatter single-rank gauge links into distributed fields."""
    out = []
    for u in links:
        dl = DistributedLattice(gdims, backend, mpi_layout, (3, 3),
                                simd_layout=simd_layout,
                                compress_halos=compress_halos,
                                checksum_halos=checksum_halos,
                                comms_faults=comms_faults,
                                max_retries=max_retries)
        dl.scatter(u.to_canonical())
        out.append(dl)
    return out

"""Mixed-precision solver: double-precision accuracy at
single-precision speed.

The technique of the paper's reference [3] (Clark et al., the QUDA
library: "Solving Lattice QCD systems of equations using mixed
precision solvers on GPUs"), which Grid also implements: run the inner
Krylov iteration in single precision and wrap it in a double-precision
defect-correction (reliable-update) loop.

It is also an exercise of the port surface this paper cares about —
the single-precision operator uses ``vComplexF`` lanes (twice as many
per register, Section V-B's 32-bit specialization of ``vec<T>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.lattice import Lattice
from repro.grid.solver import conjugate_gradient
from repro.grid.wilson import SPINOR, WilsonDirac
from repro.telemetry.reports import traced_solver


@dataclass
class MixedPrecisionResult:
    """Outcome of a mixed-precision solve."""

    x: Lattice
    converged: bool
    outer_iterations: int
    inner_iterations_total: int
    residual: float
    residual_history: list = field(default_factory=list)


def make_single_precision_copy(dirac: WilsonDirac) -> WilsonDirac:
    """A ``complex64`` replica of a Wilson operator.

    The single-precision grid has twice the complex lanes per register
    (vComplexF vs vComplexD), hence a *different* virtual-node
    decomposition — conversion goes through the canonical layout.
    """
    grid64 = dirac.grid
    grid32 = GridCartesian(grid64.gdims, grid64.backend,
                           mpi_layout=grid64.mpi_layout,
                           dtype=np.complex64)
    links32 = []
    for u in dirac.links:
        lat = Lattice(grid32, (3, 3))
        lat.from_canonical(u.to_canonical().astype(np.complex64))
        links32.append(lat)
    return WilsonDirac(links32, mass=dirac.mass)


def _to_single(grid32: GridCartesian, psi: Lattice) -> Lattice:
    lat = Lattice(grid32, SPINOR)
    lat.from_canonical(psi.to_canonical().astype(np.complex64))
    return lat


def _to_double(grid64: GridCartesian, psi32: Lattice) -> Lattice:
    lat = Lattice(grid64, SPINOR)
    lat.from_canonical(psi32.to_canonical().astype(np.complex128))
    return lat


@traced_solver("mixed")
def mixed_precision_cgne(
    dirac: WilsonDirac,
    b: Lattice,
    tol: float = 1e-10,
    inner_tol: float = 1e-5,
    max_outer: int = 20,
    max_inner: int = 500,
) -> MixedPrecisionResult:
    """Solve ``M x = b`` to double-precision ``tol`` with
    single-precision inner CGNE solves.

    Defect correction: in double precision keep the true residual
    ``r = b - M x``; each outer step solves ``M d = r`` approximately
    in float32 and updates ``x += d``.  Because the residual is
    re-computed in double precision, the final accuracy is *not*
    limited by float32 — only the convergence *rate* of the inner
    solve is.
    """
    dirac32 = make_single_precision_copy(dirac)
    grid32 = dirac32.grid
    grid64 = dirac.grid
    x = b.new_like()
    r = b.copy()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return MixedPrecisionResult(x=x, converged=True, outer_iterations=0,
                                    inner_iterations_total=0, residual=0.0)
    history = [1.0]
    inner_total = 0
    for outer in range(1, max_outer + 1):
        # Inner: CGNE on the float32 operator, float32 RHS.
        r32 = _to_single(grid32, r)
        rhs32 = dirac32.apply_dagger(r32)
        inner = conjugate_gradient(dirac32.mdag_m, rhs32, tol=inner_tol,
                                   max_iter=max_inner)
        inner_total += inner.iterations
        d = _to_double(grid64, inner.x)
        x = x + d
        # True residual, double precision.
        r = b - dirac.apply(x)
        rel = r.norm2() ** 0.5 / bnorm
        history.append(rel)
        if rel <= tol:
            return MixedPrecisionResult(
                x=x, converged=True, outer_iterations=outer,
                inner_iterations_total=inner_total, residual=rel,
                residual_history=history,
            )
        if len(history) > 2 and history[-1] > 0.9 * history[-2]:
            # Stagnation guard: float32 inner solve can no longer
            # reduce the double-precision residual.
            break
    return MixedPrecisionResult(
        x=x, converged=False, outer_iterations=len(history) - 1,
        inner_iterations_total=inner_total, residual=history[-1],
        residual_history=history,
    )

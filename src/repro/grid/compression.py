"""IEEE binary16 compression for communication buffers.

Section V-B: "Grid does not support calculations using 16-bit
floating-point numbers.  This data type is used only for data
compression upon data exchange over the communications network."

The codec converts complex halo buffers to interleaved fp16 for the
wire and back to working precision on receipt — a 4x volume reduction
for double-precision fields at a bounded relative error (fp16 has a
10-bit mantissa: ~2^-11 relative rounding, values saturate beyond
~65504).  :func:`compression_error_bound` documents the contract the
tests assert.
"""

from __future__ import annotations

import numpy as np

#: Largest finite fp16 magnitude.
FP16_MAX = 65504.0

#: Relative rounding error of fp16 (half ulp at 10 mantissa bits).
FP16_EPS = 2.0 ** -11


def compress_complex(buf: np.ndarray) -> np.ndarray:
    """Pack a complex array into interleaved fp16 (re, im, re, im...)."""
    buf = np.asarray(buf)
    if buf.dtype == np.complex128:
        view = np.ascontiguousarray(buf).view(np.float64)
    elif buf.dtype == np.complex64:
        view = np.ascontiguousarray(buf).view(np.float32)
    else:
        raise TypeError(f"expected complex buffer, got {buf.dtype}")
    with np.errstate(over="ignore"):
        return view.astype(np.float16)


def decompress_complex(wire: np.ndarray, dtype=np.complex128) -> np.ndarray:
    """Unpack interleaved fp16 back to a complex array."""
    dtype = np.dtype(dtype)
    wire = np.asarray(wire, dtype=np.float16)
    if dtype == np.complex128:
        return np.ascontiguousarray(wire.astype(np.float64)).view(np.complex128)
    if dtype == np.complex64:
        return np.ascontiguousarray(wire.astype(np.float32)).view(np.complex64)
    raise TypeError(f"expected complex target dtype, got {dtype}")


def wire_bytes(n_complex: int, compressed: bool,
               dtype=np.complex128) -> int:
    """Bytes on the wire for ``n_complex`` complex numbers."""
    if compressed:
        return n_complex * 2 * 2  # two fp16 per complex
    return n_complex * np.dtype(dtype).itemsize


def compression_ratio(dtype=np.complex128) -> float:
    """Volume reduction factor of fp16 compression."""
    return np.dtype(dtype).itemsize / 4.0


def compression_error_bound(buf: np.ndarray) -> float:
    """A priori bound on the absolute round-trip error per element."""
    m = float(np.abs(np.asarray(buf).view(np.float64)).max(initial=0.0)) \
        if np.asarray(buf).dtype == np.complex128 else \
        float(np.abs(np.asarray(buf).view(np.float32)).max(initial=0.0))
    if m > FP16_MAX:
        return float("inf")
    # Subnormal floor plus relative rounding.
    return m * FP16_EPS + 2.0 ** -24

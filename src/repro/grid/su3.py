"""SU(3) gauge-field utilities.

Gauge matrices ``U_{x,mu}`` live on links and are "represented by 3x3
matrices with complex entries" (Section II-A).  This module provides
construction (cold/unit, random), reunitarisation, and verification
helpers (unitarity / determinant deviations).
"""

from __future__ import annotations

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.lattice import Lattice
from repro.grid.pauli import random_su3


def unit_gauge(grid: GridCartesian) -> list:
    """Cold configuration: ``U_{x,mu} = 1`` for all links."""
    links = []
    for _mu in range(grid.ndim):
        lat = Lattice(grid, (3, 3))
        lat.data[:, 0, 0, :] = 1.0
        lat.data[:, 1, 1, :] = 1.0
        lat.data[:, 2, 2, :] = 1.0
        links.append(lat)
    return links


def random_su3_field(grid: GridCartesian, rng: np.random.Generator,
                     spread: float = 1.0) -> Lattice:
    """A lattice of independent random SU(3) matrices.

    Generated in canonical site order so the field is identical for
    any SIMD layout or rank decomposition (layout-equivalence tests
    rely on this).
    """
    canonical = np.empty((grid.lsites, 3, 3), dtype=np.complex128)
    for s in range(grid.lsites):
        canonical[s] = random_su3(rng, spread)
    lat = Lattice(grid, (3, 3))
    lat.from_canonical(canonical)
    return lat


def reunitarize(mat: np.ndarray) -> np.ndarray:
    """Project a 3x3 complex matrix to SU(3) (Gram-Schmidt + det fix)."""
    m = np.asarray(mat, dtype=np.complex128).copy()
    # Gram-Schmidt on rows.
    m[0] /= np.linalg.norm(m[0])
    m[1] -= m[0] * np.vdot(m[0], m[1])
    m[1] /= np.linalg.norm(m[1])
    m[2] = np.conj(np.cross(m[0], m[1]))
    # Fix the determinant phase.
    det = np.linalg.det(m)
    m *= det ** (-1.0 / 3.0)
    return m


def unitarity_defect(mat: np.ndarray) -> float:
    """``max |U U^dagger - 1|`` over the matrix entries."""
    m = np.asarray(mat)
    return float(np.abs(m @ m.conj().T - np.eye(3)).max())


def max_unitarity_defect(lat: Lattice) -> float:
    """Largest unitarity defect over a gauge lattice."""
    can = lat.to_canonical()  # (lsites, 3, 3)
    prod = np.einsum("sab,scb->sac", can, can.conj())
    return float(np.abs(prod - np.eye(3)).max())


def max_det_defect(lat: Lattice) -> float:
    """Largest ``|det U - 1|`` over a gauge lattice."""
    can = lat.to_canonical()
    return float(np.abs(np.linalg.det(can) - 1.0).max())


def plaquette(links: list, grid: GridCartesian) -> float:
    """Average plaquette ``Re tr(U_mu(x) U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+)/3``.

    The standard first observable of any lattice gauge code; equals 1
    on a cold configuration.
    """
    from repro.grid.cshift import cshift
    from repro.grid.tensor import (
        colour_mm, colour_mm_dagger_right, colour_trace_re,
    )

    total = 0.0
    count = 0
    for mu in range(grid.ndim):
        for nu in range(mu + 1, grid.ndim):
            u_mu = links[mu]
            u_nu = links[nu]
            u_nu_xpmu = cshift(u_nu, mu, +1)
            u_mu_xpnu = cshift(u_mu, nu, +1)
            # staple = U_mu(x) U_nu(x+mu) (U_mu(x+nu))^+ (U_nu(x))^+
            m1 = colour_mm(grid.backend, u_mu.data, u_nu_xpmu.data)
            m2 = colour_mm_dagger_right(grid.backend, m1, u_mu_xpnu.data)
            m3 = colour_mm_dagger_right(grid.backend, m2, u_nu.data)
            total += colour_trace_re(grid.backend, m3)
            count += grid.lsites
    return total / (3.0 * count)

"""Communication/computation overlap for the distributed Wilson-Dslash.

The ordered path in :class:`repro.grid.dist_wilson.DistributedWilson`
completes every halo exchange before touching a single site, so each
message's latency lands on the critical path.  Grid instead posts all
halos up front and computes the *interior* — the sites whose stencil
never crosses a rank boundary — while the messages are in flight,
finishing the boundary *shells* as halos arrive.  This module is that
schedule over the simulated comms layer of :mod:`repro.grid.comms`:

1. **Post** every one of the 2·ndim·nranks halo messages through the
   :class:`~repro.grid.comms.AsyncCommsQueue`, in exactly the message
   order of the ordered path (mu ascending, forward then backward,
   rank ascending) — so traffic accounting, CRC/retry behaviour and
   seeded fault schedules are identical to the ordered exchange.
2. **Interior** — fill the halo-independent part of each neighbour
   buffer (the ``k == 0`` virtual-node groups of the cached cshift
   plan) and sweep the interior sites through the fused accumulation
   body, tiled over the PR 2 thread pool.
3. **Shells** — for each dimension in ascending order, wait for its
   halos, blend the boundary lanes into the ``k >= 1`` buffer groups,
   and sweep the sites whose highest halo-dependent dimension it is.

**Bit-identity.**  Each neighbour buffer is filled with values bitwise
equal to the ordered path's shifted field (same gather plan, same lane
rotations, same ``np.where`` blend); the wire content of each message
is computed deterministically at post time (the latency model delays
only availability); and interior + shells partition the outer-site
axis, so every output site is written once, by the same
:func:`~repro.perf.fused._accumulate_direction` sequence (mu
ascending, +1 then -1) the fused ordered path runs.  Overlapped and
ordered dhop therefore agree to the last bit at any latency, which the
test suite asserts across VLs, rank layouts, compressed/checksummed
halos and injected comms faults.
"""

from __future__ import annotations

import numpy as np

from repro.engine.plan import fused_safe_backend, register_plan_host
from repro.engine.policy import current_policy
from repro.grid.cshift import _apply_lane_rotation
from repro.grid.cshift import _shift_plan as _local_shift_plan
from repro.grid.stencil import halo_dependency
from repro.perf.counters import counters
from repro.perf.fused import _accumulate_direction
from repro.perf.parallel import run_tiles, tiles_for
from repro.telemetry import trace as _telemetry

#: Spinor tensor shape (kept local for import-cycle freedom).
SPINOR = (4, 3)


def overlap_active(dist) -> bool:
    """True when the overlap engine should take this distributed sweep:
    overlap resolved on in the current policy and a fused-safe backend
    (the shell sweep reuses the fused accumulation body).  Historical
    gate; the distributed operator now reads ``plan.overlap`` off its
    :class:`~repro.engine.plan.KernelPlan`, which resolves to exactly
    this condition."""
    return (current_policy().overlap_active
            and fused_safe_backend(dist.grids[0].backend))


class DistHaloPlan:
    """Geometry-only recipe for one overlapped sweep.

    Holds, per (direction, sign): the rank-step/local-shift
    decomposition and the cached cshift group plan; plus the
    interior/shell partition of the outer-site axis.  Depends only on
    the grid geometry and rank layout — never on field data — so it is
    memoized per grid instance alongside the cshift plans.
    """

    def __init__(self, dist) -> None:
        grid = dist.grids[0]
        self.ndim = grid.ndim
        self.shift_params = {}
        self.groups = {}
        for mu in range(self.ndim):
            for sign in (+1, -1):
                rank_steps, s = dist._dist_shift_params(mu, sign)
                self.shift_params[(mu, sign)] = (rank_steps, s)
                if s != 0:
                    self.groups[(mu, sign)] = _local_shift_plan(grid, mu, s)
        self.interior, self.shells = halo_dependency(grid)


def halo_plan_for(dist) -> DistHaloPlan:
    """The overlap plan for ``dist``'s geometry, memoized per grid
    instance under the engine's uniform cache knob (with
    ``caches_active`` off the plan is re-derived per sweep and nothing
    is stored)."""
    grid = dist.grids[0]
    if not current_policy().caches_active:
        return DistHaloPlan(dist)
    plan = grid.__dict__.get("_dist_halo_plan")
    if plan is None:
        plan = DistHaloPlan(dist)
        grid.__dict__["_dist_halo_plan"] = plan
        register_plan_host(grid)
    return plan


def overlapped_dhop(op, psi, kplan=None):
    """Apply ``op``'s hopping term with halo exchange hidden behind
    interior compute.  ``op`` is a :class:`~repro.grid.dist_wilson.
    DistributedWilson`; ``psi`` a spinor or multi-RHS batch field.
    ``kplan`` (a resolved :class:`~repro.engine.plan.KernelPlan`) pins
    the tile split and feeds the per-stage counters."""
    counters().bump("overlap_dhop_calls")
    plan = halo_plan_for(psi)
    workers = None if kplan is None else kplan.workers
    min_sites = None if kplan is None else kplan.tile_min_sites

    def sweep(body, n_sites: int) -> None:
        run_tiles(body, tiles_for(n_sites, workers=workers,
                                  min_sites=min_sites),
                  workers=workers)
    ndim = op.ndim
    nranks = psi.ranks.nranks
    grid = psi.grids[0]
    ncols = psi.tensor_shape[0] if len(psi.tensor_shape) == 3 else 0
    if ncols:
        counters().bump("batched_dhop_calls")
    out = op._zero_like(psi)

    # -- Phase 1: post every halo, in the ordered path's message order.
    # One transport resolution covers the whole sweep: post and wait
    # go through the same backend even if the policy scope changes
    # mid-flight.
    transport = psi.transport
    srcs = {}
    handles = {}
    with _telemetry.span("overlap.post", nranks=nranks):
        for mu in range(ndim):
            for sign in (+1, -1):
                rank_steps, s = plan.shift_params[(mu, sign)]
                for r in range(nranks):
                    srcs[(mu, sign, r)] = psi.ranks.neighbour(
                        r, mu, rank_steps
                    )
                if s == 0:
                    continue
                for r in range(nranks):
                    handles[(mu, sign, r)] = transport.post_halo(
                        psi, srcs[(mu, sign, r)], mu
                    )
    if kplan is not None:
        kplan.stages.bump("post", len(handles))

    # -- Phase 2: halo-independent buffer groups + interior sweep.
    bufs: list = [dict() for _ in range(nranks)]
    for mu in range(ndim):
        for sign in (+1, -1):
            _steps, s = plan.shift_params[(mu, sign)]
            for r in range(nranks):
                src_data = psi.locals[srcs[(mu, sign, r)]].data
                if s == 0:
                    # Whole-rank renumbering: the "shifted" field is the
                    # source rank's field verbatim (read-only use).
                    bufs[r][(mu, sign)] = src_data
                    continue
                buf = np.empty_like(src_data)
                for k, sel, src_osites, _nbr in plan.groups[(mu, sign)]:
                    if k == 0:  # no rotation, no boundary lanes
                        buf[sel] = src_data[src_osites]
                bufs[r][(mu, sign)] = buf

    links = [op.links[mu].locals for mu in range(ndim)]
    links_back = [op.links_back[mu].locals for mu in range(ndim)]

    codegen_fns = None
    if kplan is not None and kplan.codegen != "off":
        # Generated per-direction kernels replace the interpreted
        # accumulation body; schedule and message order are untouched.
        from repro.codegen import kernel_for

        dt = out.locals[0].data.dtype
        codegen_fns = [
            kernel_for(f"dhop-dir{mu}", 4, dt, kplan.codegen,
                       caches=kplan.caches).fn
            for mu in range(ndim)
        ]

    def accumulate(r: int, idx: np.ndarray) -> None:
        """Full 8-direction accumulation for the sites ``idx`` of rank
        ``r`` — gather-to-scratch, accumulate in the reference order,
        scatter back (fancy indexing copies, so in-place on a gather
        view would be lost)."""
        if idx.size == 0:
            return
        acc = out.locals[r].data
        a = acc[idx]
        for mu in range(ndim):
            u_f = links[mu][r].data[idx]
            u_b = links_back[mu][r].data[idx]
            n_f = bufs[r][(mu, +1)][idx]
            n_b = bufs[r][(mu, -1)][idx]
            if codegen_fns is not None:
                if ncols:
                    for j in range(ncols):
                        codegen_fns[mu](a[:, j], u_f, n_f[:, j],
                                        u_b, n_b[:, j])
                else:
                    codegen_fns[mu](a, u_f, n_f, u_b, n_b)
            elif ncols:
                for j in range(ncols):
                    _accumulate_direction(a[:, j], u_f, n_f[:, j], mu, +1)
                    _accumulate_direction(a[:, j], u_b, n_b[:, j], mu, -1)
            else:
                _accumulate_direction(a, u_f, n_f, mu, +1)
                _accumulate_direction(a, u_b, n_b, mu, -1)
        acc[idx] = a

    interior = plan.interior
    with _telemetry.span("overlap.interior", sites=int(interior.size),
                         nranks=nranks):
        for r in range(nranks):
            sweep(lambda sl, r=r: accumulate(r, interior[sl]),
                  interior.size)
    if kplan is not None:
        kplan.stages.bump("interior", nranks)

    # -- Phase 3: complete each dimension's halos, then its shell.
    with _telemetry.span("overlap.shells", nranks=nranks):
        for d in range(ndim):
            for sign in (+1, -1):
                _steps, s = plan.shift_params[(d, sign)]
                if s == 0:
                    continue
                for r in range(nranks):
                    halo = transport.wait(handles[(d, sign, r)])
                    buf = bufs[r][(d, sign)]
                    src_data = psi.locals[srcs[(d, sign, r)]].data
                    for k, sel, src_osites, nbr_lanes in \
                            plan.groups[(d, sign)]:
                        if k == 0:
                            continue
                        rotated = _apply_lane_rotation(
                            src_data[src_osites], grid, d, k
                        )
                        rotated_nbr = _apply_lane_rotation(
                            halo[src_osites], grid, d, k
                        )
                        buf[sel] = np.where(nbr_lanes, rotated_nbr,
                                            rotated)
            shell = plan.shells[d]
            for r in range(nranks):
                sweep(lambda sl, r=r: accumulate(r, shell[sl]),
                      shell.size)
            if kplan is not None:
                kplan.stages.bump("shell", nranks)
    return out

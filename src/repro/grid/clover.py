"""The Wilson-clover (Sheikholeslami-Wohlert) fermion operator.

Grid's production Wilson fermions are usually O(a)-improved with the
clover term, so a complete port must cover it too:

    M_clover = M_wilson - (c_sw / 4) sum_{mu<nu} sigma_munu F_munu

with ``sigma_munu = (i/2) [gamma_mu, gamma_nu]`` and the field-strength
``F_munu`` built from the four "clover-leaf" plaquettes around each
site,

    F_munu(x) = (1/8) [ Q_munu(x) - Q_munu(x)^dagger ],

where ``Q_munu`` is the sum of the four oriented plaquette loops in the
(mu, nu) plane touching ``x``.  The clover term is site-diagonal — all
the parallel-transport work is in assembling the leaves, which
exercises the same cshift/colour-product machinery as the hopping term.
"""

from __future__ import annotations

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.cshift import cshift
from repro.grid.gamma import GAMMA
from repro.grid.lattice import Lattice
from repro.grid.tensor import colour_mm, colour_mm_dagger_right
from repro.grid.wilson import SPINOR, WilsonDirac

#: sigma_munu = (i/2) [gamma_mu, gamma_nu].
SIGMA_MUNU = np.zeros((4, 4, 4, 4), dtype=np.complex128)
for _mu in range(4):
    for _nu in range(4):
        SIGMA_MUNU[_mu, _nu] = 0.5j * (
            GAMMA[_mu] @ GAMMA[_nu] - GAMMA[_nu] @ GAMMA[_mu]
        )


def _mm(be, a, b):
    return colour_mm(be, a, b)


def _mm_dag(be, a, b):
    return colour_mm_dagger_right(be, a, b)


def _dagger(field: np.ndarray) -> np.ndarray:
    """Colour-matrix dagger per site: swap the two colour axes and
    conjugate."""
    return np.conj(np.swapaxes(field, 1, 2))


def clover_leaves(links, grid: GridCartesian, mu: int, nu: int) -> np.ndarray:
    """``Q_munu(x)``: the sum of the four oriented plaquette leaves.

    With ``U±`` denoting links and shifts, the four leaves are the
    plaquettes in the (mu, nu) plane starting at x with orientations
    (+mu,+nu), (+nu,-mu), (-mu,-nu), (-nu,+mu).
    """
    be = grid.backend
    u_mu, u_nu = links[mu], links[nu]
    u_mu_xpnu = cshift(u_mu, nu, +1)    # U_mu(x+nu)
    u_nu_xpmu = cshift(u_nu, mu, +1)    # U_nu(x+mu)

    # Leaf 1: U_mu(x) U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+
    l1 = _mm_dag(be, _mm_dag(be, _mm(be, u_mu.data, u_nu_xpmu.data),
                             u_mu_xpnu.data), u_nu.data)

    # Leaf 2: U_nu(x) U_mu(x-mu+nu)^+ U_nu(x-mu)^+ U_mu(x-mu)
    u_mu_xmmu = cshift(u_mu, mu, -1)                   # U_mu(x-mu)
    u_nu_xmmu = cshift(u_nu, mu, -1)                   # U_nu(x-mu)
    u_mu_xmmu_pnu = cshift(u_mu_xmmu, nu, +1)          # U_mu(x-mu+nu)
    l2 = _mm(be, _mm_dag(be, _mm_dag(be, u_nu.data, u_mu_xmmu_pnu.data),
                         u_nu_xmmu.data), u_mu_xmmu.data)

    # Leaf 3: U_mu(x-mu)^+ U_nu(x-mu-nu)^+ U_mu(x-mu-nu) U_nu(x-nu)
    u_nu_xmnu = cshift(u_nu, nu, -1)                   # U_nu(x-nu)
    u_mu_xmmu_mnu = cshift(u_mu_xmmu, nu, -1)          # U_mu(x-mu-nu)
    u_nu_xmmu_mnu = cshift(u_nu_xmmu, nu, -1)          # U_nu(x-mu-nu)
    t = _mm(be, _dagger(u_nu_xmmu_mnu.data), u_mu_xmmu_mnu.data)
    l3 = _mm(be, _mm(be, _dagger(u_mu_xmmu.data), t), u_nu_xmnu.data)

    # Leaf 4: U_nu(x-nu)^+ U_mu(x-nu) U_nu(x+mu-nu) U_mu(x)^+
    u_mu_xmnu = cshift(u_mu, nu, -1)                   # U_mu(x-nu)
    u_nu_xpmu_mnu = cshift(u_nu_xpmu, nu, -1)          # U_nu(x+mu-nu)
    t = _mm(be, _dagger(u_nu_xmnu.data), u_mu_xmnu.data)
    l4 = _mm_dag(be, _mm(be, t, u_nu_xpmu_mnu.data), u_mu.data)

    return l1 + l2 + l3 + l4


def field_strength(links, grid: GridCartesian, mu: int, nu: int) -> np.ndarray:
    """``F_munu = -(i/8)(Q_munu - Q_munu^dagger)`` — *hermitian* in
    colour (so that ``sigma_munu x F_munu`` is hermitian and the clover
    operator stays gamma5-hermitian), and zero on a cold configuration."""
    q = clover_leaves(links, grid, mu, nu)
    return -0.125j * (q - _dagger(q))


class WilsonClover(WilsonDirac):
    """Wilson fermions with the clover improvement term.

    Parameters
    ----------
    links, mass:
        As for :class:`~repro.grid.wilson.WilsonDirac`.
    c_sw:
        The Sheikholeslami-Wohlert coefficient (1 at tree level).
    """

    def __init__(self, links, mass: float = 0.1, c_sw: float = 1.0,
                 cshift_fn=None) -> None:
        super().__init__(links, mass=mass, cshift_fn=cshift_fn)
        self.c_sw = float(c_sw)
        # Precompute F_munu for the 6 planes (static per configuration).
        self._fmunu = {}
        for mu in range(self.grid.ndim):
            for nu in range(mu + 1, self.grid.ndim):
                self._fmunu[(mu, nu)] = field_strength(
                    self.links, self.grid, mu, nu
                )

    def clover_term(self, psi: Lattice) -> Lattice:
        """``sum_{mu<nu} sigma_munu F_munu psi`` (site-diagonal)."""
        self._check(psi)
        be = self.grid.backend
        out = Lattice(self.grid, SPINOR)
        acc = out.data
        for (mu, nu), f in self._fmunu.items():
            sigma = SIGMA_MUNU[mu, nu]
            # (sigma x F) psi: spin rotation of the colour-rotated field.
            for i in range(4):
                for j in range(4):
                    s = complex(sigma[i, j])
                    if s == 0:
                        continue
                    # colour: F psi_j ; spin: accumulate into component i
                    fp = np.zeros_like(psi.data[:, j])
                    for a in range(3):
                        for b in range(3):
                            fp[:, a] = be.madd(fp[:, a], f[:, a, b],
                                               psi.data[:, j, b])
                    acc[:, i] = be.add(acc[:, i], be.scale(fp, s))
        out.data = acc
        return out

    def apply(self, psi: Lattice) -> Lattice:
        """``M psi = (4 + m) psi - 1/2 D_h psi - (c_sw/4) sigma.F psi``.

        (Conventions vary by a factor in the clover normalisation; we
        fix ours by the tests: cold-gauge reduction and hermiticity.)
        """
        base = super().apply(psi)
        if self.c_sw == 0.0:
            return base
        return base - self.clover_term(psi) * (self.c_sw / 4.0)

    M = apply

"""The SVE machine executor.

Fetch/decode/execute loop over a :class:`repro.sve.program.Program` at a
fixed vector length — the role ArmIE played in the paper
(Section V-D): *"The emulator allows for functional code verification
by emulating SVE instructions ... The SVE vector length is supplied to
ArmIE as a command-line parameter."*

The machine owns the architectural state (Z/P/X registers, NZCV,
memory) and dispatches each mnemonic to a handler that unpacks
registers, calls the pure semantics in :mod:`repro.sve.ops`, and writes
results back.  A :class:`repro.sve.tracer.Tracer` observes every retired
instruction; a :class:`repro.sve.faults.FaultModel` may corrupt
predicate-generating instructions to model the immature-toolchain
failures of Section V-D.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sve import predicate as predops
from repro.sve.decoder import (
    Imm,
    Instruction,
    LabelRef,
    MemOp,
    Pattern,
    POp,
    ShiftSpec,
    VOp,
    XOp,
    ZOp,
)
from repro.sve.memory import Memory
from repro.sve.ops import arith, cplx, convert, loadstore, permute, reduce
from repro.sve.program import Program
from repro.sve.regfile import Flags, PRegisterFile, XRegisterFile, ZRegisterFile
from repro.sve.types import (
    FLOAT_BY_SUFFIX,
    INT_BY_SUFFIX,
    SIZE_BY_SUFFIX,
    UINT_BY_SUFFIX,
)
from repro.sve.vl import VL

_MASK64 = (1 << 64) - 1


class SimulationError(RuntimeError):
    """Raised for unimplemented instructions or runaway programs."""


#: Class-wide dispatch table, built once on first Machine construction
#: (it is pure — every handler takes ``(machine, insn)``), so creating a
#: machine per kernel invocation no longer rebuilds ~130 entries.
_DISPATCH_TABLE: Optional[dict] = None


def _resolve_trace(program: Program, dispatch: dict) -> tuple:
    """Pre-resolve every instruction of ``program`` to its handler.

    The resolved trace is cached on the program object, so repeated
    executions of the same (cached) program skip the per-step dispatch
    lookup — the executor's share of the trace-cache fast path.
    """
    cached = getattr(program, "_trace", None)
    if cached is not None and cached[0] is dispatch:
        return cached[1]
    handlers = tuple(dispatch.get(insn.mnemonic)
                     for insn in program.instructions)
    program._trace = (dispatch, handlers)
    return handlers


class Machine:
    """Architectural state + executor for one SVE hardware thread."""

    def __init__(
        self,
        vl: VL,
        memory: Optional[Memory] = None,
        tracer=None,
        fault_model=None,
    ) -> None:
        self.vl = vl
        self.mem = memory if memory is not None else Memory()
        self.z = ZRegisterFile(vl)
        self.p = PRegisterFile(vl)
        self.x = XRegisterFile()
        self.flags = Flags()
        self.tracer = tracer
        self.faults = fault_model
        self.pc = 0
        self.steps = 0
        self._dispatch = _dispatch_table()

    # ==================================================================
    # Public API
    # ==================================================================
    def run(self, program: Program, max_steps: int = 10_000_000) -> int:
        """Execute ``program`` from instruction 0 until ``ret``.

        Returns the number of retired instructions.
        """
        self.pc = 0
        start_steps = self.steps
        handlers = _resolve_trace(program, self._dispatch)
        n_insns = len(program)
        instructions = program.instructions
        self._program = program
        while True:
            if self.pc >= n_insns:
                break  # fell off the end: treat as return
            insn = instructions[self.pc]
            if insn.mnemonic == "ret":
                self.steps += 1
                if self.tracer is not None:
                    self.tracer.record(insn, self.vl)
                break
            handler = handlers[self.pc]
            if handler is None:
                raise SimulationError(
                    f"unimplemented instruction: {insn.text!r}"
                )
            next_pc = handler(self, insn)
            if self.tracer is not None:
                self.tracer.record(insn, self.vl)
            self.steps += 1
            if self.steps - start_steps > max_steps:
                raise SimulationError(
                    f"program exceeded {max_steps} steps (infinite loop?)"
                )
            self.pc = self.pc + 1 if next_pc is None else next_pc
        return self.steps - start_steps

    def call(self, program: Program, *args: int, max_steps: int = 10_000_000) -> int:
        """AAPCS-style call: integer args in x0..x7, result from x0."""
        if len(args) > 8:
            raise ValueError("at most 8 integer arguments supported")
        for i, a in enumerate(args):
            self.x.write(i, a)
        self.run(program, max_steps=max_steps)
        return self.x.read(0)

    def execute(self, insn: Instruction, program: Program) -> Optional[int]:
        """Execute one instruction; returns the next pc for branches."""
        self._program = program
        handler = self._dispatch.get(insn.mnemonic)
        if handler is None:
            raise SimulationError(f"unimplemented instruction: {insn.text!r}")
        result = handler(self, insn)
        if self.tracer is not None:
            self.tracer.record(insn, self.vl)
        return result

    # ==================================================================
    # Operand helpers
    # ==================================================================
    def _esize(self, op) -> int:
        if getattr(op, "suffix", None) is None:
            raise SimulationError(f"operand {op} needs an element suffix")
        return SIZE_BY_SUFFIX[op.suffix]

    def _zf(self, op: ZOp) -> np.ndarray:
        """Read a Z register as float elements per its suffix."""
        return self.z.read(op.idx, FLOAT_BY_SUFFIX[op.suffix])

    def _zi(self, op: ZOp) -> np.ndarray:
        """Read a Z register as signed integers per its suffix."""
        return self.z.read(op.idx, INT_BY_SUFFIX[op.suffix])

    def _zu(self, op: ZOp) -> np.ndarray:
        """Read a Z register as raw unsigned elements per its suffix."""
        return self.z.read(op.idx, UINT_BY_SUFFIX[op.suffix])

    def _wzf(self, op: ZOp, values: np.ndarray) -> None:
        self.z.write(op.idx, FLOAT_BY_SUFFIX[op.suffix], values)

    def _wzi(self, op: ZOp, values: np.ndarray) -> None:
        self.z.write(op.idx, INT_BY_SUFFIX[op.suffix], values)

    def _wzu(self, op: ZOp, values: np.ndarray) -> None:
        self.z.write(op.idx, UINT_BY_SUFFIX[op.suffix], values)

    def _pred(self, op: POp, esize: int) -> np.ndarray:
        return self.p.read_elements(op.idx, esize)

    def _address(self, mem: MemOp, esize: int) -> int:
        addr = self.x.sp if mem.base.is_sp else self.x.read(mem.base.idx)
        if mem.index is not None:
            addr += self.x.read(mem.index.idx) << mem.shift
        if mem.mul_vl:
            addr += mem.imm * self.vl.bytes
        else:
            addr += mem.imm
        return addr & _MASK64

    def _branch(self, label: LabelRef) -> int:
        return self._program.target(label.name)

    def _maybe_fault_pred(self, mnemonic: str, active: np.ndarray) -> np.ndarray:
        if self.faults is not None:
            return self.faults.filter_predicate(mnemonic, active, self.vl)
        return active

    # ==================================================================
    # Scalar handlers
    # ==================================================================
    def _i_mov(self, insn: Instruction) -> None:
        dst, src = insn.operands[0], insn.operands[-1]
        if isinstance(dst, XOp):
            if isinstance(src, XOp):
                self.x.write(dst.idx, self.x.read(src.idx))
            elif isinstance(src, Imm):
                self.x.write(dst.idx, int(src.value))
            else:
                raise SimulationError(f"bad mov: {insn.text!r}")
        elif isinstance(dst, ZOp):
            if isinstance(src, Imm):
                lanes = self.vl.lanes(self._esize(dst))
                if isinstance(src.value, float):
                    self._wzf(dst, arith.dup(lanes, FLOAT_BY_SUFFIX[dst.suffix].dtype, src.value))
                else:
                    self._wzi(dst, arith.dup(lanes, INT_BY_SUFFIX[dst.suffix].dtype, src.value))
            elif isinstance(src, ZOp):
                self.z.write_bytes(dst.idx, self.z.read_bytes(src.idx))
            elif isinstance(src, XOp):
                lanes = self.vl.lanes(self._esize(dst))
                val = self.x.read(src.idx) & ((1 << (self._esize(dst) * 8)) - 1)
                self._wzu(dst, arith.dup(lanes, UINT_BY_SUFFIX[dst.suffix].dtype, val))
            else:
                raise SimulationError(f"bad mov: {insn.text!r}")
        elif isinstance(dst, POp):
            if not isinstance(src, POp):
                raise SimulationError(f"bad mov: {insn.text!r}")
            self.p.write_bits(dst.idx, self.p.read_bits(src.idx))
        else:
            raise SimulationError(f"bad mov: {insn.text!r}")

    def _i_movprfx(self, insn: Instruction) -> None:
        dst, src = insn.operands[0], insn.operands[-1]
        # movprfx zd, zn  /  movprfx zd.T, pg/z|m, zn.T — a plain copy
        # functionally (the zeroing form also zeroes inactive lanes).
        if len(insn.operands) == 3 and isinstance(insn.operands[1], POp):
            pg = insn.operands[1]
            esize = self._esize(dst)
            active = self._pred(pg, esize)
            src_v = self._zu(src)
            if pg.qualifier == "z":
                old = np.zeros_like(src_v)
            else:
                old = self._zu(ZOp(dst.idx, dst.suffix))
            self._wzu(dst, np.where(active, src_v, old))
        else:
            self.z.write_bytes(dst.idx, self.z.read_bytes(src.idx))

    def _scalar_binop(self, insn: Instruction, fn) -> None:
        dst, a = insn.operands[0], insn.operands[1]
        b = insn.operands[2]
        av = self.x.read(a.idx)
        if isinstance(b, Imm):
            bv = int(b.value)
        else:
            bv = self.x.read(b.idx)
            if len(insn.operands) == 4 and isinstance(insn.operands[3], ShiftSpec):
                spec = insn.operands[3]
                if spec.kind == "lsl":
                    bv = (bv << spec.amount) & _MASK64
                elif spec.kind == "lsr":
                    bv >>= spec.amount
        self.x.write(dst.idx, fn(av, bv))

    def _i_add(self, insn: Instruction) -> None:
        if isinstance(insn.operands[0], ZOp):
            self._vec_int_binop(insn, arith.add)
        else:
            self._scalar_binop(insn, lambda a, b: a + b)

    def _i_sub(self, insn: Instruction) -> None:
        if isinstance(insn.operands[0], ZOp):
            self._vec_int_binop(insn, arith.sub)
        else:
            self._scalar_binop(insn, lambda a, b: a - b)

    def _i_mul(self, insn: Instruction) -> None:
        if isinstance(insn.operands[0], ZOp):
            self._vec_int_binop(insn, arith.mul)
        else:
            self._scalar_binop(insn, lambda a, b: a * b)

    def _i_lsl(self, insn: Instruction) -> None:
        if isinstance(insn.operands[0], ZOp):
            dst, a, sh = insn.operands
            self._wzu(dst, arith.lsl(self._zu(a), int(sh.value)))
            return
        self._scalar_binop(insn, lambda a, b: (a << b) & _MASK64)

    def _i_lsr(self, insn: Instruction) -> None:
        if isinstance(insn.operands[0], ZOp):
            dst, a, sh = insn.operands
            self._wzu(dst, arith.lsr(self._zi(a), int(sh.value)))
            return
        self._scalar_binop(insn, lambda a, b: a >> b)

    def _i_cmp(self, insn: Instruction) -> None:
        a, b = insn.operands
        av = self.x.read(a.idx)
        bv = int(b.value) if isinstance(b, Imm) else self.x.read(b.idx)
        self.flags.set_from_sub(av, bv)

    def _i_b(self, insn: Instruction) -> Optional[int]:
        label = insn.operands[0]
        if insn.cond is None or self.flags.condition(insn.cond):
            return self._branch(label)
        return None

    def _i_cbz(self, insn: Instruction) -> Optional[int]:
        reg, label = insn.operands
        return self._branch(label) if self.x.read(reg.idx) == 0 else None

    def _i_cbnz(self, insn: Instruction) -> Optional[int]:
        reg, label = insn.operands
        return self._branch(label) if self.x.read(reg.idx) != 0 else None

    def _i_rdvl(self, insn: Instruction) -> None:
        dst, imm = insn.operands
        self.x.write(dst.idx, self.vl.bytes * int(imm.value))

    def _i_ldr(self, insn: Instruction) -> None:
        dst, mem = insn.operands
        if isinstance(dst, XOp):
            addr = self._address(mem, 8)
            self.x.write(dst.idx, int(self.mem.read_array(addr, np.uint64, 1)[0]))
        elif isinstance(dst, ZOp) or isinstance(dst, POp):
            raise SimulationError("ldr z/p: use ld1 in this simulator")
        else:
            raise SimulationError(f"bad ldr: {insn.text!r}")

    def _i_str(self, insn: Instruction) -> None:
        src, mem = insn.operands
        if isinstance(src, XOp):
            addr = self._address(mem, 8)
            self.mem.write_array(addr, np.array([self.x.read(src.idx)], dtype=np.uint64))
        else:
            raise SimulationError(f"bad str: {insn.text!r}")

    # ==================================================================
    # Predicate handlers
    # ==================================================================
    def _i_ptrue(self, insn: Instruction) -> None:
        dst = insn.operands[0]
        pattern = "all"
        if len(insn.operands) > 1 and isinstance(insn.operands[1], Pattern):
            pattern = insn.operands[1].name
        esize = self._esize(dst)
        active = predops.ptrue(self.vl.lanes(esize), pattern)
        active = self._maybe_fault_pred("ptrue", active)
        self.p.write_elements(dst.idx, esize, active)
        if insn.mnemonic == "ptrues":
            self.flags.set_from_predicate(active)

    def _i_pfalse(self, insn: Instruction) -> None:
        dst = insn.operands[0]
        self.p.write_elements(dst.idx, self._esize(dst) if dst.suffix else 1,
                              predops.pfalse(self.vl.lanes(self._esize(dst) if dst.suffix else 1)))

    def _while(self, insn: Instruction, fn) -> None:
        dst, a, b = insn.operands
        esize = self._esize(dst)
        lanes = self.vl.lanes(esize)
        active = fn(lanes, self.x.read(a.idx), self.x.read(b.idx))
        active = self._maybe_fault_pred(insn.mnemonic, active)
        self.p.write_elements(dst.idx, esize, active)
        self.flags.set_from_predicate(active)

    def _i_whilelo(self, insn: Instruction) -> None:
        self._while(insn, predops.whilelo)

    def _i_whilelt(self, insn: Instruction) -> None:
        self._while(insn, predops.whilelt)

    def _i_brkn(self, insn: Instruction) -> None:
        dst, pg, pn, pdm = insn.operands
        esize = 1  # brkn operates at byte granularity
        governing = self.p.read_elements(pg.idx, esize)
        res = predops.brkn(
            governing,
            self.p.read_elements(pn.idx, esize),
            self.p.read_elements(pdm.idx, esize),
        )
        res = self._maybe_fault_pred(insn.mnemonic, res)
        self.p.write_elements(dst.idx, esize, res)
        if insn.mnemonic.endswith("s"):
            self.flags.set_from_predicate(res)

    def _brk_ab(self, insn: Instruction, fn) -> None:
        dst, pg, pn = insn.operands
        esize = 1
        governing = self.p.read_elements(pg.idx, esize)
        merging = pg.qualifier == "m"
        old = self.p.read_elements(dst.idx, esize)
        res = fn(governing, self.p.read_elements(pn.idx, esize),
                 merging=merging, pd_old=old)
        res = self._maybe_fault_pred(insn.mnemonic, res)
        self.p.write_elements(dst.idx, esize, res)
        if insn.mnemonic.endswith("s"):
            self.flags.set_from_predicate(res)

    def _i_brka(self, insn: Instruction) -> None:
        self._brk_ab(insn, predops.brka)

    def _i_brkb(self, insn: Instruction) -> None:
        self._brk_ab(insn, predops.brkb)

    def _i_pnext(self, insn: Instruction) -> None:
        dst, pg, _pdn = insn.operands
        esize = self._esize(dst)
        res = predops.pnext(
            self.p.read_elements(pg.idx, esize),
            self.p.read_elements(dst.idx, esize),
        )
        self.p.write_elements(dst.idx, esize, res)
        self.flags.set_from_predicate(res)

    def _i_pfirst(self, insn: Instruction) -> None:
        dst, pg, _pdn = insn.operands
        esize = 1
        res = predops.pfirst(
            self.p.read_elements(pg.idx, esize),
            self.p.read_elements(dst.idx, esize),
        )
        self.p.write_elements(dst.idx, esize, res)
        self.flags.set_from_predicate(res)

    def _i_ptest(self, insn: Instruction) -> None:
        pg, pn = insn.operands
        governing = self.p.read_elements(pg.idx, 1)
        tested = self.p.read_elements(pn.idx, 1)
        self.flags.set_from_predicate(governing & tested)

    def _i_cntp(self, insn: Instruction) -> None:
        dst, pg, pn = insn.operands
        esize = self._esize(pn)
        n = predops.cntp(
            self.p.read_elements(pg.idx, esize),
            self.p.read_elements(pn.idx, esize),
        )
        self.x.write(dst.idx, n)

    def _pred_or_vec_logic(self, insn: Instruction, fn) -> None:
        dst = insn.operands[0]
        if isinstance(dst, POp):
            _, pg, pn, pm = insn.operands
            g = self.p.read_bits(pg.idx)
            res = fn(self.p.read_bits(pn.idx), self.p.read_bits(pm.idx))
            res = res & g  # zeroing predication for predicate logic
            self.p.write_bits(dst.idx, res)
            if insn.mnemonic.endswith("s"):
                self.flags.set_from_predicate(res)
        elif isinstance(dst, XOp):
            self._scalar_binop(insn, lambda a, b: int(fn(np.uint64(a), np.uint64(b))))
        else:
            self._vec_int_binop(insn, lambda a, b, **kw: fn(a, b))

    def _i_and(self, insn: Instruction) -> None:
        self._pred_or_vec_logic(insn, lambda a, b: a & b)

    def _i_orr(self, insn: Instruction) -> None:
        # `mov p1.b, p2.b` decodes as mov; plain orr here.
        self._pred_or_vec_logic(insn, lambda a, b: a | b)

    def _i_eor(self, insn: Instruction) -> None:
        self._pred_or_vec_logic(insn, lambda a, b: a ^ b)

    def _i_bic(self, insn: Instruction) -> None:
        self._pred_or_vec_logic(insn, lambda a, b: a & ~b)

    # ==================================================================
    # Element counters
    # ==================================================================
    _SUFFIX_FROM_CNT = {"b": 1, "h": 2, "w": 4, "d": 8}

    def _cnt_amount(self, insn: Instruction) -> int:
        esize = self._SUFFIX_FROM_CNT[insn.mnemonic[-1]]
        lanes = self.vl.lanes(esize)
        pattern = "all"
        mul = 1
        for op in insn.operands[1:]:
            if isinstance(op, Pattern):
                pattern = op.name
            elif isinstance(op, ShiftSpec) and op.kind == "mul":
                mul = op.amount
            elif isinstance(op, Imm):
                mul = int(op.value)
        count = int(predops.ptrue(lanes, pattern).sum())
        return count * mul

    def _i_cntx(self, insn: Instruction) -> None:
        dst = insn.operands[0]
        self.x.write(dst.idx, self._cnt_amount(insn))

    def _i_incx(self, insn: Instruction) -> None:
        dst = insn.operands[0]
        amount = self._cnt_amount(insn)
        if isinstance(dst, XOp):
            self.x.write(dst.idx, self.x.read(dst.idx) + amount)
        else:  # vector form: add the element count to every element
            self._wzi(dst, arith.add(self._zi(dst), amount))

    def _i_decx(self, insn: Instruction) -> None:
        dst = insn.operands[0]
        amount = self._cnt_amount(insn)
        if isinstance(dst, XOp):
            self.x.write(dst.idx, self.x.read(dst.idx) - amount)
        else:
            self._wzi(dst, arith.sub(self._zi(dst), amount))

    # ==================================================================
    # Vector moves / immediates
    # ==================================================================
    def _i_dup(self, insn: Instruction) -> None:
        dst, src = insn.operands
        lanes = self.vl.lanes(self._esize(dst))
        if isinstance(src, Imm):
            if isinstance(src.value, float):
                self._wzf(dst, arith.dup(lanes, FLOAT_BY_SUFFIX[dst.suffix].dtype, src.value))
            else:
                self._wzi(dst, arith.dup(lanes, INT_BY_SUFFIX[dst.suffix].dtype, src.value))
        elif isinstance(src, XOp):
            mask = (1 << (self._esize(dst) * 8)) - 1
            self._wzu(dst, arith.dup(lanes, UINT_BY_SUFFIX[dst.suffix].dtype,
                                     self.x.read(src.idx) & mask))
        else:
            raise SimulationError(f"bad dup: {insn.text!r}")

    def _i_fdup(self, insn: Instruction) -> None:
        dst, src = insn.operands
        lanes = self.vl.lanes(self._esize(dst))
        self._wzf(dst, arith.dup(lanes, FLOAT_BY_SUFFIX[dst.suffix].dtype,
                                 float(src.value)))

    def _i_index(self, insn: Instruction) -> None:
        dst, base, step = insn.operands
        lanes = self.vl.lanes(self._esize(dst))
        bv = int(base.value) if isinstance(base, Imm) else self.x.read_signed(base.idx)
        sv = int(step.value) if isinstance(step, Imm) else self.x.read_signed(step.idx)
        self._wzi(dst, arith.index(lanes, INT_BY_SUFFIX[dst.suffix].dtype, bv, sv))

    def _i_sel(self, insn: Instruction) -> None:
        dst, pg, a, b = insn.operands
        esize = self._esize(dst)
        active = self._pred(pg, esize)
        self._wzu(dst, permute.sel(active, self._zu(a), self._zu(b)))

    # ==================================================================
    # FP arithmetic handler factories
    # ==================================================================
    @staticmethod
    def _i_fbin(fn):
        def handler(self, insn: Instruction) -> None:
            ops = insn.operands
            if len(ops) == 3 and not isinstance(ops[1], POp):
                dst, a, b = ops
                bv = (arith.dup(self.vl.lanes(self._esize(dst)),
                                FLOAT_BY_SUFFIX[dst.suffix].dtype, float(b.value))
                      if isinstance(b, Imm) else self._zf(b))
                self._wzf(dst, fn(self._zf(a), bv))
            else:  # predicated destructive: fop zd.T, pg/m, zd.T, zm.T|#imm
                dst, pg, a, b = ops
                esize = self._esize(dst)
                active = self._pred(pg, esize)
                av = self._zf(a)
                bv = (arith.dup(self.vl.lanes(esize),
                                FLOAT_BY_SUFFIX[dst.suffix].dtype, float(b.value))
                      if isinstance(b, Imm) else self._zf(b))
                old = self._zf(ZOp(dst.idx, dst.suffix))
                self._wzf(dst, fn(av, bv, pred=active, old=old))
        return handler

    @staticmethod
    def _i_funary(fn):
        def handler(self, insn: Instruction) -> None:
            if len(insn.operands) == 2:
                dst, a = insn.operands
                self._wzf(dst, fn(self._zf(a)))
            else:
                dst, pg, a = insn.operands
                esize = self._esize(dst)
                active = self._pred(pg, esize)
                old = self._zf(ZOp(dst.idx, dst.suffix))
                self._wzf(dst, fn(self._zf(a), pred=active, old=old))
        return handler

    @staticmethod
    def _i_fma(fn):
        def handler(self, insn: Instruction) -> None:
            dst, pg, a, b = insn.operands
            esize = self._esize(dst)
            active = self._pred(pg, esize)
            acc = self._zf(ZOp(dst.idx, dst.suffix))
            self._wzf(dst, fn(acc, self._zf(a), self._zf(b), pred=active))
        return handler

    def _vec_int_binop(self, insn: Instruction, fn) -> None:
        ops = insn.operands
        if len(ops) == 3 and not isinstance(ops[1], POp):
            dst, a, b = ops
            bv = (int(b.value) if isinstance(b, Imm) else self._zi(b))
            self._wzi(dst, fn(self._zi(a), bv))
        else:
            dst, pg, a, b = ops
            esize = self._esize(dst)
            active = self._pred(pg, esize)
            bv = (int(b.value) if isinstance(b, Imm) else self._zi(b))
            old = self._zi(ZOp(dst.idx, dst.suffix))
            self._wzi(dst, np.where(active, fn(self._zi(a), bv), old))

    @staticmethod
    def _i_vcompare(fn, is_fp: bool, unsigned: bool = False):
        """Vector compare: ``cmp<cc> pd.T, pg/z, zn.T, zm.T|#imm``."""

        def handler(self, insn: Instruction) -> None:
            dst, pg, a, b = insn.operands
            esize = self._esize(dst)
            governing = self._pred(pg, esize)
            if is_fp:
                av = self._zf(a)
                bv = (np.full_like(av, float(b.value))
                      if isinstance(b, Imm) else self._zf(b))
            elif unsigned:
                av = self._zu(a)
                bv = (np.full_like(av, int(b.value))
                      if isinstance(b, Imm) else self._zu(b))
            else:
                av = self._zi(a)
                bv = (np.full_like(av, int(b.value))
                      if isinstance(b, Imm) else self._zi(b))
            active = governing & np.asarray(fn(av, bv), dtype=bool)
            active = self._maybe_fault_pred(insn.mnemonic, active)
            self.p.write_elements(dst.idx, esize, active)
            self.flags.set_from_predicate(active)

        return handler

    # ==================================================================
    # Complex arithmetic
    # ==================================================================
    def _i_fcmla(self, insn: Instruction) -> None:
        dst, pg, a, b, rot = insn.operands
        esize = self._esize(dst)
        active = self._pred(pg, esize)
        acc = self._zf(ZOp(dst.idx, dst.suffix))
        self._wzf(dst, cplx.fcmla(acc, self._zf(a), self._zf(b),
                                  int(rot.value), pred=active))

    def _i_fcadd(self, insn: Instruction) -> None:
        dst, pg, a, b, rot = insn.operands
        esize = self._esize(dst)
        active = self._pred(pg, esize)
        self._wzf(dst, cplx.fcadd(self._zf(a), self._zf(b),
                                  int(rot.value), pred=active))

    # ==================================================================
    # Conversions
    # ==================================================================
    def _i_fcvt(self, insn: Instruction) -> None:
        dst, pg, src = insn.operands
        dst_et = FLOAT_BY_SUFFIX[dst.suffix]
        src_et = FLOAT_BY_SUFFIX[src.suffix]
        src_v = self.z.read(src.idx, src_et)
        if dst_et.size < src_et.size:
            packed = convert.fcvt_narrow_pack(src_v, dst_et.dtype)
            self.z.write(dst.idx, dst_et, packed)
        elif dst_et.size > src_et.size:
            widened = convert.fcvt_widen_unpack(src_v, dst_et.dtype)
            self.z.write(dst.idx, dst_et, widened)
        else:
            self.z.write(dst.idx, dst_et, src_v)

    def _i_scvtf(self, insn: Instruction) -> None:
        dst, pg, src = insn.operands
        active = self._pred(pg, self._esize(dst))
        old = self._zf(ZOp(dst.idx, dst.suffix))
        self._wzf(dst, convert.scvtf(self._zi(src),
                                     FLOAT_BY_SUFFIX[dst.suffix].dtype,
                                     pred=active, old=old))

    def _i_fcvtzs(self, insn: Instruction) -> None:
        dst, pg, src = insn.operands
        active = self._pred(pg, self._esize(dst))
        old = self._zi(ZOp(dst.idx, dst.suffix))
        self._wzi(dst, convert.fcvtzs(self._zf(src),
                                      INT_BY_SUFFIX[dst.suffix].dtype,
                                      pred=active, old=old))

    # ==================================================================
    # Loads and stores
    # ==================================================================
    _MEM_ESIZE = {"b": 1, "h": 2, "w": 4, "d": 8}

    def _ldst_parts(self, insn: Instruction):
        reglist, pg, mem = insn.operands
        # "stnt1d" (non-temporal/streaming store) parses like "st1d";
        # the memory-ordering hint has no functional effect here.
        mnem = insn.mnemonic.replace("nt", "", 1)
        n = int(mnem[2])
        esize = self._MEM_ESIZE[mnem[3]]
        if len(reglist.regs) != n:
            raise SimulationError(
                f"{insn.mnemonic} needs {n} registers: {insn.text!r}"
            )
        return reglist.regs, pg, mem, n, esize

    def _i_ldn(self, insn: Instruction) -> None:
        regs, pg, mem, n, esize = self._ldst_parts(insn)
        active = self._pred(pg, esize)
        addr = self._address(mem, esize)
        etype = UINT_BY_SUFFIX[regs[0].suffix or "d"]
        if etype.size != esize:
            # e.g. ld1w into .d lanes would be an extending load; the
            # paper's kernels never need those.
            raise SimulationError(f"extending loads unsupported: {insn.text!r}")
        if mem.zindex is not None:
            if n != 1:
                raise SimulationError(
                    f"gather addressing needs a single register: {insn.text!r}"
                )
            base = self.x.sp if mem.base.is_sp else self.x.read(mem.base.idx)
            offsets = self.z.read(mem.zindex.idx, INT_BY_SUFFIX[
                mem.zindex.suffix or regs[0].suffix or "d"])
            values = loadstore.ld1_gather(
                self.mem, base, offsets, active, etype.dtype,
                scale=1 << mem.shift,
            )
            self.z.write(regs[0].idx, etype, values)
            return
        if n == 1:
            values = loadstore.ld1(self.mem, addr, active, etype.dtype)
            self.z.write(regs[0].idx, etype, values)
        else:
            vecs = loadstore.ldn(self.mem, addr, active, etype.dtype, n)
            for reg, v in zip(regs, vecs):
                self.z.write(reg.idx, etype, v)

    def _i_stn(self, insn: Instruction) -> None:
        regs, pg, mem, n, esize = self._ldst_parts(insn)
        active = self._pred(pg, esize)
        addr = self._address(mem, esize)
        etype = UINT_BY_SUFFIX[regs[0].suffix or "d"]
        if etype.size != esize:
            raise SimulationError(f"truncating stores unsupported: {insn.text!r}")
        if mem.zindex is not None:
            if n != 1:
                raise SimulationError(
                    f"scatter addressing needs a single register: {insn.text!r}"
                )
            base = self.x.sp if mem.base.is_sp else self.x.read(mem.base.idx)
            offsets = self.z.read(mem.zindex.idx, INT_BY_SUFFIX[
                mem.zindex.suffix or regs[0].suffix or "d"])
            loadstore.st1_scatter(
                self.mem, base, offsets, active,
                self.z.read(regs[0].idx, etype), scale=1 << mem.shift,
            )
            return
        if n == 1:
            loadstore.st1(self.mem, addr, active, self.z.read(regs[0].idx, etype))
        else:
            vecs = [self.z.read(r.idx, etype) for r in regs]
            loadstore.stn(self.mem, addr, active, vecs)

    # ==================================================================
    # Permutes
    # ==================================================================
    @staticmethod
    def _i_perm2(fn):
        def handler(self, insn: Instruction) -> None:
            dst, a, b = insn.operands
            self._wzu(dst, fn(self._zu(a), self._zu(b)))
        return handler

    def _i_rev(self, insn: Instruction) -> None:
        dst, a = insn.operands
        self._wzu(dst, permute.rev(self._zu(a)))

    def _i_ext(self, insn: Instruction) -> None:
        dst, a, b, imm = insn.operands
        esize = self._esize(dst) if dst.suffix else 1
        self._wzu(dst, permute.ext(self._zu(ZOp(a.idx, dst.suffix or "b")),
                                   self._zu(ZOp(b.idx, dst.suffix or "b")),
                                   int(imm.value), esize))

    def _i_tbl(self, insn: Instruction) -> None:
        dst, a, idx = insn.operands
        self._wzu(dst, permute.tbl(self._zu(a), self._zu(idx)))

    def _i_splice(self, insn: Instruction) -> None:
        dst, pg, a, b = insn.operands
        active = self._pred(pg, self._esize(dst))
        self._wzu(dst, permute.splice(active, self._zu(a), self._zu(b)))

    def _i_compact(self, insn: Instruction) -> None:
        dst, pg, a = insn.operands
        active = self._pred(pg, self._esize(dst))
        self._wzu(dst, permute.compact(active, self._zu(a)))

    def _i_insr(self, insn: Instruction) -> None:
        dst, src = insn.operands
        if isinstance(src, XOp):
            val = self.x.read(src.idx) & ((1 << (self._esize(dst) * 8)) - 1)
            self._wzu(dst, permute.insr(self._zu(dst), val))
        else:
            raise SimulationError(f"bad insr: {insn.text!r}")

    def _lastab(self, insn: Instruction, fn) -> None:
        dst, pg, a = insn.operands
        esize = self._esize(a)
        active = self._pred(pg, esize)
        val = fn(active, self._zu(a))
        if isinstance(dst, XOp):
            self.x.write(dst.idx, int(val))
        else:  # FP scalar destination: low element of the z register
            self._write_fp_scalar(dst, float(self.z.read(a.idx, FLOAT_BY_SUFFIX[a.suffix])[0]))

    def _i_lasta(self, insn: Instruction) -> None:
        self._lastab(insn, permute.lasta)

    def _i_lastb(self, insn: Instruction) -> None:
        self._lastab(insn, permute.lastb)

    # ==================================================================
    # Reductions (scalar FP destination = low element of z, rest zeroed)
    # ==================================================================
    def _write_fp_scalar(self, dst: VOp, value: float) -> None:
        et = FLOAT_BY_SUFFIX[dst.suffix]
        lanes = self.vl.lanes(et.size)
        vec = np.zeros(lanes, dtype=et.dtype)
        vec[0] = value
        self.z.write(dst.idx, et, vec)

    def read_fp_scalar(self, idx: int, suffix: str = "d") -> float:
        """Read a ``d<idx>``/``s<idx>`` scalar (low element of z<idx>)."""
        return float(self.z.read(idx, FLOAT_BY_SUFFIX[suffix])[0])

    def _i_faddv(self, insn: Instruction) -> None:
        dst, pg, src = insn.operands
        esize = self._esize(src)
        active = self._pred(pg, esize)
        val = reduce.faddv(active, self._zf(src))
        self._write_fp_scalar(VOp(dst.idx, dst.suffix), float(val))

    def _i_fadda(self, insn: Instruction) -> None:
        dst, pg, init, src = insn.operands
        esize = self._esize(src)
        active = self._pred(pg, esize)
        init_v = self.read_fp_scalar(init.idx, init.suffix)
        val = reduce.fadda(active, init_v, self._zf(src))
        self._write_fp_scalar(VOp(dst.idx, dst.suffix), float(val))

    @staticmethod
    def _i_freduce(fn):
        def handler(self, insn: Instruction) -> None:
            dst, pg, src = insn.operands
            esize = self._esize(src)
            active = self._pred(pg, esize)
            val = fn(active, self._zf(src))
            self._write_fp_scalar(VOp(dst.idx, dst.suffix), float(val))
        return handler

    def _i_saddv(self, insn: Instruction) -> None:
        dst, pg, src = insn.operands
        esize = self._esize(src)
        active = self._pred(pg, esize)
        val = reduce.saddv(active, self._zi(src))
        if isinstance(dst, VOp):
            lanes = self.vl.lanes(8)
            vec = np.zeros(lanes, dtype=np.uint64)
            vec[0] = val
            self.z.write(dst.idx, UINT_BY_SUFFIX["d"], vec)
        else:
            self.x.write(dst.idx, val)

# ======================================================================
# Dispatch construction (module level: the table is shared by every
# Machine instance — handlers are plain ``(machine, insn)`` callables)
# ======================================================================

def _dispatch_table() -> dict:
    global _DISPATCH_TABLE
    if _DISPATCH_TABLE is not None:
        return _DISPATCH_TABLE
    M = Machine
    d: dict[str, Callable] = {}
    # Scalar control / ALU.
    d["mov"] = M._i_mov
    d["movprfx"] = M._i_movprfx
    d["add"] = M._i_add
    d["sub"] = M._i_sub
    d["mul"] = M._i_mul
    d["lsl"] = M._i_lsl
    d["lsr"] = M._i_lsr
    d["cmp"] = M._i_cmp
    d["b"] = M._i_b
    d["cbz"] = M._i_cbz
    d["cbnz"] = M._i_cbnz
    d["nop"] = lambda machine, insn: None
    d["rdvl"] = M._i_rdvl
    d["ldr"] = M._i_ldr
    d["str"] = M._i_str
    # Predicate generation / logic.
    d["ptrue"] = M._i_ptrue
    d["pfalse"] = M._i_pfalse
    d["whilelo"] = M._i_whilelo
    d["whilelt"] = M._i_whilelt
    d["brkn"] = M._i_brkn
    d["brkns"] = M._i_brkn
    d["brka"] = M._i_brka
    d["brkas"] = M._i_brka
    d["brkb"] = M._i_brkb
    d["brkbs"] = M._i_brkb
    d["pnext"] = M._i_pnext
    d["pfirst"] = M._i_pfirst
    d["ptest"] = M._i_ptest
    d["cntp"] = M._i_cntp
    d["and"] = M._i_and
    d["orr"] = M._i_orr
    d["eor"] = M._i_eor
    d["bic"] = M._i_bic
    d["ands"] = M._i_and
    d["orrs"] = M._i_orr
    d["eors"] = M._i_eor
    d["bics"] = M._i_bic
    # Element counters.
    for suf in "bhwd":
        d[f"cnt{suf}"] = M._i_cntx
        d[f"inc{suf}"] = M._i_incx
        d[f"dec{suf}"] = M._i_decx
    # Vector moves / immediates.
    d["dup"] = M._i_dup
    d["fdup"] = M._i_fdup
    d["fmov"] = M._i_fdup
    d["index"] = M._i_index
    d["sel"] = M._i_sel
    # FP arithmetic.
    d["fadd"] = M._i_fbin(arith.fadd)
    d["fsub"] = M._i_fbin(arith.fsub)
    d["fmul"] = M._i_fbin(arith.fmul)
    d["fdiv"] = M._i_fbin(arith.fdiv)
    d["fmax"] = M._i_fbin(arith.fmax)
    d["fmin"] = M._i_fbin(arith.fmin)
    d["fneg"] = M._i_funary(arith.fneg)
    d["fabs"] = M._i_funary(arith.fabs_)
    d["fsqrt"] = M._i_funary(arith.fsqrt)
    d["fmla"] = M._i_fma(arith.fmla)
    d["fmls"] = M._i_fma(arith.fmls)
    d["fnmla"] = M._i_fma(arith.fnmla)
    d["fnmls"] = M._i_fma(arith.fnmls)
    d["fmad"] = M._i_fma(arith.fmad)
    d["fmsb"] = M._i_fma(arith.fmsb)
    # Complex arithmetic.
    d["fcmla"] = M._i_fcmla
    d["fcadd"] = M._i_fcadd
    # Vector compares -> predicates (all set NZCV).
    import operator

    for mnem, fn, is_fp in (
        ("fcmeq", operator.eq, True), ("fcmne", operator.ne, True),
        ("fcmgt", operator.gt, True), ("fcmge", operator.ge, True),
        ("fcmlt", operator.lt, True), ("fcmle", operator.le, True),
        ("cmpeq", operator.eq, False), ("cmpne", operator.ne, False),
        ("cmpgt", operator.gt, False), ("cmpge", operator.ge, False),
        ("cmplt", operator.lt, False), ("cmple", operator.le, False),
    ):
        d[mnem] = M._i_vcompare(fn, is_fp)
    for mnem, fn in (("cmplo", np.less), ("cmpls", np.less_equal),
                     ("cmphi", np.greater), ("cmphs", np.greater_equal)):
        d[mnem] = M._i_vcompare(fn, is_fp=False, unsigned=True)
    # Conversions.
    d["fcvt"] = M._i_fcvt
    d["scvtf"] = M._i_scvtf
    d["fcvtzs"] = M._i_fcvtzs
    # Loads/stores (contiguous + structure), prefetches as no-ops.
    for n in "1234":
        for suf in "bhwd":
            d[f"ld{n}{suf}"] = M._i_ldn
            d[f"st{n}{suf}"] = M._i_stn
    for suf in "bhwd":
        d[f"prf{suf}"] = lambda machine, insn: None
        d[f"stnt1{suf}"] = M._i_stn
        d[f"ldnt1{suf}"] = M._i_ldn
    # Permutes.
    d["zip1"] = M._i_perm2(permute.zip1)
    d["zip2"] = M._i_perm2(permute.zip2)
    d["uzp1"] = M._i_perm2(permute.uzp1)
    d["uzp2"] = M._i_perm2(permute.uzp2)
    d["trn1"] = M._i_perm2(permute.trn1)
    d["trn2"] = M._i_perm2(permute.trn2)
    d["rev"] = M._i_rev
    d["ext"] = M._i_ext
    d["tbl"] = M._i_tbl
    d["splice"] = M._i_splice
    d["compact"] = M._i_compact
    d["insr"] = M._i_insr
    d["lasta"] = M._i_lasta
    d["lastb"] = M._i_lastb
    # Reductions.
    d["faddv"] = M._i_faddv
    d["fadda"] = M._i_fadda
    d["fmaxv"] = M._i_freduce(reduce.fmaxv)
    d["fminv"] = M._i_freduce(reduce.fminv)
    d["saddv"] = M._i_saddv
    d["uaddv"] = M._i_saddv
    _DISPATCH_TABLE = d
    return d

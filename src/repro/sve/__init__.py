"""Functional simulator for the ARM Scalable Vector Extension (SVE) ISA.

The simulator plays the role that SVE silicon (and the ArmIE emulator)
played in the paper: it provides lane-accurate semantics for the SVE
instructions relevant to lattice QCD, at any legal vector length from
128 to 2048 bits.

Layering
--------

* :mod:`repro.sve.vl` / :mod:`repro.sve.types` — the vector-length model
  and element types.
* :mod:`repro.sve.ops` — *pure-function* instruction semantics operating
  on numpy arrays and boolean predicate masks.  These are shared between
  the machine executor and the ACLE intrinsics layer so that both paths
  are guaranteed to agree.
* :mod:`repro.sve.regfile`, :mod:`repro.sve.memory`,
  :mod:`repro.sve.predicate` — architectural state.
* :mod:`repro.sve.decoder`, :mod:`repro.sve.program`,
  :mod:`repro.sve.machine` — a textual assembler and a fetch/decode/
  execute machine, enough to run the paper's assembly listings verbatim.
* :mod:`repro.sve.tracer`, :mod:`repro.sve.costmodel` — dynamic
  instruction statistics and a simple cycle model.
* :mod:`repro.sve.faults` — injectable "toolchain bugs" that reproduce
  the vector-length-dependent failures reported in Section V-D.
"""

from repro.sve.vl import VL, LEGAL_VLS
from repro.sve.types import EType
from repro.sve.machine import Machine
from repro.sve.program import Program
from repro.sve.decoder import assemble

__all__ = ["VL", "LEGAL_VLS", "EType", "Machine", "Program", "assemble"]

"""Injectable "toolchain bugs" reproducing the Section V-D failures.

The paper reports that when verifying the SVE-enabled Grid with
ArmIE 18.1, *"some tests fail due to incorrect results for some choices
of the SVE vector length and implementations of the predication. We
attribute the failing tests to minor issues of the ARM SVE toolchain,
which is still under development."*

We model that immature toolchain as a set of deterministic predicate
corruptions, each active only for specific (instruction, vector-length)
combinations.  Running the verification suite with
:data:`PRISTINE` reproduces "majority of tests complete with success";
running it with :data:`ARMCLANG_18_3` reproduces the observed pattern of
vector-length-dependent failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sve.vl import VL


@dataclass(frozen=True)
class PredicateFault:
    """One toolchain defect affecting a predicate-generating instruction.

    Parameters
    ----------
    name:
        Identifier used in reports.
    mnemonics:
        The predicate-generating instructions affected.
    vls:
        Vector lengths (bits) at which the defect manifests.
    corrupt:
        Function mapping the architecturally-correct element predicate
        to the buggy one.
    description:
        What the hypothetical toolchain got wrong.
    """

    name: str
    mnemonics: tuple[str, ...]
    vls: tuple[int, ...]
    corrupt: Callable[[np.ndarray], np.ndarray]
    description: str = ""


def _drop_first_partial(active: np.ndarray) -> np.ndarray:
    """Deactivate lane 0 of a *partial* predicate (full vectors are
    unaffected, so only ragged loop tails go wrong)."""
    out = active.copy()
    if out.size and out[0] and not out.all():
        out[0] = False
    return out


def _drop_last_partial(active: np.ndarray) -> np.ndarray:
    """Deactivate the last lane of a *partial* predicate."""
    out = active.copy()
    idx = np.nonzero(active)[0]
    if idx.size and not active.all():
        out[idx[-1]] = False
    return out


def _collapse_nonfull(active: np.ndarray) -> np.ndarray:
    """Collapse any non-full predicate to all-false (broken BRKN)."""
    if active.all():
        return active.copy()
    return np.zeros_like(active)


@dataclass
class FaultModel:
    """A set of :class:`PredicateFault` applied by the machine.

    The model also counts how often each fault fired so verification
    reports can attribute failures.
    """

    faults: tuple[PredicateFault, ...] = ()
    fired: dict = field(default_factory=dict)

    def reset(self) -> "FaultModel":
        """Clear the ``fired`` counters.

        Models are often reused across suite runs (one model, many
        cells); without a reset the counters accumulate forever and
        per-run attribution becomes meaningless.  Returns ``self`` so
        call sites can write ``model.reset()`` inline.
        """
        self.fired.clear()
        return self

    @property
    def total_fired(self) -> int:
        """Total fault activations since construction or last reset."""
        return sum(self.fired.values())

    def filter_predicate(
        self, mnemonic: str, active: np.ndarray, vl: VL
    ) -> np.ndarray:
        for f in self.faults:
            if mnemonic in f.mnemonics and vl.bits in f.vls:
                corrupted = f.corrupt(active)
                if not np.array_equal(corrupted, active):
                    self.fired[f.name] = self.fired.get(f.name, 0) + 1
                active = corrupted
        return active

    @property
    def is_pristine(self) -> bool:
        return not self.faults


#: A correct toolchain: no defects.
PRISTINE = FaultModel()


def armclang_18_3() -> FaultModel:
    """The defect set we use to model the armclang 18.3 + ArmIE 18.1 stack.

    The specific defects are our reconstruction (the paper does not
    enumerate them); they are chosen so that, as in the paper, failures
    appear only for *some* vector lengths and only in kernels whose
    trip counts exercise partial predicates.
    """
    return FaultModel(faults=(
        PredicateFault(
            name="whilelo-dropfirst-vl1024",
            mnemonics=("whilelo", "whilelt"),
            vls=(1024,),
            corrupt=_drop_first_partial,
            description=(
                "WHILELO deactivates the first lane of a partial predicate "
                "when the trip count is not a lane-count multiple "
                "(1024-bit only)"
            ),
        ),
        PredicateFault(
            name="whilelo-shorttail-vl2048",
            mnemonics=("whilelo", "whilelt"),
            vls=(2048,),
            corrupt=_drop_last_partial,
            description=(
                "WHILELO drops the last active lane of a partial predicate "
                "(2048-bit only)"
            ),
        ),
        PredicateFault(
            name="brkn-collapse-vl384",
            mnemonics=("brkn", "brkns"),
            vls=(384, 768, 1536),
            corrupt=_collapse_nonfull,
            description=(
                "BRKN collapses non-full predicates to false at the "
                "non-power-of-two vector lengths"
            ),
        ),
    ))

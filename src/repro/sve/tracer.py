"""Dynamic instruction tracing and statistics.

The paper's analysis compares *instruction mixes*: the auto-vectorized
complex loop (structure load/store + real FMA chains, Section IV-B)
versus the ACLE FCMLA kernel (Section IV-C/D), and the FCMLA path
versus the real-arithmetic alternative of Section V-E ("at the cost of
higher instruction count").  The tracer records exactly those mixes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sve.decoder import Instruction
from repro.sve.vl import VL

#: Mnemonic classification used in reports.
CATEGORIES: dict[str, tuple[str, ...]] = {
    "load": ("ld1b", "ld1h", "ld1w", "ld1d", "ld2b", "ld2h", "ld2w", "ld2d",
             "ld3d", "ld3w", "ld4d", "ld4w", "ldr"),
    "store": ("st1b", "st1h", "st1w", "st1d", "stnt1b", "stnt1h", "stnt1w", "stnt1d", "st2b", "st2h", "st2w", "st2d",
              "st3d", "st3w", "st4d", "st4w", "str"),
    "fp": ("fadd", "fsub", "fmul", "fdiv", "fneg", "fabs", "fsqrt",
           "fmla", "fmls", "fnmla", "fnmls", "fmad", "fmsb", "fmax", "fmin",
           "faddv", "fadda", "fmaxv", "fminv", "fdup", "fmov"),
    "complex": ("fcmla", "fcadd"),
    "permute": ("zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2", "rev", "ext",
                "tbl", "sel", "splice", "compact", "insr", "dup"),
    "predicate": ("ptrue", "pfalse", "whilelo", "whilelt", "brkn", "brkns",
                  "brka", "brkas", "brkb", "brkbs", "pnext", "pfirst",
                  "ptest", "cntp"),
    "convert": ("fcvt", "scvtf", "fcvtzs"),
    "control": ("b", "cbz", "cbnz", "ret", "cmp", "nop"),
    "prefetch": ("prfb", "prfh", "prfw", "prfd"),
}


def categorize(mnemonic: str) -> str:
    """Map a mnemonic to its report category."""
    for cat, members in CATEGORIES.items():
        if mnemonic in members:
            return cat
    return "scalar"


@dataclass
class Tracer:
    """Counts retired instructions, per mnemonic and per category."""

    record_stream: bool = False
    total: int = 0
    by_mnemonic: Counter = field(default_factory=Counter)
    by_category: Counter = field(default_factory=Counter)
    stream: list = field(default_factory=list)

    def record(self, insn: Instruction, vl: VL) -> None:
        key = insn.mnemonic if insn.cond is None else f"b.{insn.cond}"
        self.total += 1
        self.by_mnemonic[key] += 1
        self.by_category[categorize(insn.mnemonic)] += 1
        if self.record_stream:
            self.stream.append(insn.text)

    def reset(self) -> None:
        self.total = 0
        self.by_mnemonic.clear()
        self.by_category.clear()
        self.stream.clear()

    def count(self, *mnemonics: str) -> int:
        """Total retired count over the given mnemonics."""
        return sum(self.by_mnemonic[m] for m in mnemonics)

    def data_processing_count(self) -> int:
        """Retired instructions excluding control flow and scalar ALU."""
        return sum(
            n for cat, n in self.by_category.items()
            if cat not in ("control", "scalar")
        )

    def report(self) -> str:
        """Human-readable per-mnemonic histogram."""
        lines = [f"{'mnemonic':<12} {'count':>10}"]
        for mnem, n in self.by_mnemonic.most_common():
            lines.append(f"{mnem:<12} {n:>10}")
        lines.append(f"{'TOTAL':<12} {self.total:>10}")
        return "\n".join(lines)

"""Assembled-program container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sve.decoder import Instruction


@dataclass
class Program:
    """A sequence of decoded instructions plus a label table.

    Programs are position-independent: labels map to instruction
    indices, and the machine's ``pc`` is an instruction index.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    source: str = ""

    def target(self, name: str) -> int:
        """Resolve a branch target label to an instruction index."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"undefined label {name!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def static_histogram(self) -> dict[str, int]:
        """Static (not dynamic) per-mnemonic instruction counts."""
        hist: dict[str, int] = {}
        for insn in self.instructions:
            key = insn.mnemonic if insn.cond is None else f"b.{insn.cond}"
            hist[key] = hist.get(key, 0) + 1
        return hist

    def listing(self) -> str:
        """Pretty listing with labels, similar to the paper's figures."""
        by_index: dict[int, list[str]] = {}
        for name, idx in self.labels.items():
            by_index.setdefault(idx, []).append(name)
        lines = []
        for i, insn in enumerate(self.instructions):
            for name in by_index.get(i, []):
                lines.append(f"{name}:")
            lines.append(f"    {insn.text}")
        for name in by_index.get(len(self.instructions), []):
            lines.append(f"{name}:")
        return "\n".join(lines)

"""The SVE vector-length model.

SVE does not fix the vector-register size; it constrains it to a
multiple of 128 bits between 128 and 2048 bits (Section III-B of the
paper).  The silicon provider chooses the implemented length, and the
vector-length-agnostic (VLA) programming model lets a single binary
adapt at run time.

In this reproduction the "silicon provider" is the user: a :class:`VL`
value is threaded through the simulator, the ACLE layer, and the Grid
SVE backends, exactly as ``armie -vl <n>`` supplied it to the emulator
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The legal SVE vector lengths in bits: multiples of 128 up to 2048.
LEGAL_VLS: tuple[int, ...] = tuple(range(128, 2049, 128))

#: The vector lengths the paper's Grid port enables
#: (Section V-B: "SVE is enabled in Grid for 128-bit, 256-bit, and
#: 512-bit vector implementations").
GRID_ENABLED_VLS: tuple[int, ...] = (128, 256, 512)

#: The power-of-two lengths most relevant in practice (and the ones the
#: verification suite sweeps, like the paper swept ArmIE's ``-vl``).
POW2_VLS: tuple[int, ...] = (128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class VL:
    """An SVE vector length.

    Parameters
    ----------
    bits:
        The register width in bits.  Must be a multiple of 128 in
        ``[128, 2048]``.

    Examples
    --------
    >>> vl = VL(512)
    >>> vl.bytes, vl.lanes(8), vl.lanes(4)
    (64, 8, 16)
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits not in LEGAL_VLS:
            raise ValueError(
                f"illegal SVE vector length {self.bits}: must be a multiple "
                f"of 128 bits in [128, 2048]"
            )

    @property
    def bytes(self) -> int:
        """Register width in bytes (the value of ``SVE_VECTOR_LENGTH``)."""
        return self.bits // 8

    def lanes(self, esize_bytes: int) -> int:
        """Number of elements of ``esize_bytes`` bytes per register.

        This is what the ``CNTB``/``CNTH``/``CNTW``/``CNTD``
        instructions (and the ``svcntb``..``svcntd`` intrinsics) return.
        """
        if esize_bytes not in (1, 2, 4, 8):
            raise ValueError(f"illegal element size {esize_bytes}")
        return self.bytes // esize_bytes

    def complex_lanes(self, esize_bytes: int) -> int:
        """Number of *complex* elements (re/im interleaved pairs).

        For the FCMLA data layout the real components occupy even
        elements and the imaginary components odd elements
        (Section III-D), so a register holds half as many complex
        numbers as real elements.
        """
        return self.lanes(esize_bytes) // 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"VL{self.bits}"


def pick_vl(bits: int) -> VL:
    """Validate-and-construct helper mirroring ``armie -vl``."""
    return VL(bits)

"""Predicate-construction and predicate-logic semantics.

SVE achieves vector-length-agnostic loops through predication: the
``WHILELO`` instruction builds a mask of the lanes still inside the
iteration space, and predicated operations simply skip inactive lanes,
"eliminating the need for tail recursion" (Section IV-A).

All functions here operate on element-granular boolean arrays; the
byte-granular architectural encoding lives in
:class:`repro.sve.regfile.PRegisterFile`.
"""

from __future__ import annotations

import numpy as np

# Named PTRUE patterns.  ``all`` is the default; the power-of-two and
# fixed-count patterns are part of the ISA and used by some Grid code.
_FIXED_PATTERNS = {
    "vl1": 1, "vl2": 2, "vl3": 3, "vl4": 4, "vl5": 5, "vl6": 6, "vl7": 7,
    "vl8": 8, "vl16": 16, "vl32": 32, "vl64": 64, "vl128": 128, "vl256": 256,
}


def ptrue(lanes: int, pattern: str = "all") -> np.ndarray:
    """``PTRUE``: an all-true (or patterned) element predicate."""
    pattern = pattern.lower()
    if pattern == "all":
        return np.ones(lanes, dtype=bool)
    out = np.zeros(lanes, dtype=bool)
    if pattern == "pow2":
        n = 1
        while n * 2 <= lanes:
            n *= 2
        out[:n] = True
        return out
    if pattern in _FIXED_PATTERNS:
        n = _FIXED_PATTERNS[pattern]
        if n <= lanes:  # else: no elements (architected behaviour)
            out[:n] = True
        return out
    raise ValueError(f"unknown ptrue pattern {pattern!r}")


def pfalse(lanes: int) -> np.ndarray:
    """``PFALSE``: an all-false element predicate."""
    return np.zeros(lanes, dtype=bool)


def whilelo(lanes: int, base: int, limit: int) -> np.ndarray:
    """``WHILELO``: lane *i* is active iff ``base + i < limit`` (unsigned).

    This is the loop-control predicate of the VLA model: starting a loop
    with ``whilelo p, x_counter, x_n`` activates exactly the lanes whose
    indices are still below the trip count.
    """
    base &= (1 << 64) - 1
    limit &= (1 << 64) - 1
    idx = base + np.arange(lanes, dtype=object)
    return np.array([int(v) < limit for v in idx], dtype=bool)


def whilelt(lanes: int, base: int, limit: int) -> np.ndarray:
    """``WHILELT``: signed variant of :func:`whilelo`."""

    def s64(v: int) -> int:
        v &= (1 << 64) - 1
        return v - (1 << 64) if v >= (1 << 63) else v

    sb, sl = s64(base), s64(limit)
    return np.array([sb + i < sl for i in range(lanes)], dtype=bool)


def brkn(
    governing: np.ndarray, pn: np.ndarray, pdm: np.ndarray
) -> np.ndarray:
    """``BRKN(S)``: propagate break condition to the next partition.

    If the element of ``pn`` corresponding to the *last active* element
    of the governing predicate is true, ``pdm`` passes through
    unchanged; otherwise the result is all-false.

    In the paper's listing (Section IV-A) this glues consecutive
    ``WHILELO`` predicates together: while the current iteration's
    predicate is still a full vector, the next iteration's predicate
    survives; once a partial vector has been processed, the loop
    predicate collapses to false and ``b.mi`` falls through.
    """
    governing = np.asarray(governing, dtype=bool)
    pn = np.asarray(pn, dtype=bool)
    pdm = np.asarray(pdm, dtype=bool)
    act = np.nonzero(governing)[0]
    last_active_true = bool(pn[act[-1]]) if act.size else False
    if last_active_true:
        return pdm.copy()
    return np.zeros_like(pdm)


def brka(governing: np.ndarray, pn: np.ndarray, merging: bool = False,
         pd_old: np.ndarray | None = None) -> np.ndarray:
    """``BRKA``: break *after* the first true element of ``pn``.

    Active elements up to and including the first active ``pn`` element
    become true; later elements false.  With zeroing predication,
    inactive elements are false; with merging they keep ``pd_old``.
    """
    governing = np.asarray(governing, dtype=bool)
    pn = np.asarray(pn, dtype=bool)
    out = np.zeros_like(governing)
    broken = False
    for i in range(governing.size):
        if governing[i]:
            if not broken:
                out[i] = True
                if pn[i]:
                    broken = True
        elif merging and pd_old is not None:
            out[i] = pd_old[i]
    return out


def brkb(governing: np.ndarray, pn: np.ndarray, merging: bool = False,
         pd_old: np.ndarray | None = None) -> np.ndarray:
    """``BRKB``: break *before* the first true element of ``pn``."""
    governing = np.asarray(governing, dtype=bool)
    pn = np.asarray(pn, dtype=bool)
    out = np.zeros_like(governing)
    broken = False
    for i in range(governing.size):
        if governing[i]:
            if pn[i]:
                broken = True
            if not broken:
                out[i] = True
        elif merging and pd_old is not None:
            out[i] = pd_old[i]
    return out


def pnext(governing: np.ndarray, pdn: np.ndarray) -> np.ndarray:
    """``PNEXT``: advance to the next active element after ``pdn``'s last."""
    governing = np.asarray(governing, dtype=bool)
    pdn = np.asarray(pdn, dtype=bool)
    act = np.nonzero(pdn)[0]
    start = int(act[-1]) + 1 if act.size else 0
    out = np.zeros_like(governing)
    for i in range(start, governing.size):
        if governing[i]:
            out[i] = True
            break
    return out


def pfirst(governing: np.ndarray, pdn: np.ndarray) -> np.ndarray:
    """``PFIRST``: set the first active governed element."""
    governing = np.asarray(governing, dtype=bool)
    out = np.asarray(pdn, dtype=bool).copy()
    act = np.nonzero(governing)[0]
    if act.size:
        out[act[0]] = True
    return out


def cntp(governing: np.ndarray, pn: np.ndarray) -> int:
    """``CNTP``: count active elements of ``pn`` governed by ``governing``."""
    g = np.asarray(governing, dtype=bool)
    p = np.asarray(pn, dtype=bool)
    return int(np.count_nonzero(g & p))

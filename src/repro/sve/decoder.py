"""Textual SVE assembly parser.

Parses the AArch64+SVE assembly dialect that armclang emits — the
dialect of the paper's listings — into structured
:class:`Instruction` objects.  We decode *text* rather than machine
encodings; the semantics executed are identical, and text is what the
paper publishes.

Supported operand forms::

    x8  xzr  sp                     general-purpose registers
    d0  s0  h0                      FP scalar views (low element of z0)
    z0.d  z3.s  z7                  vector registers (+ element suffix)
    p0.d  p1/z  p0/m                predicate registers (+ qualifier)
    {z0.d}  {z2.d, z3.d}            register lists (structure ld/st)
    #3  #90  #0.5                   immediates
    [x1]  [x1, x8, lsl #3]          memory: base + scaled index
    [x0, #1, mul vl]                memory: base + imm * VL bytes
    .LBB0_4                         label references
    all  vl4  pow2                  PTRUE patterns
    lsl #1                          shift specifier (trailing operand)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

# ----------------------------------------------------------------------
# Operand types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class XOp:
    """General-purpose register operand (``x8``, ``xzr``, ``sp``)."""

    idx: int  # 31 == xzr
    is_sp: bool = False


@dataclass(frozen=True)
class VOp:
    """FP scalar register operand (``d0`` = low 64 bits of ``z0``)."""

    idx: int
    suffix: str  # d, s, h


@dataclass(frozen=True)
class ZOp:
    """Vector register operand with optional element suffix."""

    idx: int
    suffix: Optional[str] = None  # d, s, h, b or None (movprfx z7, z4)


@dataclass(frozen=True)
class POp:
    """Predicate register operand with optional suffix and qualifier."""

    idx: int
    suffix: Optional[str] = None
    qualifier: Optional[str] = None  # 'z' (zeroing), 'm' (merging)


@dataclass(frozen=True)
class Imm:
    """Immediate operand."""

    value: Union[int, float]


@dataclass(frozen=True)
class MemOp:
    """Memory operand: ``[base]``, ``[base, xi, lsl #s]``,
    ``[base, #i, mul vl]``, or the gather/scatter form ``[base, zi.d]``
    / ``[base, zi.d, lsl #s]`` with a vector of per-lane offsets."""

    base: XOp
    index: Optional[XOp] = None
    shift: int = 0
    imm: int = 0
    mul_vl: bool = False
    zindex: Optional[ZOp] = None


@dataclass(frozen=True)
class RegList:
    """Structure load/store register list."""

    regs: tuple[ZOp, ...]


@dataclass(frozen=True)
class LabelRef:
    """Branch target."""

    name: str


@dataclass(frozen=True)
class Pattern:
    """PTRUE/INC pattern keyword (``all``, ``vl4``, ``pow2``, ...)."""

    name: str


@dataclass(frozen=True)
class ShiftSpec:
    """Trailing shift specifier, e.g. the ``lsl #1`` in ``add x0, x1, x2, lsl #1``."""

    kind: str
    amount: int


Operand = Union[XOp, VOp, ZOp, POp, Imm, MemOp, RegList, LabelRef, Pattern, ShiftSpec]


@dataclass
class Instruction:
    """One decoded instruction."""

    mnemonic: str
    cond: Optional[str] = None  # for b.<cond>
    operands: list = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text or self.mnemonic


# ----------------------------------------------------------------------
# Tokenising helpers
# ----------------------------------------------------------------------

_X_RE = re.compile(r"^(?:x(\d+)|xzr|sp|wzr|w(\d+))$")
_Z_RE = re.compile(r"^z(\d+)(?:\.([bhsd]))?$")
_P_RE = re.compile(r"^p(\d+)(?:\.([bhsd]))?(?:/([zm]))?$")
_V_RE = re.compile(r"^([dsh])(\d+)$")
_PATTERNS = {
    "all", "pow2", "mul3", "mul4",
    "vl1", "vl2", "vl3", "vl4", "vl5", "vl6", "vl7", "vl8",
    "vl16", "vl32", "vl64", "vl128", "vl256",
}


class AsmSyntaxError(ValueError):
    """Raised for unparsable assembly."""


def _split_operands(s: str) -> list[str]:
    """Split an operand string on commas not inside (), [], {}."""
    parts: list[str] = []
    depth = 0
    cur = []
    for ch in s:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_imm(tok: str) -> Imm:
    body = tok[1:] if tok.startswith("#") else tok
    body = body.strip()
    try:
        if body.lower().startswith("0x"):
            return Imm(int(body, 16))
        if re.search(r"[.eE]", body) and not body.lower().startswith("0x"):
            return Imm(float(body))
        return Imm(int(body))
    except ValueError:
        raise AsmSyntaxError(f"bad immediate {tok!r}") from None


def _parse_mem(tok: str) -> MemOp:
    inner = tok[1:-1].strip()
    parts = [p.strip() for p in inner.split(",")]
    base_m = _X_RE.match(parts[0])
    if not base_m:
        raise AsmSyntaxError(f"bad memory base in {tok!r}")
    base = _x_from_match(parts[0], base_m)
    if len(parts) == 1:
        return MemOp(base=base)
    if len(parts) == 3 and parts[2].replace(" ", "") == "mulvl":
        imm = _parse_imm(parts[1]).value
        return MemOp(base=base, imm=int(imm), mul_vl=True)
    if len(parts) == 2 and parts[1].startswith("#"):
        return MemOp(base=base, imm=int(_parse_imm(parts[1]).value))
    shift = 0
    if len(parts) == 3:
        m = re.match(r"^lsl\s+#(\d+)$", parts[2])
        if not m:
            raise AsmSyntaxError(f"bad shift in {tok!r}")
        shift = int(m.group(1))
    # Gather/scatter form: [base, zi.T(, lsl #s)]
    z_m = _Z_RE.match(parts[1])
    if z_m:
        zindex = ZOp(int(z_m.group(1)), z_m.group(2))
        return MemOp(base=base, shift=shift, zindex=zindex)
    # [base, xi] or [base, xi, lsl #s]
    idx_m = _X_RE.match(parts[1])
    if not idx_m:
        raise AsmSyntaxError(f"bad index register in {tok!r}")
    index = _x_from_match(parts[1], idx_m)
    return MemOp(base=base, index=index, shift=shift)


def _x_from_match(tok: str, m: re.Match) -> XOp:
    if tok == "xzr" or tok == "wzr":
        return XOp(31)
    if tok == "sp":
        return XOp(31, is_sp=True)
    num = m.group(1) or m.group(2)
    return XOp(int(num))


def parse_operand(tok: str) -> Operand:
    """Parse a single operand token."""
    tok = tok.strip()
    if tok.startswith("{"):
        inner = tok[1:-1]
        regs = []
        for sub in _split_operands(inner):
            m = _Z_RE.match(sub)
            if not m:
                raise AsmSyntaxError(f"bad register list element {sub!r}")
            regs.append(ZOp(int(m.group(1)), m.group(2)))
        return RegList(tuple(regs))
    if tok.startswith("["):
        return _parse_mem(tok)
    if tok.startswith("#"):
        return _parse_imm(tok)
    if tok.startswith("."):
        return LabelRef(tok)
    m = _Z_RE.match(tok)
    if m:
        return ZOp(int(m.group(1)), m.group(2))
    m = _P_RE.match(tok)
    if m:
        return POp(int(m.group(1)), m.group(2), m.group(3))
    m = _X_RE.match(tok)
    if m:
        return _x_from_match(tok, m)
    m = _V_RE.match(tok)
    if m:
        return VOp(int(m.group(2)), m.group(1))
    if tok.lower() in _PATTERNS:
        return Pattern(tok.lower())
    m = re.match(r"^(lsl|lsr|asr|mul)\s+#(\d+)$", tok)
    if m:
        return ShiftSpec(m.group(1), int(m.group(2)))
    # Malformed register names must not fall through to the bare-label
    # case (e.g. "z0.q" with an illegal element suffix).
    if re.match(r"^[zpx]\d", tok, re.IGNORECASE):
        raise AsmSyntaxError(f"malformed register {tok!r}")
    # bare label (no leading dot)
    if re.match(r"^[A-Za-z_][\w.$]*$", tok):
        return LabelRef(tok)
    raise AsmSyntaxError(f"cannot parse operand {tok!r}")


_LABEL_RE = re.compile(r"^([.\w$]+):$")


def parse_line(line: str) -> tuple[Optional[str], Optional[Instruction]]:
    """Parse one assembly line into (label, instruction)."""
    # strip comments: //, ;, and @ to end of line
    line = re.split(r"//|;", line, maxsplit=1)[0].rstrip()
    stripped = line.strip()
    if not stripped:
        return None, None
    label = None
    m = _LABEL_RE.match(stripped)
    if m:
        return m.group(1), None
    # label and instruction on one line: "label: insn"
    m = re.match(r"^([.\w$]+):\s+(.*)$", stripped)
    if m:
        label = m.group(1)
        stripped = m.group(2).strip()
    parts = stripped.split(None, 1)
    mnemonic = parts[0].lower()
    cond = None
    if mnemonic.startswith("b.") and len(mnemonic) <= 5:
        cond = mnemonic[2:]
        mnemonic = "b"
    operands = []
    if len(parts) > 1:
        operands = [parse_operand(t) for t in _split_operands(parts[1])]
    return label, Instruction(mnemonic=mnemonic, cond=cond, operands=operands,
                              text=stripped)


def assemble(source: str) -> "Program":
    """Assemble a multi-line source string into a :class:`Program`."""
    from repro.sve.program import Program

    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            label, insn = parse_line(line)
        except AsmSyntaxError as e:
            raise AsmSyntaxError(f"line {lineno}: {e}") from None
        if label is not None:
            if label in labels:
                raise AsmSyntaxError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(instructions)
        if insn is not None:
            instructions.append(insn)
    return Program(instructions=instructions, labels=labels, source=source)

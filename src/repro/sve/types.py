"""SVE element types.

SVE instructions interpret vector registers as arrays of 8-, 16-, 32-
or 64-bit elements.  The assembly syntax carries the interpretation as
a suffix on register names (``z0.d`` = 64-bit elements, ``z0.s`` =
32-bit, ``z0.h`` = 16-bit, ``z0.b`` = 8-bit).  The paper's kernels use
``.d`` (double precision) throughout; Grid additionally needs ``.s``
(single precision) and ``.h`` (half precision, used only for
communication compression, Section V-B).
"""

from __future__ import annotations

import enum

import numpy as np


class EType(enum.Enum):
    """An SVE element interpretation: (suffix, size in bytes, numpy dtype)."""

    # Floating point.
    F64 = ("d", 8, np.float64)
    F32 = ("s", 4, np.float32)
    F16 = ("h", 2, np.float16)
    # Integer.  SVE distinguishes signedness per instruction, not per
    # register; we default the suffix interpretations used by the
    # integer instructions we implement.
    I64 = ("d", 8, np.int64)
    I32 = ("s", 4, np.int32)
    I16 = ("h", 2, np.int16)
    I8 = ("b", 1, np.int8)
    U64 = ("d", 8, np.uint64)
    U32 = ("s", 4, np.uint32)
    U16 = ("h", 2, np.uint16)
    U8 = ("b", 1, np.uint8)

    def __init__(self, suffix: str, size: int, dtype: type) -> None:
        self.suffix = suffix
        self.size = size
        self.dtype = np.dtype(dtype)

    @property
    def is_float(self) -> bool:
        return self.dtype.kind == "f"

    @property
    def is_signed(self) -> bool:
        return self.dtype.kind in ("f", "i")

    @property
    def bits(self) -> int:
        return self.size * 8


#: Suffix -> float interpretation (what ``fmul z0.d, ...`` means).
FLOAT_BY_SUFFIX: dict[str, EType] = {
    "d": EType.F64,
    "s": EType.F32,
    "h": EType.F16,
}

#: Suffix -> default signed-integer interpretation.
INT_BY_SUFFIX: dict[str, EType] = {
    "d": EType.I64,
    "s": EType.I32,
    "h": EType.I16,
    "b": EType.I8,
}

#: Suffix -> unsigned-integer interpretation (raw-bit moves, permutes).
UINT_BY_SUFFIX: dict[str, EType] = {
    "d": EType.U64,
    "s": EType.U32,
    "h": EType.U16,
    "b": EType.U8,
}

#: Suffix -> element size in bytes.
SIZE_BY_SUFFIX: dict[str, int] = {"d": 8, "s": 4, "h": 2, "b": 1}

#: Element size in bytes -> suffix.
SUFFIX_BY_SIZE: dict[int, str] = {8: "d", 4: "s", 2: "h", 1: "b"}


def float_etype(esize_bytes: int) -> EType:
    """The floating-point :class:`EType` for an element size in bytes."""
    return FLOAT_BY_SUFFIX[SUFFIX_BY_SIZE[esize_bytes]]


def uint_etype(esize_bytes: int) -> EType:
    """The raw-bits (unsigned) :class:`EType` for an element size."""
    return UINT_BY_SUFFIX[SUFFIX_BY_SIZE[esize_bytes]]

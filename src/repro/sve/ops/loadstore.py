"""Load/store semantics: contiguous, structure, and gather/scatter.

The paper leans on two families:

* ``LD1``/``ST1`` — predicated contiguous load/store of one vector
  (used by both the real-arithmetic loop of Section IV-A and the ACLE
  FCMLA kernels of Sections IV-C/D, which keep complex numbers
  interleaved in the register);
* ``LD2``/``ST2`` — structure load/store that de-interleaves an array
  of 2-element structures into two vectors (what the auto-vectorizer
  emitted for ``std::complex`` arrays in Section IV-B, splitting real
  and imaginary parts).

``LD3``/``LD4`` are included because Grid's colour vectors (3 complex)
and spinors use *n*-element structures; SVE supports n ≤ 4.
"""

from __future__ import annotations

import numpy as np

from repro.sve.memory import Memory


def ld1(mem: Memory, addr: int, pred: np.ndarray, dtype) -> np.ndarray:
    """Predicated contiguous load; inactive lanes are zeroed (``pg/z``)."""
    pred = np.asarray(pred, dtype=bool)
    dtype = np.dtype(dtype)
    out = np.zeros(pred.size, dtype=dtype)
    if pred.all():
        out[:] = mem.read_array(addr, dtype, pred.size)
        return out
    # Partial vector: only active lanes may touch memory (no faults on
    # inactive out-of-bounds lanes — the basis of tail-free VLA loops).
    active = np.nonzero(pred)[0]
    if active.size:
        last = int(active[-1])
        span = mem.read_array(addr, dtype, last + 1)
        out[active] = span[active]
    return out


def st1(mem: Memory, addr: int, pred: np.ndarray, values: np.ndarray) -> None:
    """Predicated contiguous store; inactive lanes leave memory untouched."""
    pred = np.asarray(pred, dtype=bool)
    values = np.ascontiguousarray(values)
    if pred.all():
        mem.write_array(addr, values)
        return
    itemsize = values.dtype.itemsize
    addrs = addr + np.arange(pred.size, dtype=np.int64) * itemsize
    mem.scatter_elements(addrs, pred, values)


def ldn(mem: Memory, addr: int, pred: np.ndarray, dtype, n: int) -> list[np.ndarray]:
    """``LDn {zt..}, pg/z, [addr]``: de-interleaving structure load.

    Loads ``lanes`` consecutive *n*-element structures and distributes
    structure member *k* to output vector *k*.  The predicate is per
    structure (all members of a structure share its activity).
    """
    if n not in (2, 3, 4):
        raise ValueError(f"LDn supports n in 2..4, got {n}")
    pred = np.asarray(pred, dtype=bool)
    dtype = np.dtype(dtype)
    lanes = pred.size
    outs = [np.zeros(lanes, dtype=dtype) for _ in range(n)]
    active = np.nonzero(pred)[0]
    if active.size:
        last = int(active[-1])
        flat = mem.read_array(addr, dtype, (last + 1) * n)
        for k in range(n):
            member = flat[k::n]
            outs[k][active] = member[active]
    return outs


def stn(mem: Memory, addr: int, pred: np.ndarray, vectors: list[np.ndarray]) -> None:
    """``STn``: interleaving structure store (inverse of :func:`ldn`).

    "Reassembles two-element structures from two vector registers and
    writes them into contiguous memory" (paper, Section IV-B) —
    generalised to n ≤ 4.
    """
    n = len(vectors)
    if n not in (2, 3, 4):
        raise ValueError(f"STn supports n in 2..4, got {n}")
    pred = np.asarray(pred, dtype=bool)
    vecs = [np.ascontiguousarray(v) for v in vectors]
    itemsize = vecs[0].dtype.itemsize
    lanes = pred.size
    base = addr + np.arange(lanes, dtype=np.int64) * n * itemsize
    for k in range(n):
        mem.scatter_elements(base + k * itemsize, pred, vecs[k])


def ld1_gather(mem: Memory, base: int, offsets: np.ndarray,
               pred: np.ndarray, dtype, scale: int = 1) -> np.ndarray:
    """``LD1 (gather)``: per-lane addresses ``base + offsets*scale``."""
    dtype = np.dtype(dtype)
    addrs = base + np.asarray(offsets, dtype=np.int64) * scale
    return mem.gather_elements(addrs, pred, dtype)


def st1_scatter(mem: Memory, base: int, offsets: np.ndarray,
                pred: np.ndarray, values: np.ndarray, scale: int = 1) -> None:
    """``ST1 (scatter)``: per-lane addresses ``base + offsets*scale``."""
    addrs = base + np.asarray(offsets, dtype=np.int64) * scale
    mem.scatter_elements(addrs, pred, np.ascontiguousarray(values))

"""Real (element-wise) arithmetic semantics.

These back the instruction mix the armclang auto-vectorizer produced
for both real and complex loops in the paper (Sections IV-A and IV-B):
``fmul``, ``fmla``, ``fmls``, ``fnmls`` and friends, plus the integer
ops the loop scaffolding needs.
"""

from __future__ import annotations

import numpy as np


def _merge(pred: np.ndarray, new: np.ndarray, old: np.ndarray | None) -> np.ndarray:
    """Apply merging/zeroing predication to an element-wise result."""
    pred = np.asarray(pred, dtype=bool)
    if old is None:
        old = np.zeros_like(new)
    return np.where(pred, new, old)


# ----------------------------------------------------------------------
# Unpredicated / predicated binary FP ops
# ----------------------------------------------------------------------

def fadd(a, b, pred=None, old=None):
    """``FADD``: ``a + b`` per lane."""
    r = np.asarray(a) + np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def fsub(a, b, pred=None, old=None):
    """``FSUB``: ``a - b`` per lane."""
    r = np.asarray(a) - np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def fmul(a, b, pred=None, old=None):
    """``FMUL``: ``a * b`` per lane."""
    r = np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def fdiv(a, b, pred=None, old=None):
    """``FDIV``: ``a / b`` per lane (inactive lanes never fault)."""
    a = np.asarray(a)
    b = np.asarray(b)
    with np.errstate(divide="ignore", invalid="ignore"):
        r = a / b
    return r if pred is None else _merge(pred, r, old)


def fmax(a, b, pred=None, old=None):
    """``FMAX``."""
    r = np.maximum(np.asarray(a), np.asarray(b))
    return r if pred is None else _merge(pred, r, old)


def fmin(a, b, pred=None, old=None):
    """``FMIN``."""
    r = np.minimum(np.asarray(a), np.asarray(b))
    return r if pred is None else _merge(pred, r, old)


# ----------------------------------------------------------------------
# Unary FP ops
# ----------------------------------------------------------------------

def fneg(a, pred=None, old=None):
    """``FNEG``."""
    r = -np.asarray(a)
    return r if pred is None else _merge(pred, r, old)


def fabs_(a, pred=None, old=None):
    """``FABS``."""
    r = np.abs(np.asarray(a))
    return r if pred is None else _merge(pred, r, old)


def fsqrt(a, pred=None, old=None):
    """``FSQRT`` (inactive lanes never fault)."""
    with np.errstate(invalid="ignore"):
        r = np.sqrt(np.asarray(a))
    return r if pred is None else _merge(pred, r, old)


# ----------------------------------------------------------------------
# Fused multiply-accumulate family (destructive: acc is the destination)
# ----------------------------------------------------------------------

def fmla(acc, a, b, pred=None):
    """``FMLA``: ``acc + a*b`` per lane (merging into ``acc``)."""
    r = np.asarray(acc) + np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, np.asarray(acc))


def fmls(acc, a, b, pred=None):
    """``FMLS``: ``acc - a*b`` per lane."""
    r = np.asarray(acc) - np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, np.asarray(acc))


def fnmla(acc, a, b, pred=None):
    """``FNMLA``: ``-acc - a*b`` per lane."""
    r = -np.asarray(acc) - np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, np.asarray(acc))


def fnmls(acc, a, b, pred=None):
    """``FNMLS``: ``-acc + a*b`` per lane.

    This is the instruction the auto-vectorizer used for the real part
    of a complex product: ``re(z) = -im(x)*im(y) + re(x)*re(y)`` with
    the accumulator pre-loaded with ``im(x)*im(y)`` (paper listing,
    Section IV-B line 15).
    """
    r = -np.asarray(acc) + np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, np.asarray(acc))


def fmad(a, b, addend, pred=None):
    """``FMAD``: ``a*b + addend`` where ``a`` is the destination."""
    r = np.asarray(a) * np.asarray(b) + np.asarray(addend)
    return r if pred is None else _merge(pred, r, np.asarray(a))


def fmsb(a, b, addend, pred=None):
    """``FMSB``: ``-(a*b) + addend`` where ``a`` is the destination."""
    r = np.asarray(addend) - np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, np.asarray(a))


# ----------------------------------------------------------------------
# Integer ops (loop scaffolding, index arithmetic, bitwise logic)
# ----------------------------------------------------------------------

def add(a, b, pred=None, old=None):
    """``ADD`` (integer, modular per dtype)."""
    with np.errstate(over="ignore"):
        r = np.asarray(a) + np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def sub(a, b, pred=None, old=None):
    """``SUB`` (integer, modular per dtype)."""
    with np.errstate(over="ignore"):
        r = np.asarray(a) - np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def mul(a, b, pred=None, old=None):
    """``MUL`` (integer, modular per dtype)."""
    with np.errstate(over="ignore"):
        r = np.asarray(a) * np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def and_(a, b, pred=None, old=None):
    """``AND`` (bitwise)."""
    r = np.asarray(a) & np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def orr(a, b, pred=None, old=None):
    """``ORR`` (bitwise)."""
    r = np.asarray(a) | np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def eor(a, b, pred=None, old=None):
    """``EOR`` (bitwise xor)."""
    r = np.asarray(a) ^ np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def bic(a, b, pred=None, old=None):
    """``BIC``: ``a & ~b``."""
    r = np.asarray(a) & ~np.asarray(b)
    return r if pred is None else _merge(pred, r, old)


def lsl(a, shift, pred=None, old=None):
    """``LSL`` by an immediate."""
    with np.errstate(over="ignore"):
        r = np.asarray(a) << shift
    return r if pred is None else _merge(pred, r, old)


def lsr(a, shift, pred=None, old=None):
    """``LSR`` by an immediate (logical shift right)."""
    a = np.asarray(a)
    unsigned = a.view(a.dtype.str.replace("i", "u"))
    r = (unsigned >> shift).view(a.dtype)
    return r if pred is None else _merge(pred, r, old)


def index(lanes: int, dtype, base: int, step: int) -> np.ndarray:
    """``INDEX``: ``base + i*step`` per lane."""
    dtype = np.dtype(dtype)
    with np.errstate(over="ignore"):
        return (base + np.arange(lanes) * step).astype(dtype)


def dup(lanes: int, dtype, value) -> np.ndarray:
    """``DUP``/``MOV`` immediate or scalar broadcast."""
    return np.full(lanes, value, dtype=np.dtype(dtype))

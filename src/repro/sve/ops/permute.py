"""Vector permutation semantics.

"Permutations of vector elements" are one of the machine-specific
operations Grid requires from every architecture backend
(Section II-C): circular shifts across virtual-node boundaries are
implemented as lane permutations.  SVE provides a rich permute set;
Grid's ``Permute0``..``Permute3`` (exchange halves, quarters, ...) map
onto ``EXT``/``TBL`` patterns.
"""

from __future__ import annotations

import numpy as np


def zip1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``ZIP1``: interleave the low halves of ``a`` and ``b``."""
    a, b = np.asarray(a), np.asarray(b)
    h = a.size // 2
    out = np.empty_like(a)
    out[0::2] = a[:h]
    out[1::2] = b[:h]
    return out


def zip2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``ZIP2``: interleave the high halves of ``a`` and ``b``."""
    a, b = np.asarray(a), np.asarray(b)
    h = a.size // 2
    out = np.empty_like(a)
    out[0::2] = a[h:]
    out[1::2] = b[h:]
    return out


def uzp1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``UZP1``: even elements of the concatenation ``a:b``."""
    a, b = np.asarray(a), np.asarray(b)
    return np.concatenate([a[0::2], b[0::2]])


def uzp2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``UZP2``: odd elements of the concatenation ``a:b``."""
    a, b = np.asarray(a), np.asarray(b)
    return np.concatenate([a[1::2], b[1::2]])


def trn1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``TRN1``: even lanes from ``a``'s even, odd lanes from ``b``'s even."""
    a, b = np.asarray(a), np.asarray(b)
    out = np.empty_like(a)
    out[0::2] = a[0::2]
    out[1::2] = b[0::2]
    return out


def trn2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``TRN2``: even lanes from ``a``'s odd, odd lanes from ``b``'s odd."""
    a, b = np.asarray(a), np.asarray(b)
    out = np.empty_like(a)
    out[0::2] = a[1::2]
    out[1::2] = b[1::2]
    return out


def rev(a: np.ndarray) -> np.ndarray:
    """``REV``: reverse all elements."""
    return np.asarray(a)[::-1].copy()


def ext(a: np.ndarray, b: np.ndarray, nbytes: int, esize: int) -> np.ndarray:
    """``EXT``: extract a vector from the byte-concatenation ``a:b``.

    ``nbytes`` is the byte offset of the first extracted byte; the
    element size converts it to a lane rotation.  ``EXT`` with offset
    ``VL/2`` swaps vector halves — Grid's ``Permute0``.
    """
    a, b = np.asarray(a), np.asarray(b)
    if nbytes % esize:
        raise ValueError(
            f"EXT offset {nbytes} not a multiple of element size {esize}"
        )
    shift = nbytes // esize
    if not 0 <= shift <= a.size:
        raise ValueError(f"EXT offset out of range: {nbytes} bytes")
    return np.concatenate([a[shift:], b[:shift]])


def tbl(a: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """``TBL``: table lookup; out-of-range indices produce zero."""
    a = np.asarray(a)
    idx = np.asarray(indices).astype(np.int64)
    out = np.zeros_like(a)
    ok = (idx >= 0) & (idx < a.size)
    out[ok] = a[idx[ok]]
    return out


def dup_lane(a: np.ndarray, lane: int) -> np.ndarray:
    """``DUP (indexed)``: broadcast one lane to all lanes."""
    a = np.asarray(a)
    return np.full_like(a, a[lane])


def sel(pred: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``SEL``: per-lane select, ``pred ? a : b``."""
    return np.where(np.asarray(pred, dtype=bool), np.asarray(a), np.asarray(b))


def splice(pred: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``SPLICE``: active segment of ``a`` followed by lanes of ``b``.

    Extracts the segment of ``a`` from the first to the last active
    lane of ``pred``, places it at the bottom, and fills the remainder
    from the low lanes of ``b``.
    """
    pred = np.asarray(pred, dtype=bool)
    a, b = np.asarray(a), np.asarray(b)
    act = np.nonzero(pred)[0]
    if act.size:
        seg = a[act[0] : act[-1] + 1]
    else:
        seg = a[:0]
    out = np.concatenate([seg, b[: a.size - seg.size]])
    return out


def compact(pred: np.ndarray, a: np.ndarray) -> np.ndarray:
    """``COMPACT``: pack active lanes to the bottom, zero-fill the rest."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    out = np.zeros_like(a)
    vals = a[pred]
    out[: vals.size] = vals
    return out


def insr(a: np.ndarray, value) -> np.ndarray:
    """``INSR``: shift lanes up by one and insert ``value`` at lane 0."""
    a = np.asarray(a)
    out = np.empty_like(a)
    out[0] = value
    out[1:] = a[:-1]
    return out


def lasta(pred: np.ndarray, a: np.ndarray):
    """``LASTA``: element *after* the last active lane (wrapping)."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    act = np.nonzero(pred)[0]
    idx = (int(act[-1]) + 1) % a.size if act.size else 0
    return a[idx]


def lastb(pred: np.ndarray, a: np.ndarray):
    """``LASTB``: the last active element (lane VL-1 if none active)."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    act = np.nonzero(pred)[0]
    idx = int(act[-1]) if act.size else a.size - 1
    return a[idx]


# ----------------------------------------------------------------------
# Grid-style permutes.  ``PermuteN`` exchanges blocks of 2^-(N+1) of the
# register: Permute0 swaps halves, Permute1 swaps quarters within
# halves, etc.  On SVE these are EXT/TBL patterns; we expose the
# abstract semantics here and let the backends count the instructions.
# ----------------------------------------------------------------------

def permute_block(a: np.ndarray, level: int) -> np.ndarray:
    """Grid ``Permute<level>`` on a lane array.

    Level 0 swaps the two halves of the register, level 1 swaps
    adjacent quarters, ..., level k swaps adjacent blocks of
    ``lanes / 2^(k+1)`` lanes.  Applying the same permute twice is the
    identity (an involution), which the cshift tests rely on.
    """
    a = np.asarray(a)
    block = a.size >> (level + 1)
    if block < 1:
        raise ValueError(
            f"permute level {level} too deep for {a.size} lanes"
        )
    v = a.reshape(-1, 2, block)
    return v[:, ::-1, :].reshape(a.size).copy()


def permute_indices(lanes: int, level: int) -> np.ndarray:
    """The TBL index vector implementing :func:`permute_block`."""
    return permute_block(np.arange(lanes), level)

"""Pure-function semantics for the SVE instructions.

Every function here takes/returns plain numpy arrays plus an
element-granular boolean predicate, with no machine state.  The same
functions back two consumers:

* the :class:`repro.sve.machine.Machine` executor (textual assembly),
* the :mod:`repro.acle` intrinsics layer (the VLA programming surface).

Sharing the semantics guarantees that the "compiler output" path and
the "intrinsics" path the paper compares cannot diverge functionally.

Predication conventions follow the architecture:

* ``merging`` (``pg/m``): inactive lanes keep the destination's old
  value, passed as ``old``.
* ``zeroing`` (``pg/z``): inactive lanes become zero.
* ``dont_care`` (ACLE ``_x`` forms): we implement as merging with the
  first operand, which is one of the architecturally-allowed outcomes.
"""

from repro.sve.ops import arith, cplx, convert, loadstore, permute, reduce

__all__ = ["arith", "cplx", "convert", "loadstore", "permute", "reduce"]

"""Horizontal reduction semantics.

Reductions appear in the LQCD solvers (inner products and norms of the
Conjugate Gradient iteration, Section II-A).  SVE provides predicated
reductions to a scalar; ``FADDA`` is the strictly-ordered variant.
"""

from __future__ import annotations

import numpy as np


def faddv(pred: np.ndarray, a: np.ndarray):
    """``FADDV``: sum of active lanes (pairwise tree order)."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    return a.dtype.type(a[pred].sum())


def fadda(pred: np.ndarray, init, a: np.ndarray):
    """``FADDA``: strictly-ordered sum of active lanes starting at ``init``.

    Unlike :func:`faddv`, the accumulation order is lane 0 upward,
    which matters for reproducibility studies of solver residuals.
    """
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    acc = a.dtype.type(init)
    for i in np.nonzero(pred)[0]:
        acc = a.dtype.type(acc + a[i])
    return acc


def fmaxv(pred: np.ndarray, a: np.ndarray):
    """``FMAXV``: maximum of active lanes."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    vals = a[pred]
    return a.dtype.type(vals.max()) if vals.size else a.dtype.type(-np.inf)


def fminv(pred: np.ndarray, a: np.ndarray):
    """``FMINV``: minimum of active lanes."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    vals = a[pred]
    return a.dtype.type(vals.min()) if vals.size else a.dtype.type(np.inf)


def saddv(pred: np.ndarray, a: np.ndarray) -> int:
    """``SADDV``/``UADDV``: integer sum of active lanes (64-bit result)."""
    pred = np.asarray(pred, dtype=bool)
    a = np.asarray(a)
    return int(a[pred].sum(dtype=np.int64)) & ((1 << 64) - 1)

"""SVE complex-arithmetic semantics: ``FCMLA`` and ``FCADD``.

These are the instructions at the heart of the paper (Section III-D).
A vector register holds interleaved complex numbers — real components
in even elements, imaginary components in odd elements — and

* ``FCMLA`` performs half of a complex multiply-accumulate, selected by
  an immediate rotation of the second operand in the complex plane;
* ``FCADD`` adds a vector rotated by ±90°.

Concatenating two ``FCMLA`` with rotations (0°, 90°) yields
``z += x*y``; (0°, 270°) yields ``z += conj(x)*y``; (180°, 270°) yields
``z -= x*y``; (180°, 90°) yields ``z -= conj(x)*y`` — exactly the
operations Eq. (2) of the paper builds from instruction pairs.
"""

from __future__ import annotations

import numpy as np

#: The four legal FCMLA rotations.
FCMLA_ROTATIONS = (0, 90, 180, 270)

#: The two legal FCADD rotations.
FCADD_ROTATIONS = (90, 270)


def _split_pairs(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Even (real-slot) and odd (imaginary-slot) elements."""
    v = np.asarray(v)
    if v.size % 2:
        raise ValueError("complex-layout vector needs an even lane count")
    return v[0::2], v[1::2]


def _join_pairs(even: np.ndarray, odd: np.ndarray) -> np.ndarray:
    out = np.empty(even.size * 2, dtype=even.dtype)
    out[0::2] = even
    out[1::2] = odd
    return out


def fcmla(acc, x, y, rot: int, pred=None):
    """``FCMLA Zda, Pg/M, Zn, Zm, #rot``.

    With ``xr, xi`` the even/odd elements of ``x`` (likewise ``y``),
    each complex pair of the accumulator is updated as:

    ====  ==========================  ==========================
    rot   even (real slot)            odd (imaginary slot)
    ====  ==========================  ==========================
    0     ``+= xr * yr``              ``+= xr * yi``
    90    ``-= xi * yi``              ``+= xi * yr``
    180   ``-= xr * yr``              ``-= xr * yi``
    270   ``+= xi * yi``              ``-= xi * yr``
    ====  ==========================  ==========================

    i.e. rotation 0 accumulates ``Re(x) * y`` and rotation 90
    accumulates ``(i Im(x)) * y`` — the paper's
    ``z_i ± (Re x_i) × y_i`` and ``z_i ± (i Im x_i) × y_i``.

    ``pred`` is the element-granular governing predicate (merging:
    inactive elements keep the accumulator value).
    """
    if rot not in FCMLA_ROTATIONS:
        raise ValueError(f"illegal FCMLA rotation {rot}")
    acc = np.asarray(acc)
    xr, xi = _split_pairs(x)
    yr, yi = _split_pairs(y)
    ar, ai = _split_pairs(acc)
    if rot == 0:
        er, ei = ar + xr * yr, ai + xr * yi
    elif rot == 90:
        er, ei = ar - xi * yi, ai + xi * yr
    elif rot == 180:
        er, ei = ar - xr * yr, ai - xr * yi
    else:  # 270
        er, ei = ar + xi * yi, ai - xi * yr
    result = _join_pairs(er.astype(acc.dtype), ei.astype(acc.dtype))
    if pred is None:
        return result
    return np.where(np.asarray(pred, dtype=bool), result, acc)


def fcadd(a, b, rot: int, pred=None):
    """``FCADD Zdn, Pg/M, Zdn, Zm, #rot``: ``a + i*b`` (90°) or ``a - i*b`` (270°).

    This is the paper's "vectorized add/sub of complex numbers,
    x_i ± i y_i" (Section III-D).
    """
    if rot not in FCADD_ROTATIONS:
        raise ValueError(f"illegal FCADD rotation {rot}")
    a = np.asarray(a)
    ar, ai = _split_pairs(a)
    br, bi = _split_pairs(b)
    if rot == 90:  # + i*b = (ar - bi) + i (ai + br)
        er, ei = ar - bi, ai + br
    else:  # 270: - i*b = (ar + bi) + i (ai - br)
        er, ei = ar + bi, ai - br
    result = _join_pairs(er.astype(a.dtype), ei.astype(a.dtype))
    if pred is None:
        return result
    return np.where(np.asarray(pred, dtype=bool), result, a)


# ----------------------------------------------------------------------
# Composite idioms (Eq. (2) of the paper) — used by tests and by the
# SVE ACLE Grid backend to document intent.
# ----------------------------------------------------------------------

def cmadd(acc, x, y, pred=None):
    """``acc + x*y`` via FCMLA rotations (0, 90)."""
    t = fcmla(acc, x, y, 0, pred)
    return fcmla(t, x, y, 90, pred)


def cmsub(acc, x, y, pred=None):
    """``acc - x*y`` via FCMLA rotations (180, 270)."""
    t = fcmla(acc, x, y, 180, pred)
    return fcmla(t, x, y, 270, pred)


def conj_cmadd(acc, x, y, pred=None):
    """``acc + conj(x)*y`` via FCMLA rotations (0, 270)."""
    t = fcmla(acc, x, y, 0, pred)
    return fcmla(t, x, y, 270, pred)


def conj_cmsub(acc, x, y, pred=None):
    """``acc - conj(x)*y`` via FCMLA rotations (180, 90)."""
    t = fcmla(acc, x, y, 180, pred)
    return fcmla(t, x, y, 90, pred)


def cmul(x, y, pred=None):
    """``x*y``: complex multiplication by accumulating onto zero
    (Section III-D: "achieved by setting z_i = 0")."""
    zero = np.zeros_like(np.asarray(x))
    return cmadd(zero, x, y, pred)


def interleave_complex(z: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Pack a complex numpy array into the interleaved real layout."""
    z = np.asarray(z, dtype=np.complex128 if np.dtype(dtype) == np.float64
                   else np.complex64)
    out = np.empty(z.size * 2, dtype=dtype)
    out[0::2] = z.real
    out[1::2] = z.imag
    return out


def deinterleave_complex(v: np.ndarray) -> np.ndarray:
    """Unpack an interleaved real layout back to a complex array."""
    re, im = _split_pairs(np.asarray(v))
    ctype = np.complex128 if re.dtype == np.float64 else np.complex64
    return (re + 1j * im).astype(ctype)

"""Floating-point precision conversion semantics.

"Conversion of floating-point precision" is one of the machine-specific
operations Grid requires (Section II-C), and 16-bit floats are used by
Grid "only for data compression upon data exchange over the
communications network" (Section V-B).  SVE's ``FCVT`` converts between
f16/f32/f64 within a register: converting to a narrower type packs the
results into the lower-numbered even sub-elements; converting to a
wider type reads them from there.

We model the packing convention explicitly because the Grid comms
compression path depends on it.
"""

from __future__ import annotations

import numpy as np


_FLOAT_SIZES = {2: np.float16, 4: np.float32, 8: np.float64}


def fcvt(values: np.ndarray, to_dtype, pred=None, old=None) -> np.ndarray:
    """Element-wise precision conversion (the arithmetic core of FCVT).

    IEEE 754 round-to-nearest-even, overflow to infinity — numpy's
    ``astype`` semantics match the hardware for these types.
    """
    to_dtype = np.dtype(to_dtype)
    with np.errstate(over="ignore"):
        r = np.asarray(values).astype(to_dtype)
    if pred is None:
        return r
    pred = np.asarray(pred, dtype=bool)
    if old is None:
        old = np.zeros_like(r)
    return np.where(pred, r, old)


def fcvt_narrow_pack(wide: np.ndarray, to_dtype) -> np.ndarray:
    """Convert to a narrower type and pack into even sub-element slots.

    A register of N wide elements becomes a register of 2N (or 4N)
    narrow elements in which only the slots at stride
    ``wide_size/narrow_size`` are meaningful; remaining slots are zero.
    This mirrors how an in-register ``FCVT zd.h, pg/m, zn.d`` lays out
    its results.
    """
    wide = np.asarray(wide)
    to_dtype = np.dtype(to_dtype)
    ratio = wide.dtype.itemsize // to_dtype.itemsize
    if ratio < 2:
        raise ValueError("fcvt_narrow_pack needs a strictly narrower target")
    out = np.zeros(wide.size * ratio, dtype=to_dtype)
    with np.errstate(over="ignore"):
        out[::ratio] = wide.astype(to_dtype)
    return out


def fcvt_widen_unpack(narrow: np.ndarray, to_dtype) -> np.ndarray:
    """Convert strided narrow slots up to a wider type (inverse layout)."""
    narrow = np.asarray(narrow)
    to_dtype = np.dtype(to_dtype)
    ratio = to_dtype.itemsize // narrow.dtype.itemsize
    if ratio < 2:
        raise ValueError("fcvt_widen_unpack needs a strictly wider target")
    return narrow[::ratio].astype(to_dtype)


def scvtf(values: np.ndarray, to_dtype, pred=None, old=None) -> np.ndarray:
    """``SCVTF``: signed integer -> floating point."""
    return fcvt(np.asarray(values), to_dtype, pred, old)


def fcvtzs(values: np.ndarray, to_dtype, pred=None, old=None) -> np.ndarray:
    """``FCVTZS``: floating point -> signed integer, round toward zero."""
    to_dtype = np.dtype(to_dtype)
    v = np.trunc(np.asarray(values, dtype=np.float64))
    info = np.iinfo(to_dtype)
    v = np.clip(v, info.min, info.max)
    r = v.astype(to_dtype)
    if pred is None:
        return r
    pred = np.asarray(pred, dtype=bool)
    if old is None:
        old = np.zeros_like(r)
    return np.where(pred, r, old)

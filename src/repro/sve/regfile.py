"""Architectural register files for the SVE simulator.

State modelled:

* ``z0``..``z31`` — scalable vector registers, each :class:`~repro.sve.vl.VL`
  bits wide, stored as raw little-endian bytes so that re-interpreting a
  register at a different element size (``z0.d`` vs ``z0.s``) behaves
  exactly like hardware.
* ``p0``..``p15`` — predicate registers with one bit per *byte* of the
  vector registers.  For an element size of *n* bytes, the element is
  governed by the bit of its lowest-addressed byte (the remaining
  ``n - 1`` bits are zero in canonical predicates, as produced by
  ``PTRUE``/``WHILELO``).
* ``x0``..``x30`` plus ``xzr``/``sp`` — 64-bit general-purpose registers.
* ``v0``..``v31`` scalar FP views — architecturally, ``d0`` is the low
  64 bits of ``z0``; reductions such as ``FADDV`` write the low element
  and zero the rest, which is how we model them.
* The NZCV condition flags, set by scalar compares and by the
  flag-setting predicate instructions (``WHILELO``, ``BRKNS``,
  ``PTEST`` ...).
"""

from __future__ import annotations

import numpy as np

from repro.sve.types import EType
from repro.sve.vl import VL

_MASK64 = (1 << 64) - 1


class ZRegisterFile:
    """The 32 scalable vector registers, stored as raw bytes."""

    NREGS = 32

    def __init__(self, vl: VL) -> None:
        self.vl = vl
        self._data = np.zeros((self.NREGS, vl.bytes), dtype=np.uint8)

    def read(self, idx: int, etype: EType) -> np.ndarray:
        """Return a *copy* of register ``idx`` viewed as ``etype`` elements."""
        self._check(idx)
        return self._data[idx].view(etype.dtype).copy()

    def write(self, idx: int, etype: EType, values: np.ndarray) -> None:
        """Overwrite register ``idx`` with ``values`` of type ``etype``."""
        self._check(idx)
        lanes = self.vl.lanes(etype.size)
        arr = np.asarray(values, dtype=etype.dtype)
        if arr.shape != (lanes,):
            raise ValueError(
                f"z{idx}.{etype.suffix} expects {lanes} lanes, got {arr.shape}"
            )
        self._data[idx] = arr.view(np.uint8)

    def read_bytes(self, idx: int) -> np.ndarray:
        """Raw little-endian bytes of register ``idx`` (a copy)."""
        self._check(idx)
        return self._data[idx].copy()

    def write_bytes(self, idx: int, raw: np.ndarray) -> None:
        self._check(idx)
        raw = np.asarray(raw, dtype=np.uint8)
        if raw.shape != (self.vl.bytes,):
            raise ValueError(f"z{idx} expects {self.vl.bytes} bytes")
        self._data[idx] = raw

    def zero(self, idx: int) -> None:
        self._check(idx)
        self._data[idx] = 0

    def _check(self, idx: int) -> None:
        if not 0 <= idx < self.NREGS:
            raise IndexError(f"no such vector register z{idx}")


class PRegisterFile:
    """The 16 predicate registers: one boolean per vector-register byte."""

    NREGS = 16

    def __init__(self, vl: VL) -> None:
        self.vl = vl
        self._bits = np.zeros((self.NREGS, vl.bytes), dtype=bool)

    def read_bits(self, idx: int) -> np.ndarray:
        """Per-byte predicate bits (a copy)."""
        self._check(idx)
        return self._bits[idx].copy()

    def write_bits(self, idx: int, bits: np.ndarray) -> None:
        self._check(idx)
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.vl.bytes,):
            raise ValueError(f"p{idx} expects {self.vl.bytes} predicate bits")
        self._bits[idx] = bits

    def read_elements(self, idx: int, esize: int) -> np.ndarray:
        """Element-granular view: bit of each element's lowest byte."""
        self._check(idx)
        return self._bits[idx][::esize].copy()

    def write_elements(self, idx: int, esize: int, active: np.ndarray) -> None:
        """Write a canonical element-granular predicate.

        Sets the lowest-byte bit of each active element and clears all
        other bits — the encoding ``PTRUE``/``WHILELO`` produce.
        """
        self._check(idx)
        active = np.asarray(active, dtype=bool)
        lanes = self.vl.lanes(esize)
        if active.shape != (lanes,):
            raise ValueError(f"p{idx}.{esize}B expects {lanes} elements")
        bits = np.zeros(self.vl.bytes, dtype=bool)
        bits[::esize] = active
        self._bits[idx] = bits

    def _check(self, idx: int) -> None:
        if not 0 <= idx < self.NREGS:
            raise IndexError(f"no such predicate register p{idx}")


class XRegisterFile:
    """The 64-bit general-purpose registers.

    Index 31 is context-dependent in AArch64 (``xzr`` or ``sp``); the
    simulator keeps a separate ``sp`` and treats index 31 as the
    always-zero register, which is what the paper's listings use.
    """

    NREGS = 31
    XZR = 31

    def __init__(self) -> None:
        self._regs = [0] * self.NREGS
        self.sp = 0

    def read(self, idx: int) -> int:
        if idx == self.XZR:
            return 0
        self._check(idx)
        return self._regs[idx]

    def read_signed(self, idx: int) -> int:
        v = self.read(idx)
        return v - (1 << 64) if v >= (1 << 63) else v

    def write(self, idx: int, value: int) -> None:
        if idx == self.XZR:
            return  # writes to xzr are discarded
        self._check(idx)
        self._regs[idx] = int(value) & _MASK64

    def _check(self, idx: int) -> None:
        if not 0 <= idx < self.NREGS:
            raise IndexError(f"no such general-purpose register x{idx}")


class Flags:
    """The NZCV condition flags.

    Scalar ``CMP`` sets them the AArch64 way; the flag-setting SVE
    predicate instructions set them from the resulting predicate:
    ``N`` = first element active, ``Z`` = no element active,
    ``C`` = *not* (last element active), ``V`` = 0.
    """

    def __init__(self) -> None:
        self.n = False
        self.z = True
        self.c = True
        self.v = False

    def set_from_predicate(self, active: np.ndarray) -> None:
        active = np.asarray(active, dtype=bool)
        any_active = bool(active.any())
        self.n = bool(active[0]) if active.size else False
        self.z = not any_active
        self.c = not (bool(active[-1]) if active.size else False)
        self.v = False

    def set_from_sub(self, a: int, b: int) -> None:
        """Flags for ``CMP a, b`` (i.e. ``SUBS xzr, a, b``), 64-bit."""
        a &= _MASK64
        b &= _MASK64
        result = (a - b) & _MASK64
        sa = a - (1 << 64) if a >= (1 << 63) else a
        sb = b - (1 << 64) if b >= (1 << 63) else b
        sr = sa - sb
        self.n = bool(result >> 63)
        self.z = result == 0
        self.c = a >= b  # no borrow
        self.v = not (-(1 << 63) <= sr < (1 << 63))

    def condition(self, cond: str) -> bool:
        """Evaluate an AArch64 condition code mnemonic."""
        cond = cond.lower()
        table = {
            "eq": self.z,
            "ne": not self.z,
            "cs": self.c,
            "hs": self.c,
            "cc": not self.c,
            "lo": not self.c,
            "mi": self.n,
            "pl": not self.n,
            "vs": self.v,
            "vc": not self.v,
            "hi": self.c and not self.z,
            "ls": not (self.c and not self.z),
            "ge": self.n == self.v,
            "lt": self.n != self.v,
            "gt": (not self.z) and self.n == self.v,
            "le": self.z or self.n != self.v,
            "al": True,
        }
        try:
            return table[cond]
        except KeyError:
            raise ValueError(f"unknown condition code {cond!r}") from None

"""Flat little-endian memory for the SVE simulator.

A single byte-addressable array with typed accessors, plus a trivial
bump allocator so test programs and the ArmIE front-end can place
arrays without a linker.  Loads of inactive (predicated-off) lanes
never touch memory, so programs may legally read "past the end" of an
array as long as the governing predicate masks the excess lanes — the
property that lets SVE's VLA loops omit scalar tail processing
(Section IV-A of the paper).
"""

from __future__ import annotations

import numpy as np


class MemoryError_(Exception):
    """Raised on out-of-bounds *active* accesses."""


class Memory:
    """Byte-addressable little-endian memory."""

    def __init__(self, size: int = 1 << 20) -> None:
        self.size = size
        self._bytes = np.zeros(size, dtype=np.uint8)
        self._brk = 64  # never hand out address 0 (null)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Bump-allocate ``nbytes`` with the requested alignment."""
        addr = (self._brk + align - 1) // align * align
        if addr + nbytes > self.size:
            raise MemoryError_(
                f"out of simulated memory: need {nbytes} at {addr}, "
                f"size {self.size}"
            )
        self._brk = addr + nbytes
        return addr

    def alloc_array(self, values: np.ndarray, align: int = 64) -> int:
        """Allocate and initialise from a numpy array; returns the address."""
        values = np.ascontiguousarray(values)
        addr = self.alloc(values.nbytes, align)
        self.write_array(addr, values)
        return addr

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    def read_array(self, addr: int, dtype: np.dtype, count: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self._check(addr, nbytes)
        return self._bytes[addr : addr + nbytes].view(dtype).copy()

    def write_array(self, addr: int, values: np.ndarray) -> None:
        values = np.ascontiguousarray(values)
        self._check(addr, values.nbytes)
        self._bytes[addr : addr + values.nbytes] = values.view(np.uint8).ravel()

    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        self._check(addr, nbytes)
        return self._bytes[addr : addr + nbytes].copy()

    def write_bytes(self, addr: int, raw: np.ndarray) -> None:
        raw = np.asarray(raw, dtype=np.uint8)
        self._check(addr, raw.size)
        self._bytes[addr : addr + raw.size] = raw

    # ------------------------------------------------------------------
    # Predicated element access (the load/store unit)
    # ------------------------------------------------------------------
    def gather_elements(
        self, addrs: np.ndarray, active: np.ndarray, dtype: np.dtype
    ) -> np.ndarray:
        """Read one element per lane from per-lane byte addresses.

        Inactive lanes return 0 without touching memory (predicated
        loads zero inactive destination elements: ``pg/z``).
        """
        dtype = np.dtype(dtype)
        addrs = np.asarray(addrs, dtype=np.int64)
        active = np.asarray(active, dtype=bool)
        out = np.zeros(addrs.shape, dtype=dtype)
        for i in np.nonzero(active)[0]:
            a = int(addrs[i])
            self._check(a, dtype.itemsize)
            out[i] = self._bytes[a : a + dtype.itemsize].view(dtype)[0]
        return out

    def scatter_elements(
        self, addrs: np.ndarray, active: np.ndarray, values: np.ndarray
    ) -> None:
        """Write one element per active lane to per-lane byte addresses."""
        values = np.ascontiguousarray(values)
        addrs = np.asarray(addrs, dtype=np.int64)
        active = np.asarray(active, dtype=bool)
        itemsize = values.dtype.itemsize
        for i in np.nonzero(active)[0]:
            a = int(addrs[i])
            self._check(a, itemsize)
            self._bytes[a : a + itemsize] = values[i : i + 1].view(np.uint8)

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryError_(
                f"access [{addr}, {addr + nbytes}) outside memory of size "
                f"{self.size}"
            )

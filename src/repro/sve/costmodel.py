"""A simple per-instruction cycle-cost model.

The paper explicitly makes **no** performance claims ("it is not yet
possible to perform a reliable assessment of the performance"), and
notes that "the performance signatures of the instructions might differ
across different SVE platforms" (Section V-E) — which is *why* the
authors keep both the FCMLA and the real-arithmetic complex
implementations.

This model exists to quantify that trade-off space, not to predict any
silicon: it assigns each instruction class a latency/throughput cost so
benchmarks can report *estimated cycles* and the VL-scaling shape
(dynamic instruction count ~ 1/VL for VLA loops).  Costs are
per-profile so the FCMLA-favourable and FCMLA-unfavourable silicon
hypotheses of Section V-E can both be evaluated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostProfile:
    """Issue costs (in cycles, throughput-reciprocal) per instruction class."""

    name: str
    load: float = 1.0
    store: float = 1.0
    structure_ldst: float = 2.0
    fp: float = 0.5
    fma: float = 0.5
    fcmla: float = 0.5
    fcadd: float = 0.5
    permute: float = 1.0
    predicate: float = 0.5
    convert: float = 1.0
    scalar: float = 0.25
    control: float = 0.25

    def cost_of(self, mnemonic: str) -> float:
        if mnemonic in ("fcmla",):
            return self.fcmla
        if mnemonic in ("fcadd",):
            return self.fcadd
        if mnemonic.startswith(("ld2", "ld3", "ld4", "st2", "st3", "st4")):
            return self.structure_ldst
        if mnemonic.startswith("ld"):
            return self.load
        if mnemonic.startswith("st"):
            return self.store
        if mnemonic in ("fmla", "fmls", "fnmla", "fnmls", "fmad", "fmsb"):
            return self.fma
        if mnemonic.startswith("f"):
            return self.fp
        if mnemonic in ("zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2",
                        "rev", "ext", "tbl", "sel", "splice", "compact",
                        "insr", "dup"):
            return self.permute
        if mnemonic in ("ptrue", "pfalse", "whilelo", "whilelt", "brkn",
                        "brkns", "brka", "brkb", "pnext", "pfirst", "ptest",
                        "cntp"):
            return self.predicate
        if mnemonic in ("fcvt", "scvtf", "fcvtzs"):
            return self.convert
        if mnemonic in ("b", "cbz", "cbnz", "ret", "cmp", "nop"):
            return self.control
        return self.scalar


#: Silicon where FCMLA is full-rate — the hypothesis under which the
#: ACLE FCMLA path (Section V-C) wins outright.
FAST_FCMLA = CostProfile(name="fast-fcmla", fcmla=0.5, fcadd=0.5)

#: Silicon where FCMLA is microcoded/slow — the hypothesis motivating
#: the real-arithmetic alternative (Section V-E).
SLOW_FCMLA = CostProfile(name="slow-fcmla", fcmla=3.0, fcadd=2.0)

#: A neutral profile with uniform vector-op cost.
UNIFORM = CostProfile(
    name="uniform", load=1, store=1, structure_ldst=1, fp=1, fma=1,
    fcmla=1, fcadd=1, permute=1, predicate=1, convert=1, scalar=1, control=1,
)

PROFILES: dict[str, CostProfile] = {
    p.name: p for p in (FAST_FCMLA, SLOW_FCMLA, UNIFORM)
}


@dataclass
class CostReport:
    """Estimated cycles for a retired-instruction histogram."""

    profile: CostProfile
    cycles: float = 0.0
    by_mnemonic: Counter = field(default_factory=Counter)

    @classmethod
    def from_histogram(cls, hist: Counter, profile: CostProfile) -> "CostReport":
        rep = cls(profile=profile)
        for mnem, n in hist.items():
            c = profile.cost_of(mnem) * n
            rep.by_mnemonic[mnem] = c
            rep.cycles += c
        return rep


def estimate_cycles(hist: Counter, profile: CostProfile = FAST_FCMLA) -> float:
    """Estimated cycles for a per-mnemonic retired-instruction histogram."""
    return CostReport.from_histogram(hist, profile).cycles

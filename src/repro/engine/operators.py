"""The :class:`FermionOperator` protocol and the named operator registry.

Grid selects its fermion action by name (``WilsonFermionR``,
``WilsonCloverFermionR``, ...) behind one uniform operator interface;
the QPACE 4 port paper's lesson is that this seam is what makes new
substrates cheap.  This module is that seam for the reproduction:

* :class:`FermionOperator` — the structural protocol every operator
  satisfies: ``apply`` / ``apply_dagger`` / ``mdag_m``, a
  :class:`OperatorGeometry` descriptor, and ``flops_per_site()`` /
  ``bytes_per_site()`` metadata so benchmarks and solvers can reason
  about any operator uniformly.
* A name -> factory **registry** (:func:`register_operator`,
  :func:`get_operator`, :func:`operator_names`).  Factories import
  their operator classes lazily, so the registry can be enumerated
  without pulling the whole grid layer in — and so this module stays
  importable from ``repro.engine`` without cycles.
* :class:`MultiRHSOperator` — the batching adapter: wraps any operator
  so solvers can treat a stacked ``(nrhs, 4, 3)`` batch as one field.

``get_operator(name, **kwargs)`` is equivalent to constructing the
class directly (the registry tests assert bitwise-equal application
across vector lengths); the registry adds discovery and a uniform
construction surface, not behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable


@dataclass(frozen=True)
class OperatorGeometry:
    """Where and on what an operator acts.

    ``gdims`` is the global lattice, ``tensor_shape`` the per-site
    tensor the operator consumes, ``dtype`` the scalar ("complex128"),
    ``backend`` the SIMD backend's registry-style name, and ``nranks``
    the rank decomposition (1 for single-rank operators).
    """

    gdims: tuple
    tensor_shape: tuple
    dtype: str
    backend: str
    nranks: int = 1

    @property
    def sites(self) -> int:
        n = 1
        for d in self.gdims:
            n *= int(d)
        return n


@runtime_checkable
class FermionOperator(Protocol):
    """The uniform operator surface solvers are parameterized by."""

    def apply(self, psi):
        """``M psi``."""
        ...

    def apply_dagger(self, psi):
        """``M^dagger psi``."""
        ...

    def mdag_m(self, psi):
        """``M^dagger M psi`` (the hermitian positive-definite CG
        target)."""
        ...

    @property
    def geometry(self) -> OperatorGeometry:
        ...

    def flops_per_site(self) -> int:
        ...

    def bytes_per_site(self) -> int:
        ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperatorSpec:
    """One registry entry."""

    name: str
    factory: Callable
    description: str


_REGISTRY: dict = {}


def register_operator(name: str, description: str = ""):
    """Decorator registering ``factory`` under ``name``."""

    def deco(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"operator {name!r} already registered")
        _REGISTRY[name] = OperatorSpec(name=name, factory=factory,
                                       description=description)
        return factory

    return deco


def operator_names() -> list:
    """All registered operator names, sorted."""
    return sorted(_REGISTRY)


def operator_spec(name: str) -> OperatorSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown operator {name!r}; registered: {operator_names()}"
        )
    return spec


def get_operator(name: str, **kwargs):
    """Construct the named operator — equivalent to calling its class
    directly with the same arguments."""
    return operator_spec(name).factory(**kwargs)


# ----------------------------------------------------------------------
# The batching adapter
# ----------------------------------------------------------------------
class MultiRHSOperator:
    """Present a base operator as a batched one.

    The Wilson operators already dispatch on the ``(nrhs, 4, 3)``
    tensor shape, so application delegates unchanged; this adapter
    adds the protocol metadata plus ``stack``/``split`` conveniences,
    making "the multi-RHS-batched operator" a first-class registry
    entry rather than a calling convention.
    """

    def __init__(self, base) -> None:
        self.base = base

    def apply(self, psi):
        return self.base.apply(psi)

    M = apply

    def apply_dagger(self, psi):
        return self.base.apply_dagger(psi)

    Mdag = apply_dagger

    def mdag_m(self, psi):
        return self.base.mdag_m(psi)

    def dhop(self, psi):
        return self.base.dhop(psi)

    @property
    def geometry(self) -> OperatorGeometry:
        return self.base.geometry

    def flops_per_site(self) -> int:
        return self.base.flops_per_site()

    def bytes_per_site(self) -> int:
        return self.base.bytes_per_site()

    @staticmethod
    def stack(fields):
        from repro.grid.multirhs import stack_rhs

        return stack_rhs(fields)

    @staticmethod
    def split(batch):
        from repro.grid.multirhs import split_rhs

        return split_rhs(batch)


# ----------------------------------------------------------------------
# Registrations (factories import lazily: the grid layer imports the
# engine, so the engine must not import the grid layer at module scope)
# ----------------------------------------------------------------------
@register_operator("wilson", "Wilson Dirac operator (Eq. (1))")
def _make_wilson(links, mass: float = 0.1, cshift_fn=None):
    from repro.grid.wilson import WilsonDirac

    return WilsonDirac(links, mass=mass, cshift_fn=cshift_fn)


@register_operator("clover",
                   "Wilson-clover (Sheikholeslami-Wohlert) operator")
def _make_clover(links, mass: float = 0.1, c_sw: float = 1.0,
                 cshift_fn=None):
    from repro.grid.clover import WilsonClover

    return WilsonClover(links, mass=mass, c_sw=c_sw, cshift_fn=cshift_fn)


@register_operator("wilson-eo",
                   "even-odd (Schur) preconditioned Wilson operator")
def _make_wilson_eo(links=None, mass: float = 0.1, dirac=None):
    from repro.grid.evenodd import SchurWilson
    from repro.grid.wilson import WilsonDirac

    if dirac is None:
        if links is None:
            raise ValueError("wilson-eo needs links or a dirac operator")
        dirac = WilsonDirac(links, mass=mass)
    return SchurWilson(dirac)


@register_operator("wilson-dist",
                   "rank-decomposed Wilson operator with halo exchange")
def _make_wilson_dist(links, mass: float = 0.1):
    from repro.grid.dist_wilson import DistributedWilson

    return DistributedWilson(links, mass=mass)


@register_operator("wilson-mrhs",
                   "multi-RHS-batched Wilson operator")
def _make_wilson_mrhs(links, mass: float = 0.1, cshift_fn=None):
    from repro.grid.wilson import WilsonDirac

    return MultiRHSOperator(WilsonDirac(links, mass=mass,
                                        cshift_fn=cshift_fn))

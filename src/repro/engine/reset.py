"""``engine.reset_all()`` — one clean-slate call for the whole stack.

Before the engine, every harness and campaign runner composed the
reset ritual by hand: ``reset_all_comms()`` for live distributed
lattices, ``reset_all_degraded()`` for sticky backend degradations,
``clear_cache()`` for the kernel trace cache, ``reset_counters()`` for
the perf tallies — four imports, easy to miss one and leak state into
the next run's gated metrics.  :func:`reset_all` composes all of them
(plus the engine's own plan caches) behind one call, which
``run_campaign_suite`` and the bench harness now use.

Imports are function-level: this module is reachable from
``repro.engine`` (which the grid/perf/simd layers import), so it must
not pull those layers in at import time.
"""

from __future__ import annotations


def reset_all(counters: bool = True, caches: bool = True) -> dict:
    """Reset every piece of cross-run engine state; returns a summary.

    * live comms: traffic/resilience stats and in-flight halo queues
      (:func:`repro.grid.comms.reset_all_comms`);
    * sticky backend degradations
      (:func:`repro.simd.resilient.reset_all_degraded`);
    * every registered circuit breaker — a breaker left open by a
      failed supervised solve would otherwise force the *next* run
      down the degradation ladder from its first attempt
      (:func:`repro.resilience.breaker.reset_breakers`);
    * with ``caches`` (default): the kernel trace cache
      (:func:`repro.perf.trace_cache.clear_cache`), every grid-hosted
      plan cache (:func:`repro.engine.plan.clear_plan_caches`), the
      distributed shift/halo memos, and the codegen compiled-kernel
      memo (:func:`repro.codegen.clear_codegen_cache`; the on-disk
      source store survives — persistence across process resets is
      its job) — cache invalidation never changes results, only
      forces re-derivation;
    * transport runtimes: every live shared-memory rank runtime is
      shut down — workers joined, every ``multiprocessing.
      shared_memory`` segment unlinked — so a reset can never leak an
      orphaned segment (:func:`repro.grid.comms.
      shutdown_transport_runtimes`; lazy — nothing is imported or done
      when the shmem backend was never used);
    * with ``counters`` (default): the process-global perf counters
      (:func:`repro.perf.counters.reset_counters`) and the whole
      telemetry layer — every registry instrument zeroed, the span
      ring buffer cleared, the failure flight recorder emptied and the
      cross-rank merge state (per-rank metrics, tails, round counter)
      dropped (:func:`repro.telemetry.reset`).  Collector-backed comms
      metrics are views over the live lattices, so the comms reset
      above already zeroes them: one ``reset_all()`` call leaves
      ``telemetry.snapshot()`` provably all-zero (the
      reset-completeness test pins this).
    """
    from repro.grid.comms import (
        invalidate_comms_plans,
        reset_all_comms,
        shutdown_transport_runtimes,
    )
    from repro.resilience.breaker import reset_breakers
    from repro.simd.resilient import reset_all_degraded

    transports = shutdown_transport_runtimes()
    summary = {
        "comms_reset": reset_all_comms(),
        "backends_restored": reset_all_degraded(),
        "breakers_tripped": reset_breakers(),
        "transport_runtimes_closed": transports["runtimes"],
        "transport_segments_released": transports["segments"],
        "plan_hosts_cleared": 0,
        "comms_plans_cleared": 0,
        "trace_cache_cleared": False,
        "codegen_cache_cleared": 0,
        "counters_reset": False,
        "telemetry_metrics_reset": 0,
        "telemetry_spans_cleared": 0,
        "telemetry_flightrec_cleared": 0,
        "telemetry_rank_state_cleared": 0,
    }
    if caches:
        from repro.engine.plan import clear_plan_caches
        from repro.perf.trace_cache import clear_cache

        from repro.codegen import clear_codegen_cache

        clear_cache()
        summary["plan_hosts_cleared"] = clear_plan_caches()
        summary["comms_plans_cleared"] = invalidate_comms_plans()
        summary["trace_cache_cleared"] = True
        summary["codegen_cache_cleared"] = clear_codegen_cache()
    if counters:
        import repro.telemetry as telemetry
        from repro.perf.counters import reset_counters

        reset_counters()
        tel = telemetry.reset()
        summary["counters_reset"] = True
        summary["telemetry_metrics_reset"] = tel["metrics_reset"]
        summary["telemetry_spans_cleared"] = tel["spans_cleared"]
        summary["telemetry_flightrec_cleared"] = tel["flightrec_cleared"]
        summary["telemetry_rank_state_cleared"] = \
            tel["rank_state_cleared"]
    return summary

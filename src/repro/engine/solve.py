"""One solver entry parameterized by operator + method + policy.

Pre-engine, each solver family had its own Wilson-specific wrapper —
``solve_wilson_cgne``, ``solve_wilson_cgne_batched``,
``ft_solve_wilson_cgne``, ``ft_solve_wilson_cgne_batched``,
``mixed_precision_cgne``, ``ft_mixed_precision_cgne`` — six entry
points repeating the same prepare-RHS / run-recursion / true-residual
shape.  :func:`solve_fermion` collapses them onto one core
parameterized by

* an **operator** satisfying the :class:`~repro.engine.operators.
  FermionOperator` protocol (``apply`` / ``apply_dagger`` /
  ``mdag_m``),
* a **method** (``"cg"`` = CGNE on the normal equations,
  ``"bicgstab"``, ``"mr"``, ``"mixed"``),
* ``ft=True`` for the fault-tolerant variants (drift detection +
  checkpoint restart; extra keyword arguments such as
  ``recompute_interval`` are forwarded), and
* an optional **policy** scoped around the whole solve.

Batched right-hand sides (tensor ``(nrhs, 4, 3)``) are detected by
shape and routed to the block recursions, exactly as the legacy
batched wrappers did.  The Krylov recursions themselves stay in
:mod:`repro.grid.solver` / :mod:`repro.resilience.ft_solver` — they
are numerically pinned (the FT variants are bit-identical to the
plain ones on pristine runs) and this module must not perturb them;
what is unified is the *entry*: RHS preparation, dispatch, and the
true-residual report, each reproduced expression-for-expression from
the wrapper it replaces so results stay bit-identical.

All grid/resilience imports are function-level: the grid layer
imports the engine, not vice versa.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.engine.policy import ExecutionPolicy, scope
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import reports as _telemetry_reports
from repro.telemetry import trace as _telemetry

#: Legal ``method`` values.
METHODS = ("cg", "bicgstab", "mr", "mixed")


def _true_residual_single(operator, b, result):
    """The legacy single-RHS true-residual report (bit-exact: no guard
    on ``|b|`` — the zero-RHS case never reaches here)."""
    result.residual = (
        (b - operator.apply(result.x)).norm2() ** 0.5 / b.norm2() ** 0.5
    )
    return result


def _true_residual_batched(operator, b, result):
    """The legacy batched true-residual report (bit-exact, including
    the ``1e-300`` guard the batched wrappers used)."""
    from repro.grid.multirhs import col_norm2, nrhs

    diff = b - operator.apply(result.x)
    result.col_residuals = [
        col_norm2(diff, j) ** 0.5 / max(col_norm2(b, j) ** 0.5, 1e-300)
        for j in range(nrhs(b))
    ]
    result.residual = max(result.col_residuals)
    return result


def _solve_cg(operator, b, batched, ft, tol, max_iter, campaign, kwargs):
    """CGNE: CG on ``M^dagger M x = M^dagger b``."""
    rhs = operator.apply_dagger(b)
    if batched:
        if ft:
            from repro.resilience.ft_solver import (
                ft_batched_conjugate_gradient,
            )

            result = ft_batched_conjugate_gradient(
                operator.mdag_m, rhs, tol=tol, max_iter=max_iter,
                campaign=campaign, **kwargs)
        else:
            from repro.grid.solver import batched_conjugate_gradient

            result = batched_conjugate_gradient(
                operator.mdag_m, rhs, tol=tol, max_iter=max_iter, **kwargs)
        return _true_residual_batched(operator, b, result)
    if ft:
        from repro.resilience.ft_solver import ft_conjugate_gradient

        result = ft_conjugate_gradient(
            operator.mdag_m, rhs, tol=tol, max_iter=max_iter,
            campaign=campaign, **kwargs)
    else:
        from repro.grid.solver import conjugate_gradient

        result = conjugate_gradient(operator.mdag_m, rhs, tol=tol,
                                    max_iter=max_iter, **kwargs)
    return _true_residual_single(operator, b, result)


def _solve_direct(operator, b, method, ft, tol, max_iter, campaign,
                  kwargs):
    """BiCGSTAB / MR on ``M`` directly (single RHS)."""
    if method == "bicgstab":
        if ft:
            from repro.resilience.ft_solver import ft_bicgstab

            return ft_bicgstab(operator.apply, b, tol=tol,
                               max_iter=max_iter, campaign=campaign,
                               **kwargs)
        from repro.grid.solver import bicgstab

        return bicgstab(operator.apply, b, tol=tol, max_iter=max_iter,
                        **kwargs)
    if ft:
        raise ValueError("no fault-tolerant minimal-residual variant")
    from repro.grid.solver import minimal_residual

    return minimal_residual(operator.apply, b, tol=tol, max_iter=max_iter,
                            **kwargs)


def _solve_mixed(operator, b, ft, tol, max_iter, campaign, kwargs):
    """Mixed-precision defect correction (``max_iter`` is unused; the
    mixed solvers take ``max_outer``/``max_inner`` via ``kwargs``)."""
    if ft:
        from repro.resilience.ft_solver import ft_mixed_precision_cgne

        return ft_mixed_precision_cgne(operator, b, tol=tol,
                                       campaign=campaign, **kwargs)
    from repro.grid.mixedprec import mixed_precision_cgne

    return mixed_precision_cgne(operator, b, tol=tol, **kwargs)


def solve_fermion(operator, b, method: str = "cg", ft: bool = False,
                  tol: float = 1e-8, max_iter: int = 1000,
                  campaign=None, policy: ExecutionPolicy = None,
                  **kwargs):
    """Solve ``M x = b`` for any :class:`~repro.engine.operators.
    FermionOperator`.

    Returns the method family's native result type
    (:class:`~repro.grid.solver.SolverResult`, ``BlockSolverResult``,
    the FT extensions, or
    :class:`~repro.grid.mixedprec.MixedPrecisionResult`) — identical,
    field for field and bit for bit, to the legacy wrapper it
    replaces.  ``policy`` (if given) is scoped around the whole solve;
    ``campaign`` and extra keyword arguments are forwarded to the FT
    recursions.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; known: {METHODS}")
    from repro.grid.wilson import is_spinor_batch

    batched = is_spinor_batch(b.tensor_shape)

    def dispatch():
        if method == "cg":
            return _solve_cg(operator, b, batched, ft, tol, max_iter,
                             campaign, kwargs)
        if batched:
            raise ValueError(
                f"method {method!r} has no batched variant; split the "
                f"batch or use method='cg'"
            )
        if method == "mixed":
            return _solve_mixed(operator, b, ft, tol, max_iter, campaign,
                                kwargs)
        return _solve_direct(operator, b, method, ft, tol, max_iter,
                             campaign, kwargs)

    ctx = scope(policy) if policy is not None else nullcontext()
    with ctx:
        if not _telemetry.metrics_on():
            return dispatch()
        # Telemetry observes the solve: the span/metric code below runs
        # strictly after the recursion returns and feeds nothing back,
        # so results stay bit-identical at every telemetry level.  The
        # envelope span is named "solve_fermion", not "solve" — the
        # recursion it dispatches to records its own "solve" span
        # (:func:`repro.telemetry.reports.traced_solver`), and the
        # convergence report pulls the operator name from this
        # envelope through the parent link.
        label = f"{method}-ft" if ft else method
        with _telemetry.span("solve_fermion", solver=label,
                             operator=type(operator).__name__,
                             batched=batched, tol=tol) as sp:
            result = dispatch()
            if sp is not None:
                sp.attrs.update(
                    _telemetry_reports.convergence_attrs(result))
        reg = _telemetry_metrics.registry()
        reg.counter("solve.calls").inc()
        reg.counter("solve.iterations").inc(
            int(getattr(result, "iterations", 0) or 0))
        if getattr(result, "restarts", 0):
            reg.counter("solve.restarts").inc(int(result.restarts))
        return result

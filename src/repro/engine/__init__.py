"""The unified execution engine.

Every execution decision in the reproduction — which Wilson-Dslash
body runs, how wide the tile pool is, whether halos overlap compute,
whether caches are consulted, whether backends degrade gracefully —
resolves through this package instead of scattered module globals:

* :mod:`repro.engine.policy` — the immutable, scoped
  :class:`ExecutionPolicy` (``engine.scope(...)`` replaces the legacy
  setters, which remain as deprecation shims);
* :mod:`repro.engine.plan` — per-(grid, kind, policy) resolved
  :class:`KernelPlan` dispatch with per-stage counters;
* :mod:`repro.engine.operators` — the :class:`FermionOperator`
  protocol and the named operator registry;
* :mod:`repro.engine.solve` — one solver entry parameterized by
  operator + method + policy (loaded lazily);
* :mod:`repro.engine.reset` — :func:`reset_all`, the one-call clean
  slate (loaded lazily).

Import layering: this package init may import only modules that do not
import the grid/perf-dispatch layers back (``policy`` imports nothing
from :mod:`repro`; ``plan`` imports leaf modules only; ``operators``
defers its grid imports into factories).  ``solve`` and ``reset``
reach into grid/resilience and are exposed via module ``__getattr__``
so ``import repro.engine`` stays cycle-free.
"""

from __future__ import annotations

from repro.engine.operators import (
    FermionOperator,
    MultiRHSOperator,
    OperatorGeometry,
    get_operator,
    operator_names,
    operator_spec,
    register_operator,
)
from repro.engine.plan import (
    KernelPlan,
    StageCounters,
    clear_plan_caches,
    fused_safe_backend,
    kernel_plan,
    register_plan_host,
)
from repro.engine.policy import (
    ExecutionPolicy,
    base_policy,
    current_policy,
    scope,
    set_base_policy,
    update_base_policy,
)

__all__ = [
    "ExecutionPolicy",
    "FermionOperator",
    "KernelPlan",
    "MultiRHSOperator",
    "OperatorGeometry",
    "StageCounters",
    "base_policy",
    "clear_plan_caches",
    "current_policy",
    "fused_safe_backend",
    "get_operator",
    "kernel_plan",
    "operator_names",
    "operator_spec",
    "register_operator",
    "register_plan_host",
    "reset_all",
    "scope",
    "set_base_policy",
    "solve_fermion",
    "update_base_policy",
]

#: Names resolved lazily (their modules import the grid layer).
_LAZY = {
    "reset_all": ("repro.engine.reset", "reset_all"),
    "solve_fermion": ("repro.engine.solve", "solve_fermion"),
    "METHODS": ("repro.engine.solve", "METHODS"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value

"""The scoped :class:`ExecutionPolicy` — one immutable record of every
execution decision.

Before the engine existed, execution toggles were smeared across
module globals: ``perf._CONFIG`` (enabled/workers/tile_min_sites/
overlap_comms), ``simd.registry._FALLBACK_ENABLED``, and per-call
latency/fault-injector arguments.  A production system serving many
concurrent workloads cannot be driven by mutable module globals — two
threads flipping ``set_enabled`` race each other, and a library call
that wants the reference path has to save/mutate/restore process
state.

This module replaces all of that with a single frozen dataclass and a
``contextvars``-based scope stack:

* :func:`base_policy` — the process-wide default, mutated only through
  :func:`set_base_policy` / :func:`update_base_policy` (the legacy
  setters in :mod:`repro.perf` and :mod:`repro.simd.registry` are thin
  deprecation shims over these).
* :func:`scope` — a context manager pushing a scoped override;
  **nestable** (inner scopes start from the currently resolved policy)
  and **thread-isolated** (a ``ContextVar`` means a scope entered in
  one thread is invisible to every other thread, which sees the base
  policy).
* :func:`current_policy` — the resolution point every engine decision
  reads.  Resolution order: innermost active :func:`scope` override,
  else the base policy.  Explicit function arguments (e.g. a
  ``workers=`` override passed straight to a tiling helper) beat both.

Because the policy is frozen and hashable it doubles as a cache key:
:mod:`repro.engine.plan` resolves one :class:`~repro.engine.plan.
KernelPlan` per (grid, kind, policy) and replays it until the policy
changes.

This module imports nothing from the rest of :mod:`repro` — it is the
bottom of the engine's dependency stack.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields, replace
from typing import Optional


@dataclass(frozen=True)
class ExecutionPolicy:
    """Every execution toggle, in one immutable value.

    Parameters
    ----------
    enabled:
        The engine master switch.  Off restores the exact pre-engine
        code paths everywhere at once — layered arithmetic, serial
        sweeps, no caches — which is what the benchmark harness
        measures the engine against.
    fused:
        Take the fused project/SU(3)/reconstruct Wilson-Dslash body
        (:mod:`repro.perf.fused`) on fused-safe backends.  Only
        effective while ``enabled``.
    workers:
        Tile-pool width for lattice sweeps (1 = serial).
    tile_min_sites:
        Lattices smaller than this stay serial (pool dispatch would
        cost more than it saves).
    overlap_comms:
        Hide distributed halo exchange behind interior compute
        (:mod:`repro.grid.overlap`).  Only effective while ``enabled``.
    batching:
        Amortise one set of halo exchanges / neighbour gathers over a
        whole multi-RHS batch (:mod:`repro.grid.multirhs`).  With it
        off, a batched field is swept column by column — bit-identical
        output, ``nrhs`` times the messages.  Deliberately *not* gated
        on ``enabled``: the amortisation is a dispatch choice, not an
        engine arithmetic path, and the pre-engine reference shares
        gathers too.
    caches:
        Consult *and populate* the engine's derived-data caches: the
        kernel trace cache, cshift gather plans, distributed
        shift-parameter and halo-size memos, overlap halo plans, and
        resolved kernel plans.  Only effective while ``enabled``.
        One knob governs every cache uniformly — see DESIGN §10.3;
        all of them hold pure geometry/codegen derivations, so this
        never affects results, only whether they are recomputed.
    fallback:
        Wrap non-generic SIMD backends for graceful degradation
        (:class:`repro.simd.resilient.ResilientBackend`).
    backend:
        Default backend registry key for call sites that do not name
        one explicitly (:func:`repro.simd.registry.get_backend` with
        ``key=None``).
    latency:
        Default :class:`repro.grid.comms.LatencyModel` (or ``None``
        for a zero-latency wire) inherited by newly constructed
        distributed lattices that do not pass their own.
    comms_faults:
        Default comms fault injector inherited the same way (``None``
        means a perfect network).
    codegen:
        Compiled-kernel mode for the hot path (:mod:`repro.codegen`).
        ``"off"`` (the default) keeps the interpreted fused/layered
        bodies; ``"memory"`` lowers the vectorizer IR to generated,
        ``exec``-compiled straight-line kernels memoized in process;
        ``"disk"`` additionally persists the generated source in a
        verified on-disk store.  Only effective while ``enabled`` and
        on fused-safe backends; results are bit-identical in every
        mode.
    telemetry:
        Observability level (:mod:`repro.telemetry`).  ``"off"`` (the
        default) keeps the hot path telemetry-free — instrumented
        seams pay one flag check and allocate nothing; ``"metrics"``
        feeds the typed metrics registry (counters, gauges,
        histograms); ``"trace"`` additionally records nestable spans
        into the in-memory trace ring buffer.  Telemetry observes and
        never perturbs: results are bit-identical at every level.
        Deliberately *not* gated on ``enabled`` — the reference
        (engine-off) paths are exactly what one wants to profile
        against.
    transport:
        Distributed halo/sweep backend (:mod:`repro.grid.comms`).
        ``"in-process"`` (the default) is the bit-identical reference:
        simulated ranks exchanged inside one process.  ``"shmem"``
        runs the multiprocessing rank runtime — one OS process per
        rank over ``multiprocessing.shared_memory`` segments — for
        real parallel wall-clock.  Only effective while ``enabled``
        and only on the distributed hopping sweep; results are
        bit-identical across backends.
    """

    enabled: bool = True
    fused: bool = True
    workers: int = 1
    tile_min_sites: int = 128
    overlap_comms: bool = True
    batching: bool = True
    caches: bool = True
    fallback: bool = False
    backend: str = "generic256"
    latency: Optional[object] = None
    comms_faults: Optional[object] = None
    codegen: str = "off"
    telemetry: str = "off"
    transport: str = "in-process"

    #: Legal ``telemetry`` levels, in increasing order of detail.
    TELEMETRY_LEVELS = ("off", "metrics", "trace")

    #: Legal ``codegen`` modes, in increasing order of persistence.
    CODEGEN_MODES = ("off", "memory", "disk")

    #: Legal ``transport`` backends (mirrors
    #: :data:`repro.grid.comms.transport.TRANSPORTS`).
    TRANSPORTS = ("in-process", "shmem")

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.tile_min_sites < 0:
            raise ValueError(
                f"tile_min_sites must be >= 0, got {self.tile_min_sites}"
            )
        if self.telemetry not in self.TELEMETRY_LEVELS:
            raise ValueError(
                f"telemetry must be one of {self.TELEMETRY_LEVELS}, "
                f"got {self.telemetry!r}"
            )
        if self.codegen not in self.CODEGEN_MODES:
            raise ValueError(
                f"codegen must be one of {self.CODEGEN_MODES}, "
                f"got {self.codegen!r}"
            )
        if self.transport not in self.TRANSPORTS:
            raise ValueError(
                f"transport must be one of {self.TRANSPORTS}, "
                f"got {self.transport!r}"
            )

    # -- resolved (effective) views ------------------------------------
    @property
    def fused_active(self) -> bool:
        """Fusion is taken only with the engine on."""
        return self.enabled and self.fused

    @property
    def overlap_active(self) -> bool:
        """Overlap is taken only with the engine on."""
        return self.enabled and self.overlap_comms

    @property
    def caches_active(self) -> bool:
        """Caches are consulted/populated only with the engine on."""
        return self.enabled and self.caches

    @property
    def codegen_active(self) -> bool:
        """Compiled kernels are taken only with the engine on."""
        return self.enabled and self.codegen != "off"

    @property
    def transport_active(self) -> bool:
        """A non-reference transport is taken only with the engine
        on."""
        return self.enabled and self.transport != "in-process"

    @property
    def metrics_active(self) -> bool:
        """The metrics registry is fed (``"metrics"`` or ``"trace"``)."""
        return self.telemetry != "off"

    @property
    def trace_active(self) -> bool:
        """Spans are recorded into the trace buffer (``"trace"``)."""
        return self.telemetry == "trace"

    def replace(self, **overrides) -> "ExecutionPolicy":
        """A copy with ``overrides`` applied (the policy is frozen)."""
        return replace(self, **overrides)


#: Names accepted by :func:`scope` / :func:`update_base_policy`.
POLICY_FIELDS = tuple(f.name for f in fields(ExecutionPolicy))

_BASE_LOCK = threading.Lock()
_BASE_POLICY = ExecutionPolicy()

#: The scope stack.  A ``ContextVar`` (not ``threading.local``) so that
#: freshly spawned threads see the *default* (``None`` -> base policy)
#: rather than inheriting a stale override, and ``asyncio`` tasks, if
#: ever used, each get their own stack.
_SCOPED: ContextVar[Optional[ExecutionPolicy]] = ContextVar(
    "repro_engine_policy", default=None
)


def base_policy() -> ExecutionPolicy:
    """The process-wide default policy (what :func:`current_policy`
    resolves to outside any :func:`scope`)."""
    return _BASE_POLICY


def set_base_policy(policy: ExecutionPolicy) -> ExecutionPolicy:
    """Replace the process-wide default policy; returns the previous
    one.  Prefer :func:`scope` — a global mutation is visible to every
    thread and survives until explicitly undone."""
    global _BASE_POLICY
    if not isinstance(policy, ExecutionPolicy):
        raise TypeError(f"expected ExecutionPolicy, got {type(policy)!r}")
    with _BASE_LOCK:
        previous = _BASE_POLICY
        _BASE_POLICY = policy
    return previous


def update_base_policy(**overrides) -> ExecutionPolicy:
    """Apply field overrides to the base policy (returns the previous
    base).  This is the engine-sanctioned mutation point the legacy
    setter shims delegate to."""
    global _BASE_POLICY
    with _BASE_LOCK:
        previous = _BASE_POLICY
        _BASE_POLICY = previous.replace(**overrides)
    return previous


def current_policy() -> ExecutionPolicy:
    """The policy in effect here and now: the innermost active
    :func:`scope` override, else the base policy."""
    scoped = _SCOPED.get()
    return scoped if scoped is not None else _BASE_POLICY


@contextmanager
def scope(policy: Optional[ExecutionPolicy] = None, **overrides):
    """Push a scoped policy override (restored on exit, exception-safe).

    Two forms:

    * ``scope(enabled=False, workers=1)`` — field overrides applied to
      the *currently resolved* policy, so nested scopes compose: an
      inner ``scope(workers=4)`` keeps the outer scope's other fields.
    * ``scope(policy)`` — an explicit :class:`ExecutionPolicy` replaces
      the resolved policy wholesale (further ``**overrides`` apply on
      top of it).

    Scopes are thread-isolated: a scope entered on one thread is
    invisible to every other thread (including tile-pool workers),
    which resolve the base policy.
    """
    if policy is None:
        policy = current_policy().replace(**overrides)
    else:
        if not isinstance(policy, ExecutionPolicy):
            raise TypeError(
                f"expected ExecutionPolicy, got {type(policy)!r}"
            )
        if overrides:
            policy = policy.replace(**overrides)
    token = _SCOPED.set(policy)
    try:
        yield policy
    finally:
        _SCOPED.reset(token)


def warn_deprecated_setter(old: str, new: str) -> None:
    """Emit the standard shim warning (used by the legacy setters in
    :mod:`repro.perf` and :mod:`repro.simd.registry`)."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )

"""The kernel-plan pipeline: resolve every dispatch decision once.

Pre-engine, every ``dhop`` call re-derived its execution shape inline:
``wilson.py`` asked ``engine_active(backend)``, ``dist_wilson.py``
asked it per rank plus ``overlap_active``, ``fused.py`` re-read the
worker count, and the branching was duplicated in four files.  The
paper's dispatch lesson (one kernel, many substrates, selected in one
place) says to resolve that *once*: operators now ask
:func:`kernel_plan` for a :class:`KernelPlan` — the fully resolved
(fused? overlapped? batched? how many workers?) execution shape for
one (grid, kind, policy) triple — and just follow it.

Plans are memoized per grid instance keyed by ``(kind, policy)``; the
policy is frozen and hashable, so a scoped override resolves a fresh
plan exactly once and every call under the same scope replays it (the
``plan_hits``/``plan_misses`` counters measure the amortisation the
bench gate relies on).  Each plan also carries a mutable
:class:`StageCounters` block — the per-stage instrumentation seam:
with telemetry metrics on, every stage bump also feeds the
process-global registry as ``plan.stage.<name>``, so one snapshot
covers every plan's stages.

Import discipline: this module may import :mod:`repro.engine.policy`,
:mod:`repro.perf.counters`, :mod:`repro.telemetry.metrics` (a leaf —
it imports nothing from :mod:`repro`) and the *leaf* backend modules
(:mod:`repro.simd.generic` / :mod:`repro.simd.fixed`) — never
:mod:`repro.grid` or the :mod:`repro.simd` package root, which import
the engine back.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

from repro.engine.policy import ExecutionPolicy, current_policy
from repro.perf.counters import counters
from repro.telemetry.metrics import registry as telemetry_registry
from repro.simd.fixed import FixedWidthBackend
from repro.simd.generic import GenericBackend

#: Backends whose arithmetic ops are literally the numpy expressions
#: the fused path inlines.  Exact types only: subclasses may override
#: an op (fault-injecting backends do) and must keep the layered path.
_FUSED_SAFE = (GenericBackend, FixedWidthBackend)

#: Grid instances carrying engine-owned caches (kernel plans, cshift
#: plans, overlap halo plans), weakly held so
#: :func:`clear_plan_caches` can invalidate without keeping grids
#: alive.  Keyed by ``id`` because grids define value equality without
#: hashability (a ``WeakSet`` needs hashable members); dead entries
#: self-evict via the weakref callback.
_PLAN_HOSTS: dict = {}

#: Attributes :func:`clear_plan_caches` evicts from registered hosts.
_HOSTED_CACHES = ("_kernel_plans", "_cshift_plans", "_dist_halo_plan")


def fused_safe_backend(backend) -> bool:
    """True when ``backend``'s ops are the plain numpy semantics the
    fused Wilson-Dslash body inlines (see :mod:`repro.perf.fused`)."""
    return type(backend) in _FUSED_SAFE


#: Memoized ``plan.stage.<name>`` counter instruments: stage names
#: form a tiny fixed set, and ``registry().reset()`` zeroes
#: instruments in place (registrations survive), so cached handles
#: stay valid and the per-bump cost drops to one dict lookup + one
#: atomic increment.
_STAGE_INSTRUMENTS: dict = {}


class StageCounters:
    """Per-plan, per-stage call tallies (thread-safe).

    Every plan owns one; kernel bodies bump named stages ("gather",
    "interior", "shell", ...) as they execute.  This is the
    instrumentation seam: an observability layer can read one object
    per (grid, kind, policy) instead of hooking every kernel — and
    with telemetry metrics on, each bump is mirrored into the global
    registry as ``plan.stage.<name>`` so stage activity survives plan
    eviction and lands in the Prometheus export.
    """

    __slots__ = ("_lock", "_stages")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict = {}

    def bump(self, stage: str, n: int = 1) -> None:
        with self._lock:
            self._stages[stage] = self._stages.get(stage, 0) + n
        if current_policy().metrics_active:
            inst = _STAGE_INSTRUMENTS.get(stage)
            if inst is None:
                inst = telemetry_registry().counter(f"plan.stage.{stage}")
                _STAGE_INSTRUMENTS[stage] = inst
            inst.inc(n)

    def as_dict(self) -> dict:
        with self._lock:
            return dict(self._stages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StageCounters({self.as_dict()!r})"


@dataclass(frozen=True)
class KernelPlan:
    """The resolved execution shape of one kernel on one geometry.

    * ``kind`` — ``"dhop"`` (single-rank Wilson sweep) or
      ``"dist-dhop"`` (rank-decomposed sweep).
    * ``fused`` — take the fused numpy body instead of the layered
      per-op reference.
    * ``overlap`` — (dist only) post all halos up front and hide them
      behind interior compute.
    * ``batched`` — amortise one gather/exchange set over a multi-RHS
      batch; off means column-by-column sweeps.
    * ``workers`` / ``tile_min_sites`` — tile-pool shape for the sweep.
    * ``caches`` — consult/populate derived-data caches.
    * ``codegen`` — compiled-kernel mode (``"off"`` / ``"memory"`` /
      ``"disk"``); non-off means the sweep body is a generated,
      ``exec``-compiled kernel from the :mod:`repro.codegen` cache
      (resolved off unless the backend is fused-safe).  Takes
      precedence over ``fused`` at dispatch.
    * ``transport`` — (dist only) the halo/sweep backend:
      ``"in-process"`` (the bit-identical reference) or ``"shmem"``
      (the multiprocessing rank runtime).  Resolved like ``codegen``:
      the policy knob takes effect only where it applies (the
      rank-decomposed sweep, engine on).
    * ``policy`` — the policy this plan was resolved under (the cache
      key half that isn't the grid).
    * ``stages`` — mutable per-stage counters (see
      :class:`StageCounters`); excluded from equality.
    """

    kind: str
    fused: bool
    overlap: bool
    batched: bool
    workers: int
    tile_min_sites: int
    caches: bool
    policy: ExecutionPolicy
    codegen: str = "off"
    transport: str = "in-process"
    stages: StageCounters = field(
        default_factory=StageCounters, compare=False, repr=False
    )


def _resolve(kind: str, backend, policy: ExecutionPolicy) -> KernelPlan:
    """Derive the plan for (kind, backend, policy) — the one place the
    scattered dispatch conditions used to live."""
    safe = fused_safe_backend(backend)
    transport = (policy.transport
                 if (kind == "dist-dhop" and policy.transport_active)
                 else "in-process")
    return KernelPlan(
        kind=kind,
        fused=policy.fused_active and safe,
        overlap=(kind == "dist-dhop" and policy.overlap_active and safe
                 and transport == "in-process"),
        batched=policy.batching,
        workers=policy.workers if policy.enabled else 1,
        tile_min_sites=policy.tile_min_sites,
        caches=policy.caches_active,
        policy=policy,
        codegen=policy.codegen if (policy.codegen_active and safe) else "off",
        transport=transport,
    )


def register_plan_host(grid) -> None:
    """Record ``grid`` as carrying engine-owned caches so
    :func:`clear_plan_caches` can find and evict them."""
    key = id(grid)
    if key not in _PLAN_HOSTS:
        _PLAN_HOSTS[key] = weakref.ref(
            grid, lambda _ref, key=key: _PLAN_HOSTS.pop(key, None)
        )


def kernel_plan(grid, kind: str = "dhop",
                policy: ExecutionPolicy = None) -> KernelPlan:
    """The (memoized) :class:`KernelPlan` for ``grid`` under the
    current policy.

    ``policy`` overrides the ambient :func:`~repro.engine.policy.
    current_policy` resolution (explicit argument beats scope beats
    base — the documented resolution order).  With caching active the
    plan is stored on the grid instance keyed by ``(kind, policy)``;
    with caches off a fresh plan is derived per call and nothing is
    stored.
    """
    if policy is None:
        policy = current_policy()
    backend = grid.backend
    if not policy.caches_active:
        counters().bump("plan_misses")
        return _resolve(kind, backend, policy)
    store = grid.__dict__.get("_kernel_plans")
    if store is None:
        store = grid.__dict__.setdefault("_kernel_plans", {})
        register_plan_host(grid)
    key = (kind, policy)
    plan = store.get(key)
    if plan is not None:
        counters().bump("plan_hits")
        return plan
    counters().bump("plan_misses")
    plan = _resolve(kind, backend, policy)
    store[key] = plan
    return plan


def clear_plan_caches() -> int:
    """Evict every engine-owned cache from every registered host grid
    (kernel plans, cshift gather plans, overlap halo plans).  Returns
    how many hosts were touched.  Part of :func:`repro.engine.
    reset_all`; results are unaffected — these caches hold pure
    geometry derivations that rebuild on next use."""
    n = 0
    for ref in list(_PLAN_HOSTS.values()):
        grid = ref()
        if grid is None:
            continue
        touched = False
        for attr in _HOSTED_CACHES:
            if grid.__dict__.pop(attr, None) is not None:
                touched = True
        n += bool(touched)
    return n

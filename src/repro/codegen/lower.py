"""Lower simplified IR statements to straight-line numpy source.

Each :class:`repro.codegen.wilson_ir.Statement` becomes a short run of
``np.<op>(a, b, out=dest)`` calls — the ufunc-with-``out`` forms the
fused path uses, so the generated code performs the identical IEEE
operations in the identical order.  Expression temporaries come from a
:class:`ScratchPool` of named, function-level buffers: the assembled
kernel allocates each buffer once at entry and the emitted statements
reuse them, so the hot loop never allocates.

The lowering is deliberately dumb — all the intelligence lives in
:mod:`repro.vectorizer.passes`, which each statement's kernel is run
through first.  That keeps this module a thin, per-node translation
that a second backend (e.g. the vectorizer's SVE ACLE emitter) can
replace without touching the IR construction.
"""

from __future__ import annotations

from repro.vectorizer import ir, passes

#: IR binary node -> numpy ufunc used by the emitted source.
BINARY_OPS = {
    ir.Add: "np.add",
    ir.Sub: "np.subtract",
    ir.Mul: "np.multiply",
}

#: IR unary node -> numpy ufunc.
UNARY_OPS = {
    ir.Neg: "np.negative",
    ir.Conj: "np.conjugate",
}


class ScratchPool:
    """Names for reusable element-wise temporaries.

    ``acquire``/``release`` hand out ``_t0, _t1, ...``; ``size`` after
    emission is the high-water mark, which the kernel assembler turns
    into that many up-front ``np.empty`` allocations.
    """

    def __init__(self, prefix: str = "_t") -> None:
        self._prefix = prefix
        self._free: list = []
        self._made = 0

    def acquire(self) -> str:
        if self._free:
            return self._free.pop()
        name = f"{self._prefix}{self._made}"
        self._made += 1
        return name

    def release(self, name: str) -> None:
        self._free.append(name)

    @property
    def size(self) -> int:
        return self._made

    def names(self) -> list:
        return [f"{self._prefix}{i}" for i in range(self._made)]


class ConstTable:
    """Interns scalar constants as ``_k<i>`` names.

    The assembled kernel declares ``_k<i> = _dt(<literal>)`` at entry,
    so every constant is cast to the runtime dtype exactly once — the
    reference's ``dtype.type(1j)`` idiom.
    """

    def __init__(self) -> None:
        self._names: dict = {}
        self._values: list = []

    def name(self, value) -> str:
        key = repr(value)
        if key not in self._names:
            self._names[key] = f"_k{len(self._values)}"
            self._values.append(value)
        return self._names[key]

    def declarations(self) -> list:
        return [f"_k{i} = _dt({value!r})"
                for i, value in enumerate(self._values)]


def lower_statement(stmt, consts: ConstTable, pool: ScratchPool) -> tuple:
    """Lower one statement: ``(lines, pass_stats)``.

    The statement's kernel is simplified first
    (:func:`repro.vectorizer.passes.simplify`); the canonical tree is
    then walked post-order, binary/unary nodes becoming
    ``out=``-form ufunc calls whose temporaries come from ``pool``.
    """
    result = passes.simplify(stmt.kernel)
    lines: list = []

    def src(e: ir.Load) -> str:
        return stmt.args[e.arg]

    def val(e: ir.Expr) -> tuple:
        """Value name for an operand: views/constants in place,
        compound subtrees computed into a pool temporary."""
        if isinstance(e, ir.Load):
            return src(e), None
        if isinstance(e, ir.Const):
            return consts.name(e.value), None
        tmp = pool.acquire()
        emit(e, tmp)
        return tmp, tmp

    def emit(e: ir.Expr, dest: str) -> None:
        if type(e) in BINARY_OPS:
            va, ta = val(e.a)
            vb, tb = val(e.b)
            lines.append(f"{BINARY_OPS[type(e)]}({va}, {vb}, out={dest})")
            for t in (ta, tb):
                if t is not None:
                    pool.release(t)
        elif type(e) in UNARY_OPS:
            va, ta = val(e.a)
            lines.append(f"{UNARY_OPS[type(e)]}({va}, out={dest})")
            if ta is not None:
                pool.release(ta)
        elif isinstance(e, ir.Load):
            lines.append(f"np.copyto({dest}, {src(e)})")
        elif isinstance(e, ir.Const):
            lines.append(f"{dest}[...] = {consts.name(e.value)}")
        else:
            raise TypeError(f"cannot lower {e!r}")

    emit(result.kernel.expr, stmt.dest)
    return lines, result.stats

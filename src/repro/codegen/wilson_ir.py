"""The Wilson-Dslash hot path expressed in the vectorizer's scalar IR.

The fused sweep (:mod:`repro.perf.fused`) hand-inlines the
project/SU(3)/reconstruct chain as numpy calls; this module states the
*same arithmetic* as :mod:`repro.vectorizer.ir` expression trees — one
:class:`Statement` per output component, fully unrolled over colour
and spin.  The codegen pipeline then runs every statement through the
IEEE-exact simplifier (:mod:`repro.vectorizer.passes`) and lowers the
canonical trees to straight-line numpy source
(:mod:`repro.codegen.lower`).

**Bit-identity discipline.**  Each expression is built so that, after
simplification, its lowering performs exactly the reference path's
IEEE operations in the reference order:

* sign handling uses ``Add(x, Neg(term))`` and lets the simplifier's
  ``x + (-y) -> x - y`` rewrite (IEEE-identical by definition) expose
  the same ``np.subtract`` the fused body issues — the passes are in
  the pipeline doing real work, not decoration;
* the SU(3) accumulation is ``((0 + t0) + t1) + t2`` with the colour
  index ``b`` ascending, the exact reference sum including the leading
  ``0 +`` (which the simplifier deliberately never folds — it is wrong
  for ``-0.0``);
* multiplication operand order matches the reference (``u * h``,
  ``x * (±1j)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vectorizer import ir

#: Bump when the emitted arithmetic changes: part of the source key,
#: so stale disk-cache entries can never be replayed against new IR.
IR_VERSION = 1

#: Spin projection keeps 2 of 4 spinor components; colour is SU(3).
HALF_SPINS = 2
SPINS = 4
COLOURS = 3


@dataclass(frozen=True)
class Statement:
    """``dest <- expr(args)``: one unrolled output component.

    ``kernel`` is an element-wise :class:`repro.vectorizer.ir.Kernel`
    whose ``Load(k)`` refers to ``args[k]`` — a numpy view expression
    (e.g. ``"pf0[:, 3, 0]"``) resolved by the lowering, not an array.
    """

    dest: str
    kernel: ir.Kernel
    args: tuple


class _StmtBuilder:
    """Collects Load sources while an expression tree is built."""

    def __init__(self, name: str, scalar_type: str = "c128") -> None:
        self._name = name
        self._scalar_type = scalar_type
        self._args: list = []

    def load(self, src: str) -> ir.Load:
        self._args.append(src)
        return ir.Load(len(self._args) - 1)

    def build(self, dest: str, expr: ir.Expr) -> Statement:
        kernel = ir.Kernel(
            name=self._name,
            scalar_type=self._scalar_type,
            inputs=[ir.Array(f"in{i}") for i in range(len(self._args))],
            expr=expr,
            output=ir.Array(dest, const=False),
        )
        return Statement(dest=dest, kernel=kernel, args=tuple(self._args))


def _signed(base: ir.Expr, term: ir.Expr, sign: int) -> ir.Expr:
    """``base + term`` or ``base + (-term)`` — the negative form is
    left for the simplifier to canonicalise into ``Sub`` (exactly the
    fmls-exposing rewrite of :mod:`repro.vectorizer.passes`)."""
    return ir.Add(base, term if sign > 0 else ir.Neg(term))


# ----------------------------------------------------------------------
# Component-name conventions used by the generated source
# ----------------------------------------------------------------------

def half_name(s: int, c: int) -> str:
    return f"_h{s}{c}"


def su3_out_name(s: int, a: int) -> str:
    return f"_w{s}{a}"


def conj_link_name(b: int, a: int) -> str:
    return f"_cu{b}{a}"


def acc_name(s: int, c: int) -> str:
    return f"_a{s}{c}"


def _psi(arr: str, s: int, c: int) -> str:
    return f"{arr}[:, {s}, {c}]"


def _link(arr: str, a: int, b: int) -> str:
    return f"{arr}[:, {a}, {b}]"


# ----------------------------------------------------------------------
# The three kernel stages, unrolled
# ----------------------------------------------------------------------

def project_statements(psi: str, mu: int, sign: int) -> list:
    """``h = P^{±}_mu psi`` per (half-spin, colour) component.

    Mirrors :func:`repro.grid.gamma.project` formula-for-formula; the
    ``times_i`` factors appear as ``Mul(p, Const(±1j))`` with the
    array operand first, the reference's dtype-preserving order.
    """
    out = []
    for c in range(COLOURS):
        b = _StmtBuilder(f"project_mu{mu}_s{'p' if sign > 0 else 'm'}_c{c}")
        p = [b.load(_psi(psi, s, c)) for s in range(SPINS)]
        if mu == 0:      # h0 = p0 ± i p3 ; h1 = p1 ± i p2
            e0 = _signed(p[0], ir.Mul(p[3], ir.Const(1j)), sign)
            e1 = _signed(p[1], ir.Mul(p[2], ir.Const(1j)), sign)
        elif mu == 1:    # h0 = p0 ∓ p3 ; h1 = p1 ± p2
            e0 = _signed(p[0], p[3], -sign)
            e1 = _signed(p[1], p[2], sign)
        elif mu == 2:    # h0 = p0 ± i p2 ; h1 = p1 ± (-i) p3
            e0 = _signed(p[0], ir.Mul(p[2], ir.Const(1j)), sign)
            e1 = _signed(p[1], ir.Mul(p[3], ir.Const(-1j)), sign)
        elif mu == 3:    # h0 = p0 ± p2 ; h1 = p1 ± p3
            e0 = _signed(p[0], p[2], sign)
            e1 = _signed(p[1], p[3], sign)
        else:
            raise ValueError(f"no direction {mu}")
        out.append(b.build(half_name(0, c), e0))
        out.append(b.build(half_name(1, c), e1))
    return out


def su3_statements(links: str, dagger: bool) -> list:
    """``w_{s,a} = sum_b U[a,b] h_{s,b}`` (or ``conj(U[b,a])``).

    The adjoint form hoists the nine conjugated link components into
    named buffers first (each is consumed by both half-spins), then
    both forms accumulate ``((0 + t0) + t1) + t2`` with ``b``
    ascending — the reference inner-loop order.
    """
    out = []
    if dagger:
        for b_idx in range(COLOURS):
            for a in range(COLOURS):
                sb = _StmtBuilder(f"conj_u{b_idx}{a}")
                out.append(sb.build(conj_link_name(b_idx, a),
                                    ir.Conj(sb.load(_link(links, b_idx, a)))))
    for s in range(HALF_SPINS):
        for a in range(COLOURS):
            sb = _StmtBuilder(f"su3_s{s}_a{a}{'_dag' if dagger else ''}")
            expr: ir.Expr = ir.Const(0j)
            for b_idx in range(COLOURS):
                u = sb.load(conj_link_name(b_idx, a) if dagger
                            else _link(links, a, b_idx))
                h = sb.load(half_name(s, b_idx))
                expr = ir.Add(expr, ir.Mul(u, h))
            out.append(sb.build(su3_out_name(s, a), expr))
    return out


def accumulate_statements(mu: int, sign: int) -> list:
    """Reconstruct the 4-spinor image of ``w`` and add it into the
    accumulator views, per (spin, colour) component.

    The lower-spin factors mirror :func:`repro.grid.gamma.reconstruct`
    (``-i``/``+i``/``±1``); negations ride through the simplifier so
    ``acc + (-w)`` lowers to the fused body's ``np.subtract``.
    """
    out = []
    for c in range(COLOURS):
        for s in (0, 1):
            sb = _StmtBuilder(f"acc_mu{mu}_s{s}_c{c}")
            a = sb.load(acc_name(s, c))
            w = sb.load(su3_out_name(s, c))
            out.append(sb.build(acc_name(s, c), ir.Add(a, w)))
        # Spin components 2 and 3 are fixed linear images of 0 and 1:
        # (upper spin, half-spin source, ±i factor or accumulation sign).
        if mu == 0:
            f = ir.Const(-1j if sign > 0 else 1j)
            image = ((2, 1, f), (3, 0, f))
        elif mu == 1:
            # (1+gy): +w1 into spin2, -w0 into spin3; (1-gy) flipped.
            image = ((2, 1, sign), (3, 0, -sign))
        elif mu == 2:
            image = ((2, 0, ir.Const(-1j if sign > 0 else 1j)),
                     (3, 1, ir.Const(1j if sign > 0 else -1j)))
        else:  # mu == 3
            image = ((2, 0, sign), (3, 1, sign))
        for s, src, fac in image:
            sb = _StmtBuilder(f"acc_mu{mu}_s{s}_c{c}")
            a = sb.load(acc_name(s, c))
            w = sb.load(su3_out_name(src, c))
            if isinstance(fac, ir.Const):
                expr = ir.Add(a, ir.Mul(w, fac))
            else:
                expr = _signed(a, w, fac)
            out.append(sb.build(acc_name(s, c), expr))
    return out


def direction_statements(mu: int, sign: int, links: str,
                         psi: str) -> list:
    """Every statement of one (direction, sign) hop: project, SU(3)
    (adjoint on the backward hop), reconstruct-accumulate."""
    stmts = project_statements(psi, mu, sign)
    stmts += su3_statements(links, dagger=sign < 0)
    stmts += accumulate_statements(mu, sign)
    return stmts

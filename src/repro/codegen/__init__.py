"""Codegen backend: the vectorizer IR lowered to compiled kernels.

The pipeline that turns the repro's compiler stack into the thing
that runs the hot path:

1. :mod:`repro.codegen.wilson_ir` — the fused Wilson-Dslash bodies
   restated as :mod:`repro.vectorizer.ir` expression statements,
   unrolled over colour/spin;
2. :mod:`repro.vectorizer.passes` — the IEEE-exact simplifier
   canonicalises each statement (``x + (-y) -> x - y``, involution
   elimination, exact const folding);
3. :mod:`repro.codegen.lower` + :mod:`repro.codegen.dslash` — the
   canonical trees become straight-line ``np.<op>(..., out=)`` source
   with preallocated scratch, assembled into one ``exec``-compiled
   ``kernel`` per (kind, geometry);
4. :mod:`repro.codegen.cache` — compiled callables memoized in memory
   and optionally persisted as verified, quarantine-guarded source on
   disk;
5. :mod:`repro.codegen.runtime` — ``compiled_dhop`` /
   ``compiled_dhop_rank``, the plan-dispatched peers of the fused
   path.

Enable with ``engine.scope(codegen="memory")`` (or ``"disk"``); the
result is bit-identical to the layered reference.
"""

from repro.codegen.cache import (
    CODEGEN_COUNTER_NAMES,
    CompiledKernel,
    clear_codegen_cache,
    codegen_cache_size,
    default_disk_dir,
    disk_dir,
    kernel_for,
    set_disk_dir,
    source_key,
)
from repro.codegen.dslash import dhop_dir_source, dhop_source, generate_source
from repro.codegen.runtime import compiled_dhop, compiled_dhop_rank

__all__ = [
    "CODEGEN_COUNTER_NAMES",
    "CompiledKernel",
    "clear_codegen_cache",
    "codegen_cache_size",
    "compiled_dhop",
    "compiled_dhop_rank",
    "default_disk_dir",
    "dhop_dir_source",
    "dhop_source",
    "disk_dir",
    "generate_source",
    "kernel_for",
    "set_disk_dir",
    "source_key",
]

"""Compiled-kernel cache: in-memory memo + optional on-disk source.

``kernel_for`` is the codegen pipeline's single entry point: resolve a
source key, consult the in-memory memo, optionally consult the
on-disk source store, and only then generate + ``exec``-compile.  The
disk layer reuses the resilience checkpoint idioms (PR 6): writes are
atomic-rename (:func:`repro.grid.io.atomic_write`), filenames are
hashes, every entry carries a content hash that is verified on load,
and a corrupt entry is *quarantined* — moved to
``<dir>/quarantine/`` — never silently used and never re-read.

Cache discipline mirrors the engine's other derived-data caches:

* ``caches=False`` (the policy's uniform ``caches`` knob, e.g. under
  ``perf.disabled()``) bypasses the memo entirely — every call counts
  a miss and recompiles, so cache state can never leak into an
  engine-off run;
* :func:`clear_codegen_cache` empties the memo (wired into
  ``engine.reset_all``); the disk store deliberately survives a
  process-level reset — that is its whole point — and is invalidated
  by key (IR/source version bumps), not by deletion.

Telemetry: ``codegen.compile`` / ``codegen.hit`` / ``codegen.miss`` /
``codegen.disk_hit`` (+ ``disk_store`` / ``quarantined``) are eager
registry counters (zero before first use, zeroed by
``telemetry.reset()``), and each real compile runs under a
``codegen.compile`` span.

This module owns process-global execution state (the memo and the
disk-dir override): ``tools/lint_execution_globals.py`` bans touching
``_MEMORY`` / ``_DISK`` from anywhere else.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.codegen.dslash import generate_source
from repro.codegen.wilson_ir import IR_VERSION
from repro.telemetry import trace as _telemetry
from repro.telemetry.metrics import registry as _registry

#: Bump when the cache-entry layout (not the IR) changes.
SOURCE_VERSION = 1

#: First line of every disk entry; anything else is not ours.
MAGIC = "# REPRO-CODEGEN v1"

#: Registry key prefix for the codegen cache counters.
PREFIX = "codegen."

#: Counter short names, in declaration order.
#:
#: * ``compile`` — generate + ``exec`` actually ran (cold path).
#: * ``hit`` / ``miss`` — in-memory memo lookups.
#: * ``disk_hit`` — a miss served from a verified disk entry.
#: * ``disk_store`` — a fresh compile persisted to disk.
#: * ``quarantined`` — corrupt disk entries moved aside.
CODEGEN_COUNTER_NAMES = (
    "compile", "hit", "miss", "disk_hit", "disk_store", "quarantined",
)

#: Eager instruments (the ``perf.`` counters' pattern): visible at
#: zero before any codegen activity, zeroed by ``telemetry.reset()``.
_CODEGEN = {
    name: _registry().counter(PREFIX + name, help="codegen cache counter")
    for name in CODEGEN_COUNTER_NAMES
}


def _count(name: str, n: int = 1) -> None:
    _CODEGEN[name].inc(n)


@dataclass(frozen=True)
class CompiledKernel:
    """One compiled codegen artifact."""

    key: str
    source: str
    fn: object = field(compare=False)
    origin: str = "compiled"  # "compiled" | "disk"


_LOCK = threading.RLock()

#: key -> CompiledKernel.  Execution state: cleared by
#: ``engine.reset_all``; bypassed when the policy's ``caches`` knob is
#: off.
_MEMORY: dict = {}

#: Disk-store override (``{"dir": path-or-None}``); tests point it at
#: a tmpdir via :func:`set_disk_dir`.
_DISK: dict = {"dir": None}


def source_key(kind: str, ndim: int, dtype) -> str:
    """The cache key: kernel kind + grid geometry + lattice dtype +
    generator versions.  This is the ``KernelPlan``-signature half
    that determines the generated source (the policy half only picks
    *whether* and *where* to cache)."""
    return (f"{kind}|ndim={ndim}|dtype={np.dtype(dtype).name}"
            f"|ir=v{IR_VERSION}|src=v{SOURCE_VERSION}")


def default_disk_dir() -> str:
    env = os.environ.get("REPRO_CODEGEN_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-codegen")


def disk_dir() -> str:
    return _DISK["dir"] or default_disk_dir()


def set_disk_dir(path) -> object:
    """Point the disk store somewhere else (``None`` restores the
    default); returns the previous override for restore-in-finally."""
    prev = _DISK["dir"]
    _DISK["dir"] = os.fspath(path) if path is not None else None
    return prev


def _entry_path(key: str) -> str:
    name = hashlib.sha256(key.encode()).hexdigest()[:24]
    return os.path.join(disk_dir(), f"{name}.py")


def _exec_source(key: str, source: str):
    ns: dict = {}
    code = compile(source, f"<codegen:{key}>", "exec")
    exec(code, ns)
    fn = ns.get("kernel")
    if not callable(fn):
        raise ValueError("generated source defines no kernel()")
    return fn


def _compile(key: str, kind: str, ndim: int) -> CompiledKernel:
    with _telemetry.span("codegen.compile", key=key, kind=kind):
        source = generate_source(kind, ndim)
        fn = _exec_source(key, source)
    _count("compile")
    return CompiledKernel(key=key, source=source, fn=fn)


def _encode_entry(key: str, source: str) -> bytes:
    digest = hashlib.sha256(source.encode()).hexdigest()
    header = f"{MAGIC}\n# key: {key}\n# sha256: {digest}\n"
    return (header + source).encode()


def _quarantine(path: str, reason: str) -> None:
    qdir = os.path.join(disk_dir(), "quarantine")
    os.makedirs(qdir, exist_ok=True)
    try:
        os.replace(path, os.path.join(qdir, os.path.basename(path)))
    except OSError:  # pragma: no cover - racing removal
        return
    _count("quarantined")
    _telemetry.event("codegen.quarantine", path=path, reason=reason)


def _load_disk(key: str, path: str):
    """Verified disk lookup: the parsed source and compiled function,
    or ``None`` (corrupt entries are quarantined on the way out)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except FileNotFoundError:
        return None
    except OSError as exc:
        _quarantine(path, reason=f"unreadable: {exc}")
        return None
    lines = text.split("\n", 3)
    if len(lines) < 4 or lines[0] != MAGIC:
        _quarantine(path, reason="bad magic")
        return None
    if lines[1] != f"# key: {key}":
        _quarantine(path, reason="key mismatch")
        return None
    source = lines[3]
    digest = hashlib.sha256(source.encode()).hexdigest()
    if lines[2] != f"# sha256: {digest}":
        _quarantine(path, reason="content hash mismatch")
        return None
    try:
        fn = _exec_source(key, source)
    except Exception as exc:
        _quarantine(path, reason=f"exec failed: {exc}")
        return None
    return CompiledKernel(key=key, source=source, fn=fn, origin="disk")


def _store_disk(key: str, source: str, path: str) -> None:
    from repro.grid.io import atomic_write

    os.makedirs(os.path.dirname(path), exist_ok=True)
    atomic_write(path, _encode_entry(key, source))
    _count("disk_store")


def kernel_for(kind: str, ndim: int, dtype, mode: str,
               caches: bool = True) -> CompiledKernel:
    """The compiled kernel for ``(kind, ndim, dtype)`` under cache
    ``mode`` (``"memory"`` or ``"disk"``).

    ``caches=False`` (the plan's uniform caches knob) skips the memo
    in both directions — every call is a counted miss that recompiles
    (and, in disk mode, re-verifies the disk entry).
    """
    if mode not in ("memory", "disk"):
        raise ValueError(f"codegen cache mode must be 'memory' or "
                         f"'disk', got {mode!r}")
    key = source_key(kind, ndim, dtype)
    if caches:
        with _LOCK:
            ck = _MEMORY.get(key)
        if ck is not None:
            _count("hit")
            return ck
    _count("miss")
    ck = None
    if mode == "disk":
        path = _entry_path(key)
        ck = _load_disk(key, path)
        if ck is not None:
            _count("disk_hit")
    if ck is None:
        ck = _compile(key, kind, ndim)
        if mode == "disk":
            _store_disk(key, ck.source, _entry_path(key))
    if caches:
        with _LOCK:
            _MEMORY[key] = ck
    return ck


def clear_codegen_cache() -> int:
    """Empty the in-memory memo; returns how many entries were
    evicted.  Part of ``engine.reset_all(caches=True)``.  The disk
    store is left alone — persistence across resets is its job."""
    with _LOCK:
        n = len(_MEMORY)
        _MEMORY.clear()
    return n


def codegen_cache_size() -> int:
    with _LOCK:
        return len(_MEMORY)

"""Engine-facing entry points for the compiled Wilson-Dslash.

``compiled_dhop`` / ``compiled_dhop_rank`` are drop-in peers of
:func:`repro.perf.fused.fused_dhop` / ``fused_dhop_rank``: same
gathers, same tiling, same stage counters — the only difference is
that the per-(direction, sign) accumulation body is a generated,
``exec``-compiled straight-line kernel fetched from the codegen cache
instead of an interpreted chain of numpy calls.  Bit-identity with
the fused (and therefore the layered reference) path is pinned by
``tests/codegen/``.

Dispatch reaches here only through a resolved
:class:`repro.engine.plan.KernelPlan` whose ``codegen`` mode is
active, exactly as the fused path is reached through ``plan.fused``.
"""

from __future__ import annotations

from repro.codegen.cache import kernel_for
from repro.grid.lattice import Lattice
from repro.perf.counters import counters
from repro.perf.parallel import run_tiles, tiles_for


def compiled_dhop(dirac, psi: Lattice, plan) -> Lattice:
    """The Wilson hopping term via the generated kernel.

    Mirrors :func:`repro.perf.fused.fused_dhop` exactly: every
    neighbour field is gathered first (full lattice, plan-cached
    cshift), then tiles of the outer-site axis run the compiled
    ``2*ndim``-hop sweep; a multi-RHS batch shares the gathers and
    loops the kernel over column views.
    """
    grid = dirac.grid
    ncols = psi.tensor_shape[0] if len(psi.tensor_shape) == 3 else 0
    counters().bump("codegen_dhop_calls")
    if ncols:
        counters().bump("batched_dhop_calls")
    fn = kernel_for("dhop", grid.ndim, grid.dtype, plan.codegen,
                    caches=plan.caches).fn
    out = Lattice(grid, psi.tensor_shape)
    gathers = []
    for mu in range(grid.ndim):
        gathers.append((
            dirac.links[mu].data,
            dirac._cshift(psi, mu, +1).data,
            dirac._links_back[mu].data,
            dirac._cshift(psi, mu, -1).data,
        ))
    plan.stages.bump("gather", 2 * grid.ndim)
    acc = out.data

    def body(sl) -> None:
        a = acc[sl]
        if ncols:
            for j in range(ncols):
                args = []
                for u_fwd, psi_fwd, u_bwd, psi_bwd in gathers:
                    args += [u_fwd[sl], psi_fwd[sl][:, j],
                             u_bwd[sl], psi_bwd[sl][:, j]]
                fn(a[:, j], *args)
        else:
            args = []
            for u_fwd, psi_fwd, u_bwd, psi_bwd in gathers:
                args += [u_fwd[sl], psi_fwd[sl], u_bwd[sl], psi_bwd[sl]]
            fn(a, *args)

    tiles = tiles_for(grid.osites, workers=plan.workers,
                      min_sites=plan.tile_min_sites)
    run_tiles(body, tiles, workers=plan.workers)
    plan.stages.bump("compute", len(tiles))
    return out


def compiled_dhop_rank(acc, links_mu, links_back_mu, fwd, bwd,
                       mu: int, plan) -> None:
    """One rank-local (mu, fwd+bwd) accumulation for the distributed
    operator, via the generated per-direction kernel; tiled over the
    rank's outer sites (mirrors ``fused_dhop_rank``)."""
    fn = kernel_for(f"dhop-dir{mu}", 4, acc.dtype, plan.codegen,
                    caches=plan.caches).fn

    def body(sl) -> None:
        fn(acc[sl], links_mu[sl], fwd[sl], links_back_mu[sl], bwd[sl])

    tiles = tiles_for(acc.shape[0], workers=plan.workers,
                      min_sites=plan.tile_min_sites)
    run_tiles(body, tiles, workers=plan.workers)
    plan.stages.bump("compute", len(tiles))

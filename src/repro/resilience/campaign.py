"""The default fault-injection campaign: cases, factory, runner.

Each campaign case exercises one fault class end-to-end through the
production stack and checks the final answer against a fault-free
reference.  Run with ``resilient=True`` the detection/recovery
machinery is armed (checksummed halos, FT solvers, redundant kernel
verification, backend fallback); with ``resilient=False`` the same
faults hit the pristine code paths — which is how the campaign proves
the layer does the work: the identical seed must flip cells from
``fail`` (silent corruption) to ``recovered``/``detected``.

The case x VL x campaign matrix is run by
:func:`repro.verification.suite.run_campaign_suite`; this module
supplies the cases and the seeded per-cell campaign factory.
"""

from __future__ import annotations

import math
import tempfile
import warnings
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.comms import DistributedLattice, HaloExchangeError
from repro.grid.dist_wilson import DistributedWilson, distribute_gauge
from repro.grid.random import random_gauge, random_spinor
from repro.grid.solver import conjugate_gradient
from repro.grid.wilson import WilsonDirac
from repro.resilience.ft_solver import ft_conjugate_gradient
from repro.resilience.checkpoint import (
    CheckpointStore,
    checkpoint_key,
    read_checkpoint,
)
from repro.resilience.inject import (
    CommsFault,
    CommsFaultInjector,
    FaultCampaign,
    FaultyMemory,
    KillAtIteration,
    SimulatedCrash,
    bit_rot_file,
    flip_field_bit,
    torn_write_file,
)
from repro.resilience.supervisor import supervised_solve
from repro.perf.trace_cache import cached_run_kernel
from repro.simd import get_backend
from repro.simd.generic import GenericBackend
from repro.simd.resilient import BackendDegradedWarning, ResilientBackend
from repro.sve.faults import armclang_18_3
from repro.vectorizer import ir
from repro.verification.suite import SilentCorruption, run_campaign_suite


@dataclass(frozen=True)
class CampaignCase:
    """One end-to-end fault-injection scenario."""

    name: str
    category: str
    fn: Callable  # fn(vl_bits, campaign, resilient) -> None


_REGISTRY: list[CampaignCase] = []


def _campaign_case(category: str):
    def deco(fn):
        _REGISTRY.append(CampaignCase(
            name=fn.__name__.replace("case_", ""),
            category=category,
            fn=fn,
        ))
        return fn
    return deco


def sync_comms_stats(campaign: FaultCampaign, stats) -> None:
    """Fold the protocol-visible comms counters into the campaign
    ledger (the comms layer has no campaign handle by design).  Also
    used by the scenario matrix runner (:mod:`repro.scenarios.runner`),
    whose comms cells follow the same protocol."""
    for _ in range(stats.detected_failures):
        campaign.record_detected("comms: bad delivery (CRC/timeout)")
    for _ in range(stats.recovered_messages):
        campaign.record_recovered("comms: retransmission succeeded")


#: Backwards-compatible private alias (pre-scenario-matrix spelling).
_sync_comms = sync_comms_stats


# ======================================================================
# Comms faults through the distributed Wilson operator
# ======================================================================

def _dhop_under_faults(vl_bits, campaign, resilient, faults) -> None:
    be = get_backend(f"generic{vl_bits}")
    dims = [4, 4, 4, 4]
    mpi = [2, 1, 1, 1]
    g = GridCartesian(dims, be)
    psi = random_spinor(g, seed=7)
    links = random_gauge(g, seed=11)
    dlinks = distribute_gauge(links, dims, be, mpi)
    w = DistributedWilson(dlinks, mass=0.1)
    ref = DistributedLattice(dims, be, mpi, (4, 3)).scatter(
        psi.to_canonical())
    want = w.dhop(ref).gather()
    injector = CommsFaultInjector(campaign, faults)
    dpsi = DistributedLattice(
        dims, be, mpi, (4, 3), checksum_halos=resilient,
        comms_faults=injector, max_retries=3,
    ).scatter(psi.to_canonical())
    try:
        got = w.dhop(dpsi).gather()
    except HaloExchangeError:
        _sync_comms(campaign, dpsi.stats)
        raise
    _sync_comms(campaign, dpsi.stats)
    if not np.array_equal(got, want):
        raise SilentCorruption(
            "distributed dhop differs from fault-free reference"
        )


@_campaign_case("comms")
def case_comms_drop_transient(vl_bits, campaign, resilient):
    """One halo message times out once; the retransmission is clean."""
    _dhop_under_faults(vl_bits, campaign, resilient,
                       [CommsFault("drop", message=2)])


@_campaign_case("comms")
def case_comms_drop_persistent(vl_bits, campaign, resilient):
    """A dead link: every delivery attempt of one message is lost."""
    _dhop_under_faults(vl_bits, campaign, resilient,
                       [CommsFault("drop", message=5, persistent=True)])


@_campaign_case("comms")
def case_comms_corrupt_transient(vl_bits, campaign, resilient):
    """Bit flips on the wire in three different halo messages."""
    _dhop_under_faults(vl_bits, campaign, resilient, [
        CommsFault("corrupt", message=1),
        CommsFault("corrupt", message=6),
        CommsFault("corrupt", message=11),
    ])


@_campaign_case("comms")
def case_comms_truncate_transient(vl_bits, campaign, resilient):
    """A halo message arrives short once."""
    _dhop_under_faults(vl_bits, campaign, resilient,
                       [CommsFault("truncate", message=3)])


@_campaign_case("comms")
def case_comms_duplicate(vl_bits, campaign, resilient):
    """A message is delivered twice (benign, must be tolerated)."""
    _dhop_under_faults(vl_bits, campaign, resilient,
                       [CommsFault("duplicate", message=4)])


# ======================================================================
# SDC in solver state (field bit flip mid-solve)
# ======================================================================

@_campaign_case("sdc")
def case_field_bitflip_solver(vl_bits, campaign, resilient):
    """An exponent bit of the operator output flips mid-CG.

    The recursive residual keeps converging while the true residual
    stalls: the canonical silent-corruption mode of Krylov solvers.
    The FT solver's periodic true-residual check catches it and
    restarts from the last verified iterate.
    """
    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    dirac = WilsonDirac(random_gauge(g, seed=11), mass=0.3)
    b = random_spinor(g, seed=5)
    rhs = dirac.apply_dagger(b)
    calls = {"n": 0}

    def op(v):
        out = dirac.mdag_m(v)
        calls["n"] += 1
        if calls["n"] == 15:
            flip_field_bit(out, campaign, bit=60, name="mdag_m output")
        return out

    tol = 1e-7
    if resilient:
        res = ft_conjugate_gradient(op, rhs, tol=tol, max_iter=400,
                                    recompute_interval=10,
                                    campaign=campaign)
    else:
        res = conjugate_gradient(op, rhs, tol=tol, max_iter=400)
    true_rel = (b - dirac.apply(res.x)).norm2() ** 0.5 / b.norm2() ** 0.5
    if not math.isfinite(true_rel) or true_rel > 100.0 * tol:
        raise SilentCorruption(
            f"solver solution wrong: true residual {true_rel:.3e}"
        )


# ======================================================================
# Memory SDC under an emulated kernel
# ======================================================================

@_campaign_case("sdc")
def case_memory_bitflip_kernel(vl_bits, campaign, resilient):
    """A scheduled load returns one flipped bit (DRAM SDC model).

    Resilient mode verifies the kernel output against a redundant
    architecture-independent execution — the ABFT-style acceptance
    check — and recomputes on mismatch.
    """
    rng = np.random.default_rng(100 + vl_bits)
    n = 1001
    x, y = rng.normal(size=n), rng.normal(size=n)
    kernel = ir.mult_real_kernel()
    size = max(1 << 20, 64 * n * 16 + (1 << 16))
    mem = FaultyMemory(size, campaign, flip_reads={8})
    res = cached_run_kernel(kernel, [x, y], vl_bits, memory=mem)
    want = x * y
    got = res.output
    if resilient and not np.array_equal(got, want):
        campaign.record_detected(
            "memory: kernel output != redundant execution")
        got = want  # recompute on the generic path
        campaign.record_recovered("memory: generic recomputation")
    if not np.array_equal(got, want):
        raise SilentCorruption("memory bit flip reached kernel output")


# ======================================================================
# Toolchain predicate defects (the paper's V-D class)
# ======================================================================

@_campaign_case("toolchain")
def case_toolchain_predicate_kernel(vl_bits, campaign, resilient):
    """The modelled armclang 18.3 defects at fault-prone VLs.

    Detection is the V-D methodology itself — compare against a
    reference execution; recovery is recomputation on the
    architecture-independent path.
    """
    rng = np.random.default_rng(200 + vl_bits)
    n = 1001  # ragged tail: exercises partial predicates
    x, y = rng.normal(size=n), rng.normal(size=n)
    kernel = ir.mult_real_kernel()
    fm = armclang_18_3()
    res = cached_run_kernel(kernel, [x, y], vl_bits, fault_model=fm)
    campaign.absorb_toolchain(fm)
    want = x * y
    got = res.output
    if resilient and not np.array_equal(got, want):
        campaign.record_detected(
            f"toolchain: VL{vl_bits}-dependent kernel mismatch")
        got = want
        campaign.record_recovered("toolchain: generic recomputation")
    if not np.array_equal(got, want):
        raise SilentCorruption(
            f"toolchain defect corrupted kernel at VL{vl_bits}")


# ======================================================================
# Backend crash -> graceful degradation
# ======================================================================

class _FlakyBackend(GenericBackend):
    """A backend whose ``mul`` dies on a scheduled call — the moral
    equivalent of an SVE-sim fault deep in a vector kernel."""

    def __init__(self, width_bits: int, campaign: FaultCampaign,
                 fail_on_call: int = 2) -> None:
        super().__init__(width_bits)
        self.name = f"flaky-sve{width_bits}"
        self.campaign = campaign
        self.fail_on_call = fail_on_call
        self._mul_calls = 0

    def mul(self, x, y):
        self._mul_calls += 1
        if self._mul_calls == self.fail_on_call:
            self.campaign.record_fired(
                "backend-crash", self.name,
                detail=f"mul call #{self.fail_on_call}")
            raise RuntimeError("simulated backend fault in mul")
        return super().mul(x, y)


@_campaign_case("backend")
def case_backend_crash_fallback(vl_bits, campaign, resilient):
    """A raising backend degrades to ``generic`` instead of killing
    the run (the ``simd.registry`` fallback policy)."""
    flaky = _FlakyBackend(vl_bits, campaign, fail_on_call=2)
    be = ResilientBackend(flaky) if resilient else flaky
    rng = np.random.default_rng(300 + vl_bits)
    cl = flaky.clanes()
    x = rng.normal(size=(3, cl)) + 1j * rng.normal(size=(3, cl))
    y = rng.normal(size=(3, cl)) + 1j * rng.normal(size=(3, cl))
    want = x * y
    got = None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", BackendDegradedWarning)
        for _ in range(3):  # the 2nd call trips the fault
            got = be.mul(x, y)
    if resilient and getattr(be, "degraded", False):
        campaign.record_detected("backend: op raised, degraded to generic")
        if np.array_equal(got, want):
            campaign.record_recovered("backend: generic fallback correct")
    if not np.array_equal(got, want):
        raise SilentCorruption("backend fallback produced wrong result")


# ======================================================================
# Disk faults: checkpoint bit rot, torn gauge archives
# ======================================================================

@_campaign_case("disk")
def case_checkpoint_bitrot(vl_bits, campaign, resilient):
    """Storage rots the newest solver checkpoint.

    Resilient mode loads through the CRC-verifying store: the rotted
    file is quarantined and the previous checkpoint takes over.  The
    naive reader trusts the bytes and resumes from corrupt state —
    silent corruption.
    """
    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    states = {it: random_spinor(g, seed=it).to_canonical()
              for it in (10, 20)}
    with tempfile.TemporaryDirectory() as d:
        store = CheckpointStore(
            d, campaign=campaign if resilient else None)
        for it, arr in states.items():
            store.save("solve", {"x": arr}, iteration=it)
        bit_rot_file(store.list("solve")[0], campaign)
        if resilient:
            ck = store.load_latest("solve")
            if ck is None or not np.array_equal(ck.arrays["x"],
                                                states[ck.iteration]):
                raise SilentCorruption(
                    "checkpoint fallback returned wrong state")
        else:
            ck = read_checkpoint(store.list("solve")[0], verify=False)
            if not np.array_equal(ck.arrays["x"], states[20]):
                raise SilentCorruption(
                    "resumed from bit-rotted checkpoint undetected")


@_campaign_case("disk")
def case_gauge_archive_torn_write(vl_bits, campaign, resilient):
    """A gauge archive suffers a torn write (zero-padded tail).

    Resilient mode verifies on load (payload CRC, per-link checksums,
    plaquette), detects the damage and recovers from the replica every
    archive pipeline keeps; the naive reader deserialises zeroed links
    without complaint.
    """
    from repro.grid.io import ConfigFormatError, load_gauge, save_gauge

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    links = random_gauge(g, seed=13)
    with tempfile.TemporaryDirectory() as d:
        primary = f"{d}/cfg.lat"
        replica = f"{d}/cfg.replica.lat"
        save_gauge(primary, links, g)
        save_gauge(replica, links, g)
        torn_write_file(primary, campaign)
        if resilient:
            try:
                got = load_gauge(primary, g, verify=True)
            except ConfigFormatError as exc:
                campaign.record_detected(f"gauge archive: {exc}")
                got = load_gauge(replica, g, verify=True)
                campaign.record_recovered(
                    "gauge archive: replica restored")
        else:
            got = load_gauge(primary, g, verify=False)
        for a, u in zip(got, links):
            if not np.array_equal(a.data, u.data):
                raise SilentCorruption(
                    "torn gauge archive loaded undetected")


# ======================================================================
# Crash mid-solve: kill + checkpoint rot, supervised vs naive
# ======================================================================

@_campaign_case("crash")
def case_supervised_kill_resume(vl_bits, campaign, resilient):
    """The composed chaos cell: a solve is killed mid-flight AND the
    newest durable checkpoint is bit-rotted at the moment of death.

    The supervised runtime quarantines the rotted file, resumes from
    the older valid checkpoint and converges (``recovered``).  The
    naive restart script trusts the newest checkpoint's bytes and
    resumes from corrupt state without noticing.
    """
    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    w = WilsonDirac(random_gauge(g, seed=17), mass=0.1)
    b = random_spinor(g, seed=18)
    tol = 1e-8
    with tempfile.TemporaryDirectory() as d:
        store = CheckpointStore(
            d, campaign=campaign if resilient else None)
        key = checkpoint_key(w, b, tol)
        kill = KillAtIteration(campaign, iteration=6, name="cgne")

        def chaos(it, x, true_rel):
            # At the kill point, rot the newest on-disk checkpoint
            # first: the crash and the storage fault land together.
            if it >= kill.iteration and not kill.exhausted:
                paths = store.list(key)
                if paths:
                    bit_rot_file(paths[0], campaign)
            kill.check(it)

        if resilient:
            sup = supervised_solve(
                w, b, tol=tol, store=store, campaign=campaign,
                recompute_interval=3, on_checkpoint=chaos)
            assert kill.exhausted, "solve converged before the kill"
            if not sup.converged:
                raise AssertionError("supervised solve did not converge")
            true_rel = (b - w.apply(sup.result.x)).norm2() ** 0.5 \
                / b.norm2() ** 0.5
            if not math.isfinite(true_rel) or true_rel > 100.0 * tol:
                raise SilentCorruption(
                    f"supervised answer wrong: true residual "
                    f"{true_rel:.3e}")
        else:
            from repro.engine.solve import solve_fermion

            truth = {}

            def naive_hook(it, x, true_rel):
                chaos(it, x, true_rel)
                arr = x.to_canonical()
                truth[it] = arr
                store.save(key, {"x": arr}, iteration=it,
                           residual=true_rel, tol=tol)

            try:
                solve_fermion(w, b, method="cg", ft=True, tol=tol,
                              recompute_interval=3,
                              good_hook=naive_hook)
            except SimulatedCrash:
                # The naive restart: take the newest checkpoint at
                # face value.  Its payload is rotted.
                ck = read_checkpoint(store.list(key)[0], verify=False)
                if not np.array_equal(ck.arrays["x"],
                                      truth[ck.iteration]):
                    raise SilentCorruption(
                        "restarted from rotted checkpoint undetected"
                    ) from None


CAMPAIGN_CASES: tuple[CampaignCase, ...] = tuple(_REGISTRY)

#: The composed chaos subset the CI smoke job runs: comms corruption,
#: disk rot on checkpoints and archives, and the kill+rot crash cell.
CHAOS_CASES: tuple[CampaignCase, ...] = tuple(
    c for c in _REGISTRY
    if c.category in ("disk", "crash") or c.name == "comms_corrupt_transient"
)


# ======================================================================
# Factory + runner
# ======================================================================

def default_campaign_factory(base_seed: int = 0):
    """Per-cell campaign factory: one stable seed per (case, VL).

    Uses CRC-32 of the cell coordinates so the schedule is independent
    of execution order and identical across processes.
    """
    def factory(case_name: str, vl_bits: int) -> FaultCampaign:
        cell_seed = base_seed + zlib.crc32(
            f"{case_name}:{vl_bits}".encode())
        return FaultCampaign(seed=cell_seed,
                             name=f"default-{base_seed}")
    return factory


def run_default_campaign(seed: int = 0, resilient: bool = True,
                         vls=(256, 1024)):
    """The bundled campaign (all fault classes) over the given VLs."""
    return run_campaign_suite(CAMPAIGN_CASES,
                              default_campaign_factory(seed),
                              vls=vls, resilient=resilient)


def run_chaos_campaign(seed: int = 0, resilient: bool = True,
                       vls=(256,)):
    """The composed chaos smoke: wire corruption + disk rot + crash
    cells in one seeded run (the CI chaos job's entry point).  Gate
    with :func:`repro.verification.suite.gate_outcomes` — with
    resilience on, no cell may end in silent corruption."""
    return run_campaign_suite(CHAOS_CASES,
                              default_campaign_factory(seed),
                              vls=vls, resilient=resilient)

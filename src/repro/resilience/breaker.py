"""Per-subsystem circuit breakers: closed / open / half-open.

:class:`repro.simd.resilient.ResilientBackend` pioneered the pattern
for one subsystem: after a backend fault, stop retrying the primary
(sticky fallback) until someone resets it.  This module generalizes
that into the classic circuit-breaker state machine, shared by every
subsystem the supervised runtime touches — comms, checkpoints, caches,
backends, the solver itself:

* **closed** — healthy; calls flow, failures are counted.  At
  ``failure_threshold`` consecutive failures the breaker *opens*.
* **open** — the subsystem is presumed broken; :meth:`allow` denies
  (the supervisor routes around it — e.g. an open ``comms`` breaker
  starts the degradation ladder at the ordered-comms rung).  After
  ``cooldown`` denied probes the breaker goes *half-open*.
* **half-open** — probation: :meth:`allow` admits probe calls.
  ``probation_probes`` consecutive successes close the breaker; any
  failure re-opens it (and restarts the cooldown).

Transitions are **count-based, not wall-clock-based**: a breaker that
cools down after "N denied attempts" replays identically under any
scheduler and any machine, which keeps chaos campaigns reproducible —
the same determinism discipline as the seeded fault schedules.

Breakers live in a process-global registry (:func:`breaker`), are
reset by :func:`repro.engine.reset.reset_all` via
:func:`reset_breakers`, and export their state through the telemetry
registry: transition counters (``breaker.opened`` / ``breaker.closed``
/ ``breaker.half_open``) plus a collector view of how many breakers
are currently in each state.  Every transition also lands in the
failure flight recorder (:mod:`repro.telemetry.flightrec`), so a
post-mortem bundle shows the breaker history leading up to a failed
solve.

Import discipline: only the telemetry layer (which imports nothing
from :mod:`repro`), so any layer — including :mod:`repro.simd` — can
feed breakers without cycles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.telemetry import flightrec as _flightrec
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry

#: The three breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class BreakerEvent:
    """One state transition, for the ledger."""

    breaker: str
    frm: str
    to: str
    reason: str = ""


class CircuitBreaker:
    """One subsystem's breaker.  Thread-safe; see module docstring for
    the state machine."""

    def __init__(self, name: str, failure_threshold: int = 3,
                 cooldown: int = 2, probation_probes: int = 1) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if probation_probes < 1:
            raise ValueError("probation_probes must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown = int(cooldown)
        self.probation_probes = int(probation_probes)
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0          # consecutive, while closed
        self._denied = 0            # while open
        self._probe_successes = 0   # while half-open
        self.events: list = []

    @property
    def state(self) -> str:
        return self._state

    def _transition(self, to: str, reason: str = "") -> None:
        frm = self._state
        if frm == to:
            return
        self._state = to
        self.events.append(BreakerEvent(breaker=self.name, frm=frm,
                                        to=to, reason=reason))
        if _telemetry.metrics_on():
            label = {OPEN: "breaker.opened", CLOSED: "breaker.closed",
                     HALF_OPEN: "breaker.half_open"}[to]
            _telemetry_metrics.registry().counter(label).inc()
            _telemetry.event("breaker.transition", breaker=self.name,
                             frm=frm, to=to, reason=reason)
            _flightrec.record("breaker.transition", breaker=self.name,
                              frm=frm, to=to, reason=reason)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the protected subsystem be used right now?

        Open breakers deny (and count the denial toward cooldown);
        half-open breakers admit probes; closed breakers always admit.
        """
        with self._lock:
            if self._state == OPEN:
                self._denied += 1
                if self._denied >= self.cooldown:
                    self._probe_successes = 0
                    self._transition(HALF_OPEN, "cooldown elapsed")
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.probation_probes:
                    self._failures = 0
                    self._transition(CLOSED, "probation passed")
            elif self._state == CLOSED:
                self._failures = 0

    def record_failure(self, reason: str = "") -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._denied = 0
                self._transition(OPEN, f"probe failed: {reason}")
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._denied = 0
                    self._transition(
                        OPEN,
                        f"{self._failures} consecutive failures"
                        + (f": {reason}" if reason else ""),
                    )

    def reset(self) -> "CircuitBreaker":
        """Back to a pristine closed breaker (events cleared)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._denied = 0
            self._probe_successes = 0
            self.events.clear()
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.name} {self._state}>"


# ======================================================================
# Registry
# ======================================================================

_REGISTRY_LOCK = threading.Lock()
_BREAKERS: dict = {}


def breaker(name: str, **kwargs) -> CircuitBreaker:
    """The named breaker, created on first use (``kwargs`` configure
    it then).  Passing the *same* kwargs again is a no-op, so a call
    site can state its config on every call; passing *different*
    kwargs raises — two subsystems disagreeing about thresholds is a
    bug, not a race to configure first."""
    with _REGISTRY_LOCK:
        br = _BREAKERS.get(name)
        if br is None:
            br = _BREAKERS[name] = CircuitBreaker(name, **kwargs)
        elif kwargs:
            for attr, want in kwargs.items():
                if getattr(br, attr, None) != want:
                    raise ValueError(
                        f"breaker {name!r} already configured with "
                        f"{attr}={getattr(br, attr, None)!r}; cannot "
                        f"re-spec to {want!r}"
                    )
        return br


def all_breakers() -> dict:
    """Name -> live breaker (snapshot copy)."""
    with _REGISTRY_LOCK:
        return dict(_BREAKERS)


def reset_breakers() -> int:
    """Drop every registered breaker; returns how many were *not*
    closed (the count :func:`repro.engine.reset.reset_all` reports).
    Dropping rather than closing means a rerun cannot inherit stale
    thresholds either."""
    with _REGISTRY_LOCK:
        tripped = sum(1 for b in _BREAKERS.values()
                      if b.state != CLOSED)
        _BREAKERS.clear()
    return tripped


def _collect_breaker_metrics() -> dict:
    out = {"breaker.live": 0, "breaker.open_now": 0,
           "breaker.half_open_now": 0}
    for b in all_breakers().values():
        out["breaker.live"] += 1
        if b.state == OPEN:
            out["breaker.open_now"] += 1
        elif b.state == HALF_OPEN:
            out["breaker.half_open_now"] += 1
    return out


_telemetry_metrics.registry().register_collector(
    "resilience.breakers", _collect_breaker_metrics
)

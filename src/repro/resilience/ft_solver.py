"""Fault-tolerant Krylov solvers.

Long solves on faulty hardware fail in three ways the plain solvers in
:mod:`repro.grid.solver` cannot survive:

* **poisoned arithmetic** — an SDC turns an iterate into NaN/Inf and
  every later iteration is garbage;
* **numeric breakdown** — a zero rho or denominator (possibly itself
  fault-induced) divides the recursion by zero;
* **silent drift** — the *recursive* residual keeps shrinking while
  the *true* residual ``b - A x`` stalls, so the solver reports
  convergence on a wrong answer.

The FT variants wrap the same recursions with (1) NaN/Inf guards on
every scalar, (2) breakdown detection, (3) a periodic true-residual
recomputation that catches drift, and (4) restart from the last
verified-good iterate, bounded by ``max_restarts``.

On a fault-free run the guards never trigger and the iterates are
**bit-identical** to the plain solvers (the extra true-residual
evaluations read but never feed back into the recursion), so enabling
fault tolerance costs only the verification applications of the
operator — there is no behavioural drift on the pristine path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.grid.lattice import Lattice
from repro.grid.mixedprec import (
    MixedPrecisionResult,
    make_single_precision_copy,
    _to_double,
    _to_single,
)
from repro.grid.multirhs import (
    batch_copy,
    batch_zero_like,
    col_axpy,
    col_copy,
    col_inner,
    col_norm2,
    col_xpby,
    nrhs,
)
from repro.grid.solver import BlockSolverResult, SolverResult
from repro.grid.wilson import WilsonDirac
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry
from repro.telemetry.reports import traced_solver


@dataclass
class FTSolverResult(SolverResult):
    """A :class:`SolverResult` plus the fault-handling ledger."""

    restarts: int = 0
    detected_events: list = field(default_factory=list)
    true_residual_checks: int = 0


def _record(campaign, events: list, what: str, recovered: bool) -> None:
    events.append(what)
    if campaign is not None:
        campaign.record_detected(what)
        if recovered:
            campaign.record_recovered(what)
    # Telemetry observes the ledger entry (every FT restart/rollback
    # goes through here); it feeds nothing back into the recursion.
    if _telemetry.metrics_on():
        _telemetry_metrics.registry().counter("ft.restarts").inc()
        _telemetry.event("ft.restart", what=what, recovered=recovered)


@traced_solver("cg-ft")
def ft_conjugate_gradient(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    recompute_interval: int = 25,
    max_restarts: int = 3,
    drift_factor: float = 100.0,
    campaign=None,
    good_hook: Callable = None,
) -> FTSolverResult:
    """CG with NaN guards, drift detection and checkpoint restart.

    Every ``recompute_interval`` iterations (and before accepting
    convergence) the true residual ``b - A x`` is recomputed.  If it is
    non-finite, or exceeds ``drift_factor`` times the recursive
    residual, the state is declared corrupted and the solve restarts
    from the last iterate that passed a true-residual check.

    ``good_hook(it, x, true_rel)``, if given, fires at exactly the
    verified-good points — right after a true-residual check promotes
    the iterate to ``good_x`` — which is where the supervisor persists
    durable checkpoints: anything it captures there is state the
    in-memory restart machinery itself would trust.  The hook observes
    (it must not mutate ``x``) and feeds nothing back, so the iterates
    are bit-identical with or without it; exceptions it raises (e.g. a
    simulated crash) propagate to the caller.
    """
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    p = r.copy()
    rr = r.norm2()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return FTSolverResult(x=b.new_like(), converged=True, iterations=0,
                              residual=0.0)
    history = [rr ** 0.5 / bnorm]
    good_x = x.copy()
    events: list = []
    restarts = 0
    checks = 0

    def restart(reason: str):
        nonlocal x, r, p, rr, restarts
        restarts += 1
        recovered = restarts <= max_restarts
        _record(campaign, events, reason, recovered)
        if not recovered:
            return False
        x = good_x.copy()
        r = b - op(x)
        p = r.copy()
        rr = r.norm2()
        return math.isfinite(rr)

    it = 0
    while it < max_iter:
        it += 1
        ap = op(p)
        denom = p.inner_product(ap).real
        if not math.isfinite(denom) or denom == 0.0:
            if restart(f"cg: denominator hazard at iter {it} "
                       f"({denom!r})"):
                continue
            return FTSolverResult(
                x=good_x, converged=False, iterations=it,
                residual=history[-1], residual_history=history,
                breakdown=f"cg: unrecoverable denominator ({denom!r})",
                restarts=restarts, detected_events=events,
                true_residual_checks=checks)
        alpha = rr / denom
        x_new = x + p * alpha
        r_new = r - ap * alpha
        rr_new = r_new.norm2()
        if not math.isfinite(rr_new):
            if restart(f"cg: non-finite residual at iter {it}"):
                continue
            return FTSolverResult(
                x=good_x, converged=False, iterations=it,
                residual=history[-1], residual_history=history,
                breakdown="cg: unrecoverable non-finite residual",
                restarts=restarts, detected_events=events,
                true_residual_checks=checks)
        x, r = x_new, r_new
        rel = rr_new ** 0.5 / bnorm
        history.append(rel)
        periodic = recompute_interval and it % recompute_interval == 0
        if rel <= tol or periodic:
            true_rel = (b - op(x)).norm2() ** 0.5 / bnorm
            checks += 1
            drifted = (not math.isfinite(true_rel)
                       or true_rel > drift_factor * max(rel, tol))
            if drifted:
                if restart(f"cg: silent drift at iter {it} "
                           f"(true {true_rel:.3e} vs recursive "
                           f"{rel:.3e})"):
                    continue
                return FTSolverResult(
                    x=good_x, converged=False, iterations=it,
                    residual=true_rel, residual_history=history,
                    breakdown="cg: unrecoverable silent drift",
                    restarts=restarts, detected_events=events,
                    true_residual_checks=checks)
            good_x = x.copy()
            if good_hook is not None:
                good_hook(it, x, true_rel)
            if rel <= tol:
                return FTSolverResult(
                    x=x, converged=True, iterations=it, residual=true_rel,
                    residual_history=history, restarts=restarts,
                    detected_events=events, true_residual_checks=checks)
        beta = rr_new / rr
        p = r + p * beta
        rr = rr_new
    return FTSolverResult(x=x, converged=False, iterations=max_iter,
                          residual=history[-1], residual_history=history,
                          restarts=restarts, detected_events=events,
                          true_residual_checks=checks)


@traced_solver("bicgstab-ft")
def ft_bicgstab(
    op: Callable[[Lattice], Lattice],
    b: Lattice,
    x0: Lattice = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    recompute_interval: int = 25,
    max_restarts: int = 3,
    drift_factor: float = 100.0,
    campaign=None,
) -> FTSolverResult:
    """BiCGSTAB with breakdown recovery.

    A rho/omega/denominator breakdown or a non-finite residual
    restarts the recursion (fresh shadow residual ``r0 = r``) from the
    last verified-good iterate — the classic restarted-BiCGSTAB cure
    for its notoriously fragile recursion.
    """
    x = b.new_like() if x0 is None else x0.copy()
    r = b - op(x) if x0 is not None else b.copy()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return FTSolverResult(x=b.new_like(), converged=True, iterations=0,
                              residual=0.0)
    r0 = r.copy()
    rho = alpha = omega = 1.0 + 0j
    v = b.new_like()
    p = b.new_like()
    history = [r.norm2() ** 0.5 / bnorm]
    good_x = x.copy()
    events: list = []
    restarts = 0
    checks = 0

    def restart(reason: str) -> bool:
        nonlocal x, r, r0, rho, alpha, omega, v, p, restarts
        restarts += 1
        recovered = restarts <= max_restarts
        _record(campaign, events, reason, recovered)
        if not recovered:
            return False
        x = good_x.copy()
        r = b - op(x)
        r0 = r.copy()
        rho = alpha = omega = 1.0 + 0j
        v = b.new_like()
        p = b.new_like()
        return math.isfinite(r.norm2())

    def bail(reason: str, it: int) -> FTSolverResult:
        return FTSolverResult(
            x=good_x, converged=False, iterations=it,
            residual=history[-1], residual_history=history,
            breakdown=reason, restarts=restarts,
            detected_events=events, true_residual_checks=checks)

    it = 0
    while it < max_iter:
        it += 1
        rho_new = r0.inner_product(r)
        if not math.isfinite(abs(rho_new)) or rho_new == 0:
            if restart(f"bicgstab: rho breakdown at iter {it}"):
                continue
            return bail("bicgstab: unrecoverable rho breakdown", it)
        beta = (rho_new / rho) * (alpha / omega)
        p = r + (p - v * omega) * beta
        v = op(p)
        r0v = r0.inner_product(v)
        if not math.isfinite(abs(r0v)) or r0v == 0:
            if restart(f"bicgstab: (r0,v) breakdown at iter {it}"):
                continue
            return bail("bicgstab: unrecoverable (r0,v) breakdown", it)
        alpha = rho_new / r0v
        s = r - v * alpha
        s_rel = s.norm2() ** 0.5 / bnorm
        if not math.isfinite(s_rel):
            if restart(f"bicgstab: non-finite s at iter {it}"):
                continue
            return bail("bicgstab: unrecoverable non-finite residual", it)
        if s_rel <= tol:
            x = x + p * alpha
            true_rel = (b - op(x)).norm2() ** 0.5 / bnorm
            checks += 1
            if math.isfinite(true_rel) and \
                    true_rel <= drift_factor * max(s_rel, tol):
                history.append(s_rel)
                return FTSolverResult(
                    x=x, converged=True, iterations=it, residual=true_rel,
                    residual_history=history, restarts=restarts,
                    detected_events=events, true_residual_checks=checks)
            if restart(f"bicgstab: drift at early exit iter {it}"):
                continue
            return bail("bicgstab: unrecoverable drift", it)
        t = op(s)
        tt = t.inner_product(t)
        if not math.isfinite(abs(tt)) or tt == 0:
            if restart(f"bicgstab: (t,t) breakdown at iter {it}"):
                continue
            return bail("bicgstab: unrecoverable (t,t) breakdown", it)
        omega = t.inner_product(s) / tt
        x = x + p * alpha + s * omega
        r = s - t * omega
        rel = r.norm2() ** 0.5 / bnorm
        if not math.isfinite(rel):
            if restart(f"bicgstab: non-finite residual at iter {it}"):
                continue
            return bail("bicgstab: unrecoverable non-finite residual", it)
        history.append(rel)
        periodic = recompute_interval and it % recompute_interval == 0
        if rel <= tol or periodic:
            true_rel = (b - op(x)).norm2() ** 0.5 / bnorm
            checks += 1
            drifted = (not math.isfinite(true_rel)
                       or true_rel > drift_factor * max(rel, tol))
            if drifted:
                if restart(f"bicgstab: silent drift at iter {it}"):
                    continue
                return bail("bicgstab: unrecoverable silent drift", it)
            good_x = x.copy()
            if rel <= tol:
                return FTSolverResult(
                    x=x, converged=True, iterations=it, residual=true_rel,
                    residual_history=history, restarts=restarts,
                    detected_events=events, true_residual_checks=checks)
        rho = rho_new
    return FTSolverResult(x=x, converged=False, iterations=max_iter,
                          residual=history[-1], residual_history=history,
                          restarts=restarts, detected_events=events,
                          true_residual_checks=checks)


@dataclass
class FTBlockSolverResult(BlockSolverResult):
    """A :class:`BlockSolverResult` plus the fault-handling ledger."""

    restarts: int = 0
    detected_events: list = field(default_factory=list)
    true_residual_checks: int = 0


@traced_solver("block-cg-ft")
def ft_batched_conjugate_gradient(
    op: Callable,
    b,
    x0=None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    recompute_interval: int = 25,
    max_restarts: int = 3,
    drift_factor: float = 100.0,
    campaign=None,
) -> FTBlockSolverResult:
    """Batched CG with per-column drift detection and restart.

    The block recursion of :func:`repro.grid.solver.
    batched_conjugate_gradient` with the fault-tolerance pattern of
    :func:`ft_conjugate_gradient`: every ``recompute_interval``
    iterations (and before accepting any column's convergence) one
    *batched* true-residual evaluation ``b - A x`` checks every active
    column at the cost of a single operator application.  A column
    whose true residual is non-finite or drifted beyond
    ``drift_factor`` times its recursive residual is rolled back to
    its last verified-good iterate and its recursion restarted
    (``p_j = r_j``); healthy columns keep iterating undisturbed.  On a
    fault-free run the guards never trigger and the iterates match the
    plain block solver exactly.
    """
    n = nrhs(b)
    x = batch_zero_like(b) if x0 is None else batch_copy(x0)
    r = batch_copy(b) if x0 is None else b - op(x)
    p = batch_copy(r)
    rr = [col_norm2(r, j) for j in range(n)]
    bnorm = [col_norm2(b, j) ** 0.5 for j in range(n)]
    converged = [bn == 0.0 for bn in bnorm]
    active = [not c for c in converged]
    col_iters = [0] * n
    col_res = [0.0 if c else rr[j] ** 0.5 / bnorm[j]
               for j, c in enumerate(converged)]
    history = [list(col_res)]
    good_x = batch_copy(x)
    events: list = []
    restarts = 0
    checks = 0
    breakdown = ""
    it = 0
    while it < max_iter and any(active):
        it += 1
        ap = op(p)
        pending = []  # columns whose convergence awaits a true check
        for j in range(n):
            if not active[j]:
                continue
            denom = col_inner(p, ap, j).real
            if not math.isfinite(denom) or denom == 0.0:
                restarts += 1
                recovered = restarts <= max_restarts
                _record(campaign, events,
                        f"block-cg[{j}]: denominator hazard at iter "
                        f"{it} ({denom!r})", recovered)
                if recovered:
                    _restart_column(op, b, x, r, p, rr, good_x, j)
                else:
                    active[j] = False
                    breakdown += (f"[col {j}] unrecoverable "
                                  f"denominator; ")
                    col_iters[j] = it
                continue
            alpha = rr[j] / denom
            col_axpy(x, alpha, p, j)
            col_axpy(r, -alpha, ap, j)
            rr_new = col_norm2(r, j)
            if not math.isfinite(rr_new):
                restarts += 1
                recovered = restarts <= max_restarts
                _record(campaign, events,
                        f"block-cg[{j}]: non-finite residual at iter "
                        f"{it}", recovered)
                if recovered:
                    _restart_column(op, b, x, r, p, rr, good_x, j)
                else:
                    active[j] = False
                    breakdown += f"[col {j}] unrecoverable residual; "
                    col_iters[j] = it
                continue
            rel = rr_new ** 0.5 / bnorm[j]
            col_res[j] = rel
            if rel <= tol:
                pending.append(j)
                rr[j] = rr_new
                continue
            col_xpby(p, r, rr_new / rr[j], j)
            rr[j] = rr_new
        history.append(list(col_res))
        periodic = recompute_interval and it % recompute_interval == 0
        if pending or periodic:
            # One batched application verifies every active column.
            true_r = b - op(x)
            checks += 1
            for j in range(n):
                if not active[j]:
                    continue
                true_rel = col_norm2(true_r, j) ** 0.5 / bnorm[j]
                drifted = (not math.isfinite(true_rel) or true_rel >
                           drift_factor * max(col_res[j], tol))
                if drifted:
                    restarts += 1
                    recovered = restarts <= max_restarts
                    _record(campaign, events,
                            f"block-cg[{j}]: silent drift at iter {it} "
                            f"(true {true_rel:.3e} vs recursive "
                            f"{col_res[j]:.3e})", recovered)
                    if recovered:
                        _restart_column(op, b, x, r, p, rr, good_x, j)
                    else:
                        active[j] = False
                        breakdown += f"[col {j}] unrecoverable drift; "
                        col_iters[j] = it
                    continue
                col_copy(good_x, x, j)
                if j in pending:
                    active[j] = False
                    converged[j] = True
                    col_iters[j] = it
                    col_res[j] = true_rel
    for j in range(n):
        if active[j]:
            col_iters[j] = max_iter
    return FTBlockSolverResult(
        x=x, converged=all(converged), iterations=it,
        residual=max(col_res) if col_res else 0.0,
        col_converged=converged, col_iterations=col_iters,
        col_residuals=col_res, residual_history=history,
        breakdown=breakdown.strip(), restarts=restarts,
        detected_events=events, true_residual_checks=checks,
    )


def _restart_column(op, b, x, r, p, rr, good_x, j: int) -> None:
    """Roll column ``j`` back to its verified-good iterate and restart
    its recursion (one operator application recomputes its residual)."""
    col_copy(x, good_x, j)
    ax = op(x)
    for rb, bb, ab in zip(
        r.locals if hasattr(r, "locals") else [r],
        b.locals if hasattr(b, "locals") else [b],
        ax.locals if hasattr(ax, "locals") else [ax],
    ):
        rb.data[:, j] = bb.data[:, j] - ab.data[:, j]
    col_copy(p, r, j)
    rr[j] = col_norm2(r, j)


def ft_solve_wilson_cgne_batched(dirac, b, tol: float = 1e-8,
                                 max_iter: int = 1000, campaign=None,
                                 **ft_kwargs) -> FTBlockSolverResult:
    """Solve ``M x_j = b_j`` for a whole batch via fault-tolerant CGNE.

    Delegates to the unified solver entry
    (:func:`repro.engine.solve_fermion` with ``ft=True``),
    bit-identically.
    """
    from repro.engine.solve import solve_fermion

    return solve_fermion(dirac, b, method="cg", ft=True, tol=tol,
                         max_iter=max_iter, campaign=campaign,
                         **ft_kwargs)


def ft_solve_wilson_cgne(dirac, b: Lattice, tol: float = 1e-8,
                         max_iter: int = 1000, campaign=None,
                         **ft_kwargs) -> FTSolverResult:
    """Solve ``M x = b`` via fault-tolerant CG on the normal equations.

    Delegates to the unified solver entry
    (:func:`repro.engine.solve_fermion` with ``ft=True``),
    bit-identically.
    """
    from repro.engine.solve import solve_fermion

    return solve_fermion(dirac, b, method="cg", ft=True, tol=tol,
                         max_iter=max_iter, campaign=campaign,
                         **ft_kwargs)


@traced_solver("mixed-ft")
def ft_mixed_precision_cgne(
    dirac: WilsonDirac,
    b: Lattice,
    tol: float = 1e-10,
    inner_tol: float = 1e-5,
    max_outer: int = 20,
    max_inner: int = 500,
    max_restarts: int = 3,
    campaign=None,
) -> MixedPrecisionResult:
    """Mixed-precision CGNE whose outer loop survives inner faults.

    The double-precision defect-correction structure of
    :func:`repro.grid.mixedprec.mixed_precision_cgne`, with two
    guards: the float32 inner solve runs fault-tolerant CG, and an
    outer update whose true residual comes back non-finite or *worse*
    than before is discarded (the iterate rolls back) instead of
    poisoning the solve.
    """
    dirac32 = make_single_precision_copy(dirac)
    grid32 = dirac32.grid
    grid64 = dirac.grid
    x = b.new_like()
    r = b.copy()
    bnorm = b.norm2() ** 0.5
    if bnorm == 0.0:
        return MixedPrecisionResult(x=x, converged=True, outer_iterations=0,
                                    inner_iterations_total=0, residual=0.0)
    history = [1.0]
    inner_total = 0
    events: list = []
    restarts = 0
    for outer in range(1, max_outer + 1):
        r32 = _to_single(grid32, r)
        rhs32 = dirac32.apply_dagger(r32)
        inner = ft_conjugate_gradient(dirac32.mdag_m, rhs32, tol=inner_tol,
                                      max_iter=max_inner, campaign=campaign)
        inner_total += inner.iterations
        d = _to_double(grid64, inner.x)
        x_trial = x + d
        r_trial = b - dirac.apply(x_trial)
        rel = r_trial.norm2() ** 0.5 / bnorm
        if not math.isfinite(rel) or rel > 2.0 * history[-1]:
            # Corrupted correction: discard, count, retry or give up.
            restarts += 1
            _record(campaign, events,
                    f"mixed-precision: corrupted outer update {outer} "
                    f"(rel {rel!r})", restarts <= max_restarts)
            if restarts > max_restarts:
                break
            continue
        x, r = x_trial, r_trial
        history.append(rel)
        if rel <= tol:
            return MixedPrecisionResult(
                x=x, converged=True, outer_iterations=outer,
                inner_iterations_total=inner_total, residual=rel,
                residual_history=history,
            )
        if len(history) > 2 and history[-1] > 0.9 * history[-2]:
            break
    return MixedPrecisionResult(
        x=x, converged=False, outer_iterations=len(history) - 1,
        inner_iterations_total=inner_total, residual=history[-1],
        residual_history=history,
    )

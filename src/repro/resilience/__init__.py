"""Resilience layer: fault injection, self-healing comms, FT solvers.

Section V-D of the paper is itself a fault story — ~40 Grid tests run
under an immature toolchain, with VL-dependent predication failures.
Production lattice-QCD runs (Grid at scale) add the system-level fault
classes: silent data corruption in memory, dropped or mangled halo
messages, solver breakdowns.  This package generalizes the V-D
methodology from toolchain bugs to system faults:

* :mod:`repro.resilience.inject` — seeded, deterministic fault
  campaigns: memory/field bit flips (SDC), comms faults
  (drop/corrupt/truncate/duplicate), toolchain predicate defects.
* :mod:`repro.resilience.ft_solver` — fault-tolerant Krylov solvers:
  NaN/Inf guards, breakdown detection, periodic true-residual
  recomputation, restart from the last verified-good iterate.
* :mod:`repro.resilience.campaign` — campaign verification: each
  {case x VL x campaign} cell classified {pass, fail, detected,
  recovered}; ``fail`` means *silent corruption*, the outcome the
  layer exists to eliminate.
* :mod:`repro.resilience.checkpoint` — the durable checkpoint store:
  atomic fsync'd writes, CRC-verified loads, quarantine of corrupt
  files, newest-valid-wins resume.
* :mod:`repro.resilience.supervisor` — the supervised solve runtime:
  retry with seeded backoff, watchdogs (deadline / iteration budget /
  stall / divergence), the degradation ladder, checkpoint/resume.
* :mod:`repro.resilience.breaker` — per-subsystem circuit breakers
  (closed / open / half-open) feeding the degradation decisions.

The companion mechanisms live in the layers they protect: checksummed
retrying halo exchange in :mod:`repro.grid.comms`, numeric-breakdown
guards in :mod:`repro.grid.solver`, graceful backend degradation in
:mod:`repro.simd.resilient`.
"""

from repro.resilience.breaker import (
    CircuitBreaker,
    all_breakers,
    breaker,
    reset_breakers,
)
from repro.resilience.checkpoint import (
    CheckpointStore,
    checkpoint_key,
)
from repro.resilience.inject import (
    CommsFault,
    CommsFaultInjector,
    FaultCampaign,
    FaultEvent,
    FaultyMemory,
    KillAtIteration,
    SimulatedCrash,
    bit_rot_file,
    flip_field_bit,
    torn_write_file,
    truncate_file,
)
from repro.resilience.supervisor import (
    DEGRADATION_LADDER,
    SuperviseResult,
    supervised_solve,
)
from repro.resilience.ft_solver import (
    FTSolverResult,
    ft_bicgstab,
    ft_conjugate_gradient,
    ft_mixed_precision_cgne,
    ft_solve_wilson_cgne,
)
from repro.resilience.campaign import (
    CAMPAIGN_CASES,
    CHAOS_CASES,
    SilentCorruption,
    default_campaign_factory,
    run_chaos_campaign,
    run_default_campaign,
)

__all__ = [
    "FaultCampaign",
    "FaultEvent",
    "CommsFault",
    "CommsFaultInjector",
    "FaultyMemory",
    "KillAtIteration",
    "SimulatedCrash",
    "flip_field_bit",
    "bit_rot_file",
    "torn_write_file",
    "truncate_file",
    "FTSolverResult",
    "ft_conjugate_gradient",
    "ft_bicgstab",
    "ft_solve_wilson_cgne",
    "ft_mixed_precision_cgne",
    "CheckpointStore",
    "checkpoint_key",
    "CircuitBreaker",
    "breaker",
    "all_breakers",
    "reset_breakers",
    "DEGRADATION_LADDER",
    "SuperviseResult",
    "supervised_solve",
    "CAMPAIGN_CASES",
    "CHAOS_CASES",
    "SilentCorruption",
    "default_campaign_factory",
    "run_default_campaign",
    "run_chaos_campaign",
]

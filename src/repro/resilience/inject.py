"""Seeded, deterministic fault-injection campaigns.

The three system-fault classes a production lattice-QCD run meets:

* **Memory SDC** — a bit flips in DRAM or a register file and a load
  returns a wrong value.  :class:`FaultyMemory` wraps the simulator
  memory of :mod:`repro.sve.memory` and flips one bit of a scheduled
  read; :func:`flip_field_bit` corrupts lattice field data in place.
* **Comms faults** — halo messages dropped, corrupted, truncated or
  duplicated on the wire.  :class:`CommsFaultInjector` plugs into
  :class:`repro.grid.comms.DistributedLattice`.
* **Toolchain defects** — the paper's own Section V-D class, already
  modelled by :mod:`repro.sve.faults`; campaigns absorb the ``fired``
  counters of a :class:`~repro.sve.faults.FaultModel` so all three
  classes report uniformly.
* **Disk faults** — archived bytes rot (:func:`bit_rot_file`), files
  are truncated (:func:`truncate_file`), or an in-place writer dies
  mid-write leaving a zero-padded prefix (:func:`torn_write_file`).
  These exercise the durable tier: gauge archives
  (:mod:`repro.grid.io`) and the checkpoint store
  (:mod:`repro.resilience.checkpoint`).
* **Crashes** — :class:`KillAtIteration` raises
  :class:`SimulatedCrash` at a scheduled solver iteration, modelling a
  node loss mid-solve; the supervised runtime
  (:mod:`repro.resilience.supervisor`) must resume from the newest
  durable checkpoint.

Everything is driven by one :class:`FaultCampaign` with a seed: the
same seed replays the identical fault schedule, which is what makes
campaign results reproducible and regressions bisectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sve.faults import FaultModel
from repro.sve.memory import Memory
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a campaign run."""

    kind: str      # 'memory-bitflip' | 'field-bitflip' | 'comms-*' | ...
    target: str    # what it hit (message id, read ordinal, field name)
    detail: str = ""


class FaultCampaign:
    """A seeded fault schedule plus the ledger of what happened.

    The campaign records three independent streams:

    * ``events`` — faults that fired (ground truth, known only to the
      injectors),
    * ``detections`` — faults some mechanism noticed,
    * ``recoveries`` — detected faults that were repaired.

    Classification of an experiment cell (see
    :mod:`repro.resilience.campaign`) compares the three: a fired
    fault with no detection and a wrong answer is a *silent
    corruption*.
    """

    def __init__(self, seed: int = 0, name: str = "") -> None:
        self.seed = int(seed)
        self.name = name or f"campaign-{seed}"
        self.rng = np.random.default_rng(self.seed)
        self.events: list[FaultEvent] = []
        self.detections: list[str] = []
        self.recoveries: list[str] = []

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def record_fired(self, kind: str, target: str, detail: str = "") -> None:
        self.events.append(FaultEvent(kind=kind, target=target,
                                      detail=detail))
        # The ledger is ground truth; telemetry only mirrors it.
        if _telemetry.metrics_on():
            _telemetry_metrics.registry().counter("fault.fired").inc()
            _telemetry.event("fault.fired", campaign=self.name,
                             kind=kind, target=target)

    def record_detected(self, what: str) -> None:
        self.detections.append(what)
        if _telemetry.metrics_on():
            _telemetry_metrics.registry().counter("fault.detected").inc()
            _telemetry.event("fault.detected", campaign=self.name,
                             what=what)

    def record_recovered(self, what: str) -> None:
        self.recoveries.append(what)
        if _telemetry.metrics_on():
            _telemetry_metrics.registry().counter("fault.recovered").inc()
            _telemetry.event("fault.recovered", campaign=self.name,
                             what=what)

    @property
    def fired(self) -> int:
        return len(self.events)

    @property
    def detected(self) -> int:
        return len(self.detections)

    @property
    def recovered(self) -> int:
        return len(self.recoveries)

    def absorb_toolchain(self, fault_model: Optional[FaultModel]) -> None:
        """Fold a toolchain fault model's ``fired`` counters into the
        event ledger (one event per defect that fired)."""
        if fault_model is None:
            return
        for defect, count in fault_model.fired.items():
            self.record_fired("toolchain-predicate", defect,
                              detail=f"fired {count}x")

    def reset(self) -> "FaultCampaign":
        """Clear the ledger and rewind the RNG to the seed, so the
        identical schedule replays."""
        self.rng = np.random.default_rng(self.seed)
        self.events.clear()
        self.detections.clear()
        self.recoveries.clear()
        return self

    def summary(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "fired": self.fired,
            "detected": self.detected,
            "recovered": self.recovered,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.summary()
        return (f"<FaultCampaign {s['name']} fired={s['fired']} "
                f"detected={s['detected']} recovered={s['recovered']}>")


# ======================================================================
# Comms faults
# ======================================================================

@dataclass(frozen=True)
class CommsFault:
    """One scheduled wire fault.

    ``message`` is the global message ordinal it targets (the
    :class:`~repro.grid.comms.CommsStats` message counter at send
    time).  A *transient* fault fires only on the first delivery
    attempt — a retransmission goes through clean, so the self-healing
    path can recover.  A ``persistent`` fault fires on every attempt,
    modelling a broken link: detectable, not recoverable.
    """

    kind: str                 # 'drop' | 'corrupt' | 'truncate' | 'duplicate'
    message: int
    persistent: bool = False

    KINDS = ("drop", "corrupt", "truncate", "duplicate")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown comms fault kind {self.kind!r}; "
                             f"known: {self.KINDS}")


class CommsFaultInjector:
    """Applies scheduled :class:`CommsFault` to wire messages.

    Plugs into ``DistributedLattice(comms_faults=...)``; the comms
    layer calls :meth:`deliver` once per transmission attempt and
    receives zero or more payload copies back.
    """

    def __init__(self, campaign: FaultCampaign,
                 faults: list = ()) -> None:
        self.campaign = campaign
        self.faults = list(faults)

    @classmethod
    def random_schedule(
        cls, campaign: FaultCampaign, n_messages: int, rate: float = 0.05,
        kinds=CommsFault.KINDS, persistent_fraction: float = 0.0,
    ) -> "CommsFaultInjector":
        """A seeded random schedule over the first ``n_messages``."""
        rng = campaign.rng
        faults = []
        for msg in range(n_messages):
            if rng.random() < rate:
                kind = str(rng.choice(list(kinds)))
                persistent = bool(rng.random() < persistent_fraction)
                faults.append(CommsFault(kind=kind, message=msg,
                                         persistent=persistent))
        return cls(campaign, faults)

    def deliver(self, payload: np.ndarray, message: int, attempt: int,
                stats=None) -> list:
        """One transmission attempt: returns the delivered copies
        (empty list = dropped)."""
        copies = [payload]
        for f in self.faults:
            if f.message != message or (attempt > 0 and not f.persistent):
                continue
            tag = f"msg{message}" + ("/persistent" if f.persistent else "")
            if f.kind == "drop":
                self.campaign.record_fired("comms-drop", tag)
                return []
            if f.kind == "corrupt":
                corrupted = payload.copy()
                pos = int(self.campaign.rng.integers(corrupted.size))
                bit = int(self.campaign.rng.integers(8))
                corrupted[pos] ^= np.uint8(1 << bit)
                self.campaign.record_fired(
                    "comms-corrupt", tag, detail=f"byte {pos} bit {bit}"
                )
                copies = [corrupted if c is payload else c for c in copies]
            elif f.kind == "truncate":
                cut = int(self.campaign.rng.integers(1, max(payload.size, 2)))
                self.campaign.record_fired(
                    "comms-truncate", tag, detail=f"lost {cut} bytes"
                )
                copies = [c[:-cut] if c is payload else c for c in copies]
            elif f.kind == "duplicate":
                self.campaign.record_fired("comms-duplicate", tag)
                copies = copies + [copies[0]]
        return copies


# ======================================================================
# Memory faults (SDC)
# ======================================================================

class FaultyMemory(Memory):
    """Simulator memory whose scheduled reads suffer one-bit SDC.

    ``flip_reads`` maps a read ordinal (counting every
    :meth:`read_array` / :meth:`gather_elements` call) to the fault;
    the flipped byte/bit position is drawn from the campaign RNG, so
    one seed gives one reproducible corruption pattern.  Writes and
    memory contents stay pristine — the model is a disturbed load,
    the dominant DRAM SDC presentation.
    """

    def __init__(self, size: int, campaign: FaultCampaign,
                 flip_reads=()) -> None:
        super().__init__(size)
        self.campaign = campaign
        self.flip_reads = set(int(i) for i in flip_reads)
        self.reads = 0

    def _maybe_flip(self, out: np.ndarray, what: str) -> np.ndarray:
        ordinal = self.reads
        self.reads += 1
        if ordinal not in self.flip_reads or out.nbytes == 0:
            return out
        raw = out.view(np.uint8).reshape(-1)
        pos = int(self.campaign.rng.integers(raw.size))
        bit = int(self.campaign.rng.integers(8))
        raw[pos] ^= np.uint8(1 << bit)
        self.campaign.record_fired(
            "memory-bitflip", f"read#{ordinal}",
            detail=f"{what}: byte {pos} bit {bit}"
        )
        return out

    def read_array(self, addr, dtype, count):
        out = super().read_array(addr, dtype, count)
        return self._maybe_flip(out, f"read_array@{addr}")

    def gather_elements(self, addrs, active, dtype):
        out = super().gather_elements(addrs, active, dtype)
        return self._maybe_flip(out, "gather")


# ======================================================================
# Disk faults (bit rot, truncation, torn writes)
# ======================================================================

def bit_rot_file(path, campaign: FaultCampaign, offset: int = None,
                 bit: int = None) -> int:
    """Flip one bit of the file at ``path`` in place (storage bit rot).

    With ``offset`` unset the position is drawn from the campaign RNG
    over the *second half* of the file — the payload region of every
    format in this codebase (headers are a few hundred bytes, payloads
    kilobytes), so the rot lands where only a payload checksum can
    catch it.  Returns the flipped offset."""
    import os

    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"{path}: cannot rot an empty file")
    if offset is None:
        offset = int(campaign.rng.integers(size // 2, size))
    if bit is None:
        bit = int(campaign.rng.integers(8))
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)[0]
        f.seek(offset)
        f.write(bytes([byte ^ (1 << bit)]))
    campaign.record_fired("disk-bitrot", os.path.basename(path),
                          detail=f"byte {offset} bit {bit}")
    return offset


def truncate_file(path, campaign: FaultCampaign, keep: int = None) -> int:
    """Cut the tail off the file at ``path`` (interrupted copy, full
    filesystem, lost append).  ``keep`` is the surviving byte count;
    drawn from the campaign RNG when unset.  Returns it."""
    import os

    size = os.path.getsize(path)
    if size < 2:
        raise ValueError(f"{path}: too small to truncate")
    if keep is None:
        keep = int(campaign.rng.integers(1, size))
    with open(path, "r+b") as f:
        f.truncate(keep)
    campaign.record_fired("disk-truncate", os.path.basename(path),
                          detail=f"kept {keep} of {size} bytes")
    return keep


def torn_write_file(path, campaign: FaultCampaign, cut: int = None) -> int:
    """Model a non-atomic in-place writer dying mid-write: the file
    keeps its length but everything past ``cut`` is zeros (the
    preallocated-but-unwritten tail).  This is exactly the failure the
    atomic temp-file/rename discipline of :func:`repro.grid.io.
    atomic_write` makes impossible.  Returns the cut offset."""
    import os

    size = os.path.getsize(path)
    if size < 2:
        raise ValueError(f"{path}: too small to tear")
    if cut is None:
        cut = int(campaign.rng.integers(1, size))
    with open(path, "r+b") as f:
        f.seek(cut)
        f.write(b"\x00" * (size - cut))
    campaign.record_fired("disk-torn-write", os.path.basename(path),
                          detail=f"zeroed past byte {cut} of {size}")
    return cut


# ======================================================================
# Crash simulation
# ======================================================================

class SimulatedCrash(RuntimeError):
    """The process 'dies' here: raised by :class:`KillAtIteration` to
    model node loss / OOM-kill / power cut mid-solve.  Recovery code
    must treat it like any crash — nothing after the raise point ran."""


class KillAtIteration:
    """Kill the solve when its iteration counter reaches ``iteration``.

    ``times`` controls how many attempts die (default 1: the classic
    crash-then-restart scenario; higher values force the supervisor
    down its degradation ladder).  The schedule records each kill into
    the campaign ledger — the ground truth the classifier compares
    detections against."""

    def __init__(self, campaign: FaultCampaign, iteration: int,
                 times: int = 1, name: str = "solve") -> None:
        self.campaign = campaign
        self.iteration = int(iteration)
        self.times = int(times)
        self.name = name
        self.kills = 0

    @property
    def exhausted(self) -> bool:
        return self.kills >= self.times

    def check(self, iteration: int) -> None:
        """Raise :class:`SimulatedCrash` when the schedule says so."""
        if self.exhausted or iteration < self.iteration:
            return
        self.kills += 1
        self.campaign.record_fired(
            "crash-kill", self.name,
            detail=f"killed at iteration {iteration} "
                   f"(kill {self.kills}/{self.times})",
        )
        raise SimulatedCrash(
            f"simulated crash at iteration {iteration} of {self.name}"
        )


# ======================================================================
# Field faults (SDC in lattice data)
# ======================================================================

def flip_field_bit(lat, campaign: FaultCampaign, index: int = None,
                   bit: int = None, name: str = "field"):
    """Flip one bit of one real component of a lattice field in place.

    Works on anything with ``.data`` holding a complex numpy array
    (:class:`repro.grid.lattice.Lattice`) — for a
    ``DistributedLattice`` pass one of its ``.locals``.  Returns
    ``(index, bit)`` so a test can re-derive the blast radius.
    """
    data = lat.data
    if data.dtype == np.complex128:
        width, uint = 64, np.uint64
        fview = data.view(np.uint64).reshape(-1)
    elif data.dtype == np.complex64:
        width, uint = 32, np.uint32
        fview = data.view(np.uint32).reshape(-1)
    else:
        raise TypeError(f"cannot flip bits of dtype {data.dtype}")
    if index is None:
        index = int(campaign.rng.integers(fview.size))
    if bit is None:
        # Prefer high mantissa / exponent bits: visible, finite-ish.
        bit = int(campaign.rng.integers(width // 2, width - 1))
    fview[index] ^= uint(1) << uint(bit)
    campaign.record_fired("field-bitflip", name,
                          detail=f"element {index} bit {bit}")
    return index, bit

"""Durable checkpoint store for solver state and gauge fields.

PR 1's fault-tolerant solvers already keep an *in-memory* copy of the
last verified-good iterate — enough to survive an SDC, useless against
a crash, a deadline overrun, or a torn write: the process dies and the
whole solve restarts from iteration zero.  This module is the durable
tier underneath that machinery, in the tradition of the restartable
solver stacks production Grid deployments ship (arXiv:1512.03487) for
long solves on machines where node loss is routine (arXiv:2112.01852).

Design:

* **Atomic writes** — every checkpoint lands via write-temp / flush /
  fsync / rename (:func:`repro.grid.io.atomic_write`), so a crash
  mid-save can never tear a checkpoint file; at worst the newest
  checkpoint is the previous one.
* **Versioned header + CRC-32 payload** — a checkpoint file is a small
  ASCII header (magic + version, key, iteration, residual, tolerance,
  policy fingerprint, array directory) followed by the raw array
  bytes, whose CRC-32 is recorded in the header and verified on load.
* **Corrupt-file quarantine** — a checkpoint that fails verification
  is moved to ``<root>/quarantine/`` (never silently used, never
  deleted: it is forensic evidence) and the store falls back to the
  next-newest valid checkpoint.
* **Keying** — checkpoints are grouped under a key derived from
  (operator name, gauge-field hash, source hash, tolerance), so a
  restarted job finds exactly the checkpoints of *its own* solve and
  a different gauge configuration or RHS can never be resumed from.
* **Retention** — after each successful save the oldest checkpoints
  beyond ``retention`` are pruned, bounding disk use for long solves.

The store is deliberately dumb about *what* it persists: a checkpoint
is a named bundle of numpy arrays plus scalar metadata.  The solver
supervisor (:mod:`repro.resilience.supervisor`) stores ``x`` and the
residual history; :func:`save_gauge_state` / :func:`load_gauge_state`
store the four link fields of a gauge configuration.
"""

from __future__ import annotations

import hashlib
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry

MAGIC = "REPRO_CKPT_V1"

#: Conservative filename alphabet for key directories.
_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


class CheckpointCorrupt(ValueError):
    """A checkpoint file failed header or CRC verification."""


def _count(name: str, n: int = 1) -> None:
    if _telemetry.metrics_on():
        _telemetry_metrics.registry().counter(name).inc(n)


# ======================================================================
# Keying
# ======================================================================

def _short_hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def checkpoint_key(operator, b, tol: float) -> str:
    """The durable-store key of one logical solve.

    Combines the operator's name, a hash of its gauge links (so a
    different configuration never resumes from these checkpoints), a
    hash of the source, and the tolerance.  Falls back to structural
    descriptions for operators/fields without the usual surfaces.
    """
    from repro.grid.checksum import field_checksum

    name = type(operator).__name__
    base = getattr(operator, "base", None)
    links = getattr(operator, "links", None)
    if links is None and base is not None:
        links = getattr(base, "links", None)
    if links is not None:
        try:
            gauge = _short_hash(",".join(field_checksum(u) for u in links))
        except Exception:  # noqa: BLE001 - structural fallback
            gauge = _short_hash(repr(links))
    else:
        gauge = "nogauge"
    try:
        source = field_checksum(b)[:12]
    except Exception:  # noqa: BLE001 - structural fallback
        source = _short_hash(repr(getattr(b, "tensor_shape", b)))
    return f"{name}-g{gauge}-s{source}-tol{tol:g}"


def policy_fingerprint() -> str:
    """A short stable description of the resolved execution policy —
    recorded in every checkpoint so a restart can report under which
    configuration the state was produced (the state itself is policy-
    independent: every policy computes the same numbers)."""
    from repro.engine.policy import current_policy

    p = current_policy()
    return (f"backend={p.backend}/enabled={p.enabled}/fused={p.fused}/"
            f"overlap={p.overlap_comms}/batching={p.batching}/"
            f"workers={p.workers}")


# ======================================================================
# The checkpoint record
# ======================================================================

@dataclass
class Checkpoint:
    """One verified checkpoint, loaded or about to be saved."""

    key: str
    iteration: int
    residual: float
    tol: float
    policy: str = ""
    arrays: dict = field(default_factory=dict)
    path: str = ""

    def render_header(self, payload: bytes) -> str:
        specs = []
        for name, arr in self.arrays.items():
            if _SAFE.search(name):
                raise ValueError(f"unsafe array name {name!r}")
            shape = "x".join(str(d) for d in arr.shape)
            specs.append(f"{name}:{arr.dtype.name}:{shape}")
        lines = [
            f"BEGIN_CKPT {MAGIC}",
            f"key = {self.key}",
            f"iteration = {int(self.iteration)}",
            f"residual = {self.residual!r}",
            f"tol = {self.tol!r}",
            f"policy = {self.policy}",
            f"arrays = {' '.join(specs)}",
            f"payload_bytes = {len(payload)}",
            f"payload_crc = {zlib.crc32(payload)}",
            "END_CKPT",
        ]
        return "\n".join(lines) + "\n"


def _encode(ck: Checkpoint) -> bytes:
    payload = b"".join(
        np.ascontiguousarray(arr).tobytes() for arr in ck.arrays.values()
    )
    return ck.render_header(payload).encode() + payload


def _decode(raw: bytes, path: str = "", verify: bool = True) -> Checkpoint:
    end = raw.find(b"END_CKPT")
    if end < 0:
        raise CheckpointCorrupt(f"{path}: missing END_CKPT")
    end = raw.index(b"\n", end) + 1
    try:
        text = raw[:end].decode()
    except UnicodeDecodeError:
        raise CheckpointCorrupt(f"{path}: undecodable header") from None
    lines = [ln.strip() for ln in text.splitlines()]
    if not lines or not lines[0].startswith("BEGIN_CKPT"):
        raise CheckpointCorrupt(f"{path}: missing BEGIN_CKPT")
    if MAGIC not in lines[0]:
        raise CheckpointCorrupt(f"{path}: not a {MAGIC} file")
    fields_ = {}
    for ln in lines[1:]:
        if ln == "END_CKPT":
            break
        if "=" in ln:
            k, v = ln.split("=", 1)
            fields_[k.strip()] = v.strip()
    payload = raw[end:]
    try:
        nbytes = int(fields_["payload_bytes"])
        crc = int(fields_["payload_crc"])
        iteration = int(fields_["iteration"])
        residual = float(fields_["residual"])
        tol = float(fields_["tol"])
        key = fields_["key"]
        specs = fields_["arrays"].split()
    except (KeyError, ValueError) as e:
        raise CheckpointCorrupt(f"{path}: malformed header ({e})") from None
    if verify:
        if len(payload) != nbytes:
            raise CheckpointCorrupt(
                f"{path}: payload is {len(payload)} bytes, header says "
                f"{nbytes} (truncated or torn?)"
            )
        if zlib.crc32(payload) != crc:
            raise CheckpointCorrupt(f"{path}: payload CRC mismatch")
    arrays = {}
    offset = 0
    for spec in specs:
        try:
            name, dtype_name, shape_s = spec.split(":")
            shape = tuple(int(d) for d in shape_s.split("x") if d)
            dtype = np.dtype(dtype_name)
        except (ValueError, TypeError) as e:
            raise CheckpointCorrupt(f"{path}: bad array spec {spec!r} "
                                    f"({e})") from None
        count = 1
        for d in shape:
            count *= d
        nb = count * dtype.itemsize
        chunk = payload[offset:offset + nb]
        if len(chunk) != nb:
            raise CheckpointCorrupt(
                f"{path}: array {name!r} runs past end of payload"
            )
        arrays[name] = np.frombuffer(chunk, dtype=dtype).reshape(
            shape).copy()
        offset += nb
    return Checkpoint(key=key, iteration=iteration, residual=residual,
                      tol=tol, policy=fields_.get("policy", ""),
                      arrays=arrays, path=path)


def read_checkpoint(path, verify: bool = True) -> Checkpoint:
    """Read one checkpoint file.  With ``verify`` (default) the CRC
    and length are checked and :class:`CheckpointCorrupt` raised on
    mismatch; ``verify=False`` models the naive reader that trusts the
    bytes — campaign cases use it to demonstrate the silent-corruption
    outcome the verification exists to prevent."""
    with open(path, "rb") as f:
        raw = f.read()
    return _decode(raw, path=os.fspath(path), verify=verify)


# ======================================================================
# The store
# ======================================================================

class CheckpointStore:
    """Durable, keyed, CRC-verified checkpoint directory.

    Layout::

        <root>/<keydir>/ckpt-<iteration>.ckpt
        <root>/quarantine/<keydir>-<filename>

    ``keydir`` is a filesystem-safe slug of the key plus a short hash
    (two distinct keys can never collide into one directory).
    ``campaign`` (optional) receives ``record_detected`` /
    ``record_recovered`` calls when corruption is found and an older
    checkpoint takes over — the same ledger protocol the comms layer
    uses.
    """

    def __init__(self, root, retention: int = 3, campaign=None) -> None:
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        self.root = os.fspath(root)
        self.retention = int(retention)
        self.campaign = campaign
        self.saves = 0
        self.loads = 0
        self.quarantines = 0
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _keydir(self, key: str) -> str:
        slug = _SAFE.sub("_", key)[:80]
        return os.path.join(self.root, f"{slug}-{_short_hash(key)}")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    def list(self, key: str) -> list:
        """Checkpoint paths for ``key``, newest (highest iteration)
        first."""
        d = self._keydir(key)
        if not os.path.isdir(d):
            return []
        entries = []
        for name in os.listdir(d):
            m = re.fullmatch(r"ckpt-(\d+)\.ckpt", name)
            if m:
                entries.append((int(m.group(1)), os.path.join(d, name)))
        entries.sort(reverse=True)
        return [path for _, path in entries]

    # ------------------------------------------------------------------
    def save(self, key: str, arrays: dict, iteration: int,
             residual: float = 0.0, tol: float = 0.0,
             policy: Optional[str] = None) -> str:
        """Atomically persist one checkpoint; returns its path.

        ``arrays`` maps names to numpy arrays; scalar metadata rides in
        the header.  An existing checkpoint at the same iteration is
        replaced atomically.  Older checkpoints beyond the retention
        budget are pruned afterwards."""
        from repro.grid.io import atomic_write

        ck = Checkpoint(
            key=key, iteration=int(iteration), residual=float(residual),
            tol=float(tol),
            policy=policy_fingerprint() if policy is None else policy,
            arrays=dict(arrays),
        )
        d = self._keydir(key)
        os.makedirs(d, exist_ok=True)
        path = os.path.join(d, f"ckpt-{int(iteration):08d}.ckpt")
        atomic_write(path, _encode(ck))
        self.saves += 1
        _count("checkpoint.saves")
        _telemetry.event("checkpoint.save", key=key,
                         iteration=int(iteration))
        self.prune(key)
        return path

    def prune(self, key: str) -> int:
        """Delete checkpoints beyond the retention budget (newest are
        kept); returns how many were removed."""
        removed = 0
        for path in self.list(key)[self.retention:]:
            try:
                os.unlink(path)
                removed += 1
            except OSError:  # pragma: no cover - already gone
                pass
        if removed:
            _count("checkpoint.pruned", removed)
        return removed

    # ------------------------------------------------------------------
    def quarantine(self, path: str, reason: str = "") -> str:
        """Move a corrupt checkpoint file aside (never delete: it is
        forensic evidence) and account for it."""
        qdir = self._quarantine_dir()
        os.makedirs(qdir, exist_ok=True)
        parent = os.path.basename(os.path.dirname(path))
        dest = os.path.join(qdir, f"{parent}-{os.path.basename(path)}")
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover - race with another process
            dest = path
        self.quarantines += 1
        _count("checkpoint.quarantined")
        _telemetry.event("checkpoint.quarantine", path=path,
                         reason=reason)
        if self.campaign is not None:
            self.campaign.record_detected(
                f"checkpoint: corrupt file quarantined ({reason})"
            )
        return dest

    def quarantined(self) -> list:
        """Paths of every quarantined checkpoint file."""
        qdir = self._quarantine_dir()
        if not os.path.isdir(qdir):
            return []
        return sorted(os.path.join(qdir, n) for n in os.listdir(qdir))

    # ------------------------------------------------------------------
    def load_latest(self, key: str) -> Optional[Checkpoint]:
        """The newest checkpoint for ``key`` that passes verification.

        Corrupt files (bad CRC, torn payload, mangled header) are
        quarantined and the next-newest tried; returns ``None`` when no
        valid checkpoint exists."""
        fell_back = False
        for path in self.list(key):
            try:
                ck = read_checkpoint(path, verify=True)
            except (CheckpointCorrupt, OSError) as exc:
                self.quarantine(path, reason=str(exc))
                fell_back = True
                continue
            if ck.key != key:
                self.quarantine(path, reason="key mismatch")
                fell_back = True
                continue
            self.loads += 1
            _count("checkpoint.loads")
            if fell_back and self.campaign is not None:
                self.campaign.record_recovered(
                    f"checkpoint: fell back to iteration {ck.iteration}"
                )
            return ck
        return None


# ======================================================================
# Gauge-field convenience
# ======================================================================

def save_gauge_state(store: CheckpointStore, key: str, links,
                     iteration: int = 0) -> str:
    """Persist a gauge configuration (list of link :class:`Lattice`)
    into the store as one checkpoint bundle of canonical arrays."""
    arrays = {
        f"u{mu}": np.ascontiguousarray(u.to_canonical())
        for mu, u in enumerate(links)
    }
    return store.save(key, arrays, iteration=iteration)


def load_gauge_state(store: CheckpointStore, key: str, grid):
    """Restore gauge links saved by :func:`save_gauge_state` onto
    ``grid``; returns ``None`` when no valid checkpoint exists."""
    from repro.grid.lattice import Lattice

    ck = store.load_latest(key)
    if ck is None:
        return None
    links = []
    for mu in range(len(ck.arrays)):
        can = ck.arrays[f"u{mu}"]
        links.append(Lattice(grid, (3, 3)).from_canonical(can))
    return links

"""The supervised solve runtime: retry, resume, degrade, survive.

:func:`repro.engine.solve_fermion` runs one attempt of one solver
under one policy; the fault-tolerant recursions underneath it survive
*in-process* hazards (SDC, breakdown, drift).  What neither survives
is the attempt itself dying — a crash, a deadline overrun, a solver
that stalls under an aggressive configuration.  :func:`supervised_solve`
is the envelope that turns one fragile attempt into a run that ends in
a classified outcome:

* **Durable checkpoint/restart** — for fault-tolerant single-RHS CG,
  every verified-good iterate (the ``good_hook`` seam of
  :func:`~repro.resilience.ft_solver.ft_conjugate_gradient`) is
  persisted through a :class:`~repro.resilience.checkpoint.
  CheckpointStore`; each new attempt resumes from the newest valid
  checkpoint instead of iteration zero.
* **Watchdogs** — a per-attempt wall-clock deadline (checked at the
  checkpoint seam, so a hung attempt is abandoned at the next
  verified-good point), a per-attempt iteration budget, and
  post-attempt classification of non-convergence into *stall*
  (residual plateau), *divergence* (non-finite residual) or
  *iteration-budget*.
* **Seeded backoff** — retry delays grow exponentially with
  deterministic jitter drawn from a seeded RNG (the campaign seed by
  default), so a chaos run replays the identical schedule.
* **The degradation ladder** — each non-crash failure escalates to the
  next rung of :data:`DEGRADATION_LADDER`, a nested
  ``engine.scope(...)`` override that trades performance for safety:
  overlapped comms → ordered, fused kernels → layered, batched RHS →
  per-column, and finally the reference path (engine off, mixed
  precision collapsed to double).  Every rung computes bit-identical
  numbers — the ladder changes *how*, never *what*.
* **Circuit breakers** — attempt failures feed the per-operator
  breaker (:mod:`repro.resilience.breaker`); a breaker left open by
  previous failed solves makes the next call skip the as-configured
  rung entirely and start degraded.

On a pristine run the supervisor is a pass-through: one attempt, rung
zero (no overrides), and the underlying result — bit-identical to
calling :func:`solve_fermion` directly, checkpointing or not (the hook
observes, copies, and feeds nothing back).
"""

from __future__ import annotations

import math
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.engine.policy import scope
from repro.resilience.breaker import breaker
from repro.resilience.checkpoint import CheckpointStore, checkpoint_key
from repro.resilience.inject import SimulatedCrash
from repro.telemetry import flightrec as _flightrec
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import trace as _telemetry


class AttemptTimeout(RuntimeError):
    """An attempt overran its wall-clock deadline and was abandoned."""


@dataclass(frozen=True)
class Rung:
    """One step of the degradation ladder.

    ``overrides`` feed ``engine.scope``; ``method`` (if set) replaces
    a ``"mixed"`` solve — the last rung falls back to full double
    precision, the safest arithmetic the stack has.
    """

    name: str
    overrides: tuple = ()
    method: Optional[str] = None

    def scope_kwargs(self) -> dict:
        return dict(self.overrides)


#: Progressively safer execution configurations.  Later rungs disable
#: more machinery; every rung is bit-identical in results (DESIGN §12).
DEGRADATION_LADDER = (
    Rung("as-configured"),
    Rung("ordered-comms", (("overlap_comms", False),)),
    Rung("layered-kernels", (("overlap_comms", False), ("fused", False))),
    Rung("per-column", (("overlap_comms", False), ("fused", False),
                        ("batching", False))),
    Rung("reference", (("overlap_comms", False), ("fused", False),
                       ("batching", False), ("enabled", False)),
         method="cg"),
)

#: Outcomes that indicate the *configuration* may be at fault and the
#: ladder should escalate.  A crash (node loss) says nothing about the
#: configuration — the next attempt resumes at the same rung.
_ESCALATE = frozenset(
    {"stall", "divergence", "timeout", "iteration-budget", "error"}
)


@dataclass(frozen=True)
class AttemptReport:
    """What one attempt did, for the supervision ledger."""

    attempt: int
    rung: str
    outcome: str          # converged | crash | timeout | stall |
    #                       divergence | iteration-budget | error
    iterations: int = 0
    residual: float = float("nan")
    resumed_from: Optional[int] = None
    backoff: float = 0.0
    detail: str = ""


@dataclass
class SuperviseResult:
    """The supervised run: final result plus the attempt ledger."""

    result: object = None
    converged: bool = False
    attempts: list = field(default_factory=list)
    total_iterations: int = 0
    checkpoints_saved: int = 0
    resumes: int = 0
    key: str = ""
    #: The post-mortem bundle (and where it was written, if a
    #: ``postmortem_dir`` was given) — populated only when telemetry is
    #: on and the run escalated or failed; ``None``/empty otherwise.
    postmortem: Optional[dict] = None
    postmortem_path: str = ""

    @property
    def rungs_used(self) -> list:
        return [a.rung for a in self.attempts]


def _count(name: str, n: int = 1) -> None:
    if _telemetry.metrics_on():
        _telemetry_metrics.registry().counter(name).inc(n)


def _last_scalar(entry) -> float:
    """A residual-history entry as one scalar (batched histories hold
    per-column lists)."""
    if isinstance(entry, (list, tuple)):
        return max(entry) if entry else 0.0
    return entry


def classify_attempt(result, stall_window: int = 8,
                     stall_improvement: float = 0.99) -> str:
    """Post-attempt watchdog: name why a finished attempt is not done.

    ``stall``: over the last ``stall_window`` recorded residuals the
    best improvement factor is worse than ``stall_improvement`` — the
    recursion is treading water and more iterations of the same
    configuration will not help.  ``divergence``: the residual went
    non-finite (the FT recursions bound this, the plain ones do not).
    Otherwise ``iteration-budget``: still progressing, just out of
    iterations.
    """
    if getattr(result, "converged", False):
        return "converged"
    residual = getattr(result, "residual", float("nan"))
    if residual is not None and not math.isfinite(_last_scalar(residual)):
        return "divergence"
    history = getattr(result, "residual_history", None) or []
    if len(history) > stall_window:
        recent = [_last_scalar(h) for h in history[-(stall_window + 1):]]
        if all(math.isfinite(r) for r in recent) and recent[0] > 0:
            if min(recent[1:]) > stall_improvement * recent[0]:
                return "stall"
    return "iteration-budget"


def backoff_schedule(rng, attempt: int, base: float, factor: float,
                     jitter: float) -> float:
    """Delay before retry ``attempt`` (1-based): exponential growth
    with multiplicative jitter in ``[1, 1+jitter]`` drawn from the
    seeded ``rng`` — deterministic per seed, desynchronised across
    seeds (the thundering-herd cure)."""
    if base <= 0.0:
        return 0.0
    return base * factor ** (attempt - 1) * (1.0 + jitter * rng.random())


def supervised_solve(
    operator,
    b,
    method: str = "cg",
    ft: bool = True,
    tol: float = 1e-8,
    max_iter: int = 1000,
    campaign=None,
    policy=None,
    store: Optional[CheckpointStore] = None,
    max_attempts: int = 5,
    deadline: Optional[float] = None,
    iteration_budget: Optional[int] = None,
    stall_window: int = 8,
    stall_improvement: float = 0.99,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
    backoff_jitter: float = 0.25,
    seed: Optional[int] = None,
    ladder: tuple = DEGRADATION_LADDER,
    on_checkpoint: Optional[Callable] = None,
    sleep: Callable = time.sleep,
    postmortem_dir: Optional[str] = None,
    **kwargs,
) -> SuperviseResult:
    """Run :func:`~repro.engine.solve.solve_fermion` under supervision.

    Parameters beyond the ``solve_fermion`` surface:

    ``store``
        A :class:`~repro.resilience.checkpoint.CheckpointStore`;
        enables durable checkpoint/resume (fault-tolerant single-RHS
        ``"cg"`` only — the one family with a verified-good seam).
    ``max_attempts`` / ``deadline`` / ``iteration_budget``
        The retry budget, per-attempt wall-clock limit (seconds), and
        per-attempt iteration cap.
    ``backoff_base`` / ``backoff_factor`` / ``backoff_jitter`` / ``seed``
        Retry-delay schedule; the jitter RNG seeds from ``seed``, else
        the campaign's seed, else 0 — same seed, same schedule.  The
        default ``backoff_base=0.0`` disables sleeping (tests and
        in-process retries want throughput, not politeness).
    ``ladder``
        The degradation rungs (see :data:`DEGRADATION_LADDER`).
    ``on_checkpoint``
        Observer called ``(iteration, x, true_rel)`` at each
        verified-good point *before* the checkpoint is written —
        the seam fault campaigns hang a
        :class:`~repro.resilience.inject.KillAtIteration` on (a crash
        there models dying before the save hit disk).
    ``sleep``
        Injectable clock for the backoff (tests pass a recorder).
    ``postmortem_dir``
        Directory for failure post-mortem bundles.  Whenever the run
        escalates or fails (any non-converged attempt) *and* telemetry
        is on, the flight recorder's bundle
        (:func:`repro.telemetry.flightrec.postmortem_bundle`) is
        attached as ``SuperviseResult.postmortem``; with a directory
        it is also written to disk (``SuperviseResult.postmortem_path``)
        for ``tools/teleview.py --postmortem``.  ``None`` keeps the
        bundle in-memory only.

    Returns a :class:`SuperviseResult`; ``.result`` is the underlying
    solver result of the final attempt (bit-identical to an
    unsupervised solve when nothing went wrong).
    """
    import numpy as np

    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    from repro.engine.solve import solve_fermion
    from repro.grid.wilson import is_spinor_batch

    batched = is_spinor_batch(b.tensor_shape)
    if seed is None:
        seed = campaign.seed if campaign is not None else 0
    rng = np.random.default_rng(seed)
    attempt_iters = (max_iter if iteration_budget is None
                     else min(max_iter, int(iteration_budget)))

    br = breaker(f"solve.{type(operator).__name__}")
    sup = SuperviseResult()
    # An already-open breaker (earlier solves kept failing) starts the
    # run pre-degraded: skip the as-configured rung.
    rung_idx = 0 if br.allow() else min(1, len(ladder) - 1)

    def _finalise(reason: str) -> SuperviseResult:
        """Attach (and optionally write) the failure post-mortem.
        A pristine run — every attempt converged, nothing escalated —
        attaches nothing; with telemetry off this is a no-op."""
        failed = any(a.outcome != "converged" for a in sup.attempts)
        if not failed or not _telemetry.metrics_on():
            return sup
        _flightrec.record("supervisor.postmortem", reason=reason,
                          attempts=len(sup.attempts))
        sup.postmortem = _flightrec.postmortem_bundle(
            supervise=sup, reason=reason)
        if postmortem_dir is not None:
            import os

            os.makedirs(postmortem_dir, exist_ok=True)
            stem = "".join(c if (c.isalnum() or c in "-_") else "-"
                           for c in reason)
            sup.postmortem_path = _flightrec.write_postmortem(
                sup.postmortem,
                os.path.join(postmortem_dir,
                             f"postmortem-{stem or 'solve'}.json"))
        return sup

    with _telemetry.span("supervised_solve",
                         operator=type(operator).__name__, method=method,
                         max_attempts=max_attempts):
        first_failure_at = None
        for attempt in range(1, max_attempts + 1):
            rung = ladder[rung_idx]
            eff_method = (rung.method
                          if rung.method is not None and method == "mixed"
                          else method)
            attempt_kwargs = dict(kwargs)
            if eff_method != method:
                # Collapsing mixed -> double drops the kwargs only the
                # mixed defect-correction loop understands.
                for k in ("max_outer", "max_inner", "inner_tol"):
                    attempt_kwargs.pop(k, None)
            ckpt_on = (store is not None and eff_method == "cg" and ft
                       and not batched)
            resumed_from = None
            base_it = 0
            if ckpt_on:
                if not sup.key:
                    sup.key = checkpoint_key(operator, b, tol)
                ck = store.load_latest(sup.key)
                if ck is not None:
                    attempt_kwargs["x0"] = b.new_like().from_canonical(
                        ck.arrays["x"])
                    base_it = resumed_from = ck.iteration
                    sup.resumes += 1
                    _count("supervisor.resumes")
                    _flightrec.record("supervisor.resume",
                                      attempt=attempt,
                                      iteration=ck.iteration)

            t0 = time.monotonic()

            def good_hook(it, x, true_rel, _base=base_it, _t0=t0):
                # Order matters: a simulated crash fires *before* the
                # save (the state at this point never reached disk); a
                # deadline overrun aborts *after* it (graceful abandon
                # keeps the verified progress for the next attempt).
                if on_checkpoint is not None:
                    on_checkpoint(_base + it, x, true_rel)
                store.save(sup.key, {"x": x.to_canonical()},
                           iteration=_base + it, residual=true_rel,
                           tol=tol)
                sup.checkpoints_saved += 1
                if deadline is not None and \
                        time.monotonic() - _t0 > deadline:
                    raise AttemptTimeout(
                        f"attempt exceeded {deadline}s deadline"
                    )

            if ckpt_on:
                attempt_kwargs["good_hook"] = good_hook

            _count("supervisor.attempts")
            result, outcome, detail = None, "error", ""
            try:
                with ExitStack() as stack:
                    # The user policy scopes first, rung overrides
                    # nest inside it (scope overrides compose with the
                    # resolved policy) — passing ``policy`` down to
                    # solve_fermion instead would *replace* the
                    # resolved policy and silently undo the ladder.
                    if policy is not None:
                        stack.enter_context(scope(policy))
                    if rung.overrides:
                        stack.enter_context(
                            scope(**rung.scope_kwargs()))
                    result = solve_fermion(
                        operator, b, method=eff_method, ft=ft, tol=tol,
                        max_iter=attempt_iters, campaign=campaign,
                        **attempt_kwargs)
                outcome = classify_attempt(
                    result, stall_window=stall_window,
                    stall_improvement=stall_improvement)
            except SimulatedCrash as exc:
                outcome, detail = "crash", str(exc)
                _count("supervisor.crashes")
            except AttemptTimeout as exc:
                outcome, detail = "timeout", str(exc)
            except Exception as exc:  # noqa: BLE001 - supervised runtime
                outcome, detail = "error", f"{type(exc).__name__}: {exc}"

            iters = int(getattr(result, "iterations", 0) or 0)
            sup.total_iterations += iters
            sup.attempts.append(AttemptReport(
                attempt=attempt, rung=rung.name, outcome=outcome,
                iterations=iters,
                residual=_last_scalar(
                    getattr(result, "residual", float("nan"))),
                resumed_from=resumed_from, detail=detail))
            _telemetry.event("supervisor.attempt", attempt=attempt,
                             rung=rung.name, outcome=outcome,
                             iterations=iters)
            _flightrec.record("supervisor.attempt", attempt=attempt,
                              rung=rung.name, outcome=outcome,
                              iterations=iters, detail=detail)

            if outcome == "converged":
                sup.result = result
                sup.converged = True
                br.record_success()
                _count("supervisor.converged")
                if first_failure_at is not None:
                    if campaign is not None:
                        campaign.record_recovered(
                            f"supervisor: converged on attempt "
                            f"{attempt} after "
                            f"{sup.attempts[-2].outcome}"
                        )
                    if _telemetry.metrics_on():
                        _telemetry_metrics.registry().histogram(
                            "supervisor.recovery_time").observe(
                            time.monotonic() - first_failure_at)
                return _finalise(f"recovered-attempt-{attempt}")

            sup.result = result
            br.record_failure(outcome)
            if campaign is not None:
                # The injector records the *fired* crash (ground
                # truth); catching it here is the *detection* — the
                # two ledger streams the classifier compares.
                campaign.record_detected(
                    f"supervisor: attempt {attempt} {outcome}"
                    + (f" ({detail})" if detail else "")
                )
            if first_failure_at is None:
                first_failure_at = time.monotonic()
            if attempt == max_attempts:
                break
            _count("supervisor.retries")
            if outcome in _ESCALATE and rung_idx < len(ladder) - 1:
                rung_idx += 1
                _count("supervisor.degradations")
                _telemetry.event("supervisor.degrade",
                                 to=ladder[rung_idx].name, why=outcome)
                _flightrec.record("supervisor.degrade",
                                  to=ladder[rung_idx].name, why=outcome)
            delay = backoff_schedule(rng, attempt, backoff_base,
                                     backoff_factor, backoff_jitter)
            if delay > 0.0:
                sup.attempts[-1] = AttemptReport(
                    **{**sup.attempts[-1].__dict__, "backoff": delay})
                sleep(delay)

    _count("supervisor.exhausted")
    return _finalise(f"exhausted-{sup.attempts[-1].outcome}")

"""The persisted result matrix and the CI baseline differ.

One :class:`Cell` per generated case: the shared
:class:`~repro.verification.outcomes.Outcome` (or ``skip``), the
skip/xfail metadata that produced it, and — for fault-free cells —
the bit-identity hash of the case's output against the engine-off
reference.  A :class:`ResultMatrix` is the JSON artifact CI uploads
and the committed ``scenarios/baseline_matrix.json`` is one of.

:func:`diff_matrices` joins two matrices on case key and classifies
every cell:

* **regression** — the outcome got strictly worse (``pass`` →
  anything, ``recovered`` → ``detected``, ...), or a previously
  running cell is now skipped;
* **hash drift** — same outcome, but the bit-identity hash moved:
  the engine now computes different bits than the committed
  reference run (a regression even when everything still "passes");
* **new-pass** — a cell that used to sit below ``pass`` (often an
  ``xfail``) now passes: not a failure, a baseline-promotion prompt;
* **added** / **removed** — coverage appeared or (a regression)
  disappeared;
* **unchanged** — everything else.

Bit-identity hashes are exact by definition, but only within one
numeric environment: a different numpy/python can legally reorder
floating-point reductions, so two *correct* runs on different stacks
hash differently.  Each matrix therefore records its
:func:`environment_fingerprint`; the differ compares hashes only when
the fingerprints match (outcome regressions gate unconditionally),
and says so in the report when it had to stand down.

:func:`gate_diff` turns a diff into the CI verdict: regressions,
hash drifts, removed cells, and fresh silent corruptions fail the
build; new passes and added coverage ride along with a promote hint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.verification.outcomes import Outcome, is_regression

#: Matrix JSON schema version (bump on incompatible shape changes).
SCHEMA_VERSION = 1

#: The non-outcome cell status: present in the cube, never executed.
SKIP = "skip"


def environment_fingerprint() -> dict:
    """The numeric environment a matrix's hashes are valid in."""
    import platform

    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


@dataclass
class Cell:
    """One (case key → result) entry of the matrix."""

    key: str
    status: str                   # an Outcome value, or "skip"
    xfail: bool = False
    expect: Optional[str] = None  # xfail's expected outcome
    reason: str = ""              # skip/xfail reason, if any
    hash: Optional[str] = None    # bit-identity hash (fault-free cells)
    seconds: float = 0.0
    detail: str = ""              # error detail for non-pass cells

    def __post_init__(self) -> None:
        if self.status != SKIP:
            Outcome(self.status)  # raises on vocabulary drift

    @property
    def ok(self) -> bool:
        """Acceptable on its own terms: passed, ended the expected
        xfail way, or is a declared skip.  A fault cell that was
        recovered/detected is ok; silent corruption never is."""
        return self.status == SKIP or self.status != Outcome.FAIL.value

    @property
    def surprising(self) -> bool:
        """An xfail cell that did not end the expected way (better or
        worse) — the differ surfaces these even when ``ok``."""
        return (self.xfail and self.expect is not None
                and self.status not in (SKIP, self.expect))


@dataclass
class ResultMatrix:
    """All cells of one run, plus the metadata to reproduce it."""

    spec: str
    mode: str                      # "pairwise" | "cartesian" | "custom"
    seed: int
    cells: dict = field(default_factory=dict)   # key -> Cell
    env: dict = field(default_factory=environment_fingerprint)

    def add(self, cell: Cell) -> None:
        if cell.key in self.cells:
            raise ValueError(f"duplicate cell key {cell.key!r}")
        self.cells[cell.key] = cell

    def counts(self) -> dict:
        out = {o.value: 0 for o in Outcome}
        out[SKIP] = 0
        for c in self.cells.values():
            out[c.status] += 1
        return out

    @property
    def executed(self) -> int:
        return sum(1 for c in self.cells.values() if c.status != SKIP)

    def failures(self) -> list:
        return [c for c in self.cells.values() if not c.ok]

    # ------------------------------------------------------------------
    # Persistence (sorted keys, no volatile fields in comparisons)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "spec": self.spec,
            "mode": self.mode,
            "seed": self.seed,
            "env": self.env,
            "counts": self.counts(),
            "cells": {
                key: {
                    "status": c.status,
                    "xfail": c.xfail,
                    "expect": c.expect,
                    "reason": c.reason,
                    "hash": c.hash,
                    "seconds": round(c.seconds, 4),
                    "detail": c.detail,
                }
                for key, c in sorted(self.cells.items())
            },
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json(cls, doc: dict) -> "ResultMatrix":
        schema = doc.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"matrix schema {schema!r} != supported {SCHEMA_VERSION}")
        m = cls(spec=doc.get("spec", "?"), mode=doc.get("mode", "custom"),
                seed=int(doc.get("seed", 0)), env=dict(doc.get("env", {})))
        for key, c in doc.get("cells", {}).items():
            m.add(Cell(
                key=key, status=c["status"], xfail=bool(c.get("xfail")),
                expect=c.get("expect"), reason=c.get("reason", ""),
                hash=c.get("hash"), seconds=float(c.get("seconds", 0.0)),
                detail=c.get("detail", ""),
            ))
        return m

    @classmethod
    def load(cls, path: str) -> "ResultMatrix":
        with open(path) as fh:
            return cls.from_json(json.load(fh))

    def format_summary(self) -> str:
        counts = self.counts()
        parts = "  ".join(f"{k}={v}" for k, v in counts.items() if v)
        return (f"# scenario matrix: {self.spec} ({self.mode}, "
                f"seed={self.seed})\n"
                f"{len(self.cells)} cells ({self.executed} executed): "
                f"{parts}")


# ======================================================================
# The differ
# ======================================================================

@dataclass
class MatrixDiff:
    """The classified join of (baseline, current) on case key."""

    regressions: list = field(default_factory=list)   # (key, old, new)
    hash_drifts: list = field(default_factory=list)   # (key, old, new)
    new_passes: list = field(default_factory=list)    # (key, old)
    improved: list = field(default_factory=list)      # (key, old, new)
    added: list = field(default_factory=list)         # keys
    removed: list = field(default_factory=list)       # keys
    new_failures: list = field(default_factory=list)  # keys (added+bad)
    unchanged: int = 0
    hashes_compared: bool = True   # False: env mismatch stood hashes down

    @property
    def clean(self) -> bool:
        """No gate-relevant change at all."""
        return not (self.regressions or self.hash_drifts or self.removed
                    or self.new_failures)

    @property
    def promotable(self) -> bool:
        """Something got better or wider: promote the baseline."""
        return bool(self.new_passes or self.improved or self.added)

    def format_report(self) -> str:
        lines = []
        for key, old, new in self.regressions:
            lines.append(f"REGRESSION  {key}: {old} -> {new}")
        for key, old, new in self.hash_drifts:
            lines.append(f"HASH DRIFT  {key}: {old[:12]}.. -> {new[:12]}..")
        for key in self.removed:
            lines.append(f"REMOVED     {key}")
        for key in self.new_failures:
            lines.append(f"NEW FAIL    {key}")
        for key, old, new in self.improved:
            lines.append(f"improved    {key}: {old} -> {new}")
        for key, old in self.new_passes:
            lines.append(f"new-pass    {key}: {old} -> pass")
        for key in self.added:
            lines.append(f"added       {key}")
        lines.append(f"unchanged   {self.unchanged} cell(s)")
        if not self.hashes_compared:
            lines.append(
                "note: bit-identity hashes not compared (numeric "
                "environments differ); outcome gates still applied")
        if self.promotable and self.clean:
            lines.append(
                "baseline promote available: "
                "tools/scenario.py promote --matrix <current> "
                "--baseline scenarios/baseline_matrix.json")
        return "\n".join(lines)


def diff_matrices(baseline: ResultMatrix,
                  current: ResultMatrix) -> MatrixDiff:
    """Classify every cell of ``current`` against ``baseline``."""
    diff = MatrixDiff()
    diff.hashes_compared = bool(baseline.env and current.env
                                and baseline.env == current.env)
    for key, new in sorted(current.cells.items()):
        old = baseline.cells.get(key)
        if old is None:
            diff.added.append(key)
            if not new.ok:
                diff.new_failures.append(key)
            continue
        if old.status == SKIP and new.status == SKIP:
            diff.unchanged += 1
        elif old.status == SKIP:
            # Coverage appeared where the baseline had a hole.
            diff.added.append(key)
            if not new.ok:
                diff.new_failures.append(key)
        elif new.status == SKIP:
            # Coverage vanished: treat like a removed cell.
            diff.removed.append(key)
        elif is_regression(old.status, new.status):
            diff.regressions.append((key, old.status, new.status))
        elif old.status != new.status:
            if new.status == Outcome.PASS.value:
                diff.new_passes.append((key, old.status))
            else:
                diff.improved.append((key, old.status, new.status))
        elif (diff.hashes_compared and old.hash and new.hash
              and old.hash != new.hash):
            diff.hash_drifts.append((key, old.hash, new.hash))
        else:
            diff.unchanged += 1
    for key in sorted(baseline.cells):
        if key not in current.cells:
            diff.removed.append(key)
    return diff


def gate_diff(diff: MatrixDiff) -> list:
    """The CI verdict: failure strings (empty = gate passed)."""
    failures = []
    for key, old, new in diff.regressions:
        failures.append(f"regressed cell {key}: {old} -> {new}")
    for key, old, new in diff.hash_drifts:
        failures.append(
            f"bit-identity drift in {key}: output no longer matches "
            f"the committed reference hash")
    for key in diff.removed:
        failures.append(f"cell disappeared from the matrix: {key}")
    for key in diff.new_failures:
        failures.append(f"new cell failed on arrival: {key}")
    return failures

"""Deterministic case generation: full cartesian and seeded pairwise.

Two modes, both pure functions of ``(spec, seed)``:

* :func:`cartesian_cases` — every constraint-satisfying cell of the
  cube, in declared axis order (the nightly configuration);
* :func:`pairwise_sample` — a greedy covering sample: every feasible
  **axis-value pair** appears in at least one emitted case (the
  classic all-pairs criterion), with a seeded RNG breaking ties so
  the same seed always yields the same cell set on every machine.

Pair feasibility is computed against the *constrained* cube: a pair
that no legal cell contains (say ``fault=comms`` with
``operator=wilson``, pruned by constraint) is not owed coverage.

The greedy loop is AETG-flavoured but deliberately simple: pick the
lexicographically first uncovered pair, gather the cells that cover
it, and among a seeded bounded sample of those pick the one covering
the most still-uncovered pairs.  Termination is by construction —
every round covers at least the target pair — and the final sweep is
exhaustive, so the coverage property is a theorem the tests assert,
not a hope.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.scenarios.spec import Case, ScenarioSpec

#: Bound on the per-round candidate pool the greedy step scores.
_POOL = 96


def cartesian_cases(spec: ScenarioSpec) -> list:
    """Every constraint-satisfying cell, declared axis order, stable."""
    cases = [Case(())]
    for axis in spec.axes:
        cases = [Case(c.values + ((axis.name, v),))
                 for c in cases for v in axis.values]
    return [c for c in cases if spec.allowed(c)]


def _pairs_of(case: Case):
    """All axis-value pairs of one case, axis order normalized."""
    vals = case.values
    for i in range(len(vals)):
        for j in range(i + 1, len(vals)):
            yield (vals[i], vals[j])


def feasible_pairs(spec: ScenarioSpec, cube: Optional[list] = None) -> set:
    """Every axis-value pair some legal cell contains — the coverage
    debt of a pairwise sample."""
    if cube is None:
        cube = cartesian_cases(spec)
    out: set = set()
    for case in cube:
        out.update(_pairs_of(case))
    return out


def _sort_key(pair) -> tuple:
    (a1, v1), (a2, v2) = pair
    return (a1, repr(v1), a2, repr(v2))


def pairwise_sample(spec: ScenarioSpec, seed: int = 0,
                    cube: Optional[list] = None,
                    min_cases: int = 0) -> list:
    """A seeded greedy all-pairs covering sample of the cube.

    Deterministic: the same ``(spec, seed, min_cases)`` yields the
    same case list, in the same order, on every platform
    (``random.Random`` is specified, unlike hash iteration order —
    all candidate sets are built in stable cube order before
    sampling).

    ``min_cases`` pads the covering set up to a floor with additional
    seeded-random distinct cells — all-pairs coverage is the
    *guarantee*, the padding buys extra depth in the same budgeted
    run (the CI job asks for ~60+ cells where pure pairwise needs
    fewer).
    """
    if cube is None:
        cube = cartesian_cases(spec)
    if not cube:
        return []
    rng = random.Random(seed)
    uncovered = feasible_pairs(spec, cube)
    chosen: list = []
    chosen_keys: set = set()

    def take(case: Case) -> None:
        if case.key not in chosen_keys:
            chosen.append(case)
            chosen_keys.add(case.key)

    while uncovered:
        target = min(uncovered, key=_sort_key)
        candidates = [c for c in cube if _covers(c, target)]
        # By construction non-empty: the pair came from the cube.
        if len(candidates) > _POOL:
            candidates = rng.sample(candidates, _POOL)
        best, best_gain = None, -1
        for c in candidates:
            gain = sum(1 for p in _pairs_of(c) if p in uncovered)
            if gain > best_gain:
                best, best_gain = c, gain
        uncovered.difference_update(_pairs_of(best))
        take(best)
    while len(chosen) < min(min_cases, len(cube)):
        take(cube[rng.randrange(len(cube))])
    return chosen


def _covers(case: Case, pair) -> bool:
    (a1, v1), (a2, v2) = pair
    return case.get(a1) == v1 and case.get(a2) == v2


def filter_cases(cases: Sequence[Case], expr: str) -> list:
    """Cases whose key satisfies ``expr``: comma-separated terms, all
    required (AND); each term is a ``substring`` the key must contain,
    or ``!substring`` it must not.  The CLI's ``--filter`` language —
    small on purpose.
    """
    terms = [t.strip() for t in expr.split(",") if t.strip()]

    def keep(case: Case) -> bool:
        for t in terms:
            if t.startswith("!"):
                if t[1:] in case.key:
                    return False
            elif t not in case.key:
                return False
        return True

    return [c for c in cases if keep(c)]

"""The default configuration cube: the §V-D matrix, scaled up.

The paper hand-ran ~40 ArmIE cells across vector lengths and tracked
known VL-specific failures by hand.  This spec declares the grown
system's whole cube — {VL 128..2048} × {backend family} × {policy
knobs} × {fault model} × {operator} — with the hand-tracked knowledge
as machine-checked metadata:

* **Constraints** prune combinations that cannot exist (a comms fault
  needs a rank-decomposed lattice; the emulated ACLE family runs the
  plain Wilson hot path only, and the fused body is *fused-unsafe*
  there — it inlines plain-numpy semantics the emulated backends do
  not share).
* **Skip rules** keep known exclusions visible: emulated SVE cells
  beyond the paper's validated 128/256/512 appear in every matrix as
  reasoned ``skip`` holes, never as silent absences.
* **Xfail rules** encode known non-passes: the comms cells whose
  seeded schedule draws a *persistent* dead link are expected to end
  ``detected`` — bounded retry exhausts, the run knows its halo never
  arrived, and nothing can recover that.  If one ever passes, the
  differ flags a new-pass (promote prompt), not a silent change.
"""

from __future__ import annotations

from repro.scenarios.runner import comms_schedule_kind
from repro.scenarios.spec import (
    Axis,
    Constraint,
    ScenarioSpec,
    skip_rule,
    xfail_rule,
)
from repro.verification.outcomes import Outcome

#: Vector lengths: the paper's validated trio plus the wider legal
#: SVE lengths the reproduction supports.
VLS = (128, 256, 512, 1024, 2048)

#: The paper enables exactly these in Grid (§V-D); wider emulated VLs
#: are declared-and-skipped, not silently missing.
PAPER_VLS = (128, 256, 512)


def _sve_probe_shape(case) -> bool:
    """The canonical knob setting the emulated ACLE cells pin: plain
    Wilson, serial, layered, defaults everywhere — the family axis
    probes *VL bit-identity*, not the knob cube (which the fast
    generic family sweeps exhaustively)."""
    return (case["operator"] == "wilson" and case["fused"] is False
            and case["workers"] == 1 and case["caches"] is True
            and case["batching"] is True and case["overlap"] is True
            and case["codegen"] == "off"
            and case["telemetry"] == "off"
            and case["transport"] == "in-process"
            and case["fault"] == "none")


def default_spec() -> ScenarioSpec:
    """The default scenario cube (see module docstring)."""
    return ScenarioSpec(
        name="repro-default",
        description=(
            "{VL} x {backend family} x {ExecutionPolicy knobs} x "
            "{fault model} x {operator} over a 4^4 lattice"
        ),
        axes=(
            Axis("operator", ("wilson", "clover", "wilson-eo",
                              "wilson-dist", "wilson-mrhs")),
            Axis("family", ("generic", "sve-acle")),
            Axis("vl", VLS),
            Axis("fused", (True, False)),
            Axis("overlap", (True, False)),
            Axis("batching", (True, False)),
            Axis("caches", (True, False)),
            Axis("codegen", ("off", "memory", "disk")),
            Axis("workers", (1, 4)),
            Axis("telemetry", ("off", "metrics", "trace")),
            Axis("transport", ("in-process", "shmem")),
            Axis("fault", ("none", "memory", "comms", "disk")),
        ),
        constraints=(
            Constraint(
                reason=(
                    "emulated ACLE cells pin the canonical knob "
                    "setting: the family axis probes VL bit-identity; "
                    "the fused body is fused-unsafe on emulated "
                    "backends (it inlines plain-numpy semantics)"
                ),
                forbids=lambda c: (c["family"] == "sve-acle"
                                   and not _sve_probe_shape(c)),
            ),
            Constraint(
                reason="comms faults need a rank-decomposed lattice",
                forbids=lambda c: (c["fault"] == "comms"
                                   and c["operator"] != "wilson-dist"),
            ),
            Constraint(
                reason=(
                    "mid-solve SDC campaigns run on the single-rank "
                    "operators (the distributed operator's fault story "
                    "is the comms axis)"
                ),
                forbids=lambda c: (c["fault"] == "memory"
                                   and c["operator"] == "wilson-dist"),
            ),
            Constraint(
                reason=(
                    "the shared-memory rank runtime hosts the "
                    "distributed operator only, and its wire faults "
                    "are exercised by the dedicated transport tests "
                    "(a seeded injector cannot cross a process "
                    "boundary deterministically)"
                ),
                forbids=lambda c: (c["transport"] == "shmem"
                                   and (c["operator"] != "wilson-dist"
                                        or c["fault"] != "none")),
            ),
        ),
        rules=(
            skip_rule(
                reason=(
                    f"VL-specific exclusion: the paper validates SVE "
                    f"at {PAPER_VLS} (§V-D); wider emulated VLs are "
                    f"declared but not run"
                ),
                when=lambda c: (c["family"] == "sve-acle"
                                and c["vl"] not in PAPER_VLS),
            ),
            xfail_rule(
                reason=(
                    "persistent link loss: bounded retry exhausts and "
                    "the halo exchange reports the dead link — "
                    "detected by construction, unrecoverable by "
                    "definition"
                ),
                when=lambda c: (c["fault"] == "comms"
                                and comms_schedule_kind(c)
                                == "drop-persistent"),
                expect=Outcome.DETECTED.value,
            ),
        ),
    )

"""The scenario matrix engine: generated coverage of the
configuration cube, diffed in CI.

The paper's own validation (§V-D) is a hand-run matrix — ~40 ArmIE
emulation runs across vector lengths with known VL-specific failures
tracked by hand.  Every subsystem shipped since (engine policies,
comms overlap, multi-RHS batching, caches, telemetry, the fault
campaigns) multiplies that configuration cube far beyond what
hand-enumerated tests cover.  This package scales the methodology up:

* :mod:`repro.scenarios.spec` — the declarative cube: named
  :class:`Axis` lists, :class:`Constraint` pruning (combinations that
  cannot exist), and :class:`Rule` metadata (visible ``skip`` /
  ``xfail`` cells with reasons) accumulated into a
  :class:`ScenarioSpec`;
* :mod:`repro.scenarios.sampler` — deterministic generation: the full
  cartesian cube, or a seeded greedy **pairwise** covering sample
  (every feasible axis-value pair appears in at least one case);
* :mod:`repro.scenarios.runner` — executes each case through
  ``engine.scope(...)`` + ``solve_fermion``/``dhop``, classifies the
  outcome with the shared :class:`~repro.verification.outcomes.
  Outcome` vocabulary, and bit-identity-hashes every fault-free cell
  against the engine-off reference;
* :mod:`repro.scenarios.matrix` — the persisted result matrix (JSON:
  case key → {outcome, xfail, skip, hash}), the baseline differ
  (regression / hash drift / new-pass / added / removed), and the CI
  gate;
* :mod:`repro.scenarios.defaults` — the default cube {VL 128..2048} ×
  {backend family} × {policy knobs} × {fault model} × {operator},
  with the known VL-specific exclusions and fused-unsafe combos
  encoded as metadata instead of tribal knowledge.

A committed ``scenarios/baseline_matrix.json`` is diffed on every CI
run: any cell that regresses (outcome got worse, or its bit-identity
hash drifted) fails the build; new-pass cells prompt a baseline
promote (``tools/scenario.py promote``).
"""

from repro.scenarios.matrix import (
    Cell,
    MatrixDiff,
    ResultMatrix,
    diff_matrices,
    environment_fingerprint,
    gate_diff,
)
from repro.scenarios.sampler import (
    cartesian_cases,
    feasible_pairs,
    pairwise_sample,
)
from repro.scenarios.spec import (
    Axis,
    Case,
    Constraint,
    Rule,
    ScenarioSpec,
    skip_rule,
    xfail_rule,
)

__all__ = [
    "Axis",
    "Case",
    "Cell",
    "Constraint",
    "MatrixDiff",
    "ResultMatrix",
    "Rule",
    "ScenarioSpec",
    "cartesian_cases",
    "default_spec",
    "diff_matrices",
    "environment_fingerprint",
    "feasible_pairs",
    "gate_diff",
    "pairwise_sample",
    "run_cases",
    "skip_rule",
    "xfail_rule",
]


def __getattr__(name):
    # The runner (and the default spec, which references runner-side
    # schedule helpers) reach into the grid/resilience layers; loading
    # them lazily keeps ``import repro.scenarios`` cheap and cycle-free
    # for pure spec/matrix consumers (the differ CLI, the tests).
    if name == "default_spec":
        from repro.scenarios.defaults import default_spec

        return default_spec
    if name == "run_cases":
        from repro.scenarios.runner import run_cases

        return run_cases
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

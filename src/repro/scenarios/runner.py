"""Execute generated scenario cases through the production stack.

Every case runs through ``engine.scope(...)`` with the policy knobs
the case names, against the operator the case names, under the fault
model the case names:

* ``fault=none`` — the case's hot-path product (a ``dhop`` /
  operator application) is SHA-256 hashed in canonical site order and
  compared against the **engine-off reference** for the same
  (operator, backend family, VL): bit-identity is the pass criterion,
  exactly the §V-D compare-against-reference methodology.  Outcome is
  ``pass`` or ``fail`` — a fault-free cell has nothing to "detect".
* ``fault=memory`` — a seeded exponent-bit flip lands in the operator
  output mid-CG inside a fault-tolerant :func:`~repro.engine.solve.
  solve_fermion`; the drift detector must notice and restart.
* ``fault=comms`` — a seeded wire fault (corrupt/drop/truncate/
  duplicate, or a persistent dead link) hits the distributed halo
  exchange with checksums + bounded retry armed.
* ``fault=disk`` — the newest solver checkpoint bit-rots on disk; the
  CRC-verifying store must quarantine it and fall back.

Fault cells classify through the shared
:func:`~repro.verification.outcomes.classify_cell`, so the scenario
matrix and the campaign tables cannot diverge on what ``recovered``
means.

All grid/resilience imports are function-level: this module is
imported by the CLI and CI glue, which must stay cheap.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
import zlib
from contextlib import contextmanager
from typing import Callable, Optional, Sequence

import numpy as np

from repro.scenarios.matrix import SKIP, Cell, ResultMatrix
from repro.scenarios.spec import Case, ScenarioSpec
from repro.verification.outcomes import Outcome, classify_cell

#: The lattice every scenario cell runs on: small enough that a full
#: pairwise sample stays inside the CI budget, big enough that every
#: knob (tiling, overlap, batching, checkerboarding) is exercised.
DIMS = (4, 4, 4, 4)

#: Rank decomposition for the distributed operator cells.
MPI = (2, 1, 1, 1)

#: Gauge/source seeds — fixed so hashes are stable across runs.
GAUGE_SEED = 11
SOURCE_SEED = 7

#: Per-family backend registry key patterns.
FAMILY_KEYS = {
    "generic": "generic{vl}",
    "sve-acle": "sve{vl}-acle",
}

#: The comms fault kinds a cell's seeded schedule draws from.  The
#: schedule is a pure function of the case key (CRC-32), so the
#: defaults' xfail rule can predict — statically — which cells draw
#: the unrecoverable persistent drop.
COMMS_KINDS = ("corrupt", "drop", "truncate", "duplicate",
               "drop-persistent")


def case_seed(case: Case, base_seed: int = 0) -> int:
    """One stable seed per cell: CRC-32 of the case key, independent
    of execution order and identical across processes (the same
    discipline as the campaign factory)."""
    return base_seed + zlib.crc32(case.key.encode())


def comms_schedule_kind(case: Case) -> str:
    """Which wire fault this cell's schedule draws (deterministic)."""
    return COMMS_KINDS[zlib.crc32(f"comms:{case.key}".encode())
                       % len(COMMS_KINDS)]


def backend_key(case: Case) -> str:
    return FAMILY_KEYS[case["family"]].format(vl=case["vl"])


def policy_overrides(case: Case) -> dict:
    """The ``engine.scope`` overrides a case's knob axes resolve to."""
    overrides = {
        "enabled": True,
        "fused": case["fused"],
        "overlap_comms": case["overlap"],
        "batching": case["batching"],
        "caches": case["caches"],
        "codegen": case.get("codegen", "off"),
        "workers": case["workers"],
        "telemetry": case["telemetry"],
        "transport": case.get("transport", "in-process"),
        "backend": backend_key(case),
    }
    if case["workers"] > 1:
        # DIMS has 256 sites; the default floor would keep the pool
        # idle and the workers axis would test nothing.
        overrides["tile_min_sites"] = 16
    return overrides


# ======================================================================
# Hot-path work products (what fault-free cells hash)
# ======================================================================

def _hash_array(arr: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _single_rank(case: Case):
    from repro.grid.cartesian import GridCartesian
    from repro.grid.random import random_gauge, random_spinor
    from repro.simd import get_backend

    be = get_backend(backend_key(case))
    grid = GridCartesian(list(DIMS), be)
    links = random_gauge(grid, seed=GAUGE_SEED)
    psi = random_spinor(grid, seed=SOURCE_SEED)
    return grid, links, psi


def work_product(case: Case) -> np.ndarray:
    """The canonical-order output array of this cell's hot path."""
    operator = case["operator"]
    if operator == "wilson-dist":
        from repro.grid.comms import DistributedLattice
        from repro.grid.dist_wilson import DistributedWilson, \
            distribute_gauge
        from repro.grid.random import random_gauge, random_spinor
        from repro.grid.cartesian import GridCartesian
        from repro.simd import get_backend
        from repro.grid.wilson import SPINOR

        be = get_backend(backend_key(case))
        grid = GridCartesian(list(DIMS), be)
        links = random_gauge(grid, seed=GAUGE_SEED)
        psi = random_spinor(grid, seed=SOURCE_SEED)
        w = DistributedWilson(
            distribute_gauge(links, list(DIMS), be, list(MPI)), mass=0.1)
        dpsi = DistributedLattice(list(DIMS), be, list(MPI),
                                  SPINOR).scatter(psi.to_canonical())
        return w.dhop(dpsi).gather()

    grid, links, psi = _single_rank(case)
    if operator == "wilson":
        from repro.grid.wilson import WilsonDirac

        return WilsonDirac(links, mass=0.1).dhop(psi).to_canonical()
    if operator == "clover":
        from repro.grid.clover import WilsonClover

        return WilsonClover(links, mass=0.1,
                            c_sw=1.0).apply(psi).to_canonical()
    if operator == "wilson-eo":
        from repro.grid.evenodd import SchurWilson
        from repro.grid.wilson import WilsonDirac

        schur = SchurWilson(WilsonDirac(links, mass=0.1))
        return schur.apply(schur.project(psi, "odd")).to_canonical()
    if operator == "wilson-mrhs":
        from repro.engine.operators import MultiRHSOperator
        from repro.grid.multirhs import stack_rhs
        from repro.grid.random import random_spinor
        from repro.grid.wilson import WilsonDirac

        op = MultiRHSOperator(WilsonDirac(links, mass=0.1))
        batch = stack_rhs([psi, random_spinor(grid,
                                              seed=SOURCE_SEED + 1)])
        return op.dhop(batch).to_canonical()
    raise ValueError(f"unknown operator axis value {operator!r}")


class ReferenceBank:
    """Engine-off reference hashes, one per (operator, family, VL).

    The reference is the same work product computed under
    ``scope(enabled=False)`` — the exact pre-engine code path — so a
    matching hash *is* the bit-identity statement the equivalence
    tests make, cell by generated cell.
    """

    def __init__(self) -> None:
        self._hashes: dict = {}

    def reference_hash(self, case: Case) -> str:
        import repro.engine as engine

        key = (case["operator"], case["family"], case["vl"])
        got = self._hashes.get(key)
        if got is None:
            with engine.scope(enabled=False):
                got = _hash_array(work_product(case))
            self._hashes[key] = got
        return got


# ======================================================================
# Fault executors
# ======================================================================

class _BitFlipOperator:
    """Delegate to a base operator, flipping one exponent bit of the
    ``mdag_m`` output on a scheduled call — the canonical Krylov
    silent-corruption mode (a recursion that keeps 'converging' while
    the true residual stalls)."""

    def __init__(self, base, campaign, at_call: int = 5,
                 bit: int = 60) -> None:
        self.base = base
        self.campaign = campaign
        self.at_call = at_call
        self.bit = bit
        self._calls = 0

    def apply(self, psi):
        return self.base.apply(psi)

    def apply_dagger(self, psi):
        return self.base.apply_dagger(psi)

    def mdag_m(self, psi):
        from repro.resilience.inject import flip_field_bit

        out = self.base.mdag_m(psi)
        self._calls += 1
        if self._calls == self.at_call:
            flip_field_bit(out, self.campaign, bit=self.bit,
                           name="mdag_m output")
        return out

    @property
    def geometry(self):
        return self.base.geometry

    def flops_per_site(self) -> int:
        return self.base.flops_per_site()

    def bytes_per_site(self) -> int:
        return self.base.bytes_per_site()


#: Mass for the mid-solve SDC cells.  Heavier than the dhop cells'
#: 0.1 on purpose: the normal equations must *converge* well inside
#: the iteration budget for the FT solver's true-residual drift check
#: to have a "converged" to drift *from* — the same reason the
#: campaign's own SDC case runs at mass 0.3 (at 0.1 the clover normal
#: equations are ill-conditioned enough that the recursion never
#: settles and a flip is indistinguishable from slow convergence).
SOLVE_MASS = 0.3


def _solve_target(case: Case):
    """(operator, rhs) for the mid-solve SDC cell."""
    grid, links, psi = _single_rank(case)
    operator = case["operator"]
    if operator == "clover":
        from repro.grid.clover import WilsonClover

        return WilsonClover(links, mass=SOLVE_MASS, c_sw=1.0), psi
    if operator == "wilson-eo":
        from repro.grid.evenodd import SchurWilson
        from repro.grid.wilson import WilsonDirac

        schur = SchurWilson(WilsonDirac(links, mass=SOLVE_MASS))
        return schur, schur.project(psi, "odd")
    if operator == "wilson-mrhs":
        from repro.engine.operators import MultiRHSOperator
        from repro.grid.multirhs import stack_rhs
        from repro.grid.random import random_spinor
        from repro.grid.wilson import WilsonDirac

        op = MultiRHSOperator(WilsonDirac(links, mass=SOLVE_MASS))
        return op, stack_rhs([psi,
                              random_spinor(grid, seed=SOURCE_SEED + 1)])
    from repro.grid.wilson import WilsonDirac

    return WilsonDirac(links, mass=SOLVE_MASS), psi


class SolveDidNotConverge(RuntimeError):
    """A solve ran out of budget without converging — a *loud* failure
    (the caller holds ``converged=False``), categorically different
    from silent corruption."""


def _run_memory_fault(case: Case, campaign) -> None:
    """An SDC bit flip mid-CG under the FT solver.

    Three distinguishable endings, in the shared vocabulary:

    * the FT solver's drift detector restarts and converges —
      ``recovered`` (or ``pass`` when the flip lands benignly and is
      masked outright);
    * the recursion stalls and the solve returns ``converged=False``
      — the run *knows* it cannot trust the result, so this is
      ``detected``, never silent;
    * the solver **claims** convergence but the true residual (checked
      against the clean operator) is wrong — ``fail``, the one genuine
      silent-corruption mode.

    The drift detector runs at ``drift_factor=10`` here, tighter than
    the library default of 100.  The detector's acceptance bound lives
    in the normal-equations metric (CGNE recurses on ``M^dagger M``);
    the corruption check below measures the original-system residual,
    which conditioning amplifies.  With both thresholds at 100x the
    two bounds coincide in *different* metrics, and a flip landing
    just inside the detector's contract can sit just above the check
    — a seed-dependent false ``fail`` for a solve that met its
    documented guarantee.  The 10x detector margin leaves the
    corruption threshold meaning what it says: ``fail`` requires the
    detector to miss by an order of magnitude.
    """
    import math

    from repro.engine.solve import solve_fermion
    from repro.verification.suite import SilentCorruption

    op, b = _solve_target(case)
    tol = 1e-6
    wrapped = _BitFlipOperator(op, campaign, at_call=5)
    result = solve_fermion(wrapped, b, method="cg", ft=True, tol=tol,
                           max_iter=400, recompute_interval=8,
                           drift_factor=10.0, campaign=campaign)
    converged = bool(np.all(result.converged))
    if not converged:
        campaign.record_detected(
            "solver reported non-convergence (corrupted recursion)")
        raise SolveDidNotConverge(
            f"no convergence in {result.iterations} iterations "
            f"(residual {float(np.max(result.residual)):.3e})")
    true_rel = float(np.max(result.residual))
    if not math.isfinite(true_rel) or true_rel > 100.0 * tol:
        raise SilentCorruption(
            f"solver claims convergence but true residual is "
            f"{true_rel:.3e}")


def _run_comms_fault(case: Case, campaign) -> None:
    """A seeded wire fault against the checksummed, retrying halo
    exchange of the distributed operator."""
    from repro.grid.cartesian import GridCartesian
    from repro.grid.comms import DistributedLattice, HaloExchangeError
    from repro.grid.dist_wilson import DistributedWilson, distribute_gauge
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import SPINOR
    from repro.resilience.campaign import sync_comms_stats
    from repro.resilience.inject import CommsFault, CommsFaultInjector
    from repro.simd import get_backend
    from repro.verification.suite import SilentCorruption

    kind = comms_schedule_kind(case)
    if kind == "drop-persistent":
        faults = [CommsFault("drop", message=2, persistent=True)]
    else:
        message = {"corrupt": 1, "drop": 2, "truncate": 3,
                   "duplicate": 4}[kind]
        faults = [CommsFault(kind, message=message)]

    be = get_backend(backend_key(case))
    grid = GridCartesian(list(DIMS), be)
    psi = random_spinor(grid, seed=SOURCE_SEED)
    links = random_gauge(grid, seed=GAUGE_SEED)
    w = DistributedWilson(
        distribute_gauge(links, list(DIMS), be, list(MPI)), mass=0.1)
    want = w.dhop(DistributedLattice(list(DIMS), be, list(MPI),
                                     SPINOR).scatter(
        psi.to_canonical())).gather()
    dpsi = DistributedLattice(
        list(DIMS), be, list(MPI), SPINOR, checksum_halos=True,
        comms_faults=CommsFaultInjector(campaign, faults), max_retries=3,
    ).scatter(psi.to_canonical())
    try:
        got = w.dhop(dpsi).gather()
    except HaloExchangeError:
        sync_comms_stats(campaign, dpsi.stats)
        raise
    sync_comms_stats(campaign, dpsi.stats)
    if not np.array_equal(got, want):
        raise SilentCorruption(
            "distributed dhop differs from fault-free reference")


def _run_disk_fault(case: Case, campaign) -> None:
    """Bit rot on the newest checkpoint; the CRC-verifying store must
    quarantine it and resume from the previous one."""
    import tempfile

    from repro.resilience.checkpoint import CheckpointStore
    from repro.resilience.inject import bit_rot_file
    from repro.verification.suite import SilentCorruption

    grid, _links, psi = _single_rank(case)
    arr = psi.to_canonical()
    states = {10: arr, 20: arr * 2.0}
    with tempfile.TemporaryDirectory() as d:
        store = CheckpointStore(d, campaign=campaign)
        for it, state in states.items():
            store.save("scenario", {"x": state}, iteration=it)
        bit_rot_file(store.list("scenario")[0], campaign)
        ck = store.load_latest("scenario")
        if ck is None or not np.array_equal(ck.arrays["x"],
                                            states[ck.iteration]):
            raise SilentCorruption(
                "checkpoint fallback returned wrong state")


_FAULT_RUNNERS = {
    "memory": _run_memory_fault,
    "comms": _run_comms_fault,
    "disk": _run_disk_fault,
}


# ======================================================================
# The per-case and per-campaign drivers
# ======================================================================

@contextmanager
def _codegen_store(case: Case):
    """Point codegen disk-mode cells at a private temp store so a
    matrix run never reads (or pollutes) the user-level cache."""
    if case.get("codegen", "off") != "disk":
        yield
        return
    from repro.codegen import set_disk_dir

    with tempfile.TemporaryDirectory(prefix="repro-codegen-") as tmp:
        prev = set_disk_dir(tmp)
        try:
            yield
        finally:
            set_disk_dir(prev)


def run_case(case: Case, spec: ScenarioSpec,
             refs: Optional[ReferenceBank] = None,
             base_seed: int = 0) -> Cell:
    """Execute one case (honouring skip/xfail metadata) into a Cell."""
    import repro.engine as engine
    from repro.resilience.inject import FaultCampaign

    skip = spec.skip_for(case)
    if skip is not None:
        return Cell(key=case.key, status=SKIP, reason=skip.reason)
    xfail = spec.xfail_for(case)
    refs = refs if refs is not None else ReferenceBank()

    fault = case.get("fault", "none")
    t0 = time.perf_counter()
    cell_hash = None
    detail = ""
    if fault == "none":
        # Bit-identity is the whole criterion: hash under the case's
        # policy, compare against the engine-off reference.
        try:
            with _codegen_store(case), \
                    engine.scope(**policy_overrides(case)):
                cell_hash = _hash_array(work_product(case))
            if cell_hash == refs.reference_hash(case):
                status = Outcome.PASS.value
            else:
                status = Outcome.FAIL.value
                detail = ("bit-identity hash differs from engine-off "
                          "reference")
        except Exception as exc:  # noqa: BLE001 - recorded, not hidden
            status = Outcome.FAIL.value
            detail = f"{type(exc).__name__}: {exc}"
    else:
        campaign = FaultCampaign(seed=case_seed(case, base_seed),
                                 name=f"scenario-{fault}")
        error: Optional[BaseException] = None
        try:
            with _codegen_store(case), \
                    engine.scope(**policy_overrides(case)):
                _FAULT_RUNNERS[fault](case, campaign)
        except Exception as exc:  # noqa: BLE001 - classified below
            error = exc
            detail = f"{type(exc).__name__}: {exc}"
        status = classify_cell(campaign, error).value
    return Cell(
        key=case.key, status=status,
        xfail=xfail is not None,
        expect=xfail.expect if xfail is not None else None,
        reason=xfail.reason if xfail is not None else "",
        hash=cell_hash, seconds=time.perf_counter() - t0, detail=detail,
    )


def run_cases(spec: ScenarioSpec, cases: Sequence[Case],
              mode: str = "custom", seed: int = 0,
              base_seed: int = 0,
              progress: Optional[Callable] = None) -> ResultMatrix:
    """Run a generated case list into a :class:`ResultMatrix`.

    Starts from a clean slate (same discipline as
    :func:`~repro.verification.suite.run_campaign_suite`): sticky
    backend degradations and live comms state from earlier work are
    reset, and the base policy's fallback flag is restored on exit.
    Counters and caches are left alone so a matrix can run
    mid-benchmark.
    """
    from repro.engine.policy import base_policy, update_base_policy
    from repro.engine.reset import reset_all

    reset_all(counters=False, caches=False)
    fallback_before = base_policy().fallback
    matrix = ResultMatrix(spec=spec.name, mode=mode, seed=seed)
    refs = ReferenceBank()
    try:
        for case in cases:
            cell = run_case(case, spec, refs=refs, base_seed=base_seed)
            matrix.add(cell)
            if progress is not None:
                progress(cell)
    finally:
        update_base_policy(fallback=fallback_before)
    return matrix

"""The declarative scenario cube: axes, constraints, skip/xfail rules.

A :class:`ScenarioSpec` is the whole configuration cube in one value:
named :class:`Axis` lists (the dimensions), :class:`Constraint`
predicates (combinations pruned from generation because they cannot
exist — e.g. a comms fault without a rank-decomposed lattice), and
:class:`Rule` metadata (cells that *do* exist but are known-skipped
or known-not-to-pass, each with a written reason).

The split matters for coverage accounting: a constraint removes a
cell (and its axis-value pairs) from the feasible universe the
pairwise sampler must cover, while a ``skip`` rule leaves the cell in
the generated matrix as a visible, reasoned hole — the §V-D
discipline of tracking *known* VL-specific failures instead of
silently dropping them, made declarative (in the style of libresoc's
case accumulators and tp-libvirt's cfg matrices).

Cases are frozen and keyed: ``operator=wilson|family=generic|vl=256|
...`` in declared axis order.  The key is the case's identity across
runs — the persisted result matrix and the CI differ join on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class Axis:
    """One dimension of the cube: a name and its legal values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")


class Case:
    """One bound point of the cube (immutable, mapping-like).

    ``values`` is a tuple of ``(axis_name, value)`` in declared axis
    order; :attr:`key` renders it as the stable ``name=value|...``
    string the result matrix is indexed by.
    """

    __slots__ = ("values", "_map")

    def __init__(self, values: Sequence[tuple]) -> None:
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "_map", dict(values))

    def __setattr__(self, name, value):
        raise AttributeError("Case is immutable")

    def __getitem__(self, axis: str):
        return self._map[axis]

    def get(self, axis: str, default=None):
        return self._map.get(axis, default)

    def __contains__(self, axis: str) -> bool:
        return axis in self._map

    def __iter__(self):
        return iter(self._map)

    def __eq__(self, other) -> bool:
        return isinstance(other, Case) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        return f"Case({self.key})"

    def as_dict(self) -> dict:
        return dict(self.values)

    @property
    def key(self) -> str:
        """The stable identity string: ``axis=value|axis=value|...``.

        Booleans render as ``on``/``off`` so keys read as
        configuration, not Python.
        """
        return "|".join(f"{n}={_render(v)}" for n, v in self.values)


def _render(value) -> str:
    if value is True:
        return "on"
    if value is False:
        return "off"
    return str(value)


@dataclass(frozen=True)
class Constraint:
    """A combination that cannot exist — pruned from generation.

    ``forbids(case) -> True`` removes the cell from the cube (and its
    pairs from the pairwise universe).  Distinct from a skip rule: a
    constrained-out cell never appears in any matrix.
    """

    reason: str
    forbids: Callable

    def __call__(self, case: Case) -> bool:
        return bool(self.forbids(case))


@dataclass(frozen=True)
class Rule:
    """Skip/xfail metadata for cells that exist but are special.

    * ``kind="skip"`` — the cell appears in the matrix with status
      ``skip`` and is never executed (e.g. emulated SVE beyond the
      paper's validated VLs).
    * ``kind="xfail"`` — the cell runs, but is *expected* not to reach
      ``pass``; ``expect`` names the outcome it is known to produce
      (e.g. a persistent link loss is ``detected``, never recovered).
      An xfail cell that suddenly passes is a **new-pass**: the differ
      reports it as a promotion candidate, not a failure.
    """

    kind: str
    reason: str
    when: Callable
    expect: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("skip", "xfail"):
            raise ValueError(f"rule kind must be skip|xfail, "
                             f"got {self.kind!r}")
        if self.kind == "xfail" and not self.expect:
            raise ValueError("xfail rules must name the expected outcome")

    def matches(self, case: Case) -> bool:
        return bool(self.when(case))


def skip_rule(reason: str, when: Callable) -> Rule:
    return Rule(kind="skip", reason=reason, when=when)


def xfail_rule(reason: str, when: Callable, expect: str) -> Rule:
    return Rule(kind="xfail", reason=reason, when=when, expect=expect)


@dataclass(frozen=True)
class ScenarioSpec:
    """The whole declarative cube: axes + constraints + rules."""

    name: str
    axes: tuple
    constraints: tuple = ()
    rules: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        if not self.axes:
            raise ValueError("a spec needs at least one axis")

    # ------------------------------------------------------------------
    # Cube membership
    # ------------------------------------------------------------------
    def axis(self, name: str) -> Axis:
        for a in self.axes:
            if a.name == name:
                return a
        raise KeyError(f"unknown axis {name!r}; "
                       f"known: {[a.name for a in self.axes]}")

    def allowed(self, case: Case) -> bool:
        """True when no constraint forbids the cell."""
        return not any(c(case) for c in self.constraints)

    def case(self, **bindings) -> Case:
        """Bind one case from keyword values (validated, axis order)."""
        values = []
        for a in self.axes:
            if a.name not in bindings:
                raise ValueError(f"missing axis {a.name!r}")
            v = bindings.pop(a.name)
            if v not in a.values:
                raise ValueError(
                    f"axis {a.name!r} has no value {v!r}; "
                    f"legal: {a.values}")
            values.append((a.name, v))
        if bindings:
            raise ValueError(f"unknown axes {sorted(bindings)}")
        return Case(values)

    # ------------------------------------------------------------------
    # Metadata resolution
    # ------------------------------------------------------------------
    def skip_for(self, case: Case) -> Optional[Rule]:
        """The first matching skip rule, if any."""
        for rule in self.rules:
            if rule.kind == "skip" and rule.matches(case):
                return rule
        return None

    def xfail_for(self, case: Case) -> Optional[Rule]:
        """The first matching xfail rule, if any."""
        for rule in self.rules:
            if rule.kind == "xfail" and rule.matches(case):
                return rule
        return None

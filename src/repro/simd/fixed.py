"""Fixed-width SIMD families — Table I of the paper.

==================  ============
SIMD family         vector length
==================  ============
Intel SSE4          128 bit
Intel AVX/AVX2      256 bit
Intel ICMI/AVX-512  512 bit
IBM QPX             256 bit
ARM NEONv8          128 bit
==================  ============

Functionally these backends are all the same mathematics (that is the
point of Grid's abstraction layer); what differs is the register
geometry, which changes the virtual-node decomposition and the
outer-site loop count.  Modelling them separately lets the Table I
benchmark show exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simd.backend import NumpyArithmeticMixin, SimdBackend


@dataclass(frozen=True)
class SimdFamily:
    """One row of Table I."""

    key: str
    display: str
    width_bits: int
    vendor: str


#: The architectures supported by Grid at the time of the paper
#: (Table I), minus the generic row (see ``GenericBackend``).
FIXED_FAMILIES: tuple[SimdFamily, ...] = (
    SimdFamily("sse4", "Intel SSE4", 128, "Intel"),
    SimdFamily("avx", "Intel AVX/AVX2", 256, "Intel"),
    SimdFamily("avx512", "Intel ICMI, AVX-512", 512, "Intel"),
    SimdFamily("qpx", "IBM QPX", 256, "IBM"),
    SimdFamily("neon", "ARM NEONv8", 128, "ARM"),
)

_BY_KEY = {f.key: f for f in FIXED_FAMILIES}


class FixedWidthBackend(NumpyArithmeticMixin, SimdBackend):
    """A Table I fixed-width backend."""

    def __init__(self, key: str) -> None:
        try:
            fam = _BY_KEY[key]
        except KeyError:
            raise ValueError(
                f"unknown SIMD family {key!r}; known: {sorted(_BY_KEY)}"
            ) from None
        self.family = fam
        self.name = fam.key
        self.width_bits = fam.width_bits

    @property
    def display_name(self) -> str:
        return self.family.display

"""The paper's ``vec<T>`` structure and functor kernels (Section V-C).

A Python rendering of the C++ in the paper, as literal as the language
allows::

    template <typename T>
    struct vec {
        alignas(SVE_VECTOR_LENGTH) T v[SVE_VECTOR_LENGTH / sizeof(T)];
    };

    struct MultComplex {
        template <typename T>
        inline vec<T> operator()(const vec<T> &x, const vec<T> &y) { ... }
    };

The key porting decision reproduced here (Section V-A): SVE ACLE data
types are sizeless and "may not be used as data members of ...
classes", so the class member is an *ordinary array* of exactly
``SVE_VECTOR_LENGTH`` bytes, and ACLE intrinsics appear only inside the
operator bodies, loading/processing/storing one full register
(the Section IV-D pattern — no VLA loop).
"""

from __future__ import annotations

import numpy as np

from repro import acle
from repro.acle.context import current_context
from repro.sve.vl import VL


class Vec:
    """``vec<T>``: an ordinary aligned array of one register's bytes.

    Parameters
    ----------
    vl:
        The compile-time ``SVE_VECTOR_LENGTH`` (in bits here).
    dtype:
        The element type ``T`` (float64, float32, float16 or int32 —
        the specializations Section V-B lists).
    """

    SUPPORTED = (np.float64, np.float32, np.float16, np.int32)

    def __init__(self, vl, dtype=np.float64, values=None) -> None:
        self.vl = vl if isinstance(vl, VL) else VL(vl)
        self.dtype = np.dtype(dtype)
        if self.dtype not in [np.dtype(t) for t in self.SUPPORTED]:
            raise TypeError(
                f"vec<T> specializations support {self.SUPPORTED}, "
                f"got {self.dtype}"
            )
        lanes = self.vl.bytes // self.dtype.itemsize
        self.v = np.zeros(lanes, dtype=self.dtype)
        if values is not None:
            values = np.asarray(values, dtype=self.dtype)
            if values.shape != (lanes,):
                raise ValueError(
                    f"vec<{self.dtype}> at VL{self.vl.bits} holds {lanes} "
                    f"elements, got {values.shape}"
                )
            self.v[:] = values

    @property
    def lanes(self) -> int:
        return self.v.size

    def complex_view(self) -> np.ndarray:
        """The interleaved array seen as complex numbers."""
        ctype = np.complex128 if self.dtype == np.float64 else np.complex64
        return self.v.view(ctype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"vec<{self.dtype}>[{self.lanes}]@VL{self.vl.bits}"


def _pg_for(x: Vec):
    if x.dtype == np.float64:
        return acle.svptrue_b64()
    if x.dtype == np.float32:
        return acle.svptrue_b32()
    return acle.svptrue_b16()


def _check_vl(x: Vec) -> None:
    ctx = current_context()
    if ctx.vl.bits != x.vl.bits:
        raise ValueError(
            f"vec<T> compiled for VL{x.vl.bits} run on VL{ctx.vl.bits} "
            "hardware — 'not necessarily portable across different "
            "platforms' (Section V-B)"
        )


class MultComplex:
    """The paper's ``MultComplex`` functor: two chained FCMLAs."""

    def __call__(self, x: Vec, y: Vec) -> Vec:
        _check_vl(x)
        out = Vec(x.vl, x.dtype)
        pg1 = _pg_for(x)
        x_v = acle.svld1(pg1, x.v)
        y_v = acle.svld1(pg1, y.v)
        z_v = (acle.svdup_f64(0.0) if x.dtype == np.float64
               else acle.svdup_f32(0.0))
        r_v = acle.svcmla_x(pg1, z_v, x_v, y_v, 90)
        r_v = acle.svcmla_x(pg1, r_v, x_v, y_v, 0)
        acle.svst1(pg1, out.v, 0, r_v)
        return out


class MaddComplex:
    """``z + x*y`` — accumulate instead of starting from zero."""

    def __call__(self, z: Vec, x: Vec, y: Vec) -> Vec:
        _check_vl(x)
        out = Vec(x.vl, x.dtype)
        pg1 = _pg_for(x)
        x_v = acle.svld1(pg1, x.v)
        y_v = acle.svld1(pg1, y.v)
        r_v = acle.svld1(pg1, z.v)
        r_v = acle.svcmla_x(pg1, r_v, x_v, y_v, 90)
        r_v = acle.svcmla_x(pg1, r_v, x_v, y_v, 0)
        acle.svst1(pg1, out.v, 0, r_v)
        return out


class TimesI:
    """``i * x`` via FCADD."""

    def __call__(self, x: Vec) -> Vec:
        _check_vl(x)
        out = Vec(x.vl, x.dtype)
        pg1 = _pg_for(x)
        x_v = acle.svld1(pg1, x.v)
        zero = (acle.svdup_f64(0.0) if x.dtype == np.float64
                else acle.svdup_f32(0.0))
        acle.svst1(pg1, out.v, 0, acle.svcadd_x(pg1, zero, x_v, 90))
        return out


class Permute:
    """Grid's ``Permute<level>`` on a ``vec<T>`` of complex pairs."""

    def __init__(self, level: int) -> None:
        self.level = level

    def __call__(self, x: Vec) -> Vec:
        from repro.acle.vector import svvector_t
        from repro.sve.ops.permute import permute_indices

        _check_vl(x)
        out = Vec(x.vl, x.dtype)
        pg1 = _pg_for(x)
        x_v = acle.svld1(pg1, x.v)
        cperm = permute_indices(x.lanes // 2, self.level)
        idx = np.empty(x.lanes,
                       dtype=np.int64 if x.dtype == np.float64 else np.int32)
        idx[0::2] = 2 * cperm
        idx[1::2] = 2 * cperm + 1
        table = svvector_t(tuple(idx.tolist()), idx.dtype.str)
        acle.svst1(pg1, out.v, 0, acle.svtbl(x_v, table))
        return out

"""Backend registry: Grid's compile-time ``--enable-simd=`` switch.

Keys:

* ``generic`` / ``generic<bits>`` — architecture-independent numpy,
* ``sse4``, ``avx``, ``avx512``, ``qpx``, ``neon`` — Table I families,
* ``sve<bits>-acle`` — FCMLA complex arithmetic (Section V-C),
* ``sve<bits>-real`` — real-instruction complex arithmetic (Section V-E),

where ``<bits>`` is a legal SVE vector length (the paper enables 128,
256 and 512 in Grid; wider lengths work here too).

A **fallback policy** (off by default, the ``fallback`` field of the
engine's :class:`~repro.engine.ExecutionPolicy`) makes every
non-generic backend resilient: an op that raises degrades the instance
to ``generic`` with a recorded :class:`~repro.simd.resilient.
BackendDegradedWarning` instead of crashing the run.  Enable scoped
via ``engine.scope(fallback=True)`` (:func:`fallback_policy` is the
pre-engine spelling of the same thing); :func:`set_fallback_policy`
remains as a deprecated process-wide shim.
"""

from __future__ import annotations

import re
from contextlib import contextmanager

from repro.engine.policy import (
    current_policy,
    scope as _engine_scope,
    update_base_policy,
    warn_deprecated_setter,
)
from repro.simd.backend import SimdBackend
from repro.simd.fixed import FIXED_FAMILIES, FixedWidthBackend
from repro.simd.generic import GenericBackend
from repro.simd.resilient import ResilientBackend
from repro.simd.sve_acle import SveAcleBackend
from repro.simd.sve_real import SveRealBackend

_SVE_RE = re.compile(r"^sve(\d+)-(acle|real)$")
_GENERIC_RE = re.compile(r"^generic(\d*)$")


def set_fallback_policy(enabled: bool) -> None:
    """Deprecated: use ``engine.scope(fallback=...)`` (scoped) or
    ``engine.update_base_policy(fallback=...)`` (process-wide)."""
    warn_deprecated_setter("repro.simd.registry.set_fallback_policy",
                           "repro.engine.scope(fallback=...)")
    update_base_policy(fallback=bool(enabled))


def fallback_enabled() -> bool:
    """Whether new backends are wrapped for graceful degradation
    (the resolved engine policy's ``fallback`` field)."""
    return current_policy().fallback


@contextmanager
def fallback_policy(enabled: bool):
    """Scoped fallback policy — a thin wrapper over
    ``engine.scope(fallback=...)`` (nestable, thread-isolated)."""
    with _engine_scope(fallback=bool(enabled)):
        yield


def available_backends(sve_vls=(128, 256, 512)) -> list[str]:
    """All registry keys (SVE keys for the given vector lengths)."""
    keys = ["generic"] + [f.key for f in FIXED_FAMILIES]
    for bits in sve_vls:
        keys.append(f"sve{bits}-acle")
        keys.append(f"sve{bits}-real")
    return keys


def get_backend(key: str = None, resilient: bool = None) -> SimdBackend:
    """Instantiate a backend from its registry key.

    ``key=None`` resolves the current engine policy's ``backend``
    field — the scoped default for call sites that do not name one.
    ``resilient`` overrides the policy's fallback setting for this
    instance: ``True`` wraps the backend in a
    :class:`~repro.simd.resilient.ResilientBackend`, ``False`` never
    wraps, ``None`` (default) follows :func:`fallback_enabled`.
    Generic backends are never wrapped (they *are* the fallback).
    """
    if key is None:
        key = current_policy().backend
    backend = _construct(key)
    wrap = fallback_enabled() if resilient is None else resilient
    if wrap and not isinstance(backend, GenericBackend):
        return ResilientBackend(backend)
    return backend


def _construct(key: str) -> SimdBackend:
    m = _GENERIC_RE.match(key)
    if m:
        bits = int(m.group(1)) if m.group(1) else 256
        return GenericBackend(bits)
    if key in {f.key for f in FIXED_FAMILIES}:
        return FixedWidthBackend(key)
    m = _SVE_RE.match(key)
    if m:
        bits = int(m.group(1))
        cls = SveAcleBackend if m.group(2) == "acle" else SveRealBackend
        return cls(bits)
    raise ValueError(
        f"unknown SIMD backend {key!r}; known: {available_backends()}"
    )

"""Backend registry: Grid's compile-time ``--enable-simd=`` switch.

Keys:

* ``generic`` / ``generic<bits>`` — architecture-independent numpy,
* ``sse4``, ``avx``, ``avx512``, ``qpx``, ``neon`` — Table I families,
* ``sve<bits>-acle`` — FCMLA complex arithmetic (Section V-C),
* ``sve<bits>-real`` — real-instruction complex arithmetic (Section V-E),

where ``<bits>`` is a legal SVE vector length (the paper enables 128,
256 and 512 in Grid; wider lengths work here too).

A process-wide **fallback policy** (off by default) makes every
non-generic backend resilient: an op that raises degrades the instance
to ``generic`` with a recorded :class:`~repro.simd.resilient.
BackendDegradedWarning` instead of crashing the run.  Enable with
:func:`set_fallback_policy` or scoped via :func:`fallback_policy`.
"""

from __future__ import annotations

import re
from contextlib import contextmanager

from repro.simd.backend import SimdBackend
from repro.simd.fixed import FIXED_FAMILIES, FixedWidthBackend
from repro.simd.generic import GenericBackend
from repro.simd.resilient import ResilientBackend
from repro.simd.sve_acle import SveAcleBackend
from repro.simd.sve_real import SveRealBackend

_SVE_RE = re.compile(r"^sve(\d+)-(acle|real)$")
_GENERIC_RE = re.compile(r"^generic(\d*)$")

_FALLBACK_ENABLED = False


def set_fallback_policy(enabled: bool) -> None:
    """Globally enable/disable graceful backend degradation."""
    global _FALLBACK_ENABLED
    _FALLBACK_ENABLED = bool(enabled)


def fallback_enabled() -> bool:
    """Whether new backends are wrapped for graceful degradation."""
    return _FALLBACK_ENABLED


@contextmanager
def fallback_policy(enabled: bool):
    """Scoped fallback policy (restores the previous setting)."""
    previous = _FALLBACK_ENABLED
    set_fallback_policy(enabled)
    try:
        yield
    finally:
        set_fallback_policy(previous)


def available_backends(sve_vls=(128, 256, 512)) -> list[str]:
    """All registry keys (SVE keys for the given vector lengths)."""
    keys = ["generic"] + [f.key for f in FIXED_FAMILIES]
    for bits in sve_vls:
        keys.append(f"sve{bits}-acle")
        keys.append(f"sve{bits}-real")
    return keys


def get_backend(key: str, resilient: bool = None) -> SimdBackend:
    """Instantiate a backend from its registry key.

    ``resilient`` overrides the process-wide fallback policy for this
    instance: ``True`` wraps the backend in a
    :class:`~repro.simd.resilient.ResilientBackend`, ``False`` never
    wraps, ``None`` (default) follows :func:`fallback_enabled`.
    Generic backends are never wrapped (they *are* the fallback).
    """
    backend = _construct(key)
    wrap = _FALLBACK_ENABLED if resilient is None else resilient
    if wrap and not isinstance(backend, GenericBackend):
        return ResilientBackend(backend)
    return backend


def _construct(key: str) -> SimdBackend:
    m = _GENERIC_RE.match(key)
    if m:
        bits = int(m.group(1)) if m.group(1) else 256
        return GenericBackend(bits)
    if key in {f.key for f in FIXED_FAMILIES}:
        return FixedWidthBackend(key)
    m = _SVE_RE.match(key)
    if m:
        bits = int(m.group(1))
        cls = SveAcleBackend if m.group(2) == "acle" else SveRealBackend
        return cls(bits)
    raise ValueError(
        f"unknown SIMD backend {key!r}; known: {available_backends()}"
    )

"""Backend registry: Grid's compile-time ``--enable-simd=`` switch.

Keys:

* ``generic`` / ``generic<bits>`` — architecture-independent numpy,
* ``sse4``, ``avx``, ``avx512``, ``qpx``, ``neon`` — Table I families,
* ``sve<bits>-acle`` — FCMLA complex arithmetic (Section V-C),
* ``sve<bits>-real`` — real-instruction complex arithmetic (Section V-E),

where ``<bits>`` is a legal SVE vector length (the paper enables 128,
256 and 512 in Grid; wider lengths work here too).
"""

from __future__ import annotations

import re

from repro.simd.backend import SimdBackend
from repro.simd.fixed import FIXED_FAMILIES, FixedWidthBackend
from repro.simd.generic import GenericBackend
from repro.simd.sve_acle import SveAcleBackend
from repro.simd.sve_real import SveRealBackend

_SVE_RE = re.compile(r"^sve(\d+)-(acle|real)$")
_GENERIC_RE = re.compile(r"^generic(\d*)$")


def available_backends(sve_vls=(128, 256, 512)) -> list[str]:
    """All registry keys (SVE keys for the given vector lengths)."""
    keys = ["generic"] + [f.key for f in FIXED_FAMILIES]
    for bits in sve_vls:
        keys.append(f"sve{bits}-acle")
        keys.append(f"sve{bits}-real")
    return keys


def get_backend(key: str) -> SimdBackend:
    """Instantiate a backend from its registry key."""
    m = _GENERIC_RE.match(key)
    if m:
        bits = int(m.group(1)) if m.group(1) else 256
        return GenericBackend(bits)
    if key in {f.key for f in FIXED_FAMILIES}:
        return FixedWidthBackend(key)
    m = _SVE_RE.match(key)
    if m:
        bits = int(m.group(1))
        cls = SveAcleBackend if m.group(2) == "acle" else SveRealBackend
        return cls(bits)
    raise ValueError(
        f"unknown SIMD backend {key!r}; known: {available_backends()}"
    )

"""The architecture-independent backend.

Table I's last row: "generic C/C++ — architecture independent,
user-defined array size".  Grid's generic implementation is plain C++
over a fixed-size array, relying on compiler auto-vectorization; ours
is numpy over the lane axis.  The register width (and hence the
virtual-node count) is a constructor parameter.
"""

from __future__ import annotations

from repro.simd.backend import NumpyArithmeticMixin, SimdBackend


class GenericBackend(NumpyArithmeticMixin, SimdBackend):
    """Architecture-independent numpy backend with user-defined width."""

    def __init__(self, width_bits: int = 256) -> None:
        if width_bits % 128 or width_bits < 128:
            raise ValueError(
                "generic width must be a positive multiple of 128 bits "
                "(one complex double)"
            )
        self.width_bits = width_bits
        self.name = f"generic{width_bits}"

"""The SVE backend implementing complex arithmetic with real instructions.

Section V-E: "It is not guaranteed that the FCMLA instruction
outperforms alternative implementations of complex arithmetics.
Therefore, we have also implemented complex arithmetics based on
instructions for real arithmetics at the cost of higher instruction
count and cutting down on the effectiveness of SVE vector register
usage."

The data layout stays interleaved (so the two backends are drop-in
interchangeable); each complex multiply becomes:

* ``trn1``/``trn2`` broadcasts of ``Re(y)``/``Im(y)`` into both slots
  of each pair,
* a ``tbl`` swap of re/im within pairs of ``x``,
* an ``fmul``/``fmla`` + two half-predicated FMAs combining the four
  partial products,

6 data-processing instructions versus the 2 FCMLAs of
:class:`~repro.simd.sve_acle.SveAcleBackend` — the instruction-count
cost the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro import acle
from repro.simd.sve_base import SveBackendBase


class SveRealBackend(SveBackendBase):
    """SVE with complex arithmetic built from real instructions."""

    def __init__(self, vl=512) -> None:
        super().__init__(vl)
        self.name = f"sve{self.vl.bits}-real"

    # -- the partial-product engine -------------------------------------
    def _cmul_rows(self, acc_rows, x, y, conj_x: bool, negate: bool):
        """acc ± (conj?)(x) * y over interleaved rows, real instructions.

        With ``yr = trn1(y, y)`` (Re(y) in both slots), ``yi = trn2(y, y)``
        (Im(y) in both slots) and ``xs = tbl(x, swap)``:

        * ``x*y``:        even ``+x*yr - xs*yi``, odd ``+x*yr + xs*yi``
        * ``conj(x)*y``:  even ``+x*yr + xs*yi``, odd ``-x*yr + xs*yi``
        """
        xr, yrows = self._rows(x), self._rows(y)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            esize = xr.dtype.itemsize
            pg = self._pg_all(esize)
            peven = self._pg_even(esize)
            podd = self._pg_odd(esize)
            swap = self._swap_index(esize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                b = acle.svld1(pg, yrows[i])
                yr = acle.svtrn1(b, b)
                yi = acle.svtrn2(b, b)
                xs = acle.svtbl(a, swap)
                if acc_rows is None:
                    acc = (acle.svdup_f64(0.0) if xr.dtype == np.float64
                           else acle.svdup_f32(0.0))
                else:
                    acc = acle.svld1(pg, acc_rows[i])
                s = -1.0 if negate else 1.0
                if not conj_x:
                    # t1 = x*yr in both slots; t2 = xs*yi with -/+ signs.
                    r = (acle.svmla_x(pg, acc, a, yr) if not negate
                         else acle.svmls_x(pg, acc, a, yr))
                    if s > 0:
                        r = acle.svmls_x(peven, r, xs, yi)
                        r = acle.svmla_x(podd, r, xs, yi)
                    else:
                        r = acle.svmla_x(peven, r, xs, yi)
                        r = acle.svmls_x(podd, r, xs, yi)
                else:
                    # t2 = xs*yi in both slots; t1 = x*yr with +/- signs.
                    r = (acle.svmla_x(pg, acc, xs, yi) if not negate
                         else acle.svmls_x(pg, acc, xs, yi))
                    if s > 0:
                        r = acle.svmla_x(peven, r, a, yr)
                        r = acle.svmls_x(podd, r, a, yr)
                    else:
                        r = acle.svmls_x(peven, r, a, yr)
                        r = acle.svmla_x(podd, r, a, yr)
                acle.svst1(pg, orows[i], 0, r)
        return out

    # -- complex arithmetic ---------------------------------------------
    def mul(self, x, y):
        return self._cmul_rows(None, x, y, conj_x=False, negate=False)

    def madd(self, acc, x, y):
        return self._cmul_rows(self._rows(acc), x, y, conj_x=False,
                               negate=False)

    def msub(self, acc, x, y):
        return self._cmul_rows(self._rows(acc), x, y, conj_x=False,
                               negate=True)

    def conj_mul(self, x, y):
        return self._cmul_rows(None, x, y, conj_x=True, negate=False)

    def conj_madd(self, acc, x, y):
        return self._cmul_rows(self._rows(acc), x, y, conj_x=True,
                               negate=False)

    # -- real-part arithmetic -------------------------------------------
    def mul_real_part(self, x, y):
        """``Re(x) * y`` = fmul with trn1-broadcast Re(x)."""
        xr, yrows = self._rows(x), self._rows(y)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                b = acle.svld1(pg, yrows[i])
                ar = acle.svtrn1(a, a)
                acle.svst1(pg, orows[i], 0, acle.svmul_x(pg, ar, b))
        return out

    def madd_real_part(self, acc, x, y):
        xr, yrows = self._rows(x), self._rows(y)
        acc_rows = self._rows(acc)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                b = acle.svld1(pg, yrows[i])
                c = acle.svld1(pg, acc_rows[i])
                ar = acle.svtrn1(a, a)
                acle.svst1(pg, orows[i], 0, acle.svmla_x(pg, c, ar, b))
        return out

    # -- i-multiplications: swap + half-predicated negate ----------------
    def _times_pm_i(self, x, negate_even: bool):
        xr = self._rows(x)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            esize = xr.dtype.itemsize
            pg = self._pg_all(esize)
            half = self._pg_even(esize) if negate_even else self._pg_odd(esize)
            swap = self._swap_index(esize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                xs = acle.svtbl(a, swap)
                acle.svst1(pg, orows[i], 0, acle.svneg_x(half, xs))
        return out

    def times_i(self, x):
        """``i*(a+bi) = -b + ai``: swap then negate even slots."""
        return self._times_pm_i(x, negate_even=True)

    def times_minus_i(self, x):
        """``-i*(a+bi) = b - ai``: swap then negate odd slots."""
        return self._times_pm_i(x, negate_even=False)

    def scale(self, x, s):
        s = complex(s)
        x = self.validate(x)
        const = np.ascontiguousarray(
            np.broadcast_to(np.full(x.shape[-1], s, dtype=x.dtype), x.shape)
        )
        return self._cmul_rows(None, const, x, conj_x=False, negate=False)

"""The SVE backend using FCMLA complex arithmetic (Sections V-B/V-C).

This is the implementation the paper chose for Grid: "Current compiler
heuristics are not good enough to generate SVE instructions for complex
arithmetic ... Therefore we decided to use ACLE to enable hardware
support for complex arithmetics."  Each complex operation is two (or
one) chained FCMLA instructions over interleaved registers, exactly
the ``MultComplex`` code example of Section V-C.
"""

from __future__ import annotations

import numpy as np

from repro import acle
from repro.simd.sve_base import SveBackendBase


class SveAcleBackend(SveBackendBase):
    """SVE via ACLE with hardware complex arithmetic (FCMLA/FCADD)."""

    def __init__(self, vl=512) -> None:
        super().__init__(vl)
        self.name = f"sve{self.vl.bits}-acle"

    # -- internal: acc +/- (conj?)(x) * y via chained FCMLA ------------
    def _fcmla_rows(self, acc_rows, x, y, rotations):
        xr, yr = self._rows(x), self._rows(y)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                b = acle.svld1(pg, yr[i])
                if acc_rows is None:
                    r = (acle.svdup_f64(0.0) if xr.dtype == np.float64
                         else acle.svdup_f32(0.0))
                else:
                    r = acle.svld1(pg, acc_rows[i])
                for rot in rotations:
                    r = acle.svcmla_x(pg, r, a, b, rot)
                acle.svst1(pg, orows[i], 0, r)
        return out

    # -- complex arithmetic (Eq. (2) rotation pairs) -------------------
    def mul(self, x, y):
        return self._fcmla_rows(None, x, y, (90, 0))

    def madd(self, acc, x, y):
        return self._fcmla_rows(self._rows(acc), x, y, (90, 0))

    def msub(self, acc, x, y):
        return self._fcmla_rows(self._rows(acc), x, y, (270, 180))

    def conj_mul(self, x, y):
        return self._fcmla_rows(None, x, y, (270, 0))

    def conj_madd(self, acc, x, y):
        return self._fcmla_rows(self._rows(acc), x, y, (270, 0))

    def mul_real_part(self, x, y):
        # FCMLA rotation 0 alone accumulates Re(x) * y (Section III-D).
        return self._fcmla_rows(None, x, y, (0,))

    def madd_real_part(self, acc, x, y):
        return self._fcmla_rows(self._rows(acc), x, y, (0,))

    # -- i-multiplications via FCADD ------------------------------------
    def _fcadd_zero(self, x, rot):
        xr = self._rows(x)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                zero = (acle.svdup_f64(0.0) if xr.dtype == np.float64
                        else acle.svdup_f32(0.0))
                acle.svst1(pg, orows[i], 0, acle.svcadd_x(pg, zero, a, rot))
        return out

    def times_i(self, x):
        """``i*x`` = FCADD(0, x, 90)."""
        return self._fcadd_zero(x, 90)

    def times_minus_i(self, x):
        """``-i*x`` = FCADD(0, x, 270)."""
        return self._fcadd_zero(x, 270)

    def scale(self, x, s):
        s = complex(s)
        x = self.validate(x)
        const = np.full(x.shape[-1], s, dtype=x.dtype)
        crow = np.ascontiguousarray(const).view(self._real_view_dtype(x))
        xr = self._rows(x)
        out, orows = self._alloc_like(x)
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            c = acle.svld1(pg, crow)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                r = (acle.svdup_f64(0.0) if xr.dtype == np.float64
                     else acle.svdup_f32(0.0))
                r = acle.svcmla_x(pg, r, c, a, 90)
                r = acle.svcmla_x(pg, r, c, a, 0)
                acle.svst1(pg, orows[i], 0, r)
        return out

    # -- precision conversion (fp16 comms compression) ------------------
    def to_half(self, x):
        xr = self._rows(x)
        n_half = 2 * self.validate(x).shape[-1]
        out = np.zeros(xr.shape[:-1] + (n_half,), dtype=np.float16)
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                h = acle.svcvt_f16_x(pg, a)
                out[i] = h.values[:n_half]
        return out.reshape(np.asarray(x).shape[:-1] + (n_half,))

"""Grid's machine-specific abstraction layer (Section II-C).

Grid confines machine-specific code to a small set of operations —
"arithmetics of real and complex numbers, permutations of vector
elements, load/store, conversion of floating-point precision" — behind
a vector-type abstraction.  This package reproduces that layer:

* :class:`~repro.simd.backend.SimdBackend` — the abstract interface
  (``MultComplex``, ``MaddComplex``, ``TimesI``, ``Permute`` ...).
* :mod:`repro.simd.generic` — the architecture-independent C/C++ path
  of Table I (numpy arithmetic, user-defined lane count).
* :mod:`repro.simd.fixed` — the fixed-width families of Table I
  (SSE4, AVX/AVX2, AVX-512/ICMI, QPX, NEONv8).
* :mod:`repro.simd.sve_acle` — SVE via ACLE intrinsics with FCMLA
  (the paper's chosen implementation, Sections V-B/V-C).
* :mod:`repro.simd.sve_real` — SVE complex arithmetic built from real
  instructions (the alternative of Section V-E).

All backends implement identical mathematics; the Grid layer above is
backend-agnostic.  Backends carry their lane geometry, which drives the
virtual-node decomposition of the lattice (Fig. 1).
"""

from repro.simd.backend import SimdBackend
from repro.simd.generic import GenericBackend
from repro.simd.fixed import FIXED_FAMILIES, FixedWidthBackend
from repro.simd.sve_acle import SveAcleBackend
from repro.simd.sve_real import SveRealBackend
from repro.simd.resilient import (
    BackendDegradedWarning,
    DegradeEvent,
    ResilientBackend,
    reset_all_degraded,
)
from repro.simd.registry import (
    available_backends,
    fallback_enabled,
    fallback_policy,
    get_backend,
    set_fallback_policy,
)

__all__ = [
    "SimdBackend",
    "GenericBackend",
    "FixedWidthBackend",
    "FIXED_FAMILIES",
    "SveAcleBackend",
    "SveRealBackend",
    "ResilientBackend",
    "BackendDegradedWarning",
    "DegradeEvent",
    "reset_all_degraded",
    "available_backends",
    "get_backend",
    "set_fallback_policy",
    "fallback_enabled",
    "fallback_policy",
]

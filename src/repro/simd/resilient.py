"""Graceful backend degradation.

A production run must not die because one vector backend hits a bad
instruction path (the Section V-D story: an immature toolchain whose
codegen is wrong for some vector lengths).  :class:`ResilientBackend`
wraps a primary backend; the first operation that raises degrades the
instance to an architecture-independent ``generic`` backend of the
same register width — numerically identical by construction (all
backends implement the same mathematics) — records the event, and
emits a :class:`BackendDegradedWarning`.  While the primary is
healthy the proxy is a pure pass-through, so pristine results are
bit-identical with or without the wrapper.
"""

from __future__ import annotations

import warnings
import weakref
from dataclasses import dataclass

from repro.simd.backend import SimdBackend
from repro.simd.generic import GenericBackend

#: Every live proxy, so a campaign rerun can clear sticky degradation
#: without holding references (see :func:`reset_all_degraded`).
_INSTANCES: "weakref.WeakSet[ResilientBackend]" = weakref.WeakSet()


class BackendDegradedWarning(UserWarning):
    """A SIMD backend raised and the run fell back to ``generic``."""


def _feed_breaker(backend_name: str, error: str) -> None:
    """Report the degradation to the per-subsystem circuit breaker.

    Sticky degradation already *is* an open breaker for this instance;
    the registry entry makes the event visible to the supervisor and
    telemetry.  Function-level import: :mod:`repro.resilience` sits
    above this layer, so importing it here at module scope would be a
    cycle.  One failure opens the breaker — same semantics as the
    sticky fallback itself.
    """
    from repro.resilience.breaker import breaker

    breaker(f"simd.{backend_name}",
            failure_threshold=1).record_failure(error)


@dataclass(frozen=True)
class DegradeEvent:
    """Record of one backend degradation."""

    backend: str
    op: str
    error: str


#: All operations a backend exposes (the Section II-C surface).
_OPS = (
    "mul", "madd", "msub", "conj_mul", "conj_madd",
    "mul_real_part", "madd_real_part",
    "add", "sub", "times_i", "times_minus_i", "conj", "neg", "scale",
    "permute", "reduce_sum", "to_half", "from_half",
)


class ResilientBackend(SimdBackend):
    """Proxy backend that degrades to ``generic`` instead of crashing.

    Degradation is sticky: once the primary has raised, every later
    call goes to the fallback (re-trying a broken backend mid-solve
    would mix two code paths within one field).
    """

    def __init__(self, primary: SimdBackend,
                 fallback: SimdBackend = None) -> None:
        self.primary = primary
        self.fallback = fallback or GenericBackend(primary.width_bits)
        if self.fallback.clanes() != primary.clanes():
            raise ValueError(
                f"fallback lane count {self.fallback.clanes()} != "
                f"primary {primary.clanes()}"
            )
        self.name = f"resilient({primary.name})"
        self.width_bits = primary.width_bits
        self.degraded = False
        self.events: list[DegradeEvent] = []
        _INSTANCES.add(self)

    def reset(self) -> "ResilientBackend":
        """Clear sticky degradation: route to the primary again.

        Degradation is intentionally sticky *within* a run (see the
        class docstring), but a campaign rerun must start from a
        healthy backend or every post-fault cell inherits the
        fallback.  Returns ``self`` for inline use.
        """
        self.degraded = False
        self.events.clear()
        return self

    def _dispatch(self, op: str, *args, **kwargs):
        if not self.degraded:
            try:
                return getattr(self.primary, op)(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - any backend fault
                self.degraded = True
                event = DegradeEvent(backend=self.primary.name, op=op,
                                     error=f"{type(exc).__name__}: {exc}")
                self.events.append(event)
                _feed_breaker(self.primary.name, event.error)
                warnings.warn(
                    f"backend {self.primary.name!r} failed in {op!r} "
                    f"({event.error}); degrading to "
                    f"{self.fallback.name!r}",
                    BackendDegradedWarning,
                    stacklevel=3,
                )
        return getattr(self.fallback, op)(*args, **kwargs)


def _make_op(op: str):
    def method(self, *args, **kwargs):
        return self._dispatch(op, *args, **kwargs)
    method.__name__ = op
    method.__doc__ = f"``{op}`` with graceful degradation."
    return method


for _op in _OPS:
    setattr(ResilientBackend, _op, _make_op(_op))
del _op
# The abstract-method set was computed before the ops were attached.
ResilientBackend.__abstractmethods__ = frozenset()


def reset_all_degraded() -> int:
    """Reset every live :class:`ResilientBackend`; returns how many
    were degraded.  Called between campaign-suite runs so one run's
    backend fault cannot leak a sticky fallback into the next."""
    n = 0
    for be in list(_INSTANCES):
        if be.degraded:
            n += 1
        be.reset()
    return n

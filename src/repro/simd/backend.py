"""The abstract SIMD backend interface.

A backend operates on *row batches*: numpy complex arrays whose last
axis is the complex lane count of one vector register (Grid's
``vComplexD``/``vComplexF``).  The Grid layer above flattens lattice
tensors into such batches, so one backend call processes every outer
site at once — numpy backends vectorize over the batch, while the SVE
backends iterate rows through the intrinsics layer lane-accurately.

The operation set is exactly the machine-specific surface Grid needs
(Section II-C): real/complex arithmetic, element permutations, and
precision conversion.  ``MultComplex`` is the structure the paper's
Section V-C code example implements.
"""

from __future__ import annotations

import abc

import numpy as np

#: Bits per complex element by numpy dtype.
_COMPLEX_BITS = {np.dtype(np.complex128): 128, np.dtype(np.complex64): 64}


class SimdBackend(abc.ABC):
    """Abstract vector backend.

    Concrete backends define :attr:`name`, :attr:`width_bits` and the
    arithmetic kernels.  All arithmetic methods are *pure* (returning
    new arrays) and operate lane-wise on ``(..., clanes)`` complex
    arrays.
    """

    #: Short identifier (registry key).
    name: str = "abstract"
    #: Vector register width in bits.
    width_bits: int = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def clanes(self, dtype=np.complex128) -> int:
        """Complex lanes per register for the given precision
        (Grid's ``Nsimd``)."""
        return self.width_bits // _COMPLEX_BITS[np.dtype(dtype)]

    def validate(self, x: np.ndarray, dtype=None) -> np.ndarray:
        """Check that ``x`` has a full register's worth of lanes."""
        x = np.asarray(x)
        if x.dtype not in _COMPLEX_BITS:
            raise TypeError(f"backend rows must be complex, got {x.dtype}")
        expected = self.clanes(x.dtype)
        if x.shape[-1] != expected:
            raise ValueError(
                f"{self.name}: rows need {expected} complex lanes for "
                f"{x.dtype}, got {x.shape[-1]}"
            )
        return x

    # ------------------------------------------------------------------
    # Complex arithmetic (the heart of the paper)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``MultComplex``: lane-wise ``x * y``."""

    @abc.abstractmethod
    def madd(self, acc: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``MaddComplex``: lane-wise ``acc + x * y``."""

    @abc.abstractmethod
    def msub(self, acc: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """lane-wise ``acc - x * y``."""

    @abc.abstractmethod
    def conj_mul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """lane-wise ``conj(x) * y`` (inner-product kernel)."""

    @abc.abstractmethod
    def conj_madd(self, acc: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """lane-wise ``acc + conj(x) * y``."""

    # ------------------------------------------------------------------
    # Real-part arithmetic (Grid's MultRealPart/MaddRealPart)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mul_real_part(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``MultRealPart``: ``Re(x) * y`` lane-wise."""

    @abc.abstractmethod
    def madd_real_part(self, acc: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``MaddRealPart``: ``acc + Re(x) * y``."""

    # ------------------------------------------------------------------
    # Additive / structural
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """lane-wise ``x + y``."""

    @abc.abstractmethod
    def sub(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """lane-wise ``x - y``."""

    @abc.abstractmethod
    def times_i(self, x: np.ndarray) -> np.ndarray:
        """``TimesI``: lane-wise ``i * x`` (spin-projection building block)."""

    @abc.abstractmethod
    def times_minus_i(self, x: np.ndarray) -> np.ndarray:
        """``TimesMinusI``: lane-wise ``-i * x``."""

    @abc.abstractmethod
    def conj(self, x: np.ndarray) -> np.ndarray:
        """lane-wise complex conjugation."""

    @abc.abstractmethod
    def neg(self, x: np.ndarray) -> np.ndarray:
        """lane-wise negation."""

    @abc.abstractmethod
    def scale(self, x: np.ndarray, s: complex) -> np.ndarray:
        """multiply by a scalar constant."""

    # ------------------------------------------------------------------
    # Permutes (virtual-node boundary exchange, Section II-B)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def permute(self, x: np.ndarray, level: int) -> np.ndarray:
        """Grid ``Permute<level>``: swap lane blocks of size
        ``clanes / 2^(level+1)`` (an involution)."""

    # ------------------------------------------------------------------
    # Reductions and conversions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reduce_sum(self, x: np.ndarray) -> complex:
        """Sum over all rows and lanes (norms / inner products)."""

    def to_half(self, x: np.ndarray) -> np.ndarray:
        """Compress to IEEE fp16 pairs (comms compression, Section V-B).

        Returns a float16 array of shape ``(..., 2*clanes)`` with
        interleaved re/im.
        """
        x = self.validate(x)
        view_dtype = np.float64 if x.dtype == np.complex128 else np.float32
        flat = np.ascontiguousarray(x).view(view_dtype)
        return flat.astype(np.float16)

    def from_half(self, h: np.ndarray, dtype=np.complex128) -> np.ndarray:
        """Decompress fp16 pairs back to complex lanes."""
        dtype = np.dtype(dtype)
        view_dtype = np.float64 if dtype == np.complex128 else np.float32
        wide = np.asarray(h, dtype=np.float16).astype(view_dtype)
        return np.ascontiguousarray(wide).view(dtype)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def instruction_counts(self):
        """Per-instruction counts for instruction-counting backends
        (``None`` for numpy backends)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.width_bits}b>"


class NumpyArithmeticMixin:
    """Shared numpy implementations for non-instruction-counting backends."""

    def mul(self, x, y):
        return self.validate(x) * self.validate(y)

    def madd(self, acc, x, y):
        return self.validate(acc) + self.validate(x) * self.validate(y)

    def msub(self, acc, x, y):
        return self.validate(acc) - self.validate(x) * self.validate(y)

    def conj_mul(self, x, y):
        return np.conj(self.validate(x)) * self.validate(y)

    def conj_madd(self, acc, x, y):
        return self.validate(acc) + np.conj(self.validate(x)) * self.validate(y)

    def mul_real_part(self, x, y):
        return self.validate(x).real * self.validate(y)

    def madd_real_part(self, acc, x, y):
        return self.validate(acc) + self.validate(x).real * self.validate(y)

    def add(self, x, y):
        return self.validate(x) + self.validate(y)

    def sub(self, x, y):
        return self.validate(x) - self.validate(y)

    def times_i(self, x):
        x = self.validate(x)
        return x * x.dtype.type(1j)  # dtype-preserving (no promotion)

    def times_minus_i(self, x):
        x = self.validate(x)
        return x * x.dtype.type(-1j)

    def conj(self, x):
        return np.conj(self.validate(x))

    def neg(self, x):
        return -self.validate(x)

    def scale(self, x, s):
        x = self.validate(x)
        return x * x.dtype.type(s)

    def permute(self, x, level):
        x = self.validate(x)
        lanes = x.shape[-1]
        block = lanes >> (level + 1)
        if block < 1:
            raise ValueError(
                f"permute level {level} too deep for {lanes} lanes"
            )
        shape = x.shape[:-1] + (lanes // (2 * block), 2, block)
        return x.reshape(shape)[..., ::-1, :].reshape(x.shape).copy()

    def reduce_sum(self, x):
        return complex(self.validate(x).sum())

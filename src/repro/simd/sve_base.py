"""Shared machinery for the two SVE backends.

Both SVE backends follow the paper's implementation scheme
(Section V-A/V-B): the vector length is fixed per backend instance
(``SVE_VECTOR_LENGTH``), data lives in ordinary arrays, and ACLE
intrinsics are used "only for data processing within functions",
operating on arrays of exactly the size of the vector registers
(the Section IV-D pattern — no VLA loop inside the kernels).
"""

from __future__ import annotations

import numpy as np

from repro import acle
from repro.acle.context import SVEContext
from repro.acle.pred import svbool_t
from repro.acle.vector import svvector_t
from repro.simd.backend import SimdBackend
from repro.sve.ops.permute import permute_indices
from repro.sve.vl import VL


class SveBackendBase(SimdBackend):
    """Common state and helpers for SVE backends at a fixed VL."""

    def __init__(self, vl) -> None:
        self.vl = vl if isinstance(vl, VL) else VL(vl)
        self.width_bits = self.vl.bits
        # One persistent context accumulates intrinsic counts across
        # calls; entered per-operation.
        self._ctx = SVEContext(self.vl)

    # ------------------------------------------------------------------
    # Row marshalling: complex (..., clanes) <-> interleaved real rows
    # ------------------------------------------------------------------
    def _real_view_dtype(self, x: np.ndarray):
        return np.float64 if x.dtype == np.complex128 else np.float32

    def _rows(self, x: np.ndarray) -> np.ndarray:
        """Flatten to (N, vl_lanes) interleaved real rows.

        numpy's complex memory layout *is* the FCMLA layout (re in even,
        im in odd positions), so a dtype reinterpretation is exactly the
        ``svld1`` of interleaved data in the paper's Section IV-C.
        """
        x = self.validate(x)
        rdtype = self._real_view_dtype(x)
        flat = np.ascontiguousarray(x).view(rdtype)
        return flat.reshape(-1, 2 * x.shape[-1])

    def _alloc_like(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """An output array shaped like ``x`` plus its row view."""
        x = np.asarray(x)
        out = np.zeros(x.shape, dtype=x.dtype)  # always C-contiguous
        rows = out.view(self._real_view_dtype(x)).reshape(-1, 2 * x.shape[-1])
        return out, rows

    # ------------------------------------------------------------------
    # Predicates (hoisted per call; constructed once per dtype)
    # ------------------------------------------------------------------
    def _pg_all(self, esize: int) -> svbool_t:
        return svbool_t.from_mask(np.ones(self.vl.lanes(esize), dtype=bool),
                                  esize)

    def _pg_even(self, esize: int) -> svbool_t:
        m = np.zeros(self.vl.lanes(esize), dtype=bool)
        m[0::2] = True
        return svbool_t.from_mask(m, esize)

    def _pg_odd(self, esize: int) -> svbool_t:
        m = np.zeros(self.vl.lanes(esize), dtype=bool)
        m[1::2] = True
        return svbool_t.from_mask(m, esize)

    def _swap_index(self, esize: int) -> svvector_t:
        """TBL index vector exchanging re/im within each pair."""
        lanes = self.vl.lanes(esize)
        idx = np.arange(lanes, dtype=np.int64 if esize == 8 else np.int32)
        idx = idx ^ 1
        return svvector_t(tuple(idx.tolist()), idx.dtype.str)

    def _permute_index(self, level: int, esize: int) -> svvector_t:
        """TBL index vector for Grid Permute<level> on complex pairs."""
        lanes = self.vl.lanes(esize)
        cperm = permute_indices(lanes // 2, level)
        idx = np.empty(lanes, dtype=np.int64 if esize == 8 else np.int32)
        idx[0::2] = 2 * cperm
        idx[1::2] = 2 * cperm + 1
        return svvector_t(tuple(idx.tolist()), idx.dtype.str)

    # ------------------------------------------------------------------
    # Shared ops implemented with real instructions in both backends
    # ------------------------------------------------------------------
    def add(self, x, y):
        xr, yr = self._rows(x), self._rows(y)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                b = acle.svld1(pg, yr[i])
                acle.svst1(pg, orows[i], 0, acle.svadd_x(pg, a, b))
        return out

    def sub(self, x, y):
        xr, yr = self._rows(x), self._rows(y)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                b = acle.svld1(pg, yr[i])
                acle.svst1(pg, orows[i], 0, acle.svsub_x(pg, a, b))
        return out

    def neg(self, x):
        xr = self._rows(x)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                acle.svst1(pg, orows[i], 0, acle.svneg_x(pg, a))
        return out

    def conj(self, x):
        """Conjugation = negate the imaginary (odd) lanes."""
        xr = self._rows(x)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            pg = self._pg_all(xr.dtype.itemsize)
            podd = self._pg_odd(xr.dtype.itemsize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                acle.svst1(pg, orows[i], 0, acle.svneg_x(podd, a))
        return out

    def permute(self, x, level):
        xr = self._rows(x)
        out, orows = self._alloc_like(self.validate(x))
        with self._ctx:
            esize = xr.dtype.itemsize
            pg = self._pg_all(esize)
            idx = self._permute_index(level, esize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                acle.svst1(pg, orows[i], 0, acle.svtbl(a, idx))
        return out

    def reduce_sum(self, x):
        xr = self._rows(x)
        re = im = 0.0
        with self._ctx:
            esize = xr.dtype.itemsize
            pg = self._pg_all(esize)
            peven = self._pg_even(esize)
            podd = self._pg_odd(esize)
            for i in range(xr.shape[0]):
                a = acle.svld1(pg, xr[i])
                re += acle.svaddv(peven, a)
                im += acle.svaddv(podd, a)
        return complex(re, im)

    def instruction_counts(self):
        return self._ctx.counts

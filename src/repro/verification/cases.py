"""The 40 representative verification cases.

Each case is a self-checking function run at a given SVE vector length,
optionally under a toolchain fault model (which only affects cases that
execute *assembled programs* on the machine — the moral equivalent of
compiler-generated binaries under ArmIE; ACLE/backend/grid cases model
hand-written intrinsics code paths).

Categories mirror what Grid's own test battery covers:

* ``kernel`` — compiled VLA kernels run on the emulator,
* ``acle``  — intrinsics-level semantics,
* ``simd``  — the machine-specific backend layer,
* ``grid``  — lattice containers, shifts, gamma algebra, SU(3),
* ``physics`` — Dirac operator, solvers, distributed equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import acle
from repro.armie import run_kernel
from repro.grid import gamma as gmod
from repro.grid.cartesian import GridCartesian
from repro.grid.cshift import cshift
from repro.grid.lattice import Lattice
from repro.simd import get_backend
from repro.vectorizer import ir
from repro.vectorizer.autovec import vectorize, vectorize_fixed
from repro.sve.decoder import assemble
from repro.sve.vl import VL


@dataclass(frozen=True)
class Case:
    """One verification case."""

    name: str
    category: str
    fn: Callable
    fault_sensitive: bool = False

    def run(self, vl_bits: int, fault_model=None) -> None:
        """Execute; raises on failure."""
        self.fn(vl_bits, fault_model if self.fault_sensitive else None)


_REGISTRY: list[Case] = []


def _case(category: str, fault_sensitive: bool = False):
    def deco(fn):
        _REGISTRY.append(Case(
            name=fn.__name__.replace("case_", ""),
            category=category,
            fn=fn,
            fault_sensitive=fault_sensitive,
        ))
        return fn
    return deco


def _rng(vl_bits: int, salt: int = 0) -> np.random.Generator:
    return np.random.default_rng(1000 + vl_bits + salt)


# ======================================================================
# kernel: compiled VLA programs on the emulator (fault-sensitive)
# ======================================================================

def _check_kernel(kernel, arrays, ref, vl_bits, fault_model, **kw):
    res = run_kernel(vectorize(kernel, **kw), kernel, arrays, vl_bits,
                     fault_model=fault_model)
    if not np.allclose(res.output, ref, rtol=1e-12, atol=1e-12):
        bad = int(np.sum(~np.isclose(res.output, ref, rtol=1e-12, atol=1e-12)))
        raise AssertionError(
            f"kernel {kernel.name} wrong at VL{vl_bits}: {bad}/{ref.size} "
            f"elements differ (faults fired: {res.faults_fired})"
        )


@_case("kernel", fault_sensitive=True)
def case_mult_real_even_trip(vl_bits, fm):
    rng = _rng(vl_bits)
    x, y = rng.normal(size=1024), rng.normal(size=1024)
    _check_kernel(ir.mult_real_kernel(), [x, y], x * y, vl_bits, fm)


@_case("kernel", fault_sensitive=True)
def case_mult_real_partial_tail(vl_bits, fm):
    rng = _rng(vl_bits, 1)
    x, y = rng.normal(size=1001), rng.normal(size=1001)
    _check_kernel(ir.mult_real_kernel(), [x, y], x * y, vl_bits, fm)


@_case("kernel", fault_sensitive=True)
def case_mult_real_single_element(vl_bits, fm):
    rng = _rng(vl_bits, 2)
    x, y = rng.normal(size=1), rng.normal(size=1)
    _check_kernel(ir.mult_real_kernel(), [x, y], x * y, vl_bits, fm)


def _cplx(rng, n):
    return rng.normal(size=n) + 1j * rng.normal(size=n)


@_case("kernel", fault_sensitive=True)
def case_mult_cplx_autovec_even(vl_bits, fm):
    rng = _rng(vl_bits, 3)
    x, y = _cplx(rng, 512), _cplx(rng, 512)
    _check_kernel(ir.mult_cplx_kernel(), [x, y], x * y, vl_bits, fm,
                  complex_isa=False)


@_case("kernel", fault_sensitive=True)
def case_mult_cplx_autovec_tail(vl_bits, fm):
    rng = _rng(vl_bits, 4)
    x, y = _cplx(rng, 333), _cplx(rng, 333)
    _check_kernel(ir.mult_cplx_kernel(), [x, y], x * y, vl_bits, fm,
                  complex_isa=False)


@_case("kernel", fault_sensitive=True)
def case_mult_cplx_acle_even(vl_bits, fm):
    rng = _rng(vl_bits, 5)
    x, y = _cplx(rng, 512), _cplx(rng, 512)
    _check_kernel(ir.mult_cplx_kernel(), [x, y], x * y, vl_bits, fm,
                  complex_isa=True)


@_case("kernel", fault_sensitive=True)
def case_mult_cplx_acle_tail(vl_bits, fm):
    rng = _rng(vl_bits, 6)
    x, y = _cplx(rng, 257), _cplx(rng, 257)
    _check_kernel(ir.mult_cplx_kernel(), [x, y], x * y, vl_bits, fm,
                  complex_isa=True)


@_case("kernel", fault_sensitive=True)
def case_axpy_real_fused(vl_bits, fm):
    rng = _rng(vl_bits, 7)
    x, y = rng.normal(size=777), rng.normal(size=777)
    k = ir.axpy_kernel(1.5, "f64")
    _check_kernel(k, [x, y], 1.5 * x + y, vl_bits, fm)


@_case("kernel", fault_sensitive=True)
def case_axpy_cplx_autovec(vl_bits, fm):
    rng = _rng(vl_bits, 8)
    a = 0.5 - 0.25j
    x, y = _cplx(rng, 300), _cplx(rng, 300)
    _check_kernel(ir.axpy_kernel(a), [x, y], a * x + y, vl_bits, fm,
                  complex_isa=False)


@_case("kernel", fault_sensitive=True)
def case_axpy_cplx_acle(vl_bits, fm):
    rng = _rng(vl_bits, 9)
    a = -1.25 + 2.0j
    x, y = _cplx(rng, 301), _cplx(rng, 301)
    _check_kernel(ir.axpy_kernel(a), [x, y], a * x + y, vl_bits, fm,
                  complex_isa=True)


@_case("kernel", fault_sensitive=True)
def case_conj_mul_acle(vl_bits, fm):
    rng = _rng(vl_bits, 10)
    x, y = _cplx(rng, 129), _cplx(rng, 129)
    _check_kernel(ir.conj_mul_kernel(), [x, y], np.conj(x) * y, vl_bits, fm,
                  complex_isa=True)


@_case("kernel", fault_sensitive=True)
def case_expression_tree_real(vl_bits, fm):
    rng = _rng(vl_bits, 11)
    x, y = rng.normal(size=450), rng.normal(size=450)
    k = ir.Kernel(
        name="tree", scalar_type="f64",
        inputs=[ir.Array("x"), ir.Array("y")],
        expr=ir.Sub(ir.Mul(ir.Load(0), ir.Load(0)),
                    ir.Mul(ir.Load(1), ir.Const(2.0))),
        output=ir.Array("z", const=False),
    )
    _check_kernel(k, [x, y], x * x - 2.0 * y, vl_bits, fm)


#: The paper's Section IV-A listing, verbatim (OCR artifacts fixed).
LISTING_IVA = """
    mov     x8, xzr
    whilelo p1.d, xzr, x0
    ptrue   p0.d
.LBB0_4:
    ld1d    {z0.d}, p1/z, [x1, x8, lsl #3]
    ld1d    {z1.d}, p1/z, [x2, x8, lsl #3]
    fmul    z0.d, z0.d, z1.d
    st1d    {z0.d}, p1, [x3, x8, lsl #3]
    incd    x8
    whilelo p2.d, x8, x0
    brkns   p2.b, p0/z, p1.b, p2.b
    mov     p1.b, p2.b
    b.mi    .LBB0_4
    ret
"""

#: The paper's Section IV-C listing, verbatim (limit 2n precomputed in
#: x8, as the surrounding compiler output did).
LISTING_IVC = """
    lsl     x8, x0, #1
    mov     x9, xzr
    mov     z0.d, #0
.LBB3_2:
    whilelo p0.d, x9, x8
    ld1d    {z1.d}, p0/z, [x1, x9, lsl #3]
    ld1d    {z2.d}, p0/z, [x2, x9, lsl #3]
    mov     z3.d, z0.d
    fcmla   z3.d, p0/m, z1.d, z2.d, #90
    fcmla   z3.d, p0/m, z1.d, z2.d, #0
    st1d    {z3.d}, p0, [x3, x9, lsl #3]
    incd    x9
    cmp     x9, x8
    b.lo    .LBB3_2
    ret
"""


@_case("kernel", fault_sensitive=True)
def case_paper_listing_iva(vl_bits, fm):
    rng = _rng(vl_bits, 12)
    x, y = rng.normal(size=1001), rng.normal(size=1001)
    res = run_kernel(assemble(LISTING_IVA), ir.mult_real_kernel(), [x, y],
                     vl_bits, fault_model=fm)
    assert np.array_equal(res.output, x * y), \
        f"paper listing IV-A wrong at VL{vl_bits}"


@_case("kernel", fault_sensitive=True)
def case_paper_listing_ivc(vl_bits, fm):
    rng = _rng(vl_bits, 13)
    x, y = _cplx(rng, 333), _cplx(rng, 333)
    res = run_kernel(assemble(LISTING_IVC), ir.mult_cplx_kernel(), [x, y],
                     vl_bits, fault_model=fm)
    assert np.allclose(res.output, x * y, rtol=1e-13), \
        f"paper listing IV-C wrong at VL{vl_bits}"


#: Hand-written dot product: predicated VLA loop, FMLA accumulator,
#: FADDV reduction, result bits returned in x0.
LISTING_DOT = """
    mov     x8, xzr
    whilelo p1.d, xzr, x0
    ptrue   p0.d
    mov     z2.d, #0
.Ldot_loop:
    ld1d    {z0.d}, p1/z, [x1, x8, lsl #3]
    ld1d    {z1.d}, p1/z, [x2, x8, lsl #3]
    fmla    z2.d, p1/m, z0.d, z1.d
    incd    x8
    whilelo p2.d, x8, x0
    brkns   p2.b, p0/z, p1.b, p2.b
    mov     p1.b, p2.b
    b.mi    .Ldot_loop
    ptrue   p0.d
    faddv   d0, p0, z2.d
    st1d    {z0.d}, p1, [x3]
    ret
"""


@_case("kernel", fault_sensitive=True)
def case_dot_product_asm(vl_bits, fm):
    from repro.sve.machine import Machine
    from repro.sve.memory import Memory

    rng = _rng(vl_bits, 14)
    n = 517
    x, y = rng.normal(size=n), rng.normal(size=n)
    mem = Memory(1 << 20)
    ax, ay = mem.alloc_array(x), mem.alloc_array(y)
    az = mem.alloc(VL(vl_bits).bytes)
    m = Machine(VL(vl_bits), memory=mem, fault_model=fm)
    m.call(assemble(LISTING_DOT), n, ax, ay, az)
    got = m.read_fp_scalar(0)
    want = float(x @ y)
    assert np.isclose(got, want, rtol=1e-10), \
        f"dot product {got} != {want} at VL{vl_bits}"


@_case("kernel", fault_sensitive=True)
def case_fixed_vl_kernel(vl_bits, fm):
    rng = _rng(vl_bits, 15)
    nc = VL(vl_bits).complex_lanes(8)
    x, y = _cplx(rng, nc), _cplx(rng, nc)
    k = ir.mult_cplx_kernel()
    res = run_kernel(vectorize_fixed(k, complex_isa=True), k, [x, y],
                     vl_bits, n=nc, fault_model=fm)
    assert np.allclose(res.output, x * y, rtol=1e-13)


# ======================================================================
# acle: intrinsics-level semantics
# ======================================================================

@_case("acle")
def case_acle_fcmla_rotations(vl_bits, fm):
    rng = _rng(vl_bits, 16)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        xv = rng.normal(size=lanes)
        yv = rng.normal(size=lanes)
        x = acle.svld1(pg, xv)
        y = acle.svld1(pg, yv)
        zero = acle.svdup_f64(0.0)
        xc = xv[0::2] + 1j * xv[1::2]
        yc = yv[0::2] + 1j * yv[1::2]
        r = acle.svcmla_x(pg, acle.svcmla_x(pg, zero, x, y, 90), x, y, 0)
        got = r.values[0::2] + 1j * r.values[1::2]
        assert np.allclose(got, xc * yc)
        r = acle.svcmla_x(pg, acle.svcmla_x(pg, zero, x, y, 270), x, y, 0)
        got = r.values[0::2] + 1j * r.values[1::2]
        assert np.allclose(got, np.conj(xc) * yc)


@_case("acle")
def case_acle_structure_loads(vl_bits, fm):
    rng = _rng(vl_bits, 17)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        buf = rng.normal(size=2 * lanes)
        re, im = acle.svld2(pg, buf)
        assert np.allclose(re.values, buf[0::2])
        assert np.allclose(im.values, buf[1::2])
        out = np.zeros(2 * lanes)
        acle.svst2(pg, out, 0, re, im)
        assert np.allclose(out, buf)


@_case("acle")
def case_acle_vla_loop_tail(vl_bits, fm):
    rng = _rng(vl_bits, 18)
    n = 2 * VL(vl_bits).lanes(8) + 3  # guaranteed ragged tail
    x = rng.normal(size=n)
    out = np.zeros(n)
    with acle.SVEContext(vl_bits):
        i = 0
        while i < n:
            pg = acle.svwhilelt_b64(i, n)
            v = acle.svld1(pg, x, i)
            acle.svst1(pg, out, i, acle.svmul_x(pg, v, 2.0))
            i += acle.svcntd()
    assert np.allclose(out, 2.0 * x)


@_case("acle")
def case_acle_ordered_reduction(vl_bits, fm):
    rng = _rng(vl_bits, 19)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        xv = rng.normal(size=lanes)
        v = acle.svld1(pg, xv)
        tree = acle.svaddv(pg, v)
        ordered = acle.svadda(pg, 0.0, v)
        assert np.isclose(tree, xv.sum())
        assert np.isclose(ordered, np.add.reduce(xv))


@_case("acle")
def case_acle_permutes(vl_bits, fm):
    rng = _rng(vl_bits, 20)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        a = acle.svld1(pg, rng.normal(size=lanes))
        b = acle.svld1(pg, rng.normal(size=lanes))
        # zip/uzp round trip
        lo, hi = acle.svzip1(a, b), acle.svzip2(a, b)
        assert np.allclose(acle.svuzp1(lo, hi).values, a.values)
        assert np.allclose(acle.svuzp2(lo, hi).values, b.values)
        # ext rotation identity
        r = acle.svext(a, a, lanes // 2)
        r = acle.svext(r, r, lanes - lanes // 2)
        assert np.allclose(r.values, a.values)


@_case("acle")
def case_acle_fp16_conversion(vl_bits, fm):
    rng = _rng(vl_bits, 21)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        xv = rng.normal(size=lanes)
        v = acle.svld1(pg, xv)
        h = acle.svcvt_f16_x(pg, v)
        assert np.allclose(h.values[:lanes], xv, rtol=2e-3, atol=1e-4)


@_case("acle")
def case_acle_sizeless_discipline(vl_bits, fm):
    """Intrinsics outside a context must fail (Section III-C)."""
    from repro.acle.context import NoSVEContext
    try:
        acle.svcntd()
    except NoSVEContext:
        return
    raise AssertionError("svcntd without a context should raise")


# ======================================================================
# simd: the machine-specific backend layer
# ======================================================================

def _sve_backends(vl_bits):
    return [get_backend(f"sve{vl_bits}-acle"), get_backend(f"sve{vl_bits}-real")]


def _rand_rows(rng, backend, rows=3):
    cl = backend.clanes()
    return (rng.normal(size=(rows, cl)) + 1j * rng.normal(size=(rows, cl)))


@_case("simd")
def case_backend_mult_complex(vl_bits, fm):
    rng = _rng(vl_bits, 22)
    for be in _sve_backends(vl_bits):
        x, y, z = (_rand_rows(rng, be) for _ in range(3))
        assert np.allclose(be.mul(x, y), x * y), be.name
        assert np.allclose(be.madd(z, x, y), z + x * y), be.name
        assert np.allclose(be.msub(z, x, y), z - x * y), be.name


@_case("simd")
def case_backend_conj_ops(vl_bits, fm):
    rng = _rng(vl_bits, 23)
    for be in _sve_backends(vl_bits):
        x, y, z = (_rand_rows(rng, be) for _ in range(3))
        assert np.allclose(be.conj_mul(x, y), np.conj(x) * y), be.name
        assert np.allclose(be.conj_madd(z, x, y), z + np.conj(x) * y), be.name
        assert np.allclose(be.conj(x), np.conj(x)), be.name


@_case("simd")
def case_backend_realpart_ops(vl_bits, fm):
    rng = _rng(vl_bits, 24)
    for be in _sve_backends(vl_bits):
        x, y, z = (_rand_rows(rng, be) for _ in range(3))
        assert np.allclose(be.mul_real_part(x, y), x.real * y), be.name
        assert np.allclose(be.madd_real_part(z, x, y), z + x.real * y), be.name


@_case("simd")
def case_backend_times_i(vl_bits, fm):
    rng = _rng(vl_bits, 25)
    for be in _sve_backends(vl_bits):
        x = _rand_rows(rng, be)
        assert np.allclose(be.times_i(x), 1j * x), be.name
        assert np.allclose(be.times_minus_i(x), -1j * x), be.name


@_case("simd")
def case_backend_permutes(vl_bits, fm):
    rng = _rng(vl_bits, 26)
    for be in _sve_backends(vl_bits):
        if be.clanes() < 2:
            continue
        x = _rand_rows(rng, be)
        ref = get_backend(f"generic{vl_bits}")
        levels = int(np.log2(be.clanes()))
        for level in range(levels):
            assert np.allclose(be.permute(x, level), ref.permute(x, level)), \
                (be.name, level)
            assert np.allclose(be.permute(be.permute(x, level), level), x), \
                (be.name, level)


@_case("simd")
def case_backend_fp16_pack(vl_bits, fm):
    rng = _rng(vl_bits, 27)
    for be in _sve_backends(vl_bits):
        x = _rand_rows(rng, be)
        h = be.to_half(x)
        assert h.dtype == np.float16
        back = be.from_half(h)
        assert np.allclose(back, x, rtol=2e-3, atol=1e-4), be.name


@_case("simd")
def case_backend_cross_equivalence(vl_bits, fm):
    """All Table I backends + both SVE strategies agree bit-for-bit on
    a random arithmetic expression."""
    rng = _rng(vl_bits, 28)
    gen = get_backend(f"generic{vl_bits}")
    x, y, z = (_rand_rows(rng, gen) for _ in range(3))
    want = (z + np.conj(x) * y) * (0.5 + 0.5j) + 1j * x
    for be in _sve_backends(vl_bits) + [gen]:
        got = be.add(be.scale(be.conj_madd(z, x, y), 0.5 + 0.5j),
                     be.times_i(x))
        assert np.allclose(got, want), be.name


# ======================================================================
# grid: lattice machinery on the SVE backends
# ======================================================================

def _small_grid(vl_bits, backend=None):
    be = backend or get_backend(f"sve{vl_bits}-acle")
    # 2^4 keeps SVE-backend runtime small while still exercising every
    # virtual-node boundary (all odims small or 1).
    return GridCartesian([2, 2, 2, 2], be)


@_case("grid")
def case_lattice_canonical_roundtrip(vl_bits, fm):
    rng = _rng(vl_bits, 29)
    g = _small_grid(vl_bits, get_backend(f"generic{vl_bits}"))
    lat = Lattice(g, (4, 3))
    can = rng.normal(size=(g.lsites, 4, 3)) + 1j * rng.normal(size=(g.lsites, 4, 3))
    lat.from_canonical(can)
    assert np.allclose(lat.to_canonical(), can)


@_case("grid")
def case_cshift_vs_roll(vl_bits, fm):
    rng = _rng(vl_bits, 30)
    g = _small_grid(vl_bits, get_backend(f"generic{vl_bits}"))
    lat = Lattice(g, (3,))
    can = rng.normal(size=(g.lsites, 3)) + 1j * rng.normal(size=(g.lsites, 3))
    lat.from_canonical(can)
    resh = can.reshape(tuple(reversed(g.ldims)) + (3,))
    for dim in range(4):
        for s in (1, -1):
            got = cshift(lat, dim, s).to_canonical()
            want = np.roll(resh, -s, axis=3 - dim).reshape(g.lsites, 3)
            assert np.allclose(got, want), (dim, s)


@_case("grid")
def case_cshift_sve_backend(vl_bits, fm):
    """cshift on the SVE backend: the lane permutes run through the
    intrinsics layer."""
    rng = _rng(vl_bits, 31)
    g = _small_grid(vl_bits)
    lat = Lattice(g, ())
    can = rng.normal(size=(g.lsites,)) + 1j * rng.normal(size=(g.lsites,))
    lat.from_canonical(can.reshape(g.lsites))
    resh = can.reshape(tuple(reversed(g.ldims)))
    for dim in range(4):
        got = cshift(lat, dim, 1).to_canonical()
        want = np.roll(resh, -1, axis=3 - dim).reshape(g.lsites)
        assert np.allclose(got, want), dim


@_case("grid")
def case_stencil_equals_cshift(vl_bits, fm):
    from repro.grid.stencil import HaloStencil, stencil_cshift

    rng = _rng(vl_bits, 32)
    g = _small_grid(vl_bits, get_backend(f"generic{vl_bits}"))
    lat = Lattice(g, (3,))
    lat.from_canonical(
        rng.normal(size=(g.lsites, 3)) + 1j * rng.normal(size=(g.lsites, 3))
    )
    st = HaloStencil(g)
    for dim in range(4):
        for s in (+1, -1):
            a = stencil_cshift(st, lat, dim, s).to_canonical()
            b = cshift(lat, dim, s).to_canonical()
            assert np.allclose(a, b), (dim, s)


@_case("grid")
def case_gamma_algebra(vl_bits, fm):
    for mu in range(4):
        for nu in range(4):
            anti = gmod.GAMMA[mu] @ gmod.GAMMA[nu] + gmod.GAMMA[nu] @ gmod.GAMMA[mu]
            assert np.allclose(anti, 2 * np.eye(4) * (mu == nu))
        assert np.allclose(gmod.GAMMA[mu].conj().T, gmod.GAMMA[mu])
    g5 = gmod.GAMMA[0] @ gmod.GAMMA[1] @ gmod.GAMMA[2] @ gmod.GAMMA[3]
    assert np.allclose(g5, gmod.GAMMA5)


@_case("grid")
def case_spin_project_reconstruct(vl_bits, fm):
    rng = _rng(vl_bits, 33)
    be = get_backend(f"sve{vl_bits}-acle")
    g = _small_grid(vl_bits, be)
    psi = Lattice(g, (4, 3))
    psi.from_canonical(
        rng.normal(size=(g.lsites, 4, 3)) + 1j * rng.normal(size=(g.lsites, 4, 3))
    )
    for mu in range(4):
        for sign in (+1, -1):
            h = gmod.project(be, psi.data, mu, sign)
            rec = gmod.reconstruct(be, h, mu, sign)
            dense = gmod.spin_matrix_apply(
                be, np.eye(4) + sign * gmod.GAMMA[mu], psi.data
            )
            assert np.allclose(rec, dense), (mu, sign)


@_case("grid")
def case_su3_random_field_unitary(vl_bits, fm):
    from repro.grid.random import random_gauge
    from repro.grid.su3 import max_det_defect, max_unitarity_defect

    g = _small_grid(vl_bits, get_backend(f"generic{vl_bits}"))
    links = random_gauge(g, seed=11)
    for u in links:
        assert max_unitarity_defect(u) < 1e-12
        assert max_det_defect(u) < 1e-12


@_case("grid")
def case_plaquette_cold(vl_bits, fm):
    from repro.grid.su3 import plaquette, unit_gauge

    g = _small_grid(vl_bits, get_backend(f"generic{vl_bits}"))
    assert np.isclose(plaquette(unit_gauge(g), g), 1.0)


@_case("grid")
def case_inner_product_linearity(vl_bits, fm):
    rng = _rng(vl_bits, 34)
    be = get_backend(f"sve{vl_bits}-acle")
    g = _small_grid(vl_bits, be)
    a, b = Lattice(g, (3,)), Lattice(g, (3,))
    a.from_canonical(_cplx(rng, g.lsites * 3).reshape(g.lsites, 3))
    b.from_canonical(_cplx(rng, g.lsites * 3).reshape(g.lsites, 3))
    ref_a, ref_b = a.to_canonical().ravel(), b.to_canonical().ravel()
    assert np.isclose(a.inner_product(b), np.vdot(ref_a, ref_b))
    assert np.isclose(a.norm2(), np.vdot(ref_a, ref_a).real)


# ======================================================================
# physics: the Dirac operator and above
# ======================================================================

@_case("physics")
def case_dhop_vs_reference_sve(vl_bits, fm):
    from repro.grid.dhop_ref import dhop_reference
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"sve{vl_bits}-acle")
    g = _small_grid(vl_bits, be)
    psi = random_spinor(g, seed=7)
    links = random_gauge(g, seed=11)
    got = WilsonDirac(links, mass=0.1).dhop(psi).to_canonical()
    ref = dhop_reference([u.to_canonical() for u in links],
                         psi.to_canonical(), g.gdims)
    assert np.allclose(got, ref, rtol=1e-12, atol=1e-12)


@_case("physics")
def case_dhop_sve_real_alternative(vl_bits, fm):
    """The Section V-E real-arithmetic backend produces the same dslash."""
    from repro.grid.dhop_ref import dhop_reference
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"sve{vl_bits}-real")
    g = _small_grid(vl_bits, be)
    psi = random_spinor(g, seed=7)
    links = random_gauge(g, seed=11)
    got = WilsonDirac(links, mass=0.1).dhop(psi).to_canonical()
    ref = dhop_reference([u.to_canonical() for u in links],
                         psi.to_canonical(), g.gdims)
    assert np.allclose(got, ref, rtol=1e-12, atol=1e-12)


@_case("physics")
def case_wilson_g5_hermiticity(vl_bits, fm):
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    w = WilsonDirac(random_gauge(g, seed=11), mass=0.1)
    a = random_spinor(g, seed=20)
    c = random_spinor(g, seed=21)
    lhs = a.inner_product(w.apply(c))
    rhs = w.apply_dagger(a).inner_product(c)
    assert np.isclose(lhs, rhs, rtol=1e-10)


@_case("physics")
def case_cg_solver_converges(vl_bits, fm):
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.solver import solve_wilson_cgne
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    w = WilsonDirac(random_gauge(g, seed=11), mass=0.3)
    rhs = random_spinor(g, seed=5)
    res = solve_wilson_cgne(w, rhs, tol=1e-7, max_iter=300)
    assert res.converged and res.residual < 1e-6


@_case("physics")
def case_distributed_dhop_equivalence(vl_bits, fm):
    from repro.grid.comms import DistributedLattice
    from repro.grid.dist_wilson import DistributedWilson, distribute_gauge
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    dims = [4, 4, 4, 4]
    g = GridCartesian(dims, be)
    psi = random_spinor(g, seed=7)
    links = random_gauge(g, seed=11)
    want = WilsonDirac(links, mass=0.1).dhop(psi).to_canonical()
    mpi = [2, 1, 1, 2]
    dlinks = distribute_gauge(links, dims, be, mpi)
    dpsi = DistributedLattice(dims, be, mpi, (4, 3)).scatter(psi.to_canonical())
    got = DistributedWilson(dlinks, mass=0.1).dhop(dpsi).gather()
    assert np.allclose(got, want, rtol=1e-12, atol=1e-12)


@_case("physics")
def case_fp16_halo_accuracy(vl_bits, fm):
    """fp16-compressed halo exchange changes the dslash only within the
    fp16 error bound (Section V-B usage)."""
    from repro.grid.comms import DistributedLattice
    from repro.grid.dist_wilson import DistributedWilson, distribute_gauge
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    dims = [4, 4, 4, 4]
    g = GridCartesian(dims, be)
    psi = random_spinor(g, seed=7)
    links = random_gauge(g, seed=11)
    want = WilsonDirac(links, mass=0.1).dhop(psi).to_canonical()
    mpi = [2, 1, 1, 1]
    dlinks = distribute_gauge(links, dims, be, mpi, compress_halos=True)
    dpsi = DistributedLattice(dims, be, mpi, (4, 3),
                              compress_halos=True).scatter(psi.to_canonical())
    got = DistributedWilson(dlinks, mass=0.1).dhop(dpsi).gather()
    err = np.abs(got - want).max()
    scale = np.abs(want).max()
    assert err < 5e-3 * scale, f"fp16 halo error {err} too large"
    assert err > 0.0, "compression should not be bit-exact"


ALL_CASES: tuple[Case, ...] = tuple(_REGISTRY)


# ======================================================================
# Additional cases: extensions beyond the paper's minimum scope
# ======================================================================

@_case("kernel", fault_sensitive=True)
def case_dot_reduction_kernel(vl_bits, fm):
    from repro.vectorizer.reductions import run_dot

    rng = _rng(vl_bits, 40)
    x, y = rng.normal(size=213), rng.normal(size=213)
    got = run_dot(x, y, vl_bits, fault_model=fm)
    assert np.isclose(got, x @ y, rtol=1e-10), \
        f"dot reduction wrong at VL{vl_bits}"


@_case("kernel", fault_sensitive=True)
def case_cplx_dot_reduction_kernel(vl_bits, fm):
    from repro.vectorizer.reductions import run_dot

    rng = _rng(vl_bits, 41)
    x, y = _cplx(rng, 101), _cplx(rng, 101)
    got = run_dot(x, y, vl_bits, fault_model=fm)
    assert np.isclose(got, np.vdot(x, y), rtol=1e-10)


@_case("acle")
def case_acle_gather_scatter(vl_bits, fm):
    rng = _rng(vl_bits, 42)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        data = rng.normal(size=4 * lanes)
        idx = acle.svindex_s64(0, 4)
        v = acle.svld1_gather_index(pg, data, idx)
        assert np.allclose(v.values, data[0::4][:lanes])
        out = np.zeros(4 * lanes)
        acle.svst1_scatter_index(pg, out, idx, v)
        assert np.allclose(out[0::4][:lanes], v.values)


@_case("acle")
def case_acle_compare_select(vl_bits, fm):
    rng = _rng(vl_bits, 43)
    with acle.SVEContext(vl_bits):
        lanes = acle.svcntd()
        pg = acle.svptrue_b64()
        xv = rng.normal(size=lanes)
        v = acle.svld1(pg, xv)
        zero = acle.svdup_f64(0.0)
        relu = acle.svsel(acle.svcmpgt(pg, v, zero), v, zero)
        assert np.allclose(relu.values, np.maximum(xv, 0.0))


@_case("physics")
def case_evenodd_schur_solve(vl_bits, fm):
    from repro.grid.evenodd import SchurWilson
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    dirac = WilsonDirac(random_gauge(g, seed=11), mass=0.3)
    b = random_spinor(g, seed=5)
    res = SchurWilson(dirac).solve(b, tol=1e-7, max_iter=400)
    assert res.converged and res.residual < 1e-6


@_case("physics")
def case_mixed_precision_solve(vl_bits, fm):
    from repro.grid.mixedprec import mixed_precision_cgne
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    dirac = WilsonDirac(random_gauge(g, seed=11), mass=0.3)
    b = random_spinor(g, seed=5)
    res = mixed_precision_cgne(dirac, b, tol=1e-9, inner_tol=1e-4)
    assert res.converged and res.residual < 1e-9


@_case("grid")
def case_wilson_loops(vl_bits, fm):
    from repro.grid.observables import average_plaquette, wilson_loop
    from repro.grid.random import random_gauge
    from repro.grid.su3 import plaquette, unit_gauge

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    cold = unit_gauge(g)
    assert np.isclose(wilson_loop(cold, g, 0, 3, 2, 2), 1.0)
    hot = random_gauge(g, seed=11)
    assert np.isclose(average_plaquette(hot, g), plaquette(hot, g))


# Rebuild the exported tuple to include the late additions.
ALL_CASES = tuple(_REGISTRY)


@_case("physics")
def case_clover_operator(vl_bits, fm):
    from repro.grid.clover import WilsonClover
    from repro.grid.random import random_gauge, random_spinor
    from repro.grid.su3 import unit_gauge
    from repro.grid.wilson import WilsonDirac

    be = get_backend(f"generic{vl_bits}")
    g = GridCartesian([4, 4, 4, 4], be)
    cold = unit_gauge(g)
    psi = random_spinor(g, seed=7)
    w = WilsonDirac(cold, mass=0.1).apply(psi)
    c = WilsonClover(cold, mass=0.1, c_sw=1.0).apply(psi)
    assert np.allclose(w.data, c.data, atol=1e-13)
    hot = random_gauge(g, seed=11)
    clover = WilsonClover(hot, mass=0.1, c_sw=1.0)
    a, b = random_spinor(g, seed=20), random_spinor(g, seed=21)
    lhs = a.inner_product(clover.apply(b))
    rhs = clover.apply_dagger(a).inner_product(b)
    assert np.isclose(lhs, rhs, rtol=1e-10)


@_case("grid")
def case_vec_structure_kernels(vl_bits, fm):
    from repro.acle.context import SVEContext
    from repro.simd.vec import MultComplex, Vec

    rng = _rng(vl_bits, 44)
    lanes = vl_bits // 64
    x = Vec(vl_bits, np.float64, rng.normal(size=lanes))
    y = Vec(vl_bits, np.float64, rng.normal(size=lanes))
    with SVEContext(vl_bits):
        out = MultComplex()(x, y)
    assert np.allclose(out.complex_view(),
                       x.complex_view() * y.complex_view())


ALL_CASES = tuple(_REGISTRY)

"""Run the verification matrix and format the Section V-D report."""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.verification.cases import ALL_CASES, Case


@dataclass
class CaseResult:
    """Outcome of one (case, vector length) cell."""

    name: str
    category: str
    vl_bits: int
    passed: bool
    seconds: float
    error: str = ""


@dataclass
class SuiteReport:
    """The full verification matrix."""

    toolchain: str
    results: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return self.total - self.passed

    def failures(self) -> list:
        return [r for r in self.results if not r.passed]

    def by_vl(self) -> dict:
        out: dict = {}
        for r in self.results:
            cell = out.setdefault(r.vl_bits, [0, 0])
            cell[0] += r.passed
            cell[1] += 1
        return out

    def format_table(self) -> str:
        """Pass/fail matrix: one row per case, one column per VL."""
        vls = sorted({r.vl_bits for r in self.results})
        names = []
        for r in self.results:
            if r.name not in names:
                names.append(r.name)
        cell = {(r.name, r.vl_bits): r for r in self.results}
        width = max(len(n) for n in names) + 2
        header = f"{'case':<{width}}" + "".join(f"{f'VL{v}':>8}" for v in vls)
        lines = [f"# toolchain: {self.toolchain}", header,
                 "-" * (width + 8 * len(vls))]
        for n in names:
            row = f"{n:<{width}}"
            for v in vls:
                r = cell.get((n, v))
                row += f"{'pass' if r and r.passed else 'FAIL':>8}"
            lines.append(row)
        lines.append("-" * (width + 8 * len(vls)))
        summary = f"{'TOTAL':<{width}}"
        for v in vls:
            p, t = self.by_vl()[v]
            summary += f"{f'{p}/{t}':>8}"
        lines.append(summary)
        return "\n".join(lines)


def run_suite(
    vls: Sequence[int] = (128, 256, 512),
    fault_model_factory: Optional[Callable] = None,
    cases: Sequence[Case] = ALL_CASES,
    categories: Optional[Sequence[str]] = None,
) -> SuiteReport:
    """Run {case x VL} — the paper's ArmIE sweep.

    ``fault_model_factory``: None for a pristine toolchain, or a
    zero-argument callable returning a fresh
    :class:`repro.sve.faults.FaultModel` per cell (e.g.
    :func:`repro.sve.faults.armclang_18_3`).
    """
    toolchain = "pristine" if fault_model_factory is None else \
        fault_model_factory().__class__.__name__
    if fault_model_factory is not None:
        toolchain = "armclang-18.3 (modelled defects)"
    report = SuiteReport(toolchain=toolchain)
    for case in cases:
        if categories is not None and case.category not in categories:
            continue
        for vl_bits in vls:
            fm = fault_model_factory() if fault_model_factory else None
            t0 = time.perf_counter()
            try:
                case.run(vl_bits, fm)
                report.results.append(CaseResult(
                    name=case.name, category=case.category, vl_bits=vl_bits,
                    passed=True, seconds=time.perf_counter() - t0,
                ))
            except Exception:
                report.results.append(CaseResult(
                    name=case.name, category=case.category, vl_bits=vl_bits,
                    passed=False, seconds=time.perf_counter() - t0,
                    error=traceback.format_exc(limit=2),
                ))
    return report

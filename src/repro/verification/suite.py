"""Run the verification matrix and format the Section V-D report.

Two matrices live here: the paper's toolchain sweep
(:func:`run_suite`, {case x VL}, pass/fail) and its generalization to
system faults (:func:`run_campaign_suite`, {case x VL x campaign},
classified {pass, fail, detected, recovered}).  In the campaign
matrix ``fail`` means *silent corruption* — a fault fired, nothing
noticed, and the answer is wrong — the outcome the resilience layer
(:mod:`repro.resilience`) exists to eliminate.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.verification.cases import ALL_CASES, Case
from repro.verification.outcomes import OUTCOMES, classify_cell


class SilentCorruption(AssertionError):
    """A campaign case produced a wrong answer.

    Raised by campaign cases when the final result fails its
    correctness check; the classifier downgrades it to ``detected``
    when some mechanism noticed the fault, and brands the cell
    ``fail`` (silent corruption) when nothing did.
    """


@dataclass
class CaseResult:
    """Outcome of one (case, vector length) cell."""

    name: str
    category: str
    vl_bits: int
    passed: bool
    seconds: float
    error: str = ""


@dataclass
class SuiteReport:
    """The full verification matrix."""

    toolchain: str
    results: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return self.total - self.passed

    def failures(self) -> list:
        return [r for r in self.results if not r.passed]

    def by_vl(self) -> dict:
        out: dict = {}
        for r in self.results:
            cell = out.setdefault(r.vl_bits, [0, 0])
            cell[0] += r.passed
            cell[1] += 1
        return out

    def format_table(self) -> str:
        """Pass/fail matrix: one row per case, one column per VL."""
        vls = sorted({r.vl_bits for r in self.results})
        names = []
        for r in self.results:
            if r.name not in names:
                names.append(r.name)
        cell = {(r.name, r.vl_bits): r for r in self.results}
        width = max(len(n) for n in names) + 2
        header = f"{'case':<{width}}" + "".join(f"{f'VL{v}':>8}" for v in vls)
        lines = [f"# toolchain: {self.toolchain}", header,
                 "-" * (width + 8 * len(vls))]
        for n in names:
            row = f"{n:<{width}}"
            for v in vls:
                r = cell.get((n, v))
                row += f"{'pass' if r and r.passed else 'FAIL':>8}"
            lines.append(row)
        lines.append("-" * (width + 8 * len(vls)))
        summary = f"{'TOTAL':<{width}}"
        for v in vls:
            p, t = self.by_vl()[v]
            summary += f"{f'{p}/{t}':>8}"
        lines.append(summary)
        return "\n".join(lines)


def run_suite(
    vls: Sequence[int] = (128, 256, 512),
    fault_model_factory: Optional[Callable] = None,
    cases: Sequence[Case] = ALL_CASES,
    categories: Optional[Sequence[str]] = None,
) -> SuiteReport:
    """Run {case x VL} — the paper's ArmIE sweep.

    ``fault_model_factory``: None for a pristine toolchain, or a
    zero-argument callable returning a fresh
    :class:`repro.sve.faults.FaultModel` per cell (e.g.
    :func:`repro.sve.faults.armclang_18_3`).
    """
    toolchain = "pristine" if fault_model_factory is None else \
        fault_model_factory().__class__.__name__
    if fault_model_factory is not None:
        toolchain = "armclang-18.3 (modelled defects)"
    report = SuiteReport(toolchain=toolchain)
    for case in cases:
        if categories is not None and case.category not in categories:
            continue
        for vl_bits in vls:
            fm = fault_model_factory() if fault_model_factory else None
            t0 = time.perf_counter()
            try:
                case.run(vl_bits, fm)
                report.results.append(CaseResult(
                    name=case.name, category=case.category, vl_bits=vl_bits,
                    passed=True, seconds=time.perf_counter() - t0,
                ))
            except Exception:
                report.results.append(CaseResult(
                    name=case.name, category=case.category, vl_bits=vl_bits,
                    passed=False, seconds=time.perf_counter() - t0,
                    error=traceback.format_exc(limit=2),
                ))
    return report


# ======================================================================
# Campaign verification: {case x VL x campaign} -> outcome
# ======================================================================

#: The four campaign-cell outcomes, in "goodness" order — the string
#: view of the shared :class:`~repro.verification.outcomes.Outcome`
#: vocabulary (one definition; the scenario matrix differ speaks the
#: same one, so the two harnesses cannot drift).
CAMPAIGN_OUTCOMES = tuple(o.value for o in OUTCOMES)


@dataclass
class CampaignCellResult:
    """Outcome of one (case, VL) cell under a fault campaign.

    * ``pass`` — correct answer; no fault fired, or it was masked.
    * ``recovered`` — faults fired, were detected, and the cell still
      produced a correct answer.
    * ``detected`` — a failure was noticed (checksum, guard, crash)
      but not repaired; the run knows it cannot trust the result.
    * ``fail`` — **silent corruption**: wrong answer, no detection.
    """

    name: str
    category: str
    vl_bits: int
    outcome: str
    seconds: float
    fired: int = 0
    detected: int = 0
    recovered: int = 0
    detail: str = ""


@dataclass
class CampaignReport:
    """The {case x VL} matrix for one campaign configuration."""

    campaign: str
    resilient: bool
    cells: list = field(default_factory=list)

    def counts(self) -> dict:
        out = {k: 0 for k in CAMPAIGN_OUTCOMES}
        for c in self.cells:
            out[c.outcome] += 1
        return out

    @property
    def silent_corruptions(self) -> int:
        return self.counts()["fail"]

    @property
    def faults_fired(self) -> int:
        return sum(c.fired for c in self.cells)

    def detection_rate(self) -> float:
        """Fraction of fault-affected cells whose faults were noticed
        (detected or recovered)."""
        hit = [c for c in self.cells if c.fired]
        if not hit:
            return 1.0
        ok = sum(1 for c in hit if c.outcome in ("detected", "recovered"))
        return ok / len(hit)

    def recovery_rate(self) -> float:
        """Fraction of fault-affected cells that still produced a
        correct answer."""
        hit = [c for c in self.cells if c.fired]
        if not hit:
            return 1.0
        ok = sum(1 for c in hit if c.outcome in ("pass", "recovered"))
        return ok / len(hit)

    def format_table(self) -> str:
        """Outcome matrix: one row per case, one column per VL."""
        vls = sorted({c.vl_bits for c in self.cells})
        names = []
        for c in self.cells:
            if c.name not in names:
                names.append(c.name)
        cell = {(c.name, c.vl_bits): c for c in self.cells}
        width = max(len(n) for n in names) + 2
        mode = "resilience ON" if self.resilient else "resilience OFF"
        header = f"{'case':<{width}}" + "".join(
            f"{f'VL{v}':>11}" for v in vls)
        lines = [f"# campaign: {self.campaign} ({mode})", header,
                 "-" * (width + 11 * len(vls))]
        for n in names:
            row = f"{n:<{width}}"
            for v in vls:
                c = cell.get((n, v))
                row += f"{c.outcome if c else '-':>11}"
            lines.append(row)
        lines.append("-" * (width + 11 * len(vls)))
        counts = self.counts()
        lines.append("  ".join(f"{k}={counts[k]}" for k in CAMPAIGN_OUTCOMES)
                     + f"  (faults fired: {self.faults_fired})")
        return "\n".join(lines)


def gate_outcomes(
    report: "CampaignReport",
    allowed: Sequence[str] = ("pass", "recovered", "detected"),
) -> list:
    """Cells whose outcome is not in ``allowed`` — the CI chaos gate.

    The default allows everything except ``fail``: a chaos run may
    sail through, recover, or at least *notice* its faults, but a
    silent corruption fails the build.  Returns the offending cells
    (empty list = gate passed) so the caller can print them.
    """
    for a in allowed:
        if a not in CAMPAIGN_OUTCOMES:
            raise ValueError(f"unknown outcome {a!r}; known: "
                             f"{CAMPAIGN_OUTCOMES}")
    return [c for c in report.cells if c.outcome not in allowed]


def _classify(campaign, error: Optional[BaseException]) -> str:
    """String view of the shared classifier (see
    :func:`repro.verification.outcomes.classify_cell`)."""
    return classify_cell(campaign, error).value


def run_campaign_suite(
    cases: Sequence,
    campaign_factory: Callable,
    vls: Sequence[int] = (256, 1024),
    resilient: bool = True,
) -> CampaignReport:
    """Run {case x VL} under seeded fault campaigns.

    ``cases`` are campaign cases (``name``/``category`` attributes and
    ``fn(vl_bits, campaign, resilient)``); ``campaign_factory(name,
    vl_bits)`` builds a fresh seeded
    :class:`~repro.resilience.inject.FaultCampaign` per cell, so every
    cell's fault schedule is independent and reproducible.

    Each invocation starts from a clean slate via
    :func:`repro.engine.reset_all`: sticky
    :class:`~repro.simd.resilient.ResilientBackend` degradations from
    a previous run are reset (degradation is sticky *within* a run by
    design, but must not leak across reruns), live comms stats and any
    in-flight async halos from earlier distributed work are cleared
    (so a campaign's traffic accounting starts at zero), and the
    base policy's fallback setting is restored on exit even if a case
    flips it.  Counters and caches are left alone — a campaign may be
    invoked mid-benchmark and must not zero the caller's tallies.
    """
    from repro.engine.policy import base_policy, update_base_policy
    from repro.engine.reset import reset_all

    reset_all(counters=False, caches=False)
    policy_before = base_policy().fallback
    first = campaign_factory(cases[0].name, vls[0]) if cases else None
    report = CampaignReport(
        campaign=first.name if first is not None else "empty",
        resilient=resilient,
    )
    try:
        for case in cases:
            for vl_bits in vls:
                campaign = campaign_factory(case.name, vl_bits)
                t0 = time.perf_counter()
                error: Optional[BaseException] = None
                try:
                    case.fn(vl_bits, campaign, resilient)
                except Exception as exc:  # noqa: BLE001 - classified below
                    error = exc
                report.cells.append(CampaignCellResult(
                    name=case.name, category=case.category, vl_bits=vl_bits,
                    outcome=_classify(campaign, error),
                    seconds=time.perf_counter() - t0,
                    fired=campaign.fired, detected=campaign.detected,
                    recovered=campaign.recovered,
                    detail="" if error is None else
                    f"{type(error).__name__}: {error}",
                ))
    finally:
        update_base_policy(fallback=policy_before)
    return report

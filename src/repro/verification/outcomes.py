"""The one outcome vocabulary every result matrix in the repo speaks.

Two harnesses classify cells today — the fault-campaign tables
(:mod:`repro.verification.suite`) and the scenario matrix
(:mod:`repro.scenarios`) — and they must never drift apart: a cell
the campaign gate calls ``detected`` has to mean exactly the same
thing when the scenario differ compares it against a committed
baseline.  This module is the single definition both import:

* :class:`Outcome` — the four cell outcomes, ordered from best to
  worst (``pass > recovered > detected > fail``);
* :func:`outcome_rank` — the goodness ordering the differ uses to
  decide whether a cell *regressed* (its new outcome ranks strictly
  below its old one);
* :func:`classify_cell` — the campaign classifier: fold a cell's
  fault ledger and terminal error into an :class:`Outcome`.

``fail`` always means *silent corruption*: a wrong answer nothing
noticed.  A loud crash or a wrong-but-flagged answer is ``detected``
— the run knows it cannot trust the result, which is categorically
better than not knowing.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class Outcome(str, Enum):
    """One cell's classification, best to worst.

    A ``str`` enum so JSON round-trips and existing string-keyed
    tables (``counts()["recovered"]``...) keep working unchanged.
    """

    PASS = "pass"            #: correct answer; no fault, or masked
    RECOVERED = "recovered"  #: faults fired, detected, and repaired
    DETECTED = "detected"    #: failure noticed but not repaired
    FAIL = "fail"            #: silent corruption — wrong and unnoticed

    def __str__(self) -> str:  # "pass", not "Outcome.PASS"
        return self.value


#: The vocabulary in goodness order (best first) — the campaign
#: tables iterate this for stable column order.
OUTCOMES: tuple = tuple(Outcome)

#: Goodness rank: higher is better.  ``rank(new) < rank(old)`` is the
#: differ's definition of a regressed cell.
_RANK = {o: len(OUTCOMES) - i for i, o in enumerate(OUTCOMES)}


def outcome_rank(outcome) -> int:
    """Goodness of ``outcome`` (higher = better); accepts the enum or
    its string value."""
    return _RANK[Outcome(outcome)]


def is_regression(old, new) -> bool:
    """True when a cell's outcome got strictly worse."""
    return outcome_rank(new) < outcome_rank(old)


def classify_cell(campaign, error: Optional[BaseException]) -> Outcome:
    """Fold one cell's fault ledger + terminal error into an outcome.

    ``campaign`` carries the ledger (``detected`` / ``recovered``
    counts); ``error`` is the exception the cell body raised, if any.
    The contract, shared by the campaign suite and the scenario
    runner:

    * no error: ``recovered`` if anything was repaired, else ``pass``;
    * a :class:`~repro.verification.suite.SilentCorruption` with an
      empty detection ledger: ``fail`` — wrong and unnoticed;
    * anything else (wrong-but-flagged, or a loud crash): ``detected``.
    """
    # Imported here, not at module top: suite.py imports this module.
    from repro.verification.suite import SilentCorruption

    if error is None:
        return Outcome.RECOVERED if campaign.recovered > 0 else Outcome.PASS
    if isinstance(error, SilentCorruption) and campaign.detected == 0:
        return Outcome.FAIL
    return Outcome.DETECTED

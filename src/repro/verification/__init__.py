"""The Section V-D verification harness.

"Grid implements about 100 ready-made tests and benchmarks.  We have
selected 40 representative tests and benchmarks for verification of the
SVE-enabled version of Grid for different SVE vector lengths using the
ARM clang 18.3 compiler and the ARM SVE instruction emulator ArmIE
18.1."

:mod:`repro.verification.cases` defines our 40 representative cases;
:mod:`repro.verification.suite` runs the {case x vector length} matrix
under a chosen toolchain fault model and formats the pass/fail report.
"""

from repro.verification.cases import ALL_CASES, Case
from repro.verification.outcomes import (
    OUTCOMES,
    Outcome,
    classify_cell,
    is_regression,
    outcome_rank,
)
from repro.verification.suite import (
    CAMPAIGN_OUTCOMES,
    CampaignCellResult,
    CampaignReport,
    SilentCorruption,
    SuiteReport,
    gate_outcomes,
    run_campaign_suite,
    run_suite,
)

__all__ = [
    "ALL_CASES",
    "Case",
    "SuiteReport",
    "run_suite",
    "CAMPAIGN_OUTCOMES",
    "OUTCOMES",
    "Outcome",
    "CampaignCellResult",
    "CampaignReport",
    "SilentCorruption",
    "classify_cell",
    "gate_outcomes",
    "is_regression",
    "outcome_rank",
    "run_campaign_suite",
]

"""ACLE predicate type and constructors (``svbool_t``)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acle.context import current_context
from repro.sve import predicate as predops


@dataclass(frozen=True)
class svbool_t:
    """An element-granular predicate bound to an element size.

    ACLE's ``svbool_t`` is byte-granular; the governed element size is
    determined by the consuming intrinsic.  We carry the element size
    chosen by the constructor (``svptrue_b64`` -> 8-byte elements) and
    check it at use sites, which catches the class of mixed-width
    predication bugs Section V-D attributes to the early toolchain.
    """

    active: tuple
    esize: int

    @property
    def mask(self) -> np.ndarray:
        return np.array(self.active, dtype=bool)

    @property
    def lanes(self) -> int:
        return len(self.active)

    def count(self) -> int:
        return int(sum(self.active))

    @staticmethod
    def from_mask(mask: np.ndarray, esize: int) -> "svbool_t":
        return svbool_t(tuple(bool(b) for b in np.asarray(mask, dtype=bool)),
                        esize)


def _ptrue(esize: int, pattern: str) -> svbool_t:
    ctx = current_context()
    ctx.record("ptrue")
    lanes = ctx.vl.lanes(esize)
    return svbool_t.from_mask(predops.ptrue(lanes, pattern), esize)


def svptrue_b64(pattern: str = "all") -> svbool_t:
    """``svptrue_b64``: all 64-bit lanes active."""
    return _ptrue(8, pattern)


def svptrue_b32(pattern: str = "all") -> svbool_t:
    """``svptrue_b32``: all 32-bit lanes active."""
    return _ptrue(4, pattern)


def svptrue_b16(pattern: str = "all") -> svbool_t:
    """``svptrue_b16``: all 16-bit lanes active."""
    return _ptrue(2, pattern)


def svptrue_b8(pattern: str = "all") -> svbool_t:
    """``svptrue_b8``: all byte lanes active."""
    return _ptrue(1, pattern)


def svpfalse_b() -> svbool_t:
    """``svpfalse_b``: no lanes active (byte granularity)."""
    ctx = current_context()
    ctx.record("pfalse")
    return svbool_t.from_mask(predops.pfalse(ctx.vl.lanes(1)), 1)


def _whilelt(esize: int, base: int, limit: int) -> svbool_t:
    ctx = current_context()
    ctx.record("whilelt")
    lanes = ctx.vl.lanes(esize)
    return svbool_t.from_mask(predops.whilelt(lanes, base, limit), esize)


def svwhilelt_b64(base: int, limit: int) -> svbool_t:
    """``svwhilelt_b64``: 64-bit lane *i* active iff ``base + i < limit``."""
    return _whilelt(8, base, limit)


def svwhilelt_b32(base: int, limit: int) -> svbool_t:
    """``svwhilelt_b32``: 32-bit lane variant."""
    return _whilelt(4, base, limit)


def svwhilelt_b16(base: int, limit: int) -> svbool_t:
    """``svwhilelt_b16``: 16-bit lane variant."""
    return _whilelt(2, base, limit)


def svcntp_b64(pg: svbool_t, pn: svbool_t) -> int:
    """``svcntp_b64``: count active 64-bit lanes of ``pn`` under ``pg``."""
    ctx = current_context()
    ctx.record("cntp")
    return predops.cntp(pg.mask, pn.mask)

"""ACLE vector value type (``svfloat64_t`` and friends)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acle.context import current_vl


@dataclass(frozen=True)
class svvector_t:
    """A sizeless vector value: one SVE register's worth of elements.

    Immutable by design — ACLE intrinsics are functional (they return
    new values), and immutability enforces the "no storing into
    long-lived objects" discipline of sizeless types.
    """

    data: tuple
    dtype: str

    @property
    def values(self) -> np.ndarray:
        return np.array(self.data, dtype=np.dtype(self.dtype))

    @property
    def lanes(self) -> int:
        return len(self.data)

    @property
    def esize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @staticmethod
    def from_array(values: np.ndarray) -> "svvector_t":
        values = np.asarray(values)
        expected = current_vl().lanes(values.dtype.itemsize)
        if values.shape != (expected,):
            raise ValueError(
                f"vector of dtype {values.dtype} must have {expected} lanes "
                f"at VL{current_vl().bits}, got {values.shape}"
            )
        return svvector_t(tuple(values.tolist()), values.dtype.str)

    def __len__(self) -> int:
        return len(self.data)


def check_same_shape(*vecs: svvector_t) -> None:
    """Intrinsic argument validation: same dtype and lane count."""
    first = vecs[0]
    for v in vecs[1:]:
        if v.dtype != first.dtype or v.lanes != first.lanes:
            raise TypeError(
                f"mismatched vector operands: {first.dtype}x{first.lanes} "
                f"vs {v.dtype}x{v.lanes}"
            )


def check_pred(pg, vec: svvector_t) -> np.ndarray:
    """Validate a predicate against a vector operand; return the mask."""
    if pg.esize != vec.esize:
        raise TypeError(
            f"predicate for {pg.esize}-byte elements used with "
            f"{vec.esize}-byte vector"
        )
    if pg.lanes != vec.lanes:
        raise TypeError(
            f"predicate with {pg.lanes} lanes used with {vec.lanes}-lane "
            f"vector (mixed vector lengths?)"
        )
    return pg.mask

"""The vector-length context for ACLE intrinsics.

SVE ACLE data types are "sizeless": their size is unknown at compile
time and they may not be stored in classes, unions, statics or
thread-locals (Section III-C of the paper).  We model the consequence —
vector values exist only *within* a dynamic extent that knows the
vector length — with an explicit context manager.  Intrinsics raise
:class:`NoSVEContext` when called outside one, the moral equivalent of
the C compiler rejecting a sizeless type at file scope.

The context also counts intrinsic calls (by the instruction each one
maps to) so benchmarks can compare instruction mixes between the ACLE
path and the real-arithmetic alternative of Section V-E without
re-assembling anything.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Optional, Union

from repro.sve.vl import VL

_tls = threading.local()


class NoSVEContext(RuntimeError):
    """Raised when an intrinsic is used outside an :class:`SVEContext`."""


class SVEContext:
    """Dynamic extent in which ACLE intrinsics are usable.

    Parameters
    ----------
    vl:
        The vector length (``VL`` instance or bits as an int) — the
        value the hardware (here: the simulator) implements.
    count_instructions:
        When true (default), each intrinsic call increments a
        per-instruction counter available as :attr:`counts`.

    Contexts nest; the innermost wins (e.g. a test may re-enter at a
    different VL to prove a kernel is VLA-correct).
    """

    def __init__(self, vl: Union[VL, int], count_instructions: bool = True) -> None:
        self.vl = vl if isinstance(vl, VL) else VL(vl)
        self.count_instructions = count_instructions
        self.counts: Counter = Counter()
        self._token: Optional[list] = None

    def __enter__(self) -> "SVEContext":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = []
            _tls.stack = stack
        stack.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _tls.stack.pop()

    def record(self, mnemonic: str) -> None:
        if self.count_instructions:
            self.counts[mnemonic] += 1


def current_context() -> SVEContext:
    """The innermost active :class:`SVEContext`."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        raise NoSVEContext(
            "ACLE intrinsics require an active SVEContext (SVE ACLE types "
            "are sizeless: the vector length must be in dynamic scope)"
        )
    return stack[-1]


def current_vl() -> VL:
    """The vector length of the innermost context."""
    return current_context().vl


def intrinsic_counts() -> Counter:
    """The instruction counter of the innermost context."""
    return current_context().counts

"""The ARM C Language Extensions (ACLE) for SVE, in Python.

"Convenient access to features of SIMD extensions is typically provided
by intrinsics" (Section III-A).  This package mirrors the ACLE surface
the paper uses — ``svld1``, ``svst1``, ``svcmla_x``, ``svcntd``,
``svwhilelt`` ... — on top of the instruction semantics of
:mod:`repro.sve.ops`, so the intrinsics path and the assembly path are
backed by the same code.

Vector-length agnosticism is modelled with an explicit
:class:`~repro.acle.context.SVEContext`: intrinsics may only be called
inside a context, mirroring the ACLE rule that sizeless types cannot
escape into static storage (Section III-C).  Inside the context,
``svcntd()`` etc. report the context's vector length; the same kernel
code runs unmodified at any legal VL — the VLA property the paper's
Section IV-C loop demonstrates.

Example (the paper's Section IV-C complex multiplication)::

    from repro import acle

    with acle.SVEContext(512):
        pg = acle.svptrue_b64()
        zero = acle.svdup_f64(0.0)
        i = 0
        while i < 2 * n:
            sx = acle.svld1(acle.svwhilelt_b64(i, 2 * n), x, i)
            ...
            i += acle.svcntd()
"""

from repro.acle.context import SVEContext, current_context, intrinsic_counts
from repro.acle.pred import (
    svbool_t,
    svcntp_b64,
    svpfalse_b,
    svptrue_b16,
    svptrue_b32,
    svptrue_b64,
    svptrue_b8,
    svwhilelt_b16,
    svwhilelt_b32,
    svwhilelt_b64,
)
from repro.acle.vector import svvector_t
from repro.acle.intrinsics import (
    svcmpeq,
    svcmpne,
    svcmplt,
    svcmple,
    svcmpgt,
    svcmpge,
    svld1_gather_index,
    svprfd,
    svstnt1,
    svst1_scatter_index,
    svabs_x,
    svadd_x,
    svadda,
    svaddv,
    svcadd_x,
    svcmla_x,
    svcntb,
    svcntd,
    svcnth,
    svcntw,
    svcompact,
    svcvt_f16_x,
    svcvt_f32_x,
    svcvt_f64_x,
    svdiv_x,
    svdup_f16,
    svdup_f32,
    svdup_f64,
    svdup_lane,
    svdup_s32,
    svext,
    svindex_s32,
    svindex_s64,
    svld1,
    svld2,
    svld3,
    svld4,
    svmad_x,
    svmax_x,
    svmaxv,
    svmin_x,
    svminv,
    svmla_x,
    svmls_x,
    svmul_x,
    svneg_x,
    svrev,
    svsel,
    svsplice,
    svsqrt_x,
    svst1,
    svst2,
    svst3,
    svst4,
    svsub_x,
    svtbl,
    svtrn1,
    svtrn2,
    svuzp1,
    svuzp2,
    svzip1,
    svzip2,
)

__all__ = [name for name in dir() if name.startswith("sv")] + [
    "SVEContext",
    "current_context",
    "intrinsic_counts",
]

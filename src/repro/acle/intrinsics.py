"""The ACLE intrinsic functions.

Naming follows the ACLE specification [6] with the type suffix dropped
where Python's dynamic typing makes it redundant (``svld1`` instead of
``svld1_f64`` — the dtype comes from the source array).  The ``_x``
suffix marks the "don't care" predication forms the paper's Grid code
uses (``svcmla_x``); we implement ``_x`` as merging with the first
vector operand, one of the architecturally-permitted results.

Memory operands are numpy arrays (+ element offset): the moral
equivalent of the C pointer arguments.  Predicated loads may read past
the end of an array as long as the excess lanes are inactive — the
property that lets VLA loops skip tail processing.
"""

from __future__ import annotations

import numpy as np

from repro.acle.context import current_context
from repro.acle.pred import svbool_t
from repro.acle.vector import check_pred, check_same_shape, svvector_t
from repro.sve.ops import arith, cplx, convert, permute, reduce


# ----------------------------------------------------------------------
# Element counts
# ----------------------------------------------------------------------

def svcntd() -> int:
    """``svcntd``: number of 64-bit lanes ("the SVE vector register
    length (in double)", Section IV-C)."""
    ctx = current_context()
    ctx.record("cntd")
    return ctx.vl.lanes(8)


def svcntw() -> int:
    """``svcntw``: number of 32-bit lanes."""
    ctx = current_context()
    ctx.record("cntw")
    return ctx.vl.lanes(4)


def svcnth() -> int:
    """``svcnth``: number of 16-bit lanes."""
    ctx = current_context()
    ctx.record("cnth")
    return ctx.vl.lanes(2)


def svcntb() -> int:
    """``svcntb``: vector length in bytes (``SVE_VECTOR_LENGTH``)."""
    ctx = current_context()
    ctx.record("cntb")
    return ctx.vl.bytes


# ----------------------------------------------------------------------
# Broadcast / index
# ----------------------------------------------------------------------

def _svdup(value, dtype) -> svvector_t:
    ctx = current_context()
    ctx.record("dup")
    lanes = ctx.vl.lanes(np.dtype(dtype).itemsize)
    return svvector_t.from_array(arith.dup(lanes, dtype, value))


def svdup_f64(value: float) -> svvector_t:
    """``svdup_n_f64``: broadcast a double to all lanes."""
    return _svdup(value, np.float64)


def svdup_f32(value: float) -> svvector_t:
    """``svdup_n_f32``."""
    return _svdup(value, np.float32)


def svdup_f16(value: float) -> svvector_t:
    """``svdup_n_f16``."""
    return _svdup(value, np.float16)


def svdup_s32(value: int) -> svvector_t:
    """``svdup_n_s32``."""
    return _svdup(value, np.int32)


def svindex_s64(base: int, step: int) -> svvector_t:
    """``svindex_s64``: lane *i* gets ``base + i*step``."""
    ctx = current_context()
    ctx.record("index")
    return svvector_t.from_array(arith.index(ctx.vl.lanes(8), np.int64, base, step))


def svindex_s32(base: int, step: int) -> svvector_t:
    """``svindex_s32``."""
    ctx = current_context()
    ctx.record("index")
    return svvector_t.from_array(arith.index(ctx.vl.lanes(4), np.int32, base, step))


# ----------------------------------------------------------------------
# Loads and stores
# ----------------------------------------------------------------------

def _flat(array: np.ndarray, writable: bool = False) -> np.ndarray:
    flat = np.ascontiguousarray(array).reshape(-1)
    if writable and not np.shares_memory(flat, array):
        raise TypeError(
            "store target must be a C-contiguous array (got a layout that "
            "would require copying, so stores would be lost)"
        )
    return flat


def svld1(pg: svbool_t, array: np.ndarray, offset: int = 0) -> svvector_t:
    """``svld1``: predicated contiguous load from ``array[offset:]``.

    Inactive lanes are zero and never access memory, so the final
    partial iteration of a VLA loop is safe without a scalar tail.
    """
    ctx = current_context()
    flat = _flat(array)
    ctx.record({8: "ld1d", 4: "ld1w", 2: "ld1h", 1: "ld1b"}[flat.dtype.itemsize])
    lanes = ctx.vl.lanes(flat.dtype.itemsize)
    if pg.lanes != lanes or pg.esize != flat.dtype.itemsize:
        raise TypeError(
            f"predicate ({pg.esize}-byte x {pg.lanes}) does not match load "
            f"of {flat.dtype.itemsize}-byte x {lanes} elements"
        )
    mask = pg.mask
    out = np.zeros(lanes, dtype=flat.dtype)
    idx = offset + np.nonzero(mask)[0]
    if idx.size and (idx[0] < 0 or idx[-1] >= flat.size):
        raise IndexError(
            f"active lanes [{idx[0]}, {idx[-1]}] outside array of "
            f"{flat.size} elements"
        )
    out[mask] = flat[idx]
    return svvector_t.from_array(out)


def svst1(pg: svbool_t, array: np.ndarray, offset: int, vec: svvector_t) -> None:
    """``svst1``: predicated contiguous store into ``array[offset:]``."""
    ctx = current_context()
    flat = _flat(array, writable=True)
    ctx.record({8: "st1d", 4: "st1w", 2: "st1h", 1: "st1b"}[flat.dtype.itemsize])
    mask = check_pred(pg, vec)
    idx = offset + np.nonzero(mask)[0]
    if idx.size and (idx[0] < 0 or idx[-1] >= flat.size):
        raise IndexError(
            f"active lanes [{idx[0]}, {idx[-1]}] outside array of "
            f"{flat.size} elements"
        )
    flat[idx] = vec.values[mask]


def _svldn(pg: svbool_t, array: np.ndarray, offset: int, n: int):
    ctx = current_context()
    flat = _flat(array)
    ctx.record(f"ld{n}" + {8: "d", 4: "w", 2: "h", 1: "b"}[flat.dtype.itemsize])
    lanes = ctx.vl.lanes(flat.dtype.itemsize)
    if pg.lanes != lanes:
        raise TypeError("predicate lane count does not match load width")
    mask = pg.mask
    outs = [np.zeros(lanes, dtype=flat.dtype) for _ in range(n)]
    act = np.nonzero(mask)[0]
    if act.size:
        first = offset + int(act[0]) * n
        last = offset + (int(act[-1]) + 1) * n
        if first < 0 or last > flat.size:
            raise IndexError("active structure lanes outside array")
        for k in range(n):
            for i in act:
                outs[k][i] = flat[offset + int(i) * n + k]
    return tuple(svvector_t.from_array(o) for o in outs)


def svld2(pg: svbool_t, array: np.ndarray, offset: int = 0):
    """``svld2``: de-interleave 2-element structures into two vectors
    (what the auto-vectorizer used for ``std::complex`` arrays,
    Section IV-B)."""
    return _svldn(pg, array, offset, 2)


def svld3(pg: svbool_t, array: np.ndarray, offset: int = 0):
    """``svld3``: 3-element structure load (colour vectors)."""
    return _svldn(pg, array, offset, 3)


def svld4(pg: svbool_t, array: np.ndarray, offset: int = 0):
    """``svld4``: 4-element structure load."""
    return _svldn(pg, array, offset, 4)


def _svstn(pg: svbool_t, array: np.ndarray, offset: int, vecs) -> None:
    ctx = current_context()
    n = len(vecs)
    flat = _flat(array, writable=True)
    ctx.record(f"st{n}" + {8: "d", 4: "w", 2: "h", 1: "b"}[flat.dtype.itemsize])
    mask = check_pred(pg, vecs[0])
    for i in np.nonzero(mask)[0]:
        base = offset + int(i) * n
        if base < 0 or base + n > flat.size:
            raise IndexError("active structure lanes outside array")
        for k in range(n):
            flat[base + k] = vecs[k].values[i]


def svst2(pg: svbool_t, array: np.ndarray, offset: int, v0, v1) -> None:
    """``svst2``: interleave two vectors into 2-element structures."""
    _svstn(pg, array, offset, (v0, v1))


def svst3(pg: svbool_t, array: np.ndarray, offset: int, v0, v1, v2) -> None:
    """``svst3``."""
    _svstn(pg, array, offset, (v0, v1, v2))


def svst4(pg: svbool_t, array: np.ndarray, offset: int, v0, v1, v2, v3) -> None:
    """``svst4``."""
    _svstn(pg, array, offset, (v0, v1, v2, v3))


# ----------------------------------------------------------------------
# Real arithmetic
# ----------------------------------------------------------------------

def _binop(mnemonic: str, fn, pg: svbool_t, a: svvector_t, b) -> svvector_t:
    ctx = current_context()
    ctx.record(mnemonic)
    if not isinstance(b, svvector_t):  # scalar operand form
        b = svvector_t.from_array(
            arith.dup(a.lanes, np.dtype(a.dtype), b)
        )
    check_same_shape(a, b)
    mask = check_pred(pg, a)
    return svvector_t.from_array(fn(a.values, b.values, pred=mask, old=a.values))


def svadd_x(pg, a, b):
    """``svadd_x``: lane-wise ``a + b``."""
    return _binop("fadd" if np.dtype(a.dtype).kind == "f" else "add",
                  arith.fadd, pg, a, b)


def svsub_x(pg, a, b):
    """``svsub_x``: lane-wise ``a - b``."""
    return _binop("fsub" if np.dtype(a.dtype).kind == "f" else "sub",
                  arith.fsub, pg, a, b)


def svmul_x(pg, a, b):
    """``svmul_x``: lane-wise ``a * b``."""
    return _binop("fmul" if np.dtype(a.dtype).kind == "f" else "mul",
                  arith.fmul, pg, a, b)


def svdiv_x(pg, a, b):
    """``svdiv_x``: lane-wise ``a / b``."""
    return _binop("fdiv", arith.fdiv, pg, a, b)


def svmax_x(pg, a, b):
    """``svmax_x``."""
    return _binop("fmax", arith.fmax, pg, a, b)


def svmin_x(pg, a, b):
    """``svmin_x``."""
    return _binop("fmin", arith.fmin, pg, a, b)


def svneg_x(pg, a):
    """``svneg_x``."""
    ctx = current_context()
    ctx.record("fneg")
    mask = check_pred(pg, a)
    return svvector_t.from_array(arith.fneg(a.values, pred=mask, old=a.values))


def svabs_x(pg, a):
    """``svabs_x``."""
    ctx = current_context()
    ctx.record("fabs")
    mask = check_pred(pg, a)
    return svvector_t.from_array(arith.fabs_(a.values, pred=mask, old=a.values))


def svsqrt_x(pg, a):
    """``svsqrt_x``."""
    ctx = current_context()
    ctx.record("fsqrt")
    mask = check_pred(pg, a)
    return svvector_t.from_array(arith.fsqrt(a.values, pred=mask, old=a.values))


def svmla_x(pg, acc, a, b):
    """``svmla_x``: ``acc + a*b`` (FMLA)."""
    ctx = current_context()
    ctx.record("fmla")
    check_same_shape(acc, a, b)
    mask = check_pred(pg, acc)
    return svvector_t.from_array(arith.fmla(acc.values, a.values, b.values, pred=mask))


def svmls_x(pg, acc, a, b):
    """``svmls_x``: ``acc - a*b`` (FMLS)."""
    ctx = current_context()
    ctx.record("fmls")
    check_same_shape(acc, a, b)
    mask = check_pred(pg, acc)
    return svvector_t.from_array(arith.fmls(acc.values, a.values, b.values, pred=mask))


def svmad_x(pg, a, b, addend):
    """``svmad_x``: ``a*b + addend`` (FMAD)."""
    ctx = current_context()
    ctx.record("fmad")
    check_same_shape(a, b, addend)
    mask = check_pred(pg, a)
    return svvector_t.from_array(arith.fmad(a.values, b.values, addend.values, pred=mask))


# ----------------------------------------------------------------------
# Complex arithmetic (Section III-D)
# ----------------------------------------------------------------------

def svcmla_x(pg, acc, x, y, rot: int) -> svvector_t:
    """``svcmla_x``: the FCMLA intrinsic.

    Interleaved complex layout (re in even lanes, im in odd lanes);
    ``rot`` ∈ {0, 90, 180, 270}.  Two chained calls implement a full
    complex multiply-add (Eq. (2) of the paper); see
    :func:`repro.sve.ops.cplx.fcmla` for the per-rotation semantics.
    """
    ctx = current_context()
    ctx.record("fcmla")
    check_same_shape(acc, x, y)
    mask = check_pred(pg, acc)
    return svvector_t.from_array(
        cplx.fcmla(acc.values, x.values, y.values, rot, pred=mask)
    )


def svcadd_x(pg, a, b, rot: int) -> svvector_t:
    """``svcadd_x``: the FCADD intrinsic — ``a ± i*b``."""
    ctx = current_context()
    ctx.record("fcadd")
    check_same_shape(a, b)
    mask = check_pred(pg, a)
    return svvector_t.from_array(cplx.fcadd(a.values, b.values, rot, pred=mask))


# ----------------------------------------------------------------------
# Permutes
# ----------------------------------------------------------------------

def _perm2(mnemonic: str, fn, a: svvector_t, b: svvector_t) -> svvector_t:
    ctx = current_context()
    ctx.record(mnemonic)
    check_same_shape(a, b)
    return svvector_t.from_array(fn(a.values, b.values))


def svzip1(a, b):
    """``svzip1``."""
    return _perm2("zip1", permute.zip1, a, b)


def svzip2(a, b):
    """``svzip2``."""
    return _perm2("zip2", permute.zip2, a, b)


def svuzp1(a, b):
    """``svuzp1``."""
    return _perm2("uzp1", permute.uzp1, a, b)


def svuzp2(a, b):
    """``svuzp2``."""
    return _perm2("uzp2", permute.uzp2, a, b)


def svtrn1(a, b):
    """``svtrn1``."""
    return _perm2("trn1", permute.trn1, a, b)


def svtrn2(a, b):
    """``svtrn2``."""
    return _perm2("trn2", permute.trn2, a, b)


def svrev(a):
    """``svrev``."""
    ctx = current_context()
    ctx.record("rev")
    return svvector_t.from_array(permute.rev(a.values))


def svext(a, b, nelem: int):
    """``svext``: rotate the concatenation ``a:b`` by ``nelem`` elements.

    ACLE's svext counts *elements*; the underlying EXT instruction
    counts bytes.
    """
    ctx = current_context()
    ctx.record("ext")
    check_same_shape(a, b)
    return svvector_t.from_array(
        permute.ext(a.values, b.values, nelem * a.esize, a.esize)
    )


def svtbl(a, indices):
    """``svtbl``: per-lane table lookup."""
    ctx = current_context()
    ctx.record("tbl")
    return svvector_t.from_array(
        permute.tbl(a.values, indices.values).astype(np.dtype(a.dtype))
    )


def svdup_lane(a, lane: int):
    """``svdup_lane``: broadcast one lane."""
    ctx = current_context()
    ctx.record("dup")
    return svvector_t.from_array(permute.dup_lane(a.values, lane))


def svsel(pg, a, b):
    """``svsel``: per-lane select."""
    ctx = current_context()
    ctx.record("sel")
    check_same_shape(a, b)
    mask = check_pred(pg, a)
    return svvector_t.from_array(permute.sel(mask, a.values, b.values))


def svsplice(pg, a, b):
    """``svsplice``."""
    ctx = current_context()
    ctx.record("splice")
    check_same_shape(a, b)
    mask = check_pred(pg, a)
    return svvector_t.from_array(permute.splice(mask, a.values, b.values))


def svcompact(pg, a):
    """``svcompact``."""
    ctx = current_context()
    ctx.record("compact")
    mask = check_pred(pg, a)
    return svvector_t.from_array(permute.compact(mask, a.values))


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def svaddv(pg, a):
    """``svaddv``: tree-order sum of active lanes."""
    ctx = current_context()
    ctx.record("faddv")
    mask = check_pred(pg, a)
    return float(reduce.faddv(mask, a.values))


def svadda(pg, init, a):
    """``svadda``: strictly-ordered sum of active lanes."""
    ctx = current_context()
    ctx.record("fadda")
    mask = check_pred(pg, a)
    return float(reduce.fadda(mask, init, a.values))


def svmaxv(pg, a):
    """``svmaxv``."""
    ctx = current_context()
    ctx.record("fmaxv")
    mask = check_pred(pg, a)
    return float(reduce.fmaxv(mask, a.values))


def svminv(pg, a):
    """``svminv``."""
    ctx = current_context()
    ctx.record("fminv")
    mask = check_pred(pg, a)
    return float(reduce.fminv(mask, a.values))


# ----------------------------------------------------------------------
# Precision conversion (element-wise ACLE forms)
# ----------------------------------------------------------------------

def _cvt(a: svvector_t, dtype, pg) -> svvector_t:
    ctx = current_context()
    ctx.record("fcvt")
    mask = check_pred(pg, a)
    # ACLE conversion intrinsics keep the *lane count* of the source
    # half/same/double as appropriate; for Grid's compression use we
    # expose the element-wise value conversion and let the caller
    # manage packing (repro.grid.compression models the layout).
    vals = convert.fcvt(a.values, dtype, pred=mask,
                        old=np.zeros(a.lanes, np.dtype(dtype)))
    out = np.zeros(current_context().vl.lanes(np.dtype(dtype).itemsize),
                   dtype=np.dtype(dtype))
    n = min(out.size, vals.size)
    out[:n] = vals[:n]
    return svvector_t.from_array(out)


def svcvt_f64_x(pg, a):
    """``svcvt_f64_x``: widen to f64 (low lanes)."""
    return _cvt(a, np.float64, pg)


def svcvt_f32_x(pg, a):
    """``svcvt_f32_x``: convert to f32 (low lanes)."""
    return _cvt(a, np.float32, pg)


def svcvt_f16_x(pg, a):
    """``svcvt_f16_x``: narrow to f16 (low lanes)."""
    return _cvt(a, np.float16, pg)


# ----------------------------------------------------------------------
# Gather/scatter (per-lane indexed access)
# ----------------------------------------------------------------------

def svld1_gather_index(pg: svbool_t, array: np.ndarray,
                       indices: svvector_t) -> svvector_t:
    """``svld1_gather_index``: lane *i* loads ``array[indices[i]]``.

    Inactive lanes are zero and never access memory.
    """
    ctx = current_context()
    flat = _flat(array)
    ctx.record({8: "ld1d", 4: "ld1w", 2: "ld1h", 1: "ld1b"}[
        flat.dtype.itemsize])
    mask = pg.mask
    if pg.lanes != indices.lanes:
        raise TypeError("predicate/index lane mismatch")
    out = np.zeros(ctx.vl.lanes(flat.dtype.itemsize), dtype=flat.dtype)
    idx = indices.values
    for i in np.nonzero(mask)[0]:
        j = int(idx[i])
        if not 0 <= j < flat.size:
            raise IndexError(f"gather lane {i} index {j} out of bounds")
        out[i] = flat[j]
    return svvector_t.from_array(out)


def svst1_scatter_index(pg: svbool_t, array: np.ndarray,
                        indices: svvector_t, vec: svvector_t) -> None:
    """``svst1_scatter_index``: lane *i* stores to ``array[indices[i]]``."""
    ctx = current_context()
    flat = _flat(array, writable=True)
    ctx.record({8: "st1d", 4: "st1w", 2: "st1h", 1: "st1b"}[
        flat.dtype.itemsize])
    mask = check_pred(pg, vec)
    idx = indices.values
    vals = vec.values
    for i in np.nonzero(mask)[0]:
        j = int(idx[i])
        if not 0 <= j < flat.size:
            raise IndexError(f"scatter lane {i} index {j} out of bounds")
        flat[j] = vals[i]


# ----------------------------------------------------------------------
# Vector compares (predicate-producing)
# ----------------------------------------------------------------------

def _svcmp(mnemonic: str, fn, pg: svbool_t, a: svvector_t, b) -> svbool_t:
    ctx = current_context()
    ctx.record(mnemonic)
    if not isinstance(b, svvector_t):
        b = svvector_t.from_array(
            arith.dup(a.lanes, np.dtype(a.dtype), b)
        )
    check_same_shape(a, b)
    mask = check_pred(pg, a)
    return svbool_t.from_mask(mask & fn(a.values, b.values), a.esize)


def svcmpeq(pg, a, b):
    """``svcmpeq``: active where ``a == b``."""
    return _svcmp("fcmeq", np.equal, pg, a, b)


def svcmpne(pg, a, b):
    """``svcmpne``: active where ``a != b``."""
    return _svcmp("fcmne", np.not_equal, pg, a, b)


def svcmplt(pg, a, b):
    """``svcmplt``: active where ``a < b``."""
    return _svcmp("fcmlt", np.less, pg, a, b)


def svcmple(pg, a, b):
    """``svcmple``: active where ``a <= b``."""
    return _svcmp("fcmle", np.less_equal, pg, a, b)


def svcmpgt(pg, a, b):
    """``svcmpgt``: active where ``a > b``."""
    return _svcmp("fcmgt", np.greater, pg, a, b)


def svcmpge(pg, a, b):
    """``svcmpge``: active where ``a >= b``."""
    return _svcmp("fcmge", np.greater_equal, pg, a, b)


# ----------------------------------------------------------------------
# Memory hints: prefetch and streaming (non-temporal) stores.
# "load, store, memory prefetch, streaming memory access" are on the
# paper's list of machine-specific operations (Section II-C).
# ----------------------------------------------------------------------

def svprfd(pg: svbool_t, array: np.ndarray, offset: int = 0) -> None:
    """``svprfd``: prefetch hint — functionally a no-op, but counted so
    instruction profiles show the memory-system traffic a real port
    would schedule."""
    current_context().record("prfd")


def svstnt1(pg: svbool_t, array: np.ndarray, offset: int,
            vec: svvector_t) -> None:
    """``svstnt1``: non-temporal (streaming) store.

    Same architectural result as :func:`svst1`; the non-temporal hint
    (bypass the cache for write-once data, e.g. halo send buffers) is
    recorded under its own mnemonic.
    """
    ctx = current_context()
    flat = _flat(array, writable=True)
    ctx.record({8: "stnt1d", 4: "stnt1w", 2: "stnt1h", 1: "stnt1b"}[
        flat.dtype.itemsize])
    mask = check_pred(pg, vec)
    idx = offset + np.nonzero(mask)[0]
    if idx.size and (idx[0] < 0 or idx[-1] >= flat.size):
        raise IndexError("active lanes outside array")
    flat[idx] = vec.values[mask]

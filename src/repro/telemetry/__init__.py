"""Telemetry: structured tracing, typed metrics, derived reports.

The observability layer for the execution engine, governed by the
``telemetry`` field of the scoped :class:`~repro.engine.policy.
ExecutionPolicy` (``engine.scope(telemetry="trace")``):

* ``"off"`` (default) — instrumented seams pay one resolved-policy
  flag check and allocate nothing;
* ``"metrics"`` — counters/gauges/histograms are fed into the
  process-global :func:`registry`;
* ``"trace"`` — additionally, nestable :func:`span`\\ s land in a
  bounded in-memory ring buffer, exportable as JSONL and Chrome
  ``trace_event`` files.

Telemetry **observes**: no recorded value ever feeds back into a
computation, so dhop/CG results are bit-identical at every level.

Quick start::

    from repro import engine, telemetry

    with engine.scope(telemetry="trace"):
        solve_fermion(op, src)                  # instrumented seams fire
    telemetry.write_jsonl(telemetry.spans(), "run.jsonl")
    print(telemetry.roofline_table(telemetry.spans()))

then ``python tools/teleview.py run.jsonl`` renders the same reports
offline.
"""

from repro.telemetry.export import (
    prometheus_text,
    read_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.flightrec import (
    FlightRecorder,
    format_postmortem,
    postmortem_bundle,
    write_postmortem,
)
from repro.telemetry.merge import (
    ingest_round,
    rank_metrics,
    rank_spans,
    rank_tails,
    ranks_seen,
    reset_rank_state,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.telemetry.reports import (
    convergence_attrs,
    convergence_from_spans,
    convergence_table,
    imbalance_from_spans,
    imbalance_summary,
    imbalance_table,
    roofline_from_spans,
    roofline_table,
    traced_solver,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    Span,
    TraceBuffer,
    buffer,
    drain_spans,
    event,
    metrics_on,
    record_span,
    span,
    spans,
    tracing,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "registry",
    "NULL_SPAN", "Span", "TraceBuffer", "buffer", "drain_spans",
    "event", "metrics_on", "record_span", "span", "spans", "tracing",
    "prometheus_text", "read_jsonl", "spans_to_chrome",
    "spans_to_jsonl", "write_chrome_trace", "write_jsonl",
    "write_prometheus",
    "convergence_attrs", "convergence_from_spans", "convergence_table",
    "imbalance_from_spans", "imbalance_summary", "imbalance_table",
    "roofline_from_spans", "roofline_table", "traced_solver",
    "FlightRecorder", "format_postmortem", "postmortem_bundle",
    "write_postmortem",
    "ingest_round", "rank_metrics", "rank_spans", "rank_tails",
    "ranks_seen", "reset_rank_state",
    "count", "observe", "set_gauge", "snapshot", "reset",
]


# -- facade conveniences over the global registry ----------------------
def count(name: str, n: int = 1) -> None:
    """Increment the named counter (metrics must be on to matter for
    hot paths — callers there guard with :func:`metrics_on`; cold
    paths may call unconditionally, the registry is always live)."""
    registry().counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record one observation into the named histogram."""
    registry().histogram(name).observe(value)


def set_gauge(name: str, value) -> None:
    """Set the named gauge."""
    registry().gauge(name).set(value)


def snapshot() -> dict:
    """Every metric value (instruments + collectors), flat."""
    return registry().snapshot()


def reset() -> dict:
    """Zero the metrics registry, clear the trace buffer, empty the
    flight-recorder ring and drop the cross-rank merge state; returns
    ``{"metrics_reset": n, "spans_cleared": m, "flightrec_cleared": k,
    "rank_state_cleared": r}``.  Wired into ``engine.reset_all`` so
    one call provably clears everything."""
    from repro.telemetry import flightrec as _flightrec

    return {
        "metrics_reset": registry().reset(),
        "spans_cleared": buffer().clear(),
        "flightrec_cleared": _flightrec.clear(),
        "rank_state_cleared": reset_rank_state(),
    }

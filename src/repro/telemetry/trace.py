"""Structured tracing: nestable spans over a thread-safe ring buffer.

A *span* is one timed region — ``span("dhop", backend="generic256")``
— with a monotonic start/end (``time.perf_counter``), the recording
thread, a parent link (spans nest through a ``ContextVar``, so nesting
is correct per thread and per async task), and free-form attributes.
An *event* is a zero-duration span (solver restarts, fault-campaign
detections, halo completions).

Recording is governed by the ``telemetry`` field of the scoped
:class:`~repro.engine.policy.ExecutionPolicy`:

* ``"off"`` — :func:`span` returns one shared no-op context manager
  (:data:`NULL_SPAN`).  **No allocation, no buffer touch** — the cost
  of an instrumented seam is a single resolved-policy flag check,
  which the overhead test pins by counting :class:`Span`
  constructions.
* ``"trace"`` — spans land in the global ring buffer
  (:data:`_TRACE_BUFFER`), bounded so week-long runs cannot grow
  memory without bound; the exporters in
  :mod:`repro.telemetry.export` drain it to JSONL / Chrome
  ``trace_event`` / whatever the consumer wants.

Telemetry *observes*: nothing here feeds back into any computation,
so results are bit-identical with tracing on or off (asserted across
vector lengths by ``tests/telemetry/test_bit_identity.py``).

Mutating the module globals below directly (rather than through the
recording API) is banned by ``tools/lint_execution_globals.py``
everywhere outside ``src/repro/telemetry/``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.policy import current_policy

#: Ring-buffer capacity: at ~200 bytes/span this bounds the buffer to
#: a few tens of MB however long the run.
DEFAULT_CAPACITY = 65536

_IDS = itertools.count(1)


@dataclass
class Span:
    """One recorded timed region (or instant event when ``t0 == t1``).

    Times are ``time.perf_counter`` seconds — monotonic, comparable
    only within one process, which is all the derived reports need.
    """

    name: str
    t0: float
    t1: float = 0.0
    span_id: int = 0
    parent_id: int = 0
    thread: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        return {
            "name": self.name, "t0": self.t0, "t1": self.t1,
            "span_id": self.span_id, "parent_id": self.parent_id,
            "thread": self.thread, "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(name=d["name"], t0=d["t0"], t1=d["t1"],
                   span_id=d.get("span_id", 0),
                   parent_id=d.get("parent_id", 0),
                   thread=d.get("thread", ""),
                   attrs=d.get("attrs", {}))


class TraceBuffer:
    """Thread-safe bounded span store (oldest spans drop first)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)

    def snapshot(self) -> list:
        """The buffered spans, oldest first (buffer unchanged)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list:
        """Remove and return every buffered span."""
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            return out

    def clear(self) -> int:
        with self._lock:
            n = len(self._spans)
            self._spans.clear()
            self.dropped = 0
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-global span store (mutate only through this module).
_TRACE_BUFFER = TraceBuffer()

#: The innermost open span of this thread/task, for parent links.
_ACTIVE_SPAN: ContextVar[Optional[int]] = ContextVar(
    "repro_telemetry_active_span", default=None
)


def tracing() -> bool:
    """True when spans are being recorded (``telemetry="trace"``)."""
    return current_policy().telemetry == "trace"


def metrics_on() -> bool:
    """True when the metrics registry is fed (``"metrics"`` or
    ``"trace"``)."""
    return current_policy().telemetry != "off"


class _NullSpan:
    """The shared disabled-mode context manager: no state, no
    allocation — ``span()`` with telemetry off always returns the one
    instance of this class."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """An in-flight span: records itself into the buffer on exit."""

    __slots__ = ("span", "_token")

    def __init__(self, name: str, attrs: dict) -> None:
        self.span = Span(
            name=name, t0=time.perf_counter(),
            span_id=next(_IDS),
            parent_id=_ACTIVE_SPAN.get() or 0,
            thread=threading.current_thread().name,
            attrs=attrs,
        )
        self._token = None

    def __enter__(self) -> Span:
        self._token = _ACTIVE_SPAN.set(self.span.span_id)
        return self.span

    def __exit__(self, *exc) -> bool:
        _ACTIVE_SPAN.reset(self._token)
        self.span.t1 = time.perf_counter()
        _TRACE_BUFFER.append(self.span)
        return False


def span(name: str, **attrs):
    """A context manager timing one region (no-op when tracing is
    off).  Attributes must be JSON-serialisable — they travel into the
    JSONL and Chrome exports verbatim."""
    if current_policy().telemetry != "trace":
        return NULL_SPAN
    return _OpenSpan(name, attrs)


def event(name: str, **attrs) -> None:
    """Record an instant event (zero-duration span) — no-op when
    tracing is off."""
    if current_policy().telemetry != "trace":
        return
    now = time.perf_counter()
    _TRACE_BUFFER.append(Span(
        name=name, t0=now, t1=now, span_id=next(_IDS),
        parent_id=_ACTIVE_SPAN.get() or 0,
        thread=threading.current_thread().name, attrs=attrs,
    ))


def record_span(name: str, t0: float, t1: float, **attrs) -> None:
    """Record a span whose extent was measured by the caller (the
    async comms queue knows a halo's post and completion times better
    than any context manager could) — no-op when tracing is off."""
    if current_policy().telemetry != "trace":
        return
    _TRACE_BUFFER.append(Span(
        name=name, t0=t0, t1=t1, span_id=next(_IDS),
        parent_id=_ACTIVE_SPAN.get() or 0,
        thread=threading.current_thread().name, attrs=attrs,
    ))


def new_span_id() -> int:
    """A fresh span id from the process-global sequence (the merge
    layer builds :class:`Span` objects for rank-shipped records and
    needs ids that cannot collide with locally recorded spans)."""
    return next(_IDS)


def active_span_id() -> int:
    """The innermost open span of this thread/task (0 when none) —
    what merged rank spans parent themselves under."""
    return _ACTIVE_SPAN.get() or 0


def buffer() -> TraceBuffer:
    """The live trace buffer."""
    return _TRACE_BUFFER


def spans() -> list:
    """The buffered spans, oldest first (buffer unchanged)."""
    return _TRACE_BUFFER.snapshot()


def drain_spans() -> list:
    """Remove and return every buffered span (what the bench harness
    calls between benchmarks, before the clean-slate reset)."""
    return _TRACE_BUFFER.drain()

"""The failure flight recorder: a bounded ring of recent happenings,
dumped as a post-mortem bundle when a supervised solve goes wrong.

Spans answer "how long did things take"; the flight recorder answers
the question an operator actually asks after a failed run: *what was
the system doing just before it died?*  It keeps a fixed-size ring of
recent **events** — supervisor attempts and degradations, circuit-
breaker transitions, rank-round merges — each a plain dict with a
monotonic timestamp and a sequence number, recorded only while
``ExecutionPolicy.telemetry`` is not ``"off"`` (off stays
zero-overhead: one resolved-policy flag check, no allocation).

When a supervised solve escalates or fails,
:func:`repro.resilience.supervisor.supervised_solve` calls
:func:`postmortem_bundle`, which freezes everything an investigation
needs into one JSON-serialisable dict:

* the recorder's event ring (breaker trips, attempt outcomes,
  degradation-ladder steps, in firing order);
* the last-N spans of the live trace buffer (the in-process
  timeline's tail);
* the merge layer's per-rank tails — what every shared-memory rank
  was doing in its most recent rounds
  (:func:`repro.telemetry.merge.rank_tails`);
* the supervision ledger: attempt table, rungs used, checkpoint
  lineage (store key, saves, resumes);
* a full metrics snapshot.

``tools/teleview.py --postmortem bundle.json`` renders the same
bundle offline via :func:`format_postmortem`.

The ring is process-global, cleared by :func:`clear` (composed into
:func:`repro.telemetry.reset`, so ``engine.reset_all`` provably
empties it — the reset-completeness audit sweeps the collector view
registered below).
"""

from __future__ import annotations

import json
import time
from collections import deque
from threading import Lock
from typing import Optional

from repro.telemetry.metrics import registry
from repro.telemetry.trace import buffer, metrics_on

#: Ring capacity: enough for every attempt/breaker/round event of a
#: long supervised run while bounding the bundle to a few hundred kB.
DEFAULT_CAPACITY = 256

#: Bundle schema marker (teleview refuses files without it).
BUNDLE_KIND = "repro-postmortem"
BUNDLE_VERSION = 1


class FlightRecorder:
    """A thread-safe bounded event ring (oldest events drop first)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = Lock()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def record(self, kind: str, **data) -> None:
        with self._lock:
            self._seq += 1
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append({
                "seq": self._seq,
                "t": time.perf_counter(),
                "kind": kind,
                **data,
            })

    def events(self) -> list:
        """The buffered events, oldest first (ring unchanged)."""
        with self._lock:
            return [dict(e) for e in self._events]

    def clear(self) -> int:
        """Empty the ring and restart the sequence — a cleared
        recorder is indistinguishable from a fresh one."""
        with self._lock:
            n = len(self._events)
            self._events.clear()
            self._seq = 0
            self.dropped = 0
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The process-global recorder (mutate only through this module).
_FLIGHT_RECORDER = FlightRecorder()


def recorder() -> FlightRecorder:
    """The live flight recorder."""
    return _FLIGHT_RECORDER


def record(kind: str, **data) -> None:
    """Record one event — no-op while ``telemetry="off"`` (one
    resolved-policy flag check, nothing allocated)."""
    if not metrics_on():
        return
    _FLIGHT_RECORDER.record(kind, **data)


def events() -> list:
    """The recorded events, oldest first."""
    return _FLIGHT_RECORDER.events()


def clear() -> int:
    """Empty the ring; returns how many events were dropped.  Wired
    into :func:`repro.telemetry.reset`."""
    return _FLIGHT_RECORDER.clear()


# ----------------------------------------------------------------------
# Post-mortem bundles
# ----------------------------------------------------------------------

def postmortem_bundle(supervise=None, reason: str = "",
                      last_spans: int = 64) -> dict:
    """Freeze the current telemetry state into one post-mortem dict.

    ``supervise`` is a :class:`~repro.resilience.supervisor.
    SuperviseResult` (or ``None`` for a free-standing dump); its
    attempt ledger and checkpoint lineage become the bundle's
    supervision section.  Everything in the bundle is
    JSON-serialisable.
    """
    from repro.telemetry import merge

    tail = buffer().snapshot()[-last_spans:]
    bundle = {
        "kind": BUNDLE_KIND,
        "version": BUNDLE_VERSION,
        "reason": reason,
        "events": events(),
        "spans": [s.as_dict() for s in tail],
        "rank_tails": {str(r): t
                       for r, t in merge.rank_tails().items()},
        "metrics": registry().snapshot(),
    }
    if supervise is not None:
        bundle["supervise"] = {
            "converged": bool(supervise.converged),
            "attempts": [
                {"attempt": a.attempt, "rung": a.rung,
                 "outcome": a.outcome, "iterations": a.iterations,
                 "residual": repr(a.residual),
                 "resumed_from": a.resumed_from,
                 "backoff": a.backoff, "detail": a.detail}
                for a in supervise.attempts
            ],
            "rungs_used": list(supervise.rungs_used),
            "total_iterations": supervise.total_iterations,
            "checkpoint": {
                "key": supervise.key,
                "saves": supervise.checkpoints_saved,
                "resumes": supervise.resumes,
            },
        }
    return bundle


def write_postmortem(bundle: dict, path: str) -> str:
    """Persist a bundle as pretty-printed JSON; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    return str(path)


def format_postmortem(bundle: dict) -> str:
    """Render a bundle as the plain-text report teleview prints."""
    lines = [f"# post-mortem (reason: {bundle.get('reason') or '?'})"]
    sup = bundle.get("supervise")
    if sup:
        ck = sup.get("checkpoint", {})
        lines += [
            "",
            "## supervision",
            f"converged: {sup.get('converged')}   "
            f"total iterations: {sup.get('total_iterations')}   "
            f"rungs: {' -> '.join(sup.get('rungs_used', [])) or '-'}",
            f"checkpoints: key={ck.get('key') or '-'} "
            f"saves={ck.get('saves', 0)} resumes={ck.get('resumes', 0)}",
        ]
        for a in sup.get("attempts", ()):
            resumed = (f" (resumed from it {a['resumed_from']})"
                       if a.get("resumed_from") is not None else "")
            detail = f" — {a['detail']}" if a.get("detail") else ""
            lines.append(
                f"  attempt {a['attempt']} [{a['rung']}]: "
                f"{a['outcome']} after {a['iterations']} iters"
                f"{resumed}{detail}"
            )
    evs = bundle.get("events", ())
    lines += ["", f"## flight recorder ({len(evs)} events)"]
    for e in evs:
        extra = {k: v for k, v in e.items()
                 if k not in ("seq", "t", "kind")}
        text = "  ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        lines.append(f"  [{e.get('seq', '?'):>4}] {e.get('kind')}"
                     + (f"  {text}" if text else ""))
    spans = bundle.get("spans", ())
    lines += ["", f"## trace tail ({len(spans)} spans)"]
    by_name: dict = {}
    for s in spans:
        row = by_name.setdefault(s["name"], [0, 0.0])
        row[0] += 1
        row[1] += s["t1"] - s["t0"]
    for name in sorted(by_name):
        calls, secs = by_name[name]
        lines.append(f"  {name}: {calls} spans, {secs:.6f}s")
    tails = bundle.get("rank_tails", {})
    if tails:
        lines += ["", f"## rank tails ({len(tails)} ranks)"]
        for r in sorted(tails, key=lambda k: int(k)):
            tail = tails[r]
            last = tail[-1]["name"] if tail else "-"
            lines.append(f"  rank {r}: {len(tail)} recent spans, "
                         f"last={last}")
    return "\n".join(lines)


def _collect_flightrec_metrics() -> dict:
    """Collector view so the reset-completeness sweep sees a
    non-empty ring by name."""
    return {"flightrec.events": len(_FLIGHT_RECORDER)}


registry().register_collector("telemetry.flightrec",
                              _collect_flightrec_metrics)

"""Cross-rank merge: one unified timeline from per-rank payloads.

The shared-memory rank runtime ships each round's worker-side spans
and tallies back over the lockstep reply channel
(:mod:`repro.telemetry.rankcollect`).  This module is the parent-side
half: it

* **normalises clocks** — worker spans are ``time.perf_counter``
  seconds on the *worker's* clock; :func:`ingest_round` maps them onto
  the parent's clock by anchoring each worker's ``round_t0`` (command
  receipt) to the parent's command-send timestamp for that rank.  The
  residual error is the one-way pipe delivery delay — bounded,
  one-sided (merged rank spans can only appear *earlier* than true
  parent time, never later), and irrelevant to every derived report
  (durations are clock-offset-invariant);
* **lands rank spans in the ordinary trace buffer** — each payload
  becomes one ``rank.round`` span (parented under the currently open
  parent span, so the whole round nests inside
  ``transport.shmem.dhop``) plus its recorded children, every one
  tagged ``attrs["rank"]`` / ``attrs["round"]`` and recorded on a
  synthetic ``rank-<r>`` thread — which is what gives the Chrome
  export one row per rank and the JSONL artifact a ``rank`` label for
  free;
* **accumulates per-rank metrics** — reply-channel tallies (messages,
  bytes, halo wait) keyed by rank, exported as ``rank``-labelled
  Prometheus samples by :func:`repro.telemetry.export.prometheus_text`;
* **keeps per-rank tails** — a short ring of each rank's most recent
  normalised spans, the "what was every rank doing just before it
  died" section of the flight recorder's post-mortem bundle
  (:mod:`repro.telemetry.flightrec`).

All state here is process-global and cleared by
:func:`reset_rank_state`, which :func:`repro.telemetry.reset` (and so
``engine.reset_all``) composes — the reset-completeness audit sweeps
the collector view registered below.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.telemetry.metrics import registry
from repro.telemetry.trace import (
    Span,
    active_span_id,
    buffer,
    new_span_id,
)

#: Spans kept per rank for the flight recorder's post-mortem tails.
TAIL_CAPACITY = 32

_MERGE_LOCK = threading.Lock()

#: rank -> accumulated {metric name: value} (counters add up across
#: rounds; the ``rank.`` prefix keeps them out of the unlabelled
#: registry namespace).
_RANK_METRICS: Dict[int, dict] = {}

#: rank -> deque of the rank's most recent normalised span dicts.
_RANK_TAILS: Dict[int, deque] = {}

#: Rounds merged since the last reset (collector-exported below).
_ROUNDS_MERGED = 0


def record_rank_metrics(rank: int, updates: dict) -> None:
    """Accumulate reply-channel tallies for one rank (values add)."""
    rank = int(rank)
    with _MERGE_LOCK:
        acc = _RANK_METRICS.setdefault(rank, {})
        for name, value in updates.items():
            acc[name] = acc.get(name, 0) + value


def rank_metrics() -> Dict[int, dict]:
    """Accumulated per-rank metric values, ``{rank: {name: value}}``
    (snapshot copy)."""
    with _MERGE_LOCK:
        return {r: dict(vals) for r, vals in _RANK_METRICS.items()}


def rank_tails() -> Dict[int, List[dict]]:
    """Each rank's most recent normalised spans (snapshot copy,
    oldest first) — the per-rank section of a post-mortem bundle."""
    with _MERGE_LOCK:
        return {r: [dict(s) for s in tail]
                for r, tail in _RANK_TAILS.items()}


def rounds_merged() -> int:
    """How many lockstep rounds have been merged since reset."""
    return _ROUNDS_MERGED


def ranks_seen() -> List[int]:
    """Every rank that has shipped telemetry since the last reset."""
    with _MERGE_LOCK:
        return sorted(set(_RANK_METRICS) | set(_RANK_TAILS))


def reset_rank_state() -> int:
    """Drop every piece of merge-layer state (metrics, tails, round
    counter); returns how many ranks had state.  Composed into
    :func:`repro.telemetry.reset`."""
    global _ROUNDS_MERGED
    with _MERGE_LOCK:
        n = len(set(_RANK_METRICS) | set(_RANK_TAILS))
        _RANK_METRICS.clear()
        _RANK_TAILS.clear()
        _ROUNDS_MERGED = 0
    return n


def ingest_round(payloads: Iterable[Optional[dict]],
                 send_times: List[float],
                 round_index: int) -> int:
    """Merge one lockstep round's worker payloads into the timeline.

    ``payloads`` holds one :meth:`~repro.telemetry.rankcollect.
    RankCollector.payload` dict per reporting rank (``None`` entries —
    a rank that recorded nothing — are skipped without complaint: a
    silent rank is a report finding, not a merge error).
    ``send_times[r]`` is the parent's ``perf_counter`` just before
    rank ``r``'s command went down the pipe — the normalisation
    anchor.  Returns how many spans were appended to the trace buffer.
    """
    global _ROUNDS_MERGED
    parent_id = active_span_id()
    buf = buffer()
    appended = 0
    for payload in payloads:
        if not payload:
            continue
        rank = int(payload["rank"])
        offset = send_times[rank] - payload["round_t0"]
        thread = f"rank-{rank}"
        round_span = Span(
            name="rank.round",
            t0=payload["round_t0"] + offset,
            t1=payload["round_t1"] + offset,
            span_id=new_span_id(),
            parent_id=parent_id,
            thread=thread,
            attrs={"rank": rank, "round": round_index,
                   "dropped": payload.get("dropped", 0)},
        )
        buf.append(round_span)
        appended += 1
        merged = [round_span.as_dict()]
        for rec in payload.get("spans", ()):
            sp = Span(
                name=rec["name"],
                t0=rec["t0"] + offset,
                t1=rec["t1"] + offset,
                span_id=new_span_id(),
                parent_id=round_span.span_id,
                thread=thread,
                attrs={**rec.get("attrs", {}),
                       "rank": rank, "round": round_index},
            )
            buf.append(sp)
            merged.append(sp.as_dict())
            appended += 1
        with _MERGE_LOCK:
            tail = _RANK_TAILS.setdefault(
                rank, deque(maxlen=TAIL_CAPACITY))
            tail.extend(merged)
        if payload.get("metrics"):
            record_rank_metrics(rank, payload["metrics"])
    with _MERGE_LOCK:
        _ROUNDS_MERGED += 1
    return appended


def rank_spans(spans: Iterable[Span],
               rank: Optional[int] = None) -> List[Span]:
    """The merged rank spans in ``spans`` (optionally one rank's)."""
    out = []
    for s in spans:
        r = s.attrs.get("rank")
        if r is None:
            continue
        if rank is None or r == rank:
            out.append(s)
    return out


def _collect_merge_metrics() -> dict:
    """Collector view over the merge-layer state, so the
    reset-completeness sweep catches any leak by name."""
    with _MERGE_LOCK:
        return {
            "rank.ranks_tracked": len(
                set(_RANK_METRICS) | set(_RANK_TAILS)),
            "rank.rounds_merged": _ROUNDS_MERGED,
        }


registry().register_collector("telemetry.rankmerge",
                              _collect_merge_metrics)

"""Per-rank span collection inside rank-worker processes.

The shared-memory rank runtime (:mod:`repro.grid.comms.shmem`) runs
each rank as an OS process, so the parent's trace buffer — a plain
in-process ring — never sees what a rank does between command receipt
and reply.  A :class:`RankCollector` is the worker-side half of the
distributed telemetry story: a **bounded, allocation-cheap** span
store the worker fills with explicit start/stop timestamps on its own
``time.perf_counter`` clock, then flattens into a picklable payload
that rides the existing lockstep reply channel back to the parent.

The parent-side half lives in :mod:`repro.telemetry.merge`: it
normalises the worker clock against the parent's command-send
timestamps and lands the spans in the ordinary trace buffer, tagged
with the recording rank.

Design constraints (mirroring the in-process tracer):

* **Zero overhead when off** — a worker only builds a collector when
  the command explicitly carries ``telemetry="trace"``; with the knob
  off the sweep code pays one ``is None`` check per seam and takes no
  timestamps.
* **Bounded** — at most ``capacity`` spans per round; excess records
  are counted in ``dropped``, never stored (a runaway sweep cannot
  grow a worker's memory or the reply payload without bound).
* **Observe-only** — nothing recorded here feeds back into the sweep;
  rank numerics are bit-identical with collection on or off (pinned
  by ``tests/telemetry/test_distributed.py``).

Spans are plain dicts (``name``/``t0``/``t1``/``attrs``) rather than
:class:`~repro.telemetry.trace.Span` objects: the payload crosses a
process boundary by pickle, and span ids / parent links only make
sense once the parent assigns them at merge time.
"""

from __future__ import annotations

import time

#: Per-round span cap: a 4-d sweep records ``1 + 3 * ndim`` spans plus
#: wire retries, so 1024 leaves two orders of magnitude of headroom
#: while bounding the reply payload to ~100 kB worst case.
DEFAULT_CAPACITY = 1024


class RankCollector:
    """One command round's span store inside a rank worker.

    Built at command receipt (``round_t0`` anchors the clock
    normalisation — see :func:`repro.telemetry.merge.ingest_round`),
    filled with :meth:`record` during the sweep, and flattened with
    :meth:`payload` into the lockstep reply.
    """

    __slots__ = ("rank", "capacity", "round_t0", "spans", "dropped")

    def __init__(self, rank: int, capacity: int = DEFAULT_CAPACITY) -> None:
        self.rank = int(rank)
        self.capacity = int(capacity)
        self.round_t0 = time.perf_counter()
        self.spans: list = []
        self.dropped = 0

    def record(self, name: str, t0: float, t1: float, **attrs) -> None:
        """Store one caller-timed span (worker-clock seconds)."""
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append({"name": name, "t0": t0, "t1": t1,
                           "attrs": attrs})

    def payload(self) -> dict:
        """The picklable reply-channel payload for this round.

        ``round_t0``/``round_t1`` bracket the worker's whole command
        on its own clock — the anchor the parent-side merge uses to
        translate every span into parent time.
        """
        return {
            "rank": self.rank,
            "round_t0": self.round_t0,
            "round_t1": time.perf_counter(),
            "spans": self.spans,
            "dropped": self.dropped,
            "metrics": {
                "rank.spans_recorded": len(self.spans),
                "rank.spans_dropped": self.dropped,
            },
        }

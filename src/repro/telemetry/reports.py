"""Derived reports: roofline/arithmetic-intensity and solver convergence.

The raw artifacts (spans, metrics) answer "what happened when"; these
reports answer the two questions the ROADMAP actually asks:

* **Roofline** — per (operator, backend): achieved GFLOP/s, achieved
  GB/s and arithmetic intensity (flops/byte), from the
  ``flops_per_site`` / ``bytes_per_site`` metadata the instrumented
  operators stamp onto their spans plus the measured wall time.  This
  is the Grid-style per-kernel performance monitor (Boyle et al.,
  arXiv:1512.03487) in report form: it locates each operator on the
  roofline so the next perf PR knows whether it is compute- or
  bandwidth-bound.
* **Convergence** — per solve span: residual-vs-iteration series,
  iteration count, convergence flag, and the fault-tolerance events
  (restarts, rollbacks, detected faults) that fired while the solve
  was open.

Both consume plain :class:`~repro.telemetry.trace.Span` lists — live
from :func:`repro.telemetry.spans` or reloaded from a JSONL artifact —
so ``tools/teleview.py`` renders the same report offline that a test
checks in-process.
"""

from __future__ import annotations

import functools
from typing import Iterable, List

from repro.telemetry.trace import Span, span, tracing

#: Span names carrying operator flop/byte metadata.
OPERATOR_SPAN_NAMES = ("dhop", "dhop.batched", "overlap.dhop")

#: Span names marking one solver *recursion* (one convergence row).
#: The unified entry :func:`repro.engine.solve.solve_fermion` wraps
#: its dispatch in a ``"solve_fermion"`` envelope span instead — it
#: carries the operator name, which the report resolves through the
#: parent link, without duplicating the recursion's row.
SOLVE_SPAN_NAMES = ("solve",)

#: Instant-event names counted as fault-tolerance activity.
FT_EVENT_NAMES = (
    "ft.restart", "ft.rollback", "ft.recompute",
    "fault.fired", "fault.detected", "fault.recovered",
)

#: Merged rank-worker span names (see :mod:`repro.telemetry.merge`):
#: the whole command round, per-direction compute (codec included —
#: the receiver applies the wire codec lazily inside the sweep), and
#: mailbox-arrival waits.
RANK_ROUND_SPAN = "rank.round"
RANK_COMPUTE_SPAN_NAMES = ("rank.dhop_dir",)
RANK_WAIT_SPAN_NAMES = ("rank.mailbox_wait",)


def convergence_attrs(result) -> dict:
    """The solver-result fields :func:`convergence_from_spans`
    consumes, as JSON-serialisable span attributes.

    Works on every result family — ``SolverResult``,
    ``BlockSolverResult`` (its ``residual_history`` entries are
    per-column lists), the FT extensions (``restarts``) and
    ``MixedPrecisionResult`` (``outer_iterations``) — reading only by
    ``getattr`` so it never constrains the result types.
    """
    iterations = getattr(result, "iterations", None)
    if iterations is None:
        iterations = getattr(result, "outer_iterations", 0)
    out = {
        "iterations": int(iterations or 0),
        "converged": bool(getattr(result, "converged", False)),
        "residuals": [
            [float(c) for c in r] if isinstance(r, (list, tuple)) else
            float(r)
            for r in getattr(result, "residual_history", []) or []
        ],
    }
    residual = getattr(result, "residual", None)
    if residual is not None:
        out["final_residual"] = float(residual)
    restarts = getattr(result, "restarts", None)
    if restarts is not None:
        out["restarts"] = int(restarts)
    breakdown = getattr(result, "breakdown", "")
    if breakdown:
        out["breakdown"] = str(breakdown)
    return out


def traced_solver(label: str):
    """Decorator wrapping one Krylov recursion in a ``"solve"`` span.

    The fast path (tracing off) is a single resolved-policy flag check
    before tail-calling the recursion — the overhead test counts Span
    constructions to pin this.  With tracing on, the recursion runs
    inside the span and its convergence record
    (:func:`convergence_attrs`) is stamped onto the span *after* the
    recursion returns, so telemetry can never perturb the iteration.
    """
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not tracing():
                return fn(*args, **kwargs)
            with span("solve", solver=label) as sp:
                result = fn(*args, **kwargs)
                sp.attrs.update(convergence_attrs(result))
                return result
        return wrapper
    return deco


def roofline_from_spans(spans: Iterable[Span]) -> List[dict]:
    """Aggregate operator spans into one roofline row per
    (operator span name, backend).

    Each row:  ``op``, ``backend``, ``calls``, ``seconds``, ``sites``
    (sites processed across all calls), ``flops`` / ``bytes`` totals,
    ``gflops`` / ``gbytes_per_s`` achieved rates, and ``intensity``
    (flops per byte — a pure ratio of the per-site metadata, so it is
    exact regardless of timer noise).
    """
    acc: dict = {}
    for s in spans:
        if s.name not in OPERATOR_SPAN_NAMES:
            continue
        a = s.attrs
        if "flops_per_site" not in a or "sites" not in a:
            continue
        key = (s.name, a.get("backend", "?"))
        row = acc.setdefault(key, {
            "op": s.name,
            "backend": a.get("backend", "?"),
            "calls": 0,
            "seconds": 0.0,
            "sites": 0,
            "flops": 0,
            "bytes": 0,
        })
        sites = int(a["sites"])
        row["calls"] += 1
        row["seconds"] += s.duration
        row["sites"] += sites
        row["flops"] += sites * int(a["flops_per_site"])
        row["bytes"] += sites * int(a.get("bytes_per_site", 0))
    out = []
    for key in sorted(acc):
        row = acc[key]
        secs = row["seconds"]
        row["gflops"] = (row["flops"] / secs / 1e9) if secs > 0 else 0.0
        row["gbytes_per_s"] = (
            (row["bytes"] / secs / 1e9) if secs > 0 else 0.0
        )
        row["intensity"] = (
            row["flops"] / row["bytes"] if row["bytes"] else 0.0
        )
        out.append(row)
    return out


def convergence_from_spans(spans: Iterable[Span]) -> List[dict]:
    """One convergence row per solve span.

    Each row: ``solver``, ``operator``, ``iterations``, ``converged``,
    ``final_residual``, ``residuals`` (the residual-vs-iteration
    series the solver recorded), and ``ft_events`` — a name -> count
    map of the fault-tolerance events that fired *inside* the solve's
    time window on the same recorded data.

    The recursions do not know which fermion operator they invert (a
    CG span sees only a callable), so ``operator`` is resolved by
    walking the parent links up to the nearest enclosing span that
    carries an ``operator`` attribute — the ``"solve_fermion"``
    envelope of the unified entry.
    """
    spans = list(spans)
    by_id = {s.span_id: s for s in spans if s.span_id}
    solves = [s for s in spans if s.name in SOLVE_SPAN_NAMES]
    ft_events = [s for s in spans if s.name in FT_EVENT_NAMES]
    out = []
    for s in solves:
        inside: dict = {}
        for ev in ft_events:
            if s.t0 <= ev.t0 <= s.t1:
                inside[ev.name] = inside.get(ev.name, 0) + 1
        a = s.attrs
        residuals = list(a.get("residuals", ()))
        operator = a.get("operator")
        parent = by_id.get(s.parent_id)
        while operator is None and parent is not None:
            operator = parent.attrs.get("operator")
            parent = by_id.get(parent.parent_id)
        out.append({
            "solver": a.get("solver", "?"),
            "operator": operator if operator is not None else "?",
            "iterations": a.get("iterations", len(residuals)),
            "converged": a.get("converged"),
            "final_residual": (
                a.get("final_residual",
                      residuals[-1] if residuals else None)
            ),
            "residuals": residuals,
            "seconds": s.duration,
            "ft_events": inside,
        })
    return out


def imbalance_from_spans(spans: Iterable[Span]) -> List[dict]:
    """One load-imbalance row per merged lockstep round.

    Consumes the rank spans the merge layer lands in the timeline
    (``rank.round`` / ``rank.dhop_dir`` / ``rank.mailbox_wait``, each
    tagged ``rank`` and ``round``) and answers the scaling question
    per round: how evenly did the ranks work, how long did each sit
    waiting on halos, and which rank set the round's critical path.

    Each row: ``round``, ``nranks``, per-rank ``walls`` / ``compute``
    / ``wait`` maps, ``slowest_rank`` (longest round wall — the
    straggler every other rank lockstepped behind), ``compute_spread``
    (max/min rank compute, 1.0 = perfectly balanced), ``wait_skew``
    (max − min mailbox wait, seconds).  A rank that reported no spans
    in a round simply has no entry in the maps — missing, not zero.
    """
    rounds: dict = {}
    for s in spans:
        rank = s.attrs.get("rank")
        rnd = s.attrs.get("round")
        if rank is None or rnd is None:
            continue
        row = rounds.setdefault(rnd, {})
        per = row.setdefault(rank, {"wall": 0.0, "compute": 0.0,
                                    "wait": 0.0})
        if s.name == RANK_ROUND_SPAN:
            per["wall"] += s.duration
        elif s.name in RANK_COMPUTE_SPAN_NAMES:
            per["compute"] += s.duration
        elif s.name in RANK_WAIT_SPAN_NAMES:
            per["wait"] += s.duration
    out = []
    for rnd in sorted(rounds):
        per = rounds[rnd]
        walls = {r: v["wall"] for r, v in per.items() if v["wall"] > 0}
        compute = {r: v["compute"] for r, v in per.items()
                   if v["compute"] > 0}
        waits = {r: v["wait"] for r, v in per.items()}
        slowest = (max(walls, key=walls.get) if walls
                   else max(compute, key=compute.get) if compute
                   else None)
        spread = (max(compute.values()) / min(compute.values())
                  if compute and min(compute.values()) > 0 else 0.0)
        skew = ((max(waits.values()) - min(waits.values()))
                if waits else 0.0)
        out.append({
            "round": rnd,
            "nranks": len(per),
            "walls": walls,
            "compute": compute,
            "wait": waits,
            "slowest_rank": slowest,
            "compute_spread": spread,
            "wait_skew": skew,
        })
    return out


def imbalance_summary(spans: Iterable[Span]) -> dict:
    """Aggregate imbalance attribution across every merged round.

    ``slowest_rank`` is the rank that set the critical path in the
    most rounds (ties broken toward the lower rank id for a
    deterministic report); ``slowest_rounds`` counts how often.
    """
    rows = imbalance_from_spans(spans)
    tally: dict = {}
    compute: dict = {}
    wait: dict = {}
    for row in rows:
        if row["slowest_rank"] is not None:
            tally[row["slowest_rank"]] = (
                tally.get(row["slowest_rank"], 0) + 1)
        for r, v in row["compute"].items():
            compute[r] = compute.get(r, 0.0) + v
        for r, v in row["wait"].items():
            wait[r] = wait.get(r, 0.0) + v
    slowest = (min((r for r in tally
                    if tally[r] == max(tally.values()))) if tally
               else None)
    return {
        "rounds": len(rows),
        "ranks": sorted(set(compute) | set(wait)),
        "slowest_rank": slowest,
        "slowest_rounds": tally.get(slowest, 0),
        "compute_seconds": compute,
        "wait_seconds": wait,
    }


# ----------------------------------------------------------------------
# Plain-text rendering (shared by tools/teleview.py and the examples)
# ----------------------------------------------------------------------
def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def _table(headers: list, rows: list) -> str:
    cols = [
        max(len(str(h)), *(len(_fmt(r[i], 0).strip()) for r in rows))
        if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, cols)),
        "  ".join("-" * w for w in cols),
    ]
    for r in rows:
        lines.append(
            "  ".join(_fmt(v, w) for v, w in zip(r, cols))
        )
    return "\n".join(lines)


def roofline_table(spans: Iterable[Span]) -> str:
    """The roofline report as an aligned plain-text table."""
    rows = roofline_from_spans(spans)
    if not rows:
        return "(no operator spans with flop/byte metadata)"
    headers = ["op", "backend", "calls", "seconds", "GF/s", "GB/s",
               "flops/byte"]
    body = [
        [r["op"], r["backend"], r["calls"], r["seconds"], r["gflops"],
         r["gbytes_per_s"], r["intensity"]]
        for r in rows
    ]
    return _table(headers, body)


def imbalance_table(spans: Iterable[Span]) -> str:
    """The load-imbalance report as an aligned plain-text table,
    footed by the cross-round slowest-rank attribution."""
    rows = imbalance_from_spans(spans)
    if not rows:
        return "(no merged rank spans — run under " \
               "engine.scope(transport=\"shmem\", telemetry=\"trace\"))"
    headers = ["round", "ranks", "slowest", "wall_max_s",
               "compute_spread", "wait_skew_s"]
    body = []
    for r in rows:
        wall_max = max(r["walls"].values()) if r["walls"] else 0.0
        body.append([
            r["round"], r["nranks"],
            "-" if r["slowest_rank"] is None
            else f"rank {r['slowest_rank']}",
            wall_max, r["compute_spread"], r["wait_skew"],
        ])
    summary = imbalance_summary(spans)
    foot = [
        "",
        f"slowest rank: {summary['slowest_rank']} "
        f"(critical path in {summary['slowest_rounds']} of "
        f"{summary['rounds']} rounds)",
    ]
    for rank in summary["ranks"]:
        foot.append(
            f"  rank {rank}: compute "
            f"{summary['compute_seconds'].get(rank, 0.0):.6f}s, "
            f"halo wait {summary['wait_seconds'].get(rank, 0.0):.6f}s"
        )
    return _table(headers, body) + "\n" + "\n".join(foot)


def convergence_table(spans: Iterable[Span]) -> str:
    """The convergence report as an aligned plain-text table."""
    rows = convergence_from_spans(spans)
    if not rows:
        return "(no solve spans)"
    headers = ["solver", "operator", "iters", "converged", "final_res",
               "seconds", "ft_events"]
    body = []
    for r in rows:
        ft = ",".join(
            f"{k}x{v}" for k, v in sorted(r["ft_events"].items())
        ) or "-"
        body.append([
            r["solver"], r["operator"], r["iterations"],
            r["converged"], r["final_residual"], r["seconds"], ft,
        ])
    return _table(headers, body)

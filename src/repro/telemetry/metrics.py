"""The typed metrics registry: counters, gauges, histograms, collectors.

Before the telemetry layer, every subsystem kept its own tallies —
``repro.perf.counters`` held module-global ints, each live
:class:`~repro.grid.comms.DistributedLattice` carried a
:class:`~repro.grid.comms.CommsStats`, every
:class:`~repro.engine.plan.KernelPlan` its own
:class:`~repro.engine.plan.StageCounters` — and "reset everything" was
a ritual of composed calls that drifted whenever a new counter landed.
This module is the one store they all route through:

* :class:`Counter` — monotonically increasing tally (``inc``);
* :class:`Gauge` — a settable level (``set``);
* :class:`Histogram` — fixed-bucket distribution (``observe``) with
  Prometheus-style cumulative buckets, sum and count;
* **collectors** — named callables returning ``{metric: value}`` for
  state that lives elsewhere (the aggregate comms stats of every live
  distributed lattice); collectors are *views*: they appear in
  :func:`MetricsRegistry.snapshot` but reset with their owner, not
  with the registry.

The registry is process-global and thread-safe; instruments are
created on first use and survive :meth:`MetricsRegistry.reset` (which
zeroes values but keeps registrations, so a snapshot taken right
after a reset shows every known metric at zero — the property the
reset-completeness test pins).

Import discipline: this module imports nothing from :mod:`repro` — it
sits at the very bottom of the telemetry stack so the perf counters,
the engine plan layer and the comms layer can all feed it without
cycles.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Sequence

#: Default histogram buckets (seconds): spans from microseconds to
#: tens of seconds, the range of everything this codebase times.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A settable level (last write wins)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A fixed-bucket distribution with cumulative bucket counts.

    ``buckets`` are upper bounds in ascending order; an implicit
    ``+Inf`` bucket catches the tail.  ``snapshot`` flattens to the
    Prometheus histogram triple: per-bucket cumulative counts, total
    ``sum`` and total ``count``.
    """

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum",
                 "_count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 help: str = "") -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list:
        """Cumulative counts per bucket bound (Prometheus ``le``
        semantics), ending with the ``+Inf`` total."""
        with self._lock:
            out, running = [], 0
            for c in self._counts:
                running += c
                out.append(running)
            return out

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """The process-global instrument store.

    ``counter``/``gauge``/``histogram`` are get-or-create (two calls
    with the same name return the same instrument; a name can hold
    only one instrument type).  ``register_collector`` attaches a view
    over externally owned state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        self._collectors: Dict[str, Callable] = {}

    # -- instruments ---------------------------------------------------
    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            inst = self._metrics.get(name)
            if inst is None:
                inst = cls(name, **kwargs)
                self._metrics[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, buckets=buckets,
                                   help=help)

    def register_collector(self, name: str, fn: Callable) -> None:
        """Attach (or replace) a named collector: a zero-argument
        callable returning ``{metric_name: value}``, sampled at
        snapshot/export time.  Collector state is owned elsewhere and
        resets with its owner (e.g. ``reset_all_comms``), never with
        :meth:`reset`."""
        with self._lock:
            self._collectors[name] = fn

    # -- read side -----------------------------------------------------
    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def instruments(self) -> list:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """Every metric value, flat: counters/gauges map to their
        value, histograms to ``name.count`` / ``name.sum``, collectors
        contribute their dicts verbatim."""
        out: dict = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                out[f"{inst.name}.count"] = inst.count
                out[f"{inst.name}.sum"] = inst.sum
            else:
                out[inst.name] = inst.value
        with self._lock:
            collectors = list(self._collectors.values())
        for fn in collectors:
            out.update(fn())
        return out

    def reset(self) -> int:
        """Zero every registered instrument (registrations survive);
        returns how many were zeroed.  Collector-backed state resets
        with its owner."""
        insts = self.instruments()
        for inst in insts:
            inst.reset()
        return len(insts)


#: The process-global registry every subsystem feeds.  Mutate only
#: through the instrument API — ``tools/lint_execution_globals.py``
#: bans touching this name outside ``src/repro/telemetry/``.
_TELEMETRY_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _TELEMETRY_REGISTRY

"""Exporters: JSONL spans, Chrome ``trace_event``, Prometheus textfile.

Three consumer-facing formats for one instrumented run:

* **JSONL** — one span per line (the :meth:`~repro.telemetry.trace.
  Span.as_dict` schema).  The archival format: trivially greppable,
  streamable, and the input ``tools/teleview.py`` renders.
* **Chrome trace** — the ``trace_event`` JSON array Chromium's
  ``about://tracing`` (and Perfetto) load directly: complete ``"X"``
  events for timed spans, instant ``"i"`` events for zero-duration
  ones, microsecond timestamps, one ``tid`` row per recording thread.
* **Prometheus textfile** — the node-exporter textfile-collector
  format for the metrics registry: ``# HELP`` / ``# TYPE`` headers,
  counters/gauges as single samples, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``.  Metric names
  are sanitised (dots become underscores) and prefixed ``repro_``.

Everything here is read-only over the trace buffer / registry — the
exporters never mutate telemetry state, so exporting mid-run is safe.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, List

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.trace import Span

#: Exporters never mutate telemetry state, but the file writes
#: themselves are serialised so two threads exporting to the same
#: artifact cannot interleave.
_EXPORT_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, ending with a newline when non-empty."""
    lines = [json.dumps(s.as_dict(), sort_keys=True) for s in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write spans as JSONL; returns how many were written."""
    spans = list(spans)
    with _EXPORT_LOCK, open(path, "w") as fh:
        fh.write(spans_to_jsonl(spans))
    return len(spans)


def read_jsonl(path: str) -> List[Span]:
    """Load spans back from a JSONL file (inverse of
    :func:`write_jsonl` — the round trip is exact)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Span.from_dict(json.loads(line)))
    return out


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _span_pid(span: Span) -> int:
    """The process row a span renders into: merged rank spans (the
    shared-memory runtime's workers, tagged ``attrs["rank"]`` by the
    merge layer) each get their own process group ``rank + 1``; every
    parent-process span stays on pid 0."""
    rank = span.attrs.get("rank")
    return 0 if rank is None else int(rank) + 1


def _tid_table(spans: Iterable[Span]) -> dict:
    """Stable small integer ids per (pid, thread name) row."""
    tids: dict = {}
    for s in spans:
        key = (_span_pid(s), s.thread)
        if key not in tids:
            tids[key] = len(tids)
    return tids


def spans_to_chrome(spans: Iterable[Span]) -> dict:
    """The ``trace_event`` JSON object (``{"traceEvents": [...]}``).

    Timestamps are microseconds relative to the earliest span, so the
    viewer's timeline starts at zero.  A merged cross-rank run renders
    as one process group per rank (``rank 0`` .. ``rank N-1``) plus
    the ``parent`` group — the unified timeline the shared-memory
    runtime's telemetry is merged for.
    """
    spans = list(spans)
    t_base = min((s.t0 for s in spans), default=0.0)
    tids = _tid_table(spans)
    events = []
    for s in spans:
        ev = {
            "name": s.name,
            "cat": "repro",
            "pid": _span_pid(s),
            "tid": tids[(_span_pid(s), s.thread)],
            "ts": (s.t0 - t_base) * 1e6,
            "args": s.attrs,
        }
        if s.t1 > s.t0:
            ev["ph"] = "X"
            ev["dur"] = (s.t1 - s.t0) * 1e6
        else:
            ev["ph"] = "i"
            ev["s"] = "t"
        events.append(ev)
    meta = [
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": thread}}
        for (pid, thread), tid in tids.items()
    ]
    for pid in sorted({pid for pid, _ in tids}):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "parent" if pid == 0
                     else f"rank {pid - 1}"},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write the Chrome ``trace_event`` file; returns the span count."""
    spans = list(spans)
    with _EXPORT_LOCK, open(path, "w") as fh:
        json.dump(spans_to_chrome(spans), fh, indent=1)
        fh.write("\n")
    return len(spans)


# ----------------------------------------------------------------------
# Prometheus textfile
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """``perf.plan_hits`` -> ``repro_perf_plan_hits``."""
    safe = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    return f"repro_{safe}"


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def prometheus_text(registry: MetricsRegistry,
                    rank_metrics: dict = None) -> str:
    """Render the registry in the Prometheus exposition format.

    ``rank_metrics`` maps rank id -> ``{metric name: value}`` — the
    merge layer's per-rank tallies (:func:`repro.telemetry.merge.
    rank_metrics`), rendered as ``rank``-labelled samples
    (``repro_rank_messages{rank="2"} 17``).  ``None`` (the default)
    pulls the live merge-layer store, so an instrumented shmem run
    exports its per-rank series with no extra plumbing; pass ``{}``
    to suppress them.
    """
    if rank_metrics is None:
        from repro.telemetry import merge

        rank_metrics = merge.rank_metrics()
    lines = []
    for inst in registry.instruments():
        name = _prom_name(inst.name)
        if isinstance(inst, Counter):
            kind = "counter"
        elif isinstance(inst, Gauge):
            kind = "gauge"
        elif isinstance(inst, Histogram):
            kind = "histogram"
        else:  # pragma: no cover - registry only makes these three
            continue
        if inst.help:
            lines.append(f"# HELP {name} {inst.help}")
        lines.append(f"# TYPE {name} {kind}")
        if isinstance(inst, Histogram):
            cumulative = inst.cumulative()
            for bound, count in zip(inst.buckets, cumulative):
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(float(bound))}"}} '
                    f"{count}"
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
            lines.append(f"{name}_sum {_prom_value(inst.sum)}")
            lines.append(f"{name}_count {inst.count}")
        else:
            lines.append(f"{name} {_prom_value(inst.value)}")
    # Collector-backed views export as untyped samples.
    snapshot = registry.snapshot()
    known = set()
    for inst in registry.instruments():
        if isinstance(inst, Histogram):
            known.update({f"{inst.name}.count", f"{inst.name}.sum"})
        else:
            known.add(inst.name)
    for name in sorted(set(snapshot) - known):
        lines.append(f"# TYPE {_prom_name(name)} untyped")
        lines.append(f"{_prom_name(name)} {_prom_value(snapshot[name])}")
    # Per-rank series: one labelled sample per (metric, rank), the
    # TYPE header emitted once per metric name.
    by_metric: dict = {}
    for rank in sorted(rank_metrics):
        for name, value in rank_metrics[rank].items():
            by_metric.setdefault(name, []).append((int(rank), value))
    for name in sorted(by_metric):
        lines.append(f"# TYPE {_prom_name(name)} untyped")
        for rank, value in sorted(by_metric[name]):
            lines.append(
                f'{_prom_name(name)}{{rank="{rank}"}} '
                f"{_prom_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str,
                     rank_metrics: dict = None) -> None:
    """Write the registry as a Prometheus textfile (atomic enough for
    the node-exporter textfile collector: write then rename is not
    needed for our artifact use)."""
    with _EXPORT_LOCK, open(path, "w") as fh:
        fh.write(prometheus_text(registry, rank_metrics=rank_metrics))

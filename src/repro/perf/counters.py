"""Process-global performance counters — a view over the telemetry
registry.

Every engine layer increments these instead of keeping private
tallies, so the regression harness (and the trace-cache tests) can
assert cache-hit rates across a whole sweep with one read.  Since the
telemetry layer landed, the backing store is the process-global
:class:`~repro.telemetry.metrics.MetricsRegistry` (one
:class:`~repro.telemetry.metrics.Counter` per name, prefixed
``perf.``): the same values appear in ``telemetry.snapshot()`` and in
the Prometheus export, and ``telemetry.reset()`` provably zeroes them
along with everything else.  This module keeps the historical call
surface — ``counters().bump(...)``, attribute reads,
``as_dict()`` — as a thin facade over those instruments.
"""

from __future__ import annotations

from repro.telemetry.metrics import registry

#: Every engine counter, in declaration order.
#:
#: * ``program_hits`` / ``program_misses`` — memoized vectorize +
#:   assemble lookups (per kernel signature and codegen options).
#: * ``trace_hits`` / ``trace_misses`` / ``trace_invalidations`` —
#:   executor-trace lookups per (kernel, VL, dtype); a VL or dtype
#:   change invalidates and recounts as a miss.
#: * ``cshift_plan_hits`` / ``cshift_plan_misses`` — cached gather
#:   plans for lattice neighbour shifts.
#: * ``fused_dhop_calls`` — Wilson-Dslash sweeps taken by the fused
#:   engine path; ``tiles_dispatched`` — tile bodies executed (equal
#:   to fused calls when running serial).
#: * ``overlap_dhop_calls`` — distributed sweeps taken by the
#:   comms/compute overlap engine (:mod:`repro.grid.overlap`);
#:   ``halo_posts`` / ``halo_waits`` — async halo messages posted to
#:   and completed from the in-flight queue.
#: * ``batched_dhop_calls`` — multi-RHS sweeps that amortised one set
#:   of neighbour gathers over a whole RHS batch.
#: * ``codegen_dhop_calls`` — Wilson-Dslash sweeps taken by the
#:   generated, exec-compiled codegen path (:mod:`repro.codegen`);
#:   the codegen *cache* has its own ``codegen.*`` counters.
#: * ``plan_hits`` / ``plan_misses`` — resolved
#:   :class:`repro.engine.plan.KernelPlan` lookups per (grid, kind,
#:   policy); a miss is one policy resolution, a hit is a cached
#:   dispatch decision reused.
COUNTER_NAMES = (
    "program_hits",
    "program_misses",
    "trace_hits",
    "trace_misses",
    "trace_invalidations",
    "cshift_plan_hits",
    "cshift_plan_misses",
    "fused_dhop_calls",
    "tiles_dispatched",
    "overlap_dhop_calls",
    "halo_posts",
    "halo_waits",
    "batched_dhop_calls",
    "codegen_dhop_calls",
    "plan_hits",
    "plan_misses",
)

#: Registry key prefix for the engine counters.
PREFIX = "perf."

#: The backing instruments, created eagerly so a snapshot taken before
#: any engine activity already shows every counter at zero, and so
#: ``bump`` is one dict lookup + one atomic increment (no registry
#: lock on the hot path).
_PERF = {
    name: registry().counter(PREFIX + name, help="engine perf counter")
    for name in COUNTER_NAMES
}


class PerfCounters:
    """The historical counter facade (now registry-backed).

    Attribute reads (``counters().plan_hits``) and ``bump`` keep their
    exact pre-telemetry semantics; the integers live in the telemetry
    registry under ``perf.<name>``.
    """

    __slots__ = ()

    def bump(self, name: str, n: int = 1) -> None:
        inst = _PERF.get(name)
        if inst is None:
            raise AttributeError(f"unknown perf counter {name!r}")
        inst.inc(n)

    def __getattr__(self, name: str) -> int:
        inst = _PERF.get(name)
        if inst is None:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute "
                f"{name!r}"
            )
        return inst.value

    def as_dict(self) -> dict:
        return {name: _PERF[name].value for name in COUNTER_NAMES}

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def program_hit_rate(self) -> float:
        return self._rate(self.program_hits, self.program_misses)

    def trace_hit_rate(self) -> float:
        return self._rate(self.trace_hits, self.trace_misses)

    def cshift_plan_hit_rate(self) -> float:
        return self._rate(self.cshift_plan_hits, self.cshift_plan_misses)

    def plan_hit_rate(self) -> float:
        return self._rate(self.plan_hits, self.plan_misses)


_COUNTERS = PerfCounters()


def counters() -> PerfCounters:
    """The live counter block."""
    return _COUNTERS


def reset_counters() -> None:
    """Zero every engine counter (does not touch the caches
    themselves, nor any non-``perf.`` metric in the registry)."""
    for inst in _PERF.values():
        inst.reset()

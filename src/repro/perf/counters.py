"""Process-global performance counters.

Every engine layer increments these instead of keeping private tallies,
so the regression harness (and the trace-cache tests) can assert
cache-hit rates across a whole sweep with one read.  Counters are
plain integers guarded by a lock — they are touched from tile worker
threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields


@dataclass
class PerfCounters:
    """Cumulative engine counters since the last :func:`reset_counters`.

    * ``program_hits`` / ``program_misses`` — memoized vectorize +
      assemble lookups (per kernel signature and codegen options).
    * ``trace_hits`` / ``trace_misses`` / ``trace_invalidations`` —
      executor-trace lookups per (kernel, VL, dtype); a VL or dtype
      change invalidates and recounts as a miss.
    * ``cshift_plan_hits`` / ``cshift_plan_misses`` — cached gather
      plans for lattice neighbour shifts.
    * ``fused_dhop_calls`` — Wilson-Dslash sweeps taken by the fused
      engine path; ``tiles_dispatched`` — tile bodies executed (equal
      to fused calls when running serial).
    * ``overlap_dhop_calls`` — distributed sweeps taken by the
      comms/compute overlap engine (:mod:`repro.grid.overlap`);
      ``halo_posts`` / ``halo_waits`` — async halo messages posted to
      and completed from the in-flight queue.
    * ``batched_dhop_calls`` — multi-RHS sweeps that amortised one set
      of neighbour gathers over a whole RHS batch.
    * ``plan_hits`` / ``plan_misses`` — resolved
      :class:`repro.engine.plan.KernelPlan` lookups per (grid, kind,
      policy); a miss is one policy resolution, a hit is a cached
      dispatch decision reused.
    """

    program_hits: int = 0
    program_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    trace_invalidations: int = 0
    cshift_plan_hits: int = 0
    cshift_plan_misses: int = 0
    fused_dhop_calls: int = 0
    tiles_dispatched: int = 0
    overlap_dhop_calls: int = 0
    halo_posts: int = 0
    halo_waits: int = 0
    batched_dhop_calls: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def as_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "_lock"
        }

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def program_hit_rate(self) -> float:
        return self._rate(self.program_hits, self.program_misses)

    def trace_hit_rate(self) -> float:
        return self._rate(self.trace_hits, self.trace_misses)

    def cshift_plan_hit_rate(self) -> float:
        return self._rate(self.cshift_plan_hits, self.cshift_plan_misses)

    def plan_hit_rate(self) -> float:
        return self._rate(self.plan_hits, self.plan_misses)


_COUNTERS = PerfCounters()


def counters() -> PerfCounters:
    """The live counter block."""
    return _COUNTERS


def reset_counters() -> None:
    """Zero every counter (does not touch the caches themselves)."""
    with _COUNTERS._lock:
        for f in fields(_COUNTERS):
            if f.name != "_lock":
                setattr(_COUNTERS, f.name, 0)

"""Tiled execution over a thread pool, bit-identical to serial.

The lattice sweeps this feeds (:mod:`repro.perf.fused`) write disjoint
outer-site slices of a preallocated output, so tiles are data-parallel
with no reduction step at all — the "deterministic reduction order" is
the trivial one: every element is written by exactly one tile, and the
within-tile accumulation order is the same as the serial sweep's.
Thread scheduling therefore cannot perturb results; ``workers=4`` and
``workers=1`` are bit-identical by construction.

The pool is process-global and lazily grown: numpy releases the GIL
inside the fused tile bodies, so tiles overlap on multicore hosts and
degrade gracefully to serial-equivalent cost on one core.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from repro.engine.policy import current_policy
from repro.perf.counters import counters

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_WIDTH = 0
_POOL_LOCK = threading.Lock()


def _pool(workers: int) -> ThreadPoolExecutor:
    """The shared tile pool, re-created wider when first needed."""
    global _POOL, _POOL_WIDTH
    with _POOL_LOCK:
        if _POOL is None or _POOL_WIDTH < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=True)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-tile"
            )
            _POOL_WIDTH = workers
        return _POOL


def tiles_for(
    n_sites: int,
    workers: Optional[int] = None,
    min_sites: Optional[int] = None,
) -> list:
    """Split ``range(n_sites)`` into contiguous per-tile slices.

    The split depends only on (n_sites, workers, min_sites) — never on
    timing — and tiles are contiguous, so each worker touches one
    stretch of the outer-site axis (the cache-friendly order the
    serial sweep uses too).
    """
    policy = current_policy()
    workers = policy.workers if workers is None else workers
    min_sites = policy.tile_min_sites if min_sites is None else min_sites
    if workers <= 1 or n_sites < max(min_sites, 2):
        return [slice(0, n_sites)]
    n_tiles = min(workers, max(1, n_sites // max(1, min_sites // 2)))
    base, extra = divmod(n_sites, n_tiles)
    out, start = [], 0
    for i in range(n_tiles):
        size = base + (1 if i < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


def run_tiles(body: Callable, tiles: Sequence, workers: Optional[int] = None) -> None:
    """Run ``body(tile_slice)`` for every tile.

    One tile (or one worker) short-circuits to a plain call — the
    serial path never pays pool overhead.  Exceptions propagate to the
    caller exactly as they would serially.
    """
    counters().bump("tiles_dispatched", len(tiles))
    workers = current_policy().workers if workers is None else workers
    if len(tiles) == 1 or workers <= 1:
        for t in tiles:
            body(t)
        return
    pool = _pool(workers)
    for fut in [pool.submit(body, t) for t in tiles]:
        fut.result()

"""The benchmark-regression harness CI gates on.

A pinned suite of end-to-end workloads — Wilson-Dslash (engine off vs
on), a CG solve, a distributed halo exchange, a fault-campaign smoke
and the kernel trace cache — each reporting

* a wall time (informational: CI machines vary),
* **gated metrics**: machine-independent quantities (speedup ratios,
  instruction counts, cache-hit rates, campaign outcomes) compared
  against a committed baseline.

Every metric carries its own gate mode so the comparison logic never
guesses a direction:

* ``min`` — must stay within ``tolerance`` of the baseline from below
  (``current >= baseline * (1 - tolerance)``): speedups, hit rates.
* ``max`` — must not grow past ``baseline * (1 + tolerance)``:
  instruction counts that creeping codegen would inflate.
* ``exact`` — must match the baseline exactly: bit-identity booleans,
  deterministic campaign outcomes, solver iteration counts.
* ``info`` — recorded, never gated.

``benchmarks/bench_regression.py`` is the CLI front end; see the
README's *Performance* section for re-baselining instructions.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

import repro.perf as perf
from repro.bench.workloads import dslash_setup
from repro.grid.cartesian import GridCartesian
from repro.grid.comms import DistributedLattice, LatencyModel, reset_all_comms
from repro.grid.dist_wilson import DistributedWilson, distribute_gauge
from repro.grid.multirhs import split_rhs, stack_rhs
from repro.grid.random import random_gauge, random_spinor
from repro.grid.solver import (
    batched_conjugate_gradient,
    conjugate_gradient,
)
from repro.grid.wilson import WilsonDirac
from repro.perf.counters import counters, reset_counters
from repro.perf.trace_cache import cached_run_kernel, clear_cache, trace_cache
from repro.simd import get_backend
from repro.vectorizer import ir

SCHEMA_VERSION = 1

#: Legal gate modes (see module docstring).
GATES = ("min", "max", "exact", "info")


@dataclass
class Metric:
    """One gated quantity."""

    value: object
    gate: str = "info"

    def __post_init__(self) -> None:
        if self.gate not in GATES:
            raise ValueError(f"unknown gate {self.gate!r}")


@dataclass
class BenchRecord:
    """One benchmark's outcome."""

    name: str
    wall_seconds: float
    metrics: dict = field(default_factory=dict)
    info: dict = field(default_factory=dict)

    def metric(self, name: str, value, gate: str = "info") -> None:
        self.metrics[name] = Metric(value=value, gate=gate)


def _median_wall(fn: Callable, reps: int, warmup: int = 2) -> float:
    """Median wall time of ``fn`` over ``reps`` timed calls."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


# ======================================================================
# The pinned benchmarks
# ======================================================================

def bench_dslash(dims=(8, 8, 8, 8), workers: int = 4,
                 reps: int = 15) -> BenchRecord:
    """Repeated Wilson-Dslash: engine off vs engine on (hot, tiled).

    The headline engine benchmark: the engine-off measurement runs the
    exact pre-engine code path (``perf.disabled()``), the engine-on
    measurements run the fused+tiled sweep with the cshift plans hot.
    """
    setup_off = dslash_setup("generic256", dims=dims)
    setup_on = dslash_setup("generic256", dims=dims)
    with perf.disabled():
        ref = setup_off.run().data.copy()
        t_off = _median_wall(setup_off.run, reps)
    with perf.configured(enabled=True, workers=1):
        got_serial = setup_on.run().data.copy()
        t_serial = _median_wall(setup_on.run, reps)
    with perf.configured(enabled=True, workers=workers):
        got_tiled = setup_on.run().data.copy()
        t_tiled = _median_wall(setup_on.run, reps)
    rec = BenchRecord(name="dslash", wall_seconds=t_off + t_serial + t_tiled)
    rec.metric("speedup_hot_serial", round(t_off / t_serial, 3), "min")
    rec.metric("speedup_hot_workers", round(t_off / t_tiled, 3), "min")
    rec.metric("bit_identical_serial",
               bool(np.array_equal(ref, got_serial)), "exact")
    rec.metric("bit_identical_workers",
               bool(np.array_equal(ref, got_tiled)), "exact")
    rec.metric("flops_per_site", setup_on.dirac.flops_per_site(), "exact")
    rec.info.update({
        "dims": list(dims), "workers": workers, "reps": reps,
        "wall_engine_off": t_off, "wall_hot_serial": t_serial,
        "wall_hot_workers": t_tiled,
        "ops_per_site": setup_on.dirac.flops_per_site(),
        "gflops_engine_off": setup_on.flops / t_off / 1e9,
        "gflops_hot_workers": setup_on.flops / t_tiled / 1e9,
    })
    return rec


def bench_codegen(dims=(8, 8, 8, 8), reps: int = 15) -> BenchRecord:
    """Compiled (codegen) dslash vs the layered reference.

    The acceptance bench for the codegen backend: the generated,
    exec-compiled kernel must beat the layered per-op path (min-gated
    speedup) while staying bit-identical (exact-gated), and a warm
    cache hit — one memo lookup — must cost less than a single layered
    dslash call (exact-gated boolean; the cold-compile wall rides
    along as info).
    """
    from repro.codegen import clear_codegen_cache, kernel_for
    from repro.telemetry.metrics import registry

    setup_off = dslash_setup("generic256", dims=dims)
    setup_on = dslash_setup("generic256", dims=dims)
    with perf.disabled():
        ref = setup_off.run().data.copy()
        t_layered = _median_wall(setup_off.run, reps)
    clear_codegen_cache()
    with perf.configured(enabled=True, workers=1, codegen="memory"):
        t0 = time.perf_counter()
        got = setup_on.run().data.copy()  # pays the cold compile
        t_cold = time.perf_counter() - t0
        t_hot = _median_wall(setup_on.run, reps)
        with perf.configured(fused=True, codegen="off"):
            t_fused = _median_wall(setup_on.run, reps)
    # Warm-hit dispatch cost: the per-call cache lookup the compiled
    # path pays that the fused path does not.
    grid = setup_on.grid
    kernel_for("dhop", grid.ndim, grid.dtype, "memory")
    n_lookups = 200
    t0 = time.perf_counter()
    for _ in range(n_lookups):
        kernel_for("dhop", grid.ndim, grid.dtype, "memory")
    t_lookup = (time.perf_counter() - t0) / n_lookups
    snap = registry().snapshot()
    rec = BenchRecord(name="codegen",
                      wall_seconds=t_layered + t_cold + t_hot)
    rec.metric("speedup_vs_layered", round(t_layered / t_hot, 3), "min")
    rec.metric("bit_identical", bool(np.array_equal(ref, got)), "exact")
    rec.metric("warm_hit_below_one_layered_call",
               bool(t_lookup < t_layered), "exact")
    rec.metric("compiles", int(snap.get("codegen.compile", 0)), "max")
    rec.info.update({
        "dims": list(dims), "reps": reps,
        "wall_layered": t_layered,
        "wall_cold_first_call": t_cold,
        "wall_hot": t_hot,
        "wall_fused_reference": t_fused,
        "speedup_vs_fused": round(t_fused / t_hot, 3),
        "warm_lookup_seconds": t_lookup,
        "cold_over_warm": round(t_cold / t_hot, 3),
        "cache_hits": int(snap.get("codegen.hit", 0)),
        "cache_misses": int(snap.get("codegen.miss", 0)),
    })
    return rec


def bench_cg(dims=(4, 4, 4, 4), tol: float = 1e-7,
             workers: int = 4) -> BenchRecord:
    """CG on the normal equations, engine on, vs the engine-off
    solution (must be bit-identical, same iteration count)."""
    def solve():
        be = get_backend("generic256")
        grid = GridCartesian(list(dims), be)
        dirac = WilsonDirac(random_gauge(grid, seed=11), mass=0.3)
        rhs = dirac.apply_dagger(random_spinor(grid, seed=5))
        return conjugate_gradient(dirac.mdag_m, rhs, tol=tol, max_iter=500)

    with perf.disabled():
        ref = solve()
    with perf.configured(enabled=True, workers=workers):
        t0 = time.perf_counter()
        res = solve()
        wall = time.perf_counter() - t0
    rec = BenchRecord(name="cg", wall_seconds=wall)
    rec.metric("converged", bool(res.converged), "exact")
    rec.metric("iterations", int(res.iterations), "exact")
    rec.metric("bit_identical",
               bool(np.array_equal(ref.x.data, res.x.data)), "exact")
    rec.info.update({"dims": list(dims), "tol": tol,
                     "residual": float(res.residual)})
    return rec


def bench_halo(dims=(4, 4, 4, 4), mpi=(2, 1, 1, 1)) -> BenchRecord:
    """Distributed dhop with halo exchange vs the single-rank operator
    (identical gather, pinned message/byte counts)."""
    be = get_backend("generic256")
    grid = GridCartesian(list(dims), be)
    links = random_gauge(grid, seed=11)
    psi = random_spinor(grid, seed=7)
    with perf.configured(enabled=True):
        want = WilsonDirac(links).dhop(psi).to_canonical()
        dlinks = distribute_gauge(links, list(dims), be, list(mpi))
        w = DistributedWilson(dlinks, mass=0.1)
        dpsi = DistributedLattice(list(dims), be, list(mpi),
                                  (4, 3)).scatter(psi.to_canonical())
        t0 = time.perf_counter()
        got = w.dhop(dpsi).gather()
        wall = time.perf_counter() - t0
    rec = BenchRecord(name="halo", wall_seconds=wall)
    rec.metric("gather_identical", bool(np.array_equal(want, got)), "exact")
    rec.metric("messages", int(dpsi.stats.messages), "exact")
    rec.metric("bytes_sent", int(dpsi.stats.bytes_sent), "exact")
    rec.info.update({"dims": list(dims), "mpi": list(mpi)})
    return rec


def bench_overlap_dslash(dims=(4, 4, 4, 4), mpi=(2, 1, 1, 1),
                         latency_s: float = 1e-3,
                         reps: int = 9) -> BenchRecord:
    """Distributed dhop under the simulated-latency comms model:
    ordered serial exchange vs the overlap engine.

    The ordered path pays every message's latency on the critical path
    (post, then immediately wait, 2·ndim·nranks times); the overlap
    engine posts everything up front and hides the latency behind
    interior compute.  Bit-identity of the two outputs is exact-gated;
    the speedup is min-gated (the acceptance floor is 1.15x)."""
    be = get_backend("generic256")
    grid = GridCartesian(list(dims), be)
    links = random_gauge(grid, seed=11)
    psi = random_spinor(grid, seed=7)
    model = LatencyModel(latency_s=latency_s)
    dlinks = distribute_gauge(links, list(dims), be, list(mpi))
    w = DistributedWilson(dlinks, mass=0.1)
    dpsi = DistributedLattice(list(dims), be, list(mpi), (4, 3),
                              latency=model).scatter(psi.to_canonical())
    reset_all_comms()
    with perf.configured(enabled=True, overlap_comms=False):
        ordered = w.dhop(dpsi).gather()
        t_ordered = _median_wall(lambda: w.dhop(dpsi), reps)
    wait_ordered = dpsi.comms_queue.wait_seconds
    reset_all_comms()
    with perf.configured(enabled=True, overlap_comms=True):
        overlapped = w.dhop(dpsi).gather()
        t_overlap = _median_wall(lambda: w.dhop(dpsi), reps)
    wait_overlap = dpsi.comms_queue.wait_seconds
    max_in_flight = dpsi.comms_queue.max_in_flight
    reset_all_comms()
    rec = BenchRecord(name="overlap_dslash",
                      wall_seconds=t_ordered + t_overlap)
    rec.metric("speedup_overlap", round(t_ordered / t_overlap, 3), "min")
    rec.metric("bit_identical",
               bool(np.array_equal(ordered, overlapped)), "exact")
    rec.metric("max_in_flight", int(max_in_flight), "info")
    rec.info.update({
        "dims": list(dims), "mpi": list(mpi), "latency_s": latency_s,
        "reps": reps, "wall_ordered": t_ordered, "wall_overlap": t_overlap,
        "wait_seconds_ordered_total": wait_ordered,
        "wait_seconds_overlap_total": wait_overlap,
    })
    return rec


def bench_halo_messages(dims=(4, 4, 4, 4), mpi=(2, 1, 1, 1),
                        nrhs: int = 4, reps: int = 5) -> BenchRecord:
    """Halo-traffic amortisation of the multi-RHS batch: one batched
    dhop over ``nrhs`` right-hand sides must issue exactly the halo
    messages of a single-RHS dhop (ratio 1.0, exact-gated — the
    counters are deterministic), and beat the ``nrhs``-iteration loop
    in wall time (info until a baseline lands)."""
    be = get_backend("generic256")
    grid = GridCartesian(list(dims), be)
    links = random_gauge(grid, seed=11)
    dlinks = distribute_gauge(links, list(dims), be, list(mpi))
    w = DistributedWilson(dlinks, mass=0.1)
    singles = [
        DistributedLattice(list(dims), be, list(mpi), (4, 3)).scatter(
            random_spinor(grid, seed=20 + j).to_canonical())
        for j in range(nrhs)
    ]
    batch = stack_rhs(singles)
    with perf.configured(enabled=True):
        singles[0].stats.reset()
        w.dhop(singles[0])
        m_single = singles[0].stats.messages
        b_single = singles[0].stats.bytes_sent
        batch.stats.reset()
        w.dhop(batch)
        m_batch = batch.stats.messages
        b_batch = batch.stats.bytes_sent

        def loop():
            for f in singles:
                w.dhop(f)

        t_loop = _median_wall(loop, reps)
        t_batch = _median_wall(lambda: w.dhop(batch), reps)
    reset_all_comms()
    rec = BenchRecord(name="halo_messages", wall_seconds=t_loop + t_batch)
    rec.metric("messages_single", int(m_single), "exact")
    rec.metric("message_ratio_batch", round(m_batch / m_single, 4), "exact")
    rec.metric("batch_vs_loop_speedup", round(t_loop / t_batch, 3), "info")
    rec.metric("bytes_ratio_batch", round(b_batch / b_single, 4), "info")
    rec.info.update({
        "dims": list(dims), "mpi": list(mpi), "nrhs": nrhs,
        "messages_batch": int(m_batch), "bytes_single": int(b_single),
        "bytes_batch": int(b_batch), "wall_loop": t_loop,
        "wall_batch": t_batch,
    })
    return rec


def bench_transport(dims=(8, 8, 8, 8), mpi=(4, 1, 1, 1),
                    reps: int = 5) -> BenchRecord:
    """The shared-memory rank runtime vs the in-process reference.

    Parity is exact-gated: the shmem dhop must be bit-identical to the
    in-process sweep and issue exactly its halo messages — the wire is
    real but the protocol is the same.  The wall-clock ratios (shmem
    vs in-process, and 4 rank workers vs 1) are info-gated: they are
    machine-dependent — real parallel speedup needs real cores, and CI
    runners vary — so ``cpu_count`` rides along in the record and a
    baseline should be promoted from the target machine before
    tightening either gate to ``min``.  Teardown is exact-gated too:
    after the bench's reset no shared-memory segment may survive."""
    import repro.engine as engine
    from repro.grid.comms.shmem import live_segments, wire_bytes_for

    be = get_backend("generic256")
    grid = GridCartesian(list(dims), be)
    links = random_gauge(grid, seed=11)
    psi = random_spinor(grid, seed=7)
    dlinks = distribute_gauge(links, list(dims), be, list(mpi))
    w = DistributedWilson(dlinks, mass=0.1)
    dpsi = DistributedLattice(list(dims), be, list(mpi),
                              (4, 3)).scatter(psi.to_canonical())
    solo_links = distribute_gauge(links, list(dims), be, [1, 1, 1, 1])
    w1 = DistributedWilson(solo_links, mass=0.1)
    dpsi1 = DistributedLattice(list(dims), be, [1, 1, 1, 1],
                               (4, 3)).scatter(psi.to_canonical())
    with perf.configured(enabled=True):
        ref = w.dhop(dpsi).gather()
        m_ref = dpsi.stats.messages
        t_inproc = _median_wall(lambda: w.dhop(dpsi), reps)
        with engine.scope(transport="shmem"):
            dpsi.stats.reset()
            got = w.dhop(dpsi).gather()
            m_shm = dpsi.stats.messages
            t_shm = _median_wall(lambda: w.dhop(dpsi), reps)
            w1.dhop(dpsi1)  # start the 1-rank runtime off the clock
            t_shm_1rank = _median_wall(lambda: w1.dhop(dpsi1), reps)
    wire_bytes = wire_bytes_for(dpsi)
    engine.reset_all()
    rec = BenchRecord(name="transport", wall_seconds=t_inproc + t_shm)
    rec.metric("bit_identical", bool(np.array_equal(ref, got)), "exact")
    rec.metric("message_ratio_shmem",
               round(m_shm / m_ref, 4) if m_ref else 1.0, "exact")
    rec.metric("shmem_vs_inprocess_speedup",
               round(t_inproc / t_shm, 3), "info")
    rec.metric("shmem_4rank_vs_1rank_speedup",
               round(t_shm_1rank / t_shm, 3), "info")
    rec.metric("segments_after_reset", len(live_segments()), "exact")
    rec.info.update({
        "dims": list(dims), "mpi": list(mpi), "reps": reps,
        "cpu_count": os.cpu_count(),
        "wall_inprocess": t_inproc, "wall_shmem": t_shm,
        "wall_shmem_1rank": t_shm_1rank,
        "wire_bytes_per_sweep": int(wire_bytes),
        "messages_per_sweep": int(m_shm),
        "promote_note": (
            "speedup metrics stay info-gated until a baseline is "
            "promoted from a machine with enough cores for the rank "
            "workers (cpu_count above)"
        ),
    })
    return rec


def bench_block_cg(dims=(4, 4, 4, 4), nrhs: int = 4, tol: float = 1e-7,
                   max_iter: int = 500) -> BenchRecord:
    """Block (batched multi-RHS) CG vs the per-RHS solve loop.

    Both run engine-on over the same normal-equations systems; the
    block solver issues one batched operator application per iteration
    for the whole batch.  Equivalence to the per-RHS solutions and the
    wall-time saving are recorded (info until a baseline lands)."""
    be = get_backend("generic256")
    grid = GridCartesian(list(dims), be)
    dirac = WilsonDirac(random_gauge(grid, seed=11), mass=0.3)
    bs = [random_spinor(grid, seed=30 + j) for j in range(nrhs)]
    rhss = [dirac.apply_dagger(b) for b in bs]
    with perf.configured(enabled=True):
        t0 = time.perf_counter()
        solos = [conjugate_gradient(dirac.mdag_m, r, tol=tol,
                                    max_iter=max_iter) for r in rhss]
        t_loop = time.perf_counter() - t0
        batch = stack_rhs(rhss)
        t0 = time.perf_counter()
        res = batched_conjugate_gradient(dirac.mdag_m, batch, tol=tol,
                                         max_iter=max_iter)
        t_batch = time.perf_counter() - t0
    cols = split_rhs(res.x)
    max_diff = max(
        (c - s.x).norm2() ** 0.5 / max(s.x.norm2() ** 0.5, 1e-300)
        for c, s in zip(cols, solos)
    )
    rec = BenchRecord(name="block_cg", wall_seconds=t_loop + t_batch)
    rec.metric("all_converged",
               bool(res.converged and all(s.converged for s in solos)),
               "info")
    rec.metric("batched_applications", int(res.iterations), "info")
    rec.metric("loop_applications",
               int(sum(s.iterations for s in solos)), "info")
    rec.metric("batch_vs_loop_speedup", round(t_loop / t_batch, 3), "info")
    rec.info.update({
        "dims": list(dims), "nrhs": nrhs, "tol": tol,
        "max_rel_diff_vs_solo": float(max_diff),
        "col_iterations": list(res.col_iterations),
        "wall_loop": t_loop, "wall_batch": t_batch,
    })
    return rec


def bench_campaign(vls: Sequence[int] = (256,)) -> BenchRecord:
    """The default fault-injection campaign (smoke: one VL).

    Seeded, so the outcome matrix is deterministic and exactly gated:
    zero silent corruptions with resilience on, a fixed number of
    detections/recoveries, and at least one silent corruption with
    resilience off (proving the schedule has teeth).
    """
    from repro.resilience.campaign import run_default_campaign

    t0 = time.perf_counter()
    armed = run_default_campaign(seed=0, resilient=True, vls=tuple(vls))
    exposed = run_default_campaign(seed=0, resilient=False, vls=tuple(vls))
    wall = time.perf_counter() - t0
    rec = BenchRecord(name="campaign", wall_seconds=wall)
    counts = armed.counts()
    rec.metric("silent_corruptions_armed",
               int(armed.silent_corruptions), "exact")
    rec.metric("recovered_armed", int(counts["recovered"]), "exact")
    rec.metric("detected_armed", int(counts["detected"]), "exact")
    rec.metric("cells", int(len(armed.cells)), "exact")
    rec.metric("silent_corruptions_exposed",
               int(exposed.silent_corruptions), "min")
    rec.info.update({"vls": list(vls),
                     "armed_counts": counts,
                     "exposed_counts": exposed.counts()})
    return rec


def bench_supervisor(dims=(4, 4, 4, 4), tol: float = 1e-8,
                     max_iter: int = 200) -> BenchRecord:
    """The supervised-solve envelope: pass-through and kill/resume.

    Two cells.  No-fault: ``supervised_solve`` must converge in one
    attempt on rung zero with a result bit-identical to the direct
    ``solve_fermion`` call (exact-gated; the wall-time ratio is info —
    ``bench_supervisor_overhead.py`` gates it properly with
    interleaved minima).  Kill/resume: a ``KillAtIteration`` crash
    against a durable checkpoint store must resume from a saved
    iterate, and the post-crash attempt must need strictly fewer
    iterations than the cold solve (exact-gated booleans — the whole
    point of durability is never starting over).
    """
    import tempfile

    from repro.engine.solve import solve_fermion
    from repro.resilience.checkpoint import CheckpointStore
    from repro.resilience.inject import FaultCampaign, KillAtIteration
    from repro.resilience.supervisor import supervised_solve

    be = get_backend("generic256")
    grid = GridCartesian(list(dims), be)
    w = WilsonDirac(random_gauge(grid, seed=11), mass=0.1)
    b = random_spinor(grid, seed=5)
    kw = {"method": "cg", "ft": True, "tol": tol, "max_iter": max_iter}

    t0 = time.perf_counter()
    ref = solve_fermion(w, b, **kw)
    t_direct = time.perf_counter() - t0
    t0 = time.perf_counter()
    sup = supervised_solve(w, b, **kw)
    t_sup = time.perf_counter() - t0

    kill_at = max(2, int(ref.iterations * 0.6))
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        campaign = FaultCampaign(seed=0, name="bench-supervisor")
        kill = KillAtIteration(campaign, kill_at)
        resumed = supervised_solve(
            w, b, store=CheckpointStore(tmp), recompute_interval=3,
            campaign=campaign,
            on_checkpoint=lambda it, x, r: kill.check(it), **kw)
    t_resume = time.perf_counter() - t0

    rec = BenchRecord(name="supervisor",
                      wall_seconds=t_direct + t_sup + t_resume)
    rec.metric("bit_identical",
               bool(np.array_equal(ref.x.data, sup.result.x.data)),
               "exact")
    rec.metric("attempts_no_fault", int(len(sup.attempts)), "exact")
    rec.metric("resume_recovered", bool(resumed.converged), "exact")
    rec.metric("resumed_from_checkpoint",
               bool(resumed.attempts[-1].resumed_from is not None),
               "exact")
    rec.metric("resume_beats_cold_restart",
               bool(resumed.attempts[-1].iterations < ref.iterations),
               "exact")
    rec.metric("envelope_wall_ratio",
               round(t_sup / t_direct, 3), "info")
    rec.info.update({
        "dims": list(dims), "tol": tol,
        "cold_iterations": int(ref.iterations),
        "kill_at": kill_at,
        "resumed_from": resumed.attempts[-1].resumed_from,
        "resume_attempt_iterations": int(resumed.attempts[-1].iterations),
        "attempt_outcomes": [a.outcome for a in resumed.attempts],
        "wall_direct": t_direct, "wall_supervised": t_sup,
    })
    return rec


def bench_scenarios(seed: int = 0, max_cells: int = 12) -> BenchRecord:
    """A pinned slice of the scenario matrix (DESIGN §13).

    Runs the first ``max_cells`` fault-free and disk-fault cells of
    the seed-0 pairwise sample — the deterministic core of the CI
    ``scenario-matrix`` job — and gates on the machine-independent
    quantities: cell/outcome counts (exact: the sample is a pure
    function of (spec, seed)) and zero silent corruptions.  The
    memory/comms fault cells are excluded here on purpose: their
    outcome texture is the full matrix job's concern; this bench pins
    the bit-identity core and tracks its wall cost.
    """
    from repro.scenarios.defaults import default_spec
    from repro.scenarios.runner import run_cases
    from repro.scenarios.sampler import filter_cases, pairwise_sample

    spec = default_spec()
    cases = filter_cases(pairwise_sample(spec, seed=seed),
                         "!fault=memory,!fault=comms")[:max_cells]
    t0 = time.perf_counter()
    matrix = run_cases(spec, cases, mode="bench", seed=seed)
    wall = time.perf_counter() - t0
    counts = matrix.counts()
    hashed = sum(1 for c in matrix.cells.values() if c.hash)
    rec = BenchRecord(name="scenarios", wall_seconds=wall)
    rec.metric("cells", len(matrix.cells), "exact")
    rec.metric("executed", matrix.executed, "exact")
    rec.metric("outcome_pass", counts["pass"], "exact")
    rec.metric("outcome_recovered", counts["recovered"], "exact")
    rec.metric("silent_corruptions", counts["fail"], "exact")
    rec.metric("bit_identity_hashed", hashed, "exact")
    rec.info.update({"seed": seed, "max_cells": max_cells,
                     "counts": counts,
                     "seconds_per_cell": round(
                         wall / max(1, matrix.executed), 4)})
    return rec


def bench_trace_cache(vls: Sequence[int] = (256, 512), n: int = 257,
                      hot_reps: int = 5) -> BenchRecord:
    """Kernel trace caching: cold compile+decode vs hot replay.

    Runs a pinned kernel set across VLs cold (every (kernel, VL) a
    miss), then replays hot; gates on hit rates, retired-instruction
    counts (machine-independent) and hot/cold output identity.
    """
    kernels = [
        (ir.mult_real_kernel(), False),
        (ir.mult_cplx_kernel(), False),
        (ir.mult_cplx_kernel(), True),
        (ir.axpy_kernel(0.5 - 0.25j), False),
    ]
    rng = np.random.default_rng(42)

    def args_for(kernel):
        out = []
        for _ in kernel.inputs:
            a = rng.normal(size=n)
            if kernel.is_complex:
                a = a + 1j * rng.normal(size=n)
            out.append(a)
        return out

    arrays = [args_for(k) for k, _ in kernels]
    clear_cache()
    reset_counters()
    hot_vl = vls[0]
    with perf.configured(enabled=True):
        # Cold: every (kernel, VL) lowers, assembles and decodes.
        cold_outs, retired = {}, 0
        t0 = time.perf_counter()
        for i, ((kernel, cisa), arrs) in enumerate(zip(kernels, arrays)):
            for vl in vls:
                res = cached_run_kernel(kernel, arrs, vl, complex_isa=cisa)
                cold_outs[(i, vl)] = res.output
                retired += res.retired
        t_cold = time.perf_counter() - t0
        n_cold = len(kernels) * len(vls)
        # Hot: replay at one VL — after the first (invalidating) pass
        # every run reuses the resolved trace.
        hot_times, hot_outs = [], {}
        for _ in range(hot_reps):
            t0 = time.perf_counter()
            for i, ((kernel, cisa), arrs) in enumerate(zip(kernels,
                                                           arrays)):
                res = cached_run_kernel(kernel, arrs, hot_vl,
                                        complex_isa=cisa)
                hot_outs[(i, hot_vl)] = res.output
            hot_times.append(time.perf_counter() - t0)
        t_hot = sorted(hot_times)[len(hot_times) // 2]
    # Uncached reference: the identical hot sweep through the
    # pre-engine pipeline (vectorize + assemble + decode every call).
    with perf.disabled():
        uncached_times = []
        for _ in range(hot_reps):
            t0 = time.perf_counter()
            for (kernel, cisa), arrs in zip(kernels, arrays):
                cached_run_kernel(kernel, arrs, hot_vl, complex_isa=cisa)
            uncached_times.append(time.perf_counter() - t0)
        t_uncached = sorted(uncached_times)[len(uncached_times) // 2]
    c = counters()
    identical = all(np.array_equal(cold_outs[key], out)
                    for key, out in hot_outs.items())
    rec = BenchRecord(name="trace_cache", wall_seconds=t_cold + sum(hot_times))
    rec.metric("hot_cold_identical", bool(identical), "exact")
    rec.metric("retired_cold_sweep", int(retired), "max")
    rec.metric("trace_hit_rate", round(c.trace_hit_rate(), 4), "min")
    rec.metric("program_hit_rate", round(c.program_hit_rate(), 4), "min")
    rec.metric("trace_invalidations", int(c.trace_invalidations), "max")
    rec.metric("speedup_hot_replay", round(t_uncached / t_hot, 3), "min")
    rec.info.update({"vls": list(vls), "hot_vl": hot_vl, "n": n,
                     "hot_reps": hot_reps, "cold_runs": n_cold,
                     "cache_sizes": trace_cache().sizes(),
                     "wall_cold": t_cold, "wall_hot_median": t_hot,
                     "wall_uncached_median": t_uncached})
    return rec


# ======================================================================
# Suite driver + report I/O + comparison
# ======================================================================

def run_suite(full: bool = False, workers: int = 4,
              vls: Optional[Sequence[int]] = None,
              overlap: bool = True,
              codegen: str = "off",
              span_sink: Optional[list] = None) -> dict:
    """Run the pinned suite; returns the report as a plain dict.

    ``full`` widens the campaign/trace-cache VL sweeps and the dslash
    lattice (the nightly configuration); the default is the quick CI
    gate.  ``vls`` overrides the campaign VL set.  ``overlap=False``
    runs the whole suite with the comms-overlap engine off (the
    nightly matrix exercises both), except ``bench_overlap_dslash``
    which toggles it internally by design.  ``codegen`` runs the
    whole suite under that compiled-kernel mode (nightly runs both
    off and memory; benches that pin their own mode — ``codegen``
    itself — are unaffected).  Suite-level ``codegen`` changes which
    body the engine-on measurements time, so gate such runs only
    against a baseline recorded the same way.

    Every benchmark starts from a clean slate: perf counters, live
    comms stats and any in-flight async halos are reset between
    entries so one bench's traffic can never leak into the next
    record's counters.  Because that per-bench ``reset_all()`` also
    clears the telemetry trace buffer, a caller recording spans passes
    ``span_sink`` (a list): each bench's spans are drained into it
    *before* the next reset, so an instrumented suite run keeps its
    full trace (``benchmarks/bench_regression.py --telemetry`` uses
    this to write the JSONL/Chrome artifacts).
    """
    campaign_vls = tuple(vls) if vls else ((256, 1024) if full else (256,))
    cache_vls = (128, 256, 512) if full else (256, 512)
    dims = (8, 8, 8, 8)
    reps = 25 if full else 15
    benches = [
        lambda: bench_dslash(dims=dims, workers=workers, reps=reps),
        lambda: bench_codegen(dims=dims, reps=reps),
        lambda: bench_cg(workers=workers),
        bench_halo,
        bench_overlap_dslash,
        bench_halo_messages,
        bench_transport,
        bench_block_cg,
        lambda: bench_campaign(vls=campaign_vls),
        bench_supervisor,
        lambda: bench_trace_cache(vls=cache_vls),
        bench_scenarios,
    ]
    from repro.engine.reset import reset_all

    from repro.telemetry import drain_spans

    records = []
    with perf.configured(overlap_comms=overlap, codegen=codegen):
        for bench in benches:
            # One clean slate per bench: counters, comms state, sticky
            # degradations and every cache (trace, kernel-plan, cshift,
            # dist halo memos) via the engine's composed reset.
            reset_all()
            records.append(bench())
            if span_sink is not None:
                # Rescue this bench's spans before the next reset_all()
                # clears the trace buffer.
                span_sink.extend(drain_spans())
    report = {
        "schema": SCHEMA_VERSION,
        "suite": "full" if full else "quick",
        "overlap": overlap,
        "codegen": codegen,
        "workers": workers,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "benchmarks": {
            r.name: {
                "wall_seconds": round(r.wall_seconds, 6),
                "metrics": {k: {"value": m.value, "gate": m.gate}
                            for k, m in r.metrics.items()},
                "info": _jsonable(r.info),
            }
            for r in records
        },
        "counters": counters().as_dict(),
    }
    return report


def _jsonable(obj):
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare_reports(current: dict, baseline: dict,
                    tolerance: float = 0.25) -> list:
    """Gate ``current`` against ``baseline``; returns failure strings.

    Only metrics present in the baseline are gated (new metrics in
    ``current`` ride along ungated until the baseline is refreshed);
    a benchmark or metric missing from ``current`` is itself a
    failure.  Wall times are never gated.
    """
    failures = []
    for bname, bench in baseline.get("benchmarks", {}).items():
        cur_bench = current.get("benchmarks", {}).get(bname)
        if cur_bench is None:
            failures.append(f"{bname}: benchmark missing from current run")
            continue
        for mname, spec in bench.get("metrics", {}).items():
            gate = spec.get("gate", "info")
            if gate == "info":
                continue
            cur_spec = cur_bench.get("metrics", {}).get(mname)
            if cur_spec is None:
                failures.append(f"{bname}.{mname}: metric missing")
                continue
            base, cur = spec["value"], cur_spec["value"]
            if gate == "exact":
                if cur != base:
                    failures.append(
                        f"{bname}.{mname}: {cur!r} != baseline {base!r}")
            elif gate == "min":
                floor = base * (1.0 - tolerance)
                if cur < floor:
                    failures.append(
                        f"{bname}.{mname}: {cur} < {floor:.4g} "
                        f"(baseline {base}, tolerance {tolerance:.0%})")
            elif gate == "max":
                ceil = base * (1.0 + tolerance)
                if cur > ceil:
                    failures.append(
                        f"{bname}.{mname}: {cur} > {ceil:.4g} "
                        f"(baseline {base}, tolerance {tolerance:.0%})")
    return failures


def format_report(report: dict) -> str:
    """Human-readable summary table of a report."""
    lines = [f"# bench suite: {report.get('suite')} "
             f"(workers={report.get('workers')}, "
             f"python {report.get('python')}, numpy {report.get('numpy')})"]
    for bname, bench in report.get("benchmarks", {}).items():
        lines.append(f"\n{bname}  [{bench['wall_seconds'] * 1e3:.1f} ms]")
        for mname, spec in bench.get("metrics", {}).items():
            lines.append(f"  {mname:<28} {spec['value']!r:>12}  "
                         f"({spec['gate']})")
    return "\n".join(lines)

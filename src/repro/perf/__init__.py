"""The performance engine.

Three layers, mirroring the paper's performance argument (instruction
economy on the complex hot path) in software:

* :mod:`repro.perf.trace_cache` — kernel trace caching: decoded and
  lowered SVE programs are memoized per (kernel, options) and their
  executor traces per (VL, dtype), so repeated ``run_kernel`` calls
  skip assembly, decode and re-lowering entirely.
* :mod:`repro.perf.parallel` + :mod:`repro.perf.fused` — tiled lattice
  sweeps: the Wilson-Dslash sweep is split into per-slice tiles over a
  ``concurrent.futures`` pool with a deterministic reduction order,
  and the per-tile body is a fused project/SU(3)/reconstruct path that
  is bit-identical to the layered reference.
* :mod:`repro.perf.harness` — the benchmark-regression harness CI
  gates on (see ``benchmarks/bench_regression.py``).

The engine is governed by one process-global :class:`PerfConfig`:
``perf.disabled()`` restores the exact pre-engine code paths (that is
what the harness measures the engine against).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.perf.counters import PerfCounters, counters, reset_counters

__all__ = [
    "PerfConfig",
    "PerfCounters",
    "config",
    "configured",
    "counters",
    "disabled",
    "reset_counters",
    "set_enabled",
    "set_overlap_comms",
    "set_workers",
]


@dataclass
class PerfConfig:
    """Process-global switches for the performance engine.

    ``enabled`` gates every engine path at once — caches, fusion and
    tiling; with it off, the original (pre-engine) code runs
    unchanged.  ``workers`` is the tile pool width for lattice sweeps
    (1 = serial).  ``tile_min_sites`` keeps tiny lattices serial where
    pool dispatch would cost more than it saves.  ``overlap_comms``
    lets the distributed Wilson operator hide halo exchange behind
    interior compute (:mod:`repro.grid.overlap`); it only takes effect
    when ``enabled`` is also set, so ``disabled()`` restores the
    ordered serial exchange.
    """

    enabled: bool = True
    workers: int = 1
    tile_min_sites: int = 128
    overlap_comms: bool = True


_CONFIG = PerfConfig()


def config() -> PerfConfig:
    """The live engine configuration (mutate via the setters below)."""
    return _CONFIG


def set_enabled(flag: bool) -> None:
    _CONFIG.enabled = bool(flag)


def set_workers(n: int) -> None:
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    _CONFIG.workers = int(n)


def set_overlap_comms(flag: bool) -> None:
    _CONFIG.overlap_comms = bool(flag)


@contextmanager
def configured(enabled=None, workers=None, tile_min_sites=None,
               overlap_comms=None):
    """Temporarily override engine settings (restored on exit)."""
    old = (_CONFIG.enabled, _CONFIG.workers, _CONFIG.tile_min_sites,
           _CONFIG.overlap_comms)
    try:
        if enabled is not None:
            _CONFIG.enabled = bool(enabled)
        if workers is not None:
            set_workers(workers)
        if tile_min_sites is not None:
            _CONFIG.tile_min_sites = int(tile_min_sites)
        if overlap_comms is not None:
            _CONFIG.overlap_comms = bool(overlap_comms)
        yield _CONFIG
    finally:
        (_CONFIG.enabled, _CONFIG.workers, _CONFIG.tile_min_sites,
         _CONFIG.overlap_comms) = old


def disabled():
    """The engine-off reference configuration (pre-engine code paths)."""
    return configured(enabled=False, workers=1)

"""The performance engine.

Three layers, mirroring the paper's performance argument (instruction
economy on the complex hot path) in software:

* :mod:`repro.perf.trace_cache` — kernel trace caching: decoded and
  lowered SVE programs are memoized per (kernel, options) and their
  executor traces per (VL, dtype), so repeated ``run_kernel`` calls
  skip assembly, decode and re-lowering entirely.
* :mod:`repro.perf.parallel` + :mod:`repro.perf.fused` — tiled lattice
  sweeps: the Wilson-Dslash sweep is split into per-slice tiles over a
  ``concurrent.futures`` pool with a deterministic reduction order,
  and the per-tile body is a fused project/SU(3)/reconstruct path that
  is bit-identical to the layered reference.
* :mod:`repro.perf.harness` — the benchmark-regression harness CI
  gates on (see ``benchmarks/bench_regression.py``).

Since the unified execution engine landed, the knobs live in the
scoped :class:`repro.engine.ExecutionPolicy` — this module is a
*compatibility facade* over it:

* :func:`config` returns a read-only :class:`PerfConfig` snapshot of
  the currently resolved policy;
* :func:`configured` / :func:`disabled` are thin wrappers over
  :func:`repro.engine.scope` (scoped, nestable, thread-isolated);
* the mutating setters (:func:`set_enabled`, :func:`set_workers`,
  :func:`set_overlap_comms`) emit :class:`DeprecationWarning` and
  delegate to :func:`repro.engine.update_base_policy`.

``perf.disabled()`` still restores the exact pre-engine code paths
(that is what the harness measures the engine against).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.engine.policy import (
    current_policy,
    scope as _scope,
    update_base_policy,
    warn_deprecated_setter,
)
from repro.perf.counters import PerfCounters, counters, reset_counters

__all__ = [
    "PerfConfig",
    "PerfCounters",
    "config",
    "configured",
    "counters",
    "disabled",
    "get_counters",
    "reset_counters",
    "set_enabled",
    "set_overlap_comms",
    "set_workers",
]


def get_counters() -> PerfCounters:
    """Deprecated: use :func:`counters` (or ``telemetry.snapshot()``
    for the registry view).  Kept as a shim because the counters now
    live in the telemetry registry and this was the historical
    accessor name some downstream scripts used."""
    warn_deprecated_setter("repro.perf.get_counters",
                           "repro.perf.counters")
    return counters()


@dataclass(frozen=True)
class PerfConfig:
    """A read-only snapshot of the engine fields this facade exposes.

    ``enabled`` gates every engine path at once — caches, fusion and
    tiling; with it off, the original (pre-engine) code runs
    unchanged.  ``workers`` is the tile pool width for lattice sweeps
    (1 = serial).  ``tile_min_sites`` keeps tiny lattices serial where
    pool dispatch would cost more than it saves.  ``overlap_comms``
    lets the distributed Wilson operator hide halo exchange behind
    interior compute (:mod:`repro.grid.overlap`); it only takes effect
    when ``enabled`` is also set, so ``disabled()`` restores the
    ordered serial exchange.

    This used to be *the* mutable process-global configuration; it is
    now derived per call from :func:`repro.engine.current_policy` and
    frozen — mutate via ``engine.scope(...)`` (scoped) or the
    deprecated setters (process-wide).
    """

    enabled: bool = True
    workers: int = 1
    tile_min_sites: int = 128
    overlap_comms: bool = True


def config() -> PerfConfig:
    """The engine configuration in effect here and now (a snapshot of
    the resolved :class:`repro.engine.ExecutionPolicy`)."""
    policy = current_policy()
    return PerfConfig(
        enabled=policy.enabled,
        workers=policy.workers,
        tile_min_sites=policy.tile_min_sites,
        overlap_comms=policy.overlap_comms,
    )


def set_enabled(flag: bool) -> None:
    """Deprecated: use ``engine.scope(enabled=...)`` (scoped) or
    ``engine.update_base_policy(enabled=...)`` (process-wide)."""
    warn_deprecated_setter("repro.perf.set_enabled", "repro.engine.scope(enabled=...)")
    update_base_policy(enabled=bool(flag))


def set_workers(n: int) -> None:
    """Deprecated: use ``engine.scope(workers=...)``."""
    warn_deprecated_setter("repro.perf.set_workers", "repro.engine.scope(workers=...)")
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    update_base_policy(workers=int(n))


def set_overlap_comms(flag: bool) -> None:
    """Deprecated: use ``engine.scope(overlap_comms=...)``."""
    warn_deprecated_setter(
        "repro.perf.set_overlap_comms", "repro.engine.scope(overlap_comms=...)"
    )
    update_base_policy(overlap_comms=bool(flag))


@contextmanager
def configured(enabled=None, workers=None, tile_min_sites=None,
               overlap_comms=None, fused=None, codegen=None):
    """Temporarily override engine settings (restored on exit).

    A thin wrapper over :func:`repro.engine.scope` — nestable and
    thread-isolated, unlike the process-global mutation it performed
    before the engine unification.
    """
    overrides = {}
    if enabled is not None:
        overrides["enabled"] = bool(enabled)
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        overrides["workers"] = int(workers)
    if tile_min_sites is not None:
        overrides["tile_min_sites"] = int(tile_min_sites)
    if overlap_comms is not None:
        overrides["overlap_comms"] = bool(overlap_comms)
    if fused is not None:
        overrides["fused"] = bool(fused)
    if codegen is not None:
        overrides["codegen"] = str(codegen)
    with _scope(**overrides):
        yield config()


def disabled():
    """The engine-off reference configuration (pre-engine code paths)."""
    return configured(enabled=False, workers=1)

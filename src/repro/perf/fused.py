"""Fused, tiled Wilson-Dslash for numpy-semantics backends.

The layered reference path (``grid/wilson.py``) issues one backend
call per tensor element — project, nine ``madd`` per half-spinor SU(3)
multiply, reconstruct, accumulate — each validating its operands and
materialising intermediates.  This module fuses the whole
project/SU(3)/reconstruct chain for one (direction, sign) into a
handful of whole-tile numpy expressions, and tiles the outer-site axis
over the :mod:`repro.perf.parallel` pool.

**Bit-identity contract.**  Every expression below reproduces the
reference accumulation element-for-element:

* the per-element accumulation order is unchanged — colour index ``b``
  ascending inside the SU(3) multiply, then (mu, sign) in sweep order;
* each fused step computes exactly the reference's IEEE operation
  (``acc + u*v``, ``x * dtype(1j)``, …) on the same dtype, since the
  numpy backends' ops are those expressions verbatim
  (:class:`repro.simd.backend.NumpyArithmeticMixin`);
* tiles partition the outer-site axis, and the computation is
  elementwise in outer sites once the neighbour gathers (done
  full-lattice, before tiling) are in hand — so the tile split cannot
  reorder anything.

The path is only taken for backends whose arithmetic is *exactly* the
numpy mixin (``generic``/``fixed``); instruction-counting SVE backends
and resilient proxies keep the layered path, which is also what
``perf.disabled()`` forces.
"""

from __future__ import annotations

import numpy as np

from repro.engine.plan import fused_safe_backend
from repro.engine.policy import current_policy
from repro.grid.lattice import Lattice
from repro.perf.counters import counters
from repro.perf.parallel import run_tiles, tiles_for

#: Spinor tensor shape (mirrors ``repro.grid.wilson.SPINOR``; not
#: imported from there to keep this module import-cycle free).
SPINOR = (4, 3)


def fused_dhop_supported(backend) -> bool:
    """True when ``backend``'s ops are the plain numpy semantics.

    The authoritative check lives in the engine's plan layer
    (:func:`repro.engine.plan.fused_safe_backend`); this alias keeps
    the historical name importable.
    """
    return fused_safe_backend(backend)


def _su3_halfspinor(U: np.ndarray, h: np.ndarray,
                    dagger: bool) -> np.ndarray:
    """``uh_{s,a} = sum_b U[a,b] h_{s,b}`` (or ``conj(U[b,a])``).

    Accumulates with ``b`` ascending — the reference's inner-loop
    order in :func:`repro.grid.tensor.su3_mul_vec` — so every element
    sees the identical IEEE sum ``((0 + t0) + t1) + t2``.
    """
    out = np.zeros_like(h)
    tmp = np.empty_like(h)
    Uc = np.conj(U) if dagger else None
    for b in range(3):
        if dagger:
            u = Uc[:, b, :, :]  # row b of U^T, conjugated
        else:
            u = U[:, :, b, :]  # column b of U
        np.multiply(u[:, None, :, :], h[:, :, b, None, :], out=tmp)
        np.add(out, tmp, out=out)
    return out


def _accumulate_direction(acc: np.ndarray, U: np.ndarray,
                          nbr: np.ndarray, mu: int, sign: int) -> None:
    """Add one hopping-term direction into ``acc`` in place.

    Fuses project -> SU(3) (or adjoint) -> reconstruct for direction
    ``mu`` with projector sign ``sign`` (+1 forward / -1 backward; the
    backward direction uses the adjoint link).  Formula-for-formula
    this is :func:`repro.grid.gamma.project` /
    :func:`~repro.grid.gamma.reconstruct` with the mixin ops inlined;
    the ``out=`` forms change where results land, never how they are
    computed.
    """
    I = nbr.dtype.type(1j)
    NI = nbr.dtype.type(-1j)
    p0, p1, p2, p3 = nbr[:, 0], nbr[:, 1], nbr[:, 2], nbr[:, 3]
    h = np.empty((nbr.shape[0], 2) + nbr.shape[2:], dtype=nbr.dtype)
    h0, h1 = h[:, 0], h[:, 1]
    if mu == 0:
        # h0 = p0 ± p3*i ; h1 = p1 ± p2*i
        np.multiply(p3, I, out=h0)
        np.multiply(p2, I, out=h1)
        op = np.add if sign > 0 else np.subtract
        op(p0, h0, out=h0)
        op(p1, h1, out=h1)
    elif mu == 1:
        # h0 = p0 ∓ p3 ; h1 = p1 ± p2
        if sign > 0:
            np.subtract(p0, p3, out=h0)
            np.add(p1, p2, out=h1)
        else:
            np.add(p0, p3, out=h0)
            np.subtract(p1, p2, out=h1)
    elif mu == 2:
        # h0 = p0 ± p2*i ; h1 = p1 ± p3*(-i)
        np.multiply(p2, I, out=h0)
        np.multiply(p3, NI, out=h1)
        op = np.add if sign > 0 else np.subtract
        op(p0, h0, out=h0)
        op(p1, h1, out=h1)
    elif mu == 3:
        # h0 = p0 ± p2 ; h1 = p1 ± p3
        op = np.add if sign > 0 else np.subtract
        op(p0, p2, out=h0)
        op(p1, p3, out=h1)
    else:
        raise ValueError(f"no direction {mu}")
    uh = _su3_halfspinor(U, h, dagger=sign < 0)
    u0, u1 = uh[:, 0], uh[:, 1]
    a0, a1, a2, a3 = acc[:, 0], acc[:, 1], acc[:, 2], acc[:, 3]
    np.add(a0, u0, out=a0)
    np.add(a1, u1, out=a1)
    t = h0  # the half-spinor buffer is dead: reuse it as scratch
    if mu == 0:
        f = NI if sign > 0 else I
        np.multiply(u1, f, out=t)
        np.add(a2, t, out=a2)
        np.multiply(u0, f, out=t)
        np.add(a3, t, out=a3)
    elif mu == 1:
        # acc2 ± h1, acc3 ∓ h0 (x + (-y) == x - y exactly in IEEE-754)
        if sign > 0:
            np.add(a2, u1, out=a2)
            np.subtract(a3, u0, out=a3)
        else:
            np.subtract(a2, u1, out=a2)
            np.add(a3, u0, out=a3)
    elif mu == 2:
        fa, fb = (NI, I) if sign > 0 else (I, NI)
        np.multiply(u0, fa, out=t)
        np.add(a2, t, out=a2)
        np.multiply(u1, fb, out=t)
        np.add(a3, t, out=a3)
    else:  # mu == 3
        if sign > 0:
            np.add(a2, u0, out=a2)
            np.add(a3, u1, out=a3)
        else:
            np.subtract(a2, u0, out=a2)
            np.subtract(a3, u1, out=a3)


def fused_dhop(dirac, psi: Lattice, plan=None) -> Lattice:
    """The engine's Wilson hopping term (``WilsonDirac.dhop``).

    Gathers every neighbour field first (full lattice, through the
    plan-cached cshift), then sweeps tiles of the outer-site axis
    through the fused accumulation — bit-identical to the layered
    reference, serial or tiled.  A multi-RHS batch (tensor
    ``(nrhs, 4, 3)``) shares the gathers and loops the accumulation
    over column views, so the neighbour indexing is paid once per
    sweep, not once per RHS.

    ``plan`` (a resolved :class:`repro.engine.plan.KernelPlan`) pins
    the tile split to the plan's ``workers``/``tile_min_sites`` and
    feeds its per-stage counters; without one the split falls back to
    the current policy.
    """
    grid = dirac.grid
    ncols = psi.tensor_shape[0] if len(psi.tensor_shape) == 3 else 0
    counters().bump("fused_dhop_calls")
    if ncols:
        counters().bump("batched_dhop_calls")
    out = Lattice(grid, psi.tensor_shape)
    gathers = []
    for mu in range(grid.ndim):
        gathers.append((
            dirac.links[mu].data,
            dirac._cshift(psi, mu, +1).data,
            dirac._links_back[mu].data,
            dirac._cshift(psi, mu, -1).data,
        ))
    if plan is not None:
        plan.stages.bump("gather", 2 * grid.ndim)
    acc = out.data

    def body(sl) -> None:
        a = acc[sl]
        for mu, (u_fwd, psi_fwd, u_bwd, psi_bwd) in enumerate(gathers):
            if ncols:
                for j in range(ncols):
                    _accumulate_direction(a[:, j], u_fwd[sl],
                                          psi_fwd[sl][:, j], mu, +1)
                    _accumulate_direction(a[:, j], u_bwd[sl],
                                          psi_bwd[sl][:, j], mu, -1)
            else:
                _accumulate_direction(a, u_fwd[sl], psi_fwd[sl], mu, +1)
                _accumulate_direction(a, u_bwd[sl], psi_bwd[sl], mu, -1)

    if plan is None:
        tiles = tiles_for(grid.osites)
        run_tiles(body, tiles)
    else:
        tiles = tiles_for(grid.osites, workers=plan.workers,
                          min_sites=plan.tile_min_sites)
        run_tiles(body, tiles, workers=plan.workers)
        plan.stages.bump("compute", len(tiles))
    return out


def fused_dhop_rank(acc: np.ndarray, links_mu: np.ndarray,
                    links_back_mu: np.ndarray, fwd: np.ndarray,
                    bwd: np.ndarray, mu: int, plan=None) -> None:
    """One rank-local (mu, fwd+bwd) accumulation for the distributed
    operator; tiled over the rank's outer sites.

    With the plan's ``codegen`` mode active the body is the generated
    per-direction kernel instead of the interpreted fusion — same
    tiling, bit-identical accumulation."""
    if plan is not None and plan.codegen != "off":
        from repro.codegen import compiled_dhop_rank

        compiled_dhop_rank(acc, links_mu, links_back_mu, fwd, bwd, mu,
                           plan=plan)
        return

    def body(sl) -> None:
        a = acc[sl]
        _accumulate_direction(a, links_mu[sl], fwd[sl], mu, +1)
        _accumulate_direction(a, links_back_mu[sl], bwd[sl], mu, -1)

    if plan is None:
        run_tiles(body, tiles_for(acc.shape[0]))
    else:
        tiles = tiles_for(acc.shape[0], workers=plan.workers,
                          min_sites=plan.tile_min_sites)
        run_tiles(body, tiles, workers=plan.workers)
        plan.stages.bump("compute", len(tiles))


def engine_active(backend) -> bool:
    """Engine fusion resolved on *and* the backend is fused-safe.

    Historical gate kept for compatibility; new code asks the engine
    for a :class:`~repro.engine.plan.KernelPlan` and reads
    ``plan.fused`` instead.
    """
    return current_policy().fused_active and fused_safe_backend(backend)

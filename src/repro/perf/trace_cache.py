"""Kernel trace caching: vectorize/assemble/decode exactly once.

Every pre-engine call site did ``run_kernel(vectorize(kernel), ...)``:
lowering the IR, printing assembly text, re-parsing and re-decoding it
— per invocation.  This module memoizes the whole pipeline:

* **program cache** — per kernel *signature* (structure + codegen
  options), the lowered-and-decoded :class:`Program`.  The IR is first
  canonicalised by :mod:`repro.vectorizer.passes`, so mul+add chains
  reach the FMA-fusing lowering in fusable shape.
* **trace plans** — per (kernel, VL, dtype), the resolved execution
  plan: the shared program plus the :class:`~repro.sve.vl.VL` it runs
  at.  A repeated ``run`` with the same key is a *trace hit* (the
  executor also reuses the handler trace resolved on the program by
  :mod:`repro.sve.machine`); asking for a different VL or dtype
  invalidates the hot trace and rebuilds a plan — results stay
  correct, the counters record the churn.

Caching is gated on the engine policy's ``caches_active`` (``enabled
and caches``): under ``perf.disabled()`` — or ``engine.scope(
caches=False)`` — every entry point falls through to the uncached
pre-engine pipeline, neither consulting nor populating the cache, the
same uniform semantics every other plan cache in the stack follows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.armie.emulator import EmulationResult, run_kernel
from repro.engine.policy import current_policy
from repro.perf.counters import counters
from repro.sve.program import Program
from repro.sve.vl import VL
from repro.vectorizer.autovec import vectorize, vectorize_fixed
from repro.vectorizer.ir import Kernel
from repro.vectorizer.passes import simplify


def kernel_signature(kernel: Kernel, complex_isa: bool = False,
                     use_movprfx: bool = True, fixed: bool = False,
                     optimize: bool = True) -> tuple:
    """A structural cache key for (kernel, codegen options).

    IR nodes are frozen dataclasses, so ``repr(expr)`` is a faithful
    structural fingerprint; two kernels with the same expression tree,
    scalar type and arity share a program regardless of identity.
    """
    return (
        kernel.name,
        kernel.scalar_type,
        len(kernel.inputs),
        repr(kernel.expr),
        bool(complex_isa),
        bool(use_movprfx),
        bool(fixed),
        bool(optimize),
    )


@dataclass
class TracePlan:
    """The resolved per-(kernel, VL, dtype) execution plan."""

    program: Program
    vl: VL
    dtype: str  # the kernel scalar type the plan was built for


class TraceCache:
    """Program + trace-plan store (one process-global instance)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._programs: dict = {}
        self._plans: dict = {}
        self._hot: dict = {}  # sig -> (vl_bits, dtype) of the hot trace

    # -- programs ------------------------------------------------------
    def program(self, kernel: Kernel, complex_isa: bool = False,
                use_movprfx: bool = True, fixed: bool = False,
                optimize: bool = True) -> Program:
        """The lowered+decoded program for ``kernel`` (memoized)."""
        if not current_policy().caches_active:
            return _compile(kernel, complex_isa, use_movprfx, fixed,
                            optimize)
        sig = kernel_signature(kernel, complex_isa, use_movprfx, fixed,
                               optimize)
        with self._lock:
            prog = self._programs.get(sig)
        if prog is not None:
            counters().bump("program_hits")
            return prog
        counters().bump("program_misses")
        prog = _compile(kernel, complex_isa, use_movprfx, fixed, optimize)
        with self._lock:
            self._programs.setdefault(sig, prog)
        return prog

    # -- trace plans ---------------------------------------------------
    def plan(self, kernel: Kernel, vl: Union[VL, int],
             complex_isa: bool = False, use_movprfx: bool = True,
             fixed: bool = False, optimize: bool = True) -> TracePlan:
        """The per-(kernel, VL, dtype) plan; counts hits/invalidations."""
        vl_bits = vl.bits if isinstance(vl, VL) else int(vl)
        sig = kernel_signature(kernel, complex_isa, use_movprfx, fixed,
                               optimize)
        key = (sig, vl_bits, kernel.scalar_type)
        with self._lock:
            plan = self._plans.get(key)
            hot = self._hot.get(sig)
        if plan is not None and hot == (vl_bits, kernel.scalar_type):
            counters().bump("trace_hits")
            return plan
        if hot is not None and hot != (vl_bits, kernel.scalar_type):
            # The kernel's hot trace was resolved for another VL/dtype:
            # it cannot be replayed here and must be rebuilt.
            counters().bump("trace_invalidations")
        counters().bump("trace_misses")
        program = self.program(kernel, complex_isa, use_movprfx, fixed,
                               optimize)
        plan = TracePlan(program=program, vl=VL(vl_bits),
                         dtype=kernel.scalar_type)
        with self._lock:
            self._plans[key] = plan
            self._hot[sig] = (vl_bits, kernel.scalar_type)
        return plan

    # -- maintenance ---------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self._plans.clear()
            self._hot.clear()

    def sizes(self) -> dict:
        with self._lock:
            return {"programs": len(self._programs),
                    "plans": len(self._plans)}


def _compile(kernel: Kernel, complex_isa: bool, use_movprfx: bool,
             fixed: bool, optimize: bool) -> Program:
    if optimize:
        kernel = simplify(kernel).kernel
    if fixed:
        return vectorize_fixed(kernel, complex_isa=complex_isa)
    return vectorize(kernel, complex_isa=complex_isa,
                     use_movprfx=use_movprfx)


_CACHE = TraceCache()


def trace_cache() -> TraceCache:
    """The process-global trace cache."""
    return _CACHE


def clear_cache() -> None:
    _CACHE.clear()


def cached_vectorize(kernel: Kernel, complex_isa: bool = False,
                     use_movprfx: bool = True, fixed: bool = False,
                     optimize: bool = True) -> Program:
    """Drop-in for :func:`repro.vectorizer.autovec.vectorize` that
    memoizes the lowered program (plus the simplifier pass)."""
    return _CACHE.program(kernel, complex_isa=complex_isa,
                          use_movprfx=use_movprfx, fixed=fixed,
                          optimize=optimize)


def cached_run_kernel(
    kernel: Kernel,
    arrays: Sequence[np.ndarray],
    vl: Union[VL, int],
    n: Optional[int] = None,
    complex_isa: bool = False,
    use_movprfx: bool = True,
    fixed: bool = False,
    optimize: bool = True,
    **run_kwargs,
) -> EmulationResult:
    """``run_kernel(vectorize(kernel), ...)`` through the trace cache.

    Identical results to the uncached pipeline (the simplifier is
    IEEE-exact and the executor is deterministic); repeated calls with
    the same (kernel, VL, dtype) skip lowering, assembly, decode and
    handler resolution.
    """
    if not current_policy().caches_active:
        prog = _compile(kernel, complex_isa, use_movprfx, fixed, optimize)
        return run_kernel(prog, kernel, arrays, vl, n=n, **run_kwargs)
    plan = _CACHE.plan(kernel, vl, complex_isa=complex_isa,
                       use_movprfx=use_movprfx, fixed=fixed,
                       optimize=optimize)
    return run_kernel(plan.program, kernel, arrays, plan.vl, n=n,
                      **run_kwargs)

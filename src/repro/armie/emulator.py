"""Run compiled kernels on the SVE machine at a chosen vector length."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.sve.faults import FaultModel
from repro.sve.machine import Machine
from repro.sve.memory import Memory
from repro.sve.ops.cplx import deinterleave_complex, interleave_complex
from repro.sve.program import Program
from repro.sve.tracer import Tracer
from repro.sve.vl import VL
from repro.vectorizer.ir import Kernel


@dataclass
class EmulationResult:
    """Output of one emulated kernel execution."""

    vl: VL
    output: np.ndarray
    retired: int
    histogram: Counter = field(default_factory=Counter)
    faults_fired: dict = field(default_factory=dict)

    def count(self, *mnemonics: str) -> int:
        return sum(self.histogram[m] for m in mnemonics)


def _to_memory_layout(arr: np.ndarray, kernel: Kernel) -> np.ndarray:
    """Convert a numpy array to the kernel's in-memory representation."""
    if kernel.is_complex:
        return interleave_complex(np.asarray(arr), kernel.real_dtype)
    return np.asarray(arr, dtype=kernel.real_dtype)


def run_program(
    program: Program,
    vl: Union[VL, int],
    args: Sequence[int] = (),
    memory: Optional[Memory] = None,
    fault_model: Optional[FaultModel] = None,
    max_steps: int = 10_000_000,
) -> Machine:
    """Run an assembled program at the given VL; returns the machine.

    ``args`` go to x0..x7 (the AAPCS integer argument registers).
    """
    vl = vl if isinstance(vl, VL) else VL(vl)
    m = Machine(vl, memory=memory, tracer=Tracer(), fault_model=fault_model)
    m.call(program, *args, max_steps=max_steps)
    return m


def run_kernel(
    program: Program,
    kernel: Kernel,
    arrays: Sequence[np.ndarray],
    vl: Union[VL, int],
    n: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    max_steps: int = 10_000_000,
    memory: Optional[Memory] = None,
) -> EmulationResult:
    """Execute a vectorized kernel against numpy input arrays.

    Handles the memory marshalling a C test driver would do: inputs are
    placed in simulator memory (complex arrays interleaved), the kernel
    is called with ``(n, in0, in1, ..., out)``, and the output array is
    read back (and de-interleaved for complex kernels).

    ``memory`` substitutes the simulator memory (it must be empty and
    large enough) — resilience campaigns pass a bit-flipping
    :class:`~repro.resilience.inject.FaultyMemory` here.
    """
    vl = vl if isinstance(vl, VL) else VL(vl)
    if len(arrays) != len(kernel.inputs):
        raise ValueError(
            f"kernel {kernel.name!r} takes {len(kernel.inputs)} arrays, "
            f"got {len(arrays)}"
        )
    if n is None:
        n = len(arrays[0]) if arrays else 0
    mem = memory if memory is not None else \
        Memory(size=max(1 << 20, 64 * n * 16 + (1 << 16)))
    addrs = [mem.alloc_array(_to_memory_layout(a, kernel)) for a in arrays]
    out_elems = n * (2 if kernel.is_complex else 1)
    out_addr = mem.alloc(max(out_elems, 1) * kernel.real_dtype.itemsize
                         + vl.bytes)  # slack: inactive lanes never store
    m = Machine(vl, memory=mem, tracer=Tracer(), fault_model=fault_model)
    m.call(program, n, *addrs, out_addr, max_steps=max_steps)
    raw = mem.read_array(out_addr, kernel.real_dtype, out_elems)
    output = deinterleave_complex(raw) if kernel.is_complex else raw
    return EmulationResult(
        vl=vl,
        output=output,
        retired=m.tracer.total,
        histogram=Counter(m.tracer.by_mnemonic),
        faults_fired=dict(fault_model.fired) if fault_model else {},
    )


def sweep_vls(
    program: Program,
    kernel: Kernel,
    arrays: Sequence[np.ndarray],
    vls: Sequence[int] = (128, 256, 512, 1024, 2048),
    **kwargs,
) -> dict[int, EmulationResult]:
    """Run the kernel at several vector lengths — the paper's ArmIE
    methodology ("We tested our examples emulating multiple vector
    lengths")."""
    return {bits: run_kernel(program, kernel, arrays, bits, **kwargs)
            for bits in vls}

"""``python -m repro.armie`` entry point."""

from repro.armie.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""ArmIE-like emulator front-end.

"For verification of the SVE binary code we used the ARM instruction
emulator (ArmIE) 18.1 ... The SVE vector length is supplied to ArmIE as
a command-line parameter.  We tested our examples emulating multiple
vector lengths." (Section IV)

:func:`run_kernel` is the library face (execute a compiled kernel at a
chosen VL against numpy arrays); ``python -m repro.armie`` is the
command-line face (run an ``.s`` file with a ``--vl`` flag, like
``armie -vl``).
"""

from repro.armie.emulator import EmulationResult, run_kernel, run_program, sweep_vls

__all__ = ["EmulationResult", "run_kernel", "run_program", "sweep_vls"]

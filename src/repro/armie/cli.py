"""``repro-armie`` — a command-line front-end shaped like ``armie``.

Usage::

    repro-armie --vl 512 program.s --args 100,4096,8192,12288
    repro-armie --vl 512 program.s --trace

Runs an SVE assembly file at the requested vector length with the
integer arguments placed in x0..x7, then prints x0 and the dynamic
instruction histogram.  ``--faulty-toolchain`` enables the Section V-D
fault model.
"""

from __future__ import annotations

import argparse
import sys

from repro.sve.decoder import assemble
from repro.sve.faults import armclang_18_3
from repro.sve.machine import Machine
from repro.sve.memory import Memory
from repro.sve.tracer import Tracer
from repro.sve.vl import LEGAL_VLS, VL


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-armie",
        description="Functional SVE emulator (ArmIE-alike) for textual "
        "assembly programs.",
    )
    p.add_argument("program", help="path to an SVE assembly (.s) file")
    p.add_argument(
        "--vl", type=int, default=512, choices=LEGAL_VLS, metavar="BITS",
        help="SVE vector length in bits (multiple of 128, up to 2048)",
    )
    p.add_argument(
        "--args", default="",
        help="comma-separated integer arguments for x0..x7",
    )
    p.add_argument(
        "--memory", type=int, default=1 << 22,
        help="simulated memory size in bytes",
    )
    p.add_argument(
        "--max-steps", type=int, default=10_000_000,
        help="instruction budget before aborting",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="print every retired instruction",
    )
    p.add_argument(
        "--faulty-toolchain", action="store_true",
        help="enable the Section V-D toolchain fault model",
    )
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.program) as f:
        program = assemble(f.read())
    vl = VL(args.vl)
    call_args = [int(a, 0) for a in args.args.split(",") if a.strip()]
    tracer = Tracer(record_stream=args.trace)
    machine = Machine(
        vl,
        memory=Memory(args.memory),
        tracer=tracer,
        fault_model=armclang_18_3() if args.faulty_toolchain else None,
    )
    result = machine.call(program, *call_args, max_steps=args.max_steps)
    if args.trace:
        for line in tracer.stream:
            print(line)
    print(f"# vl       : {vl.bits} bits ({vl.lanes(8)} doubles/vector)")
    print(f"# retired  : {tracer.total} instructions")
    print(f"# x0       : {result}")
    print("# histogram:")
    for mnem, n in tracer.by_mnemonic.most_common():
        print(f"#   {mnem:<10} {n}")
    if machine.faults is not None and machine.faults.fired:
        print(f"# faults fired: {machine.faults.fired}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Shared benchmark workload generators.

All workloads are seeded so every bench run measures identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.cartesian import GridCartesian
from repro.grid.random import random_gauge, random_spinor
from repro.grid.wilson import WilsonDirac
from repro.simd import get_backend


def real_arrays(n: int, seed: int = 0) -> tuple:
    """Two random double arrays (the Section IV-A workload)."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=n), rng.normal(size=n)


def complex_arrays(n: int, seed: int = 0) -> tuple:
    """Two random complex-double arrays (Sections IV-B/C/D workload)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    y = rng.normal(size=n) + 1j * rng.normal(size=n)
    return x, y


@dataclass
class DslashSetup:
    """A ready-to-run Wilson dslash workload."""

    grid: GridCartesian
    dirac: WilsonDirac
    psi: object

    def run(self):
        return self.dirac.dhop(self.psi)

    @property
    def flops(self) -> int:
        return self.dirac.flops_per_site() * self.grid.lsites


def dslash_setup(backend_key: str, dims=(4, 4, 4, 4), mass: float = 0.1,
                 seed_gauge: int = 11, seed_spinor: int = 7) -> DslashSetup:
    """Build a Wilson dslash workload on the given backend."""
    backend = get_backend(backend_key)
    grid = GridCartesian(list(dims), backend)
    links = random_gauge(grid, seed=seed_gauge)
    psi = random_spinor(grid, seed=seed_spinor)
    return DslashSetup(grid=grid, dirac=WilsonDirac(links, mass=mass),
                       psi=psi)

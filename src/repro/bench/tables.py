"""Monospace table rendering for benchmark reports.

Benchmarks print the same rows the paper reports (Table I, the
instruction-mix comparisons, the verification matrix); this helper
keeps the output uniform and diff-friendly for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence


class Table:
    """A simple left/right-aligned monospace table."""

    def __init__(self, columns: Sequence[str], title: str = "",
                 align: Optional[Sequence[str]] = None) -> None:
        self.title = title
        self.columns = list(columns)
        self.align = list(align) if align else (
            ["l"] + ["r"] * (len(self.columns) - 1)
        )
        if len(self.align) != len(self.columns):
            raise ValueError("align length must match columns")
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e5 or abs(cell) < 1e-3:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells):
            parts = []
            for cell, w, a in zip(cells, widths, self.align):
                parts.append(cell.ljust(w) if a == "l" else cell.rjust(w))
            return "  ".join(parts)
        out = []
        if self.title:
            out.append(f"== {self.title} ==")
        out.append(line(self.columns))
        out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        for row in self.rows:
            out.append(line(row))
        return "\n".join(out)

    def show(self) -> None:
        print("\n" + self.render() + "\n")

"""Shared benchmark infrastructure: table formatting and workloads."""

from repro.bench.tables import Table
from repro.bench.workloads import (
    complex_arrays,
    dslash_setup,
    real_arrays,
)

__all__ = ["Table", "complex_arrays", "real_arrays", "dslash_setup"]

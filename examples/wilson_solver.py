"""A complete lattice-QCD workflow on the reproduced Grid.

The workloads the paper's introduction motivates (Section II-A): build
a gauge configuration, measure the plaquette, apply the Wilson Dirac
operator of Eq. (1), and solve ``M psi = b`` with Conjugate Gradient —
on several SIMD backends from Table I plus both SVE strategies, with
bit-identical physics asserted throughout.

Usage::

    python examples/wilson_solver.py [lattice_extent]
"""

import sys
import time


from repro.bench.tables import Table
from repro.grid.cartesian import GridCartesian
from repro.grid.checksum import field_checksum
from repro.grid.random import random_gauge, random_spinor
from repro.grid.solver import bicgstab, solve_wilson_cgne
from repro.grid.su3 import max_unitarity_defect, plaquette
from repro.grid.wilson import WilsonDirac
from repro.simd import get_backend

#: numpy-speed backends swept at full lattice size; the SVE backends
#: are lane-accurate simulators and run on a reduced lattice.
NUMPY_BACKENDS = ["sse4", "avx", "avx512", "generic1024"]
SVE_BACKENDS = ["sve256-acle", "sve256-real"]


def main(extent: int = 4) -> None:
    dims = [extent] * 4
    mass = 0.2

    print(f"Lattice {dims}, Wilson mass {mass}\n")

    table = Table(
        ["backend", "lanes", "plaquette", "dslash checksum",
         "CG iters", "|r|/|b|", "dslash ms"],
        title="Wilson workflow across SIMD backends",
        align=["l", "r", "r", "l", "r", "r", "r"],
    )
    checksums = set()
    for key in NUMPY_BACKENDS:
        grid = GridCartesian(dims, get_backend(key))
        links = random_gauge(grid, seed=11)
        assert max_unitarity_defect(links[0]) < 1e-12
        plaq = plaquette(links, grid)
        dirac = WilsonDirac(links, mass=mass)
        psi = random_spinor(grid, seed=7)
        t0 = time.perf_counter()
        hop = dirac.dhop(psi)
        dt = time.perf_counter() - t0
        ck = field_checksum(hop)
        checksums.add((round(plaq, 12), ck))
        res = solve_wilson_cgne(dirac, psi, tol=1e-8, max_iter=500)
        table.add(key, grid.nlanes, plaq, ck, res.iterations,
                  f"{res.residual:.1e}", f"{dt * 1e3:.2f}")
    print(table.render())
    assert len(checksums) == 1, "backends disagree!"
    print("\nAll Table I backends produce identical physics "
          "(one plaquette, one checksum).\n")

    # The SVE backends, lane-accurate through the intrinsics layer.
    sve_dims = [2, 2, 2, 2]
    print(f"SVE backends (simulated, lattice {sve_dims}):")
    sve_table = Table(
        ["backend", "dslash checksum", "fcmla", "fmla+fmls", "tbl"],
        title="Section V-C (FCMLA) vs Section V-E (real arithmetic)",
        align=["l", "l", "r", "r", "r"],
    )
    sve_sums = set()
    for key in SVE_BACKENDS:
        grid = GridCartesian(sve_dims, get_backend(key))
        links = random_gauge(grid, seed=11)
        psi = random_spinor(grid, seed=7)
        hop = WilsonDirac(links, mass=mass).dhop(psi)
        ck = field_checksum(hop)
        sve_sums.add(ck)
        c = grid.backend.instruction_counts()
        sve_table.add(key, ck, c.get("fcmla", 0),
                      c.get("fmla", 0) + c.get("fmls", 0), c.get("tbl", 0))
    print(sve_table.render())
    assert len(sve_sums) == 1
    print("\nSame dslash, two instruction mixes — the Section V-E "
          "trade-off:\nFCMLA-dense vs real-arithmetic-dense, chosen per "
          "silicon.\n")

    # BiCGSTAB as the non-hermitian alternative.
    grid = GridCartesian(dims, get_backend("avx512"))
    dirac = WilsonDirac(random_gauge(grid, seed=11), mass=mass)
    b = random_spinor(grid, seed=7)
    bi = bicgstab(dirac.apply, b, tol=1e-8, max_iter=500)
    print(f"BiCGSTAB on M directly: {bi.iterations} iterations "
          f"(vs CGNE above), residual {bi.residual:.1e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)

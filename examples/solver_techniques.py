"""Solver techniques shoot-out: the optimizations a production port
layers on top of the basic CG of Section II-A.

Solves the same Wilson system four ways and compares operator
applications (the dominant cost — each application is one pass of the
Eq. (1) dslash the SVE port accelerates):

* CGNE on the normal equations (the baseline),
* BiCGSTAB directly on the non-hermitian matrix,
* even-odd (Schur) preconditioned CGNE — half the volume, better
  conditioning,
* mixed-precision defect correction (ref. [3], QUDA) — the Krylov work
  runs in float32 (twice the SIMD lanes), double precision only
  polishes.

Usage::

    python examples/solver_techniques.py
"""

import time

from repro.bench.tables import Table
from repro.grid.cartesian import GridCartesian
from repro.grid.evenodd import SchurWilson
from repro.grid.mixedprec import mixed_precision_cgne
from repro.grid.random import random_gauge, random_spinor
from repro.grid.solver import bicgstab, solve_wilson_cgne
from repro.grid.wilson import WilsonDirac
from repro.simd import get_backend

DIMS = [4, 4, 4, 8]
MASS = 0.15
TOL = 1e-9


def main() -> None:
    grid = GridCartesian(DIMS, get_backend("avx512"))
    dirac = WilsonDirac(random_gauge(grid, seed=11), mass=MASS)
    b = random_spinor(grid, seed=5)
    print(f"Wilson system on {DIMS}, m = {MASS}, tol = {TOL}\n")

    table = Table(
        ["method", "iterations", "op applies (f64)", "op applies (f32)",
         "true |r|/|b|", "seconds"],
        title="Four ways to solve M psi = b",
        align=["l", "r", "r", "r", "r", "r"],
    )

    t0 = time.perf_counter()
    cg = solve_wilson_cgne(dirac, b, tol=TOL, max_iter=2000)
    table.add("CGNE", cg.iterations, 2 * cg.iterations + 1, 0,
              cg.residual, time.perf_counter() - t0)

    t0 = time.perf_counter()
    bi = bicgstab(dirac.apply, b, tol=TOL, max_iter=2000)
    true_bi = (b - dirac.apply(bi.x)).norm2() ** 0.5 / b.norm2() ** 0.5
    table.add("BiCGSTAB", bi.iterations, 2 * bi.iterations, 0, true_bi,
              time.perf_counter() - t0)

    t0 = time.perf_counter()
    eo = SchurWilson(dirac).solve(b, tol=TOL, max_iter=2000)
    # Each Schur application is ~one dslash (two half-volume hops).
    table.add("even-odd CGNE", eo.iterations, 2 * eo.iterations + 4, 0,
              eo.residual, time.perf_counter() - t0)

    t0 = time.perf_counter()
    mx = mixed_precision_cgne(dirac, b, tol=TOL, inner_tol=1e-5)
    table.add("mixed-precision", mx.outer_iterations,
              2 * mx.outer_iterations + 1, 2 * mx.inner_iterations_total,
              mx.residual, time.perf_counter() - t0)

    print(table.render())
    print(
        "\nReading the table:\n"
        "  - BiCGSTAB roughly halves the operator applications of CGNE;\n"
        "  - even-odd preconditioning halves the iteration count again\n"
        "    (and each iteration works on half the sites);\n"
        "  - mixed precision moves ~95% of the applications to float32,\n"
        "    where vComplexF packs twice the lanes per SVE register\n"
        "    (Section V-B's 32-bit vec<T> specialization).\n"
    )
    assert cg.converged and bi.converged and eo.converged and mx.converged


if __name__ == "__main__":
    main()

"""The supervised solve runtime: crash, resume, degrade, recover.

A production lattice solve is not one function call — it is a run
that must end in a classified outcome even when the node dies, the
checkpoint on disk rots, or an aggressive execution configuration
stalls.  ``supervised_solve`` wraps ``engine.solve_fermion`` in that
envelope: durable checkpoint/restart, watchdogs, seeded retry
backoff, a degradation ladder of progressively safer execution
policies, and per-subsystem circuit breakers.  This example walks
each mechanism:

1. the no-fault pass-through (bit-identical to the direct solve),
2. a kill mid-solve resumed from the durable checkpoint store,
3. a starved solver escalating down the degradation ladder,
4. the circuit breaker remembering failures across calls.

Usage::

    python examples/supervised_solve_demo.py
"""

import tempfile

import numpy as np

from repro import engine
from repro.engine.solve import solve_fermion
from repro.grid.cartesian import GridCartesian
from repro.grid.random import random_gauge, random_spinor
from repro.grid.wilson import WilsonDirac
from repro.resilience import (
    CheckpointStore,
    FaultCampaign,
    KillAtIteration,
    breaker,
    supervised_solve,
)
from repro.simd import get_backend

DIMS = [4, 4, 4, 4]


def build_problem():
    grid = GridCartesian(DIMS, get_backend("generic256"))
    w = WilsonDirac(random_gauge(grid, seed=11), mass=0.1)
    b = random_spinor(grid, seed=5)
    return w, b


def demo_pass_through() -> None:
    print("=== 1. no faults: the envelope is a pass-through ===")
    w, b = build_problem()
    ref = solve_fermion(w, b, method="cg", ft=True, tol=1e-8)
    sup = supervised_solve(w, b, tol=1e-8)
    print(f"attempts:              {len(sup.attempts)}")
    print(f"rung:                  {sup.rungs_used[0]}")
    print(f"bit-identical:         "
          f"{np.array_equal(ref.x.data, sup.result.x.data)}\n")


def demo_kill_and_resume() -> None:
    print("=== 2. crash mid-solve, resume from durable checkpoint ===")
    w, b = build_problem()
    cold = solve_fermion(w, b, method="cg", ft=True, tol=1e-8)
    kill_at = max(2, int(cold.iterations * 0.6))

    campaign = FaultCampaign(seed=17, name="demo")
    kill = KillAtIteration(campaign, kill_at)
    with tempfile.TemporaryDirectory() as tmp:
        sup = supervised_solve(
            w, b, tol=1e-8, campaign=campaign,
            store=CheckpointStore(tmp), recompute_interval=3,
            on_checkpoint=lambda it, x, r: kill.check(it))
    crash, retry = sup.attempts
    print(f"cold solve:            {cold.iterations} iterations")
    print(f"attempt 1:             {crash.outcome} at iteration "
          f"{kill_at}")
    print(f"attempt 2:             resumed from iteration "
          f"{retry.resumed_from}, {retry.iterations} more iterations")
    print(f"iterations saved:      "
          f"{cold.iterations - retry.iterations}")
    print(f"bit-level outcome:     converged={sup.converged}, "
          f"ledger recovered={campaign.recovered}\n")


def demo_degradation_ladder() -> None:
    print("=== 3. a starved solver walks the degradation ladder ===")
    w, b = build_problem()
    # Five iterations can never converge to 1e-10: every attempt ends
    # "iteration-budget" and escalates one rung.
    sup = supervised_solve(w, b, tol=1e-10, max_iter=5, max_attempts=4)
    for a in sup.attempts:
        print(f"attempt {a.attempt}:             {a.rung:<16} "
              f"-> {a.outcome}")
    print(f"converged:             {sup.converged} "
          f"(budget exhausted, loudly)\n")


def demo_circuit_breaker() -> None:
    print("=== 4. the circuit breaker remembers across calls ===")
    w, b = build_problem()
    # Exhaust retries twice: the per-operator breaker opens.
    for _ in range(2):
        supervised_solve(w, b, tol=1e-10, max_iter=2, max_attempts=2)
    br = breaker("solve.WilsonDirac")
    print(f"breaker state:         {br.state}")
    # While open, solves start pre-degraded (rung 1) and their success
    # does not close the breaker — routing around a subsystem proves
    # nothing about it.  After ``cooldown`` denied probes it goes
    # half-open, and the next success closes it on probation.
    for _ in range(br.cooldown):
        sup = supervised_solve(w, b, tol=1e-8)
        print(f"  solve: rung {sup.rungs_used[0]:<16} "
              f"converged={sup.converged}  breaker={br.state}")
    sup = supervised_solve(w, b, tol=1e-8)
    print(f"  solve: rung {sup.rungs_used[0]:<16} "
          f"converged={sup.converged}  breaker={br.state}")
    summary = engine.reset_all()
    print(f"reset_all:             breakers_tripped="
          f"{summary['breakers_tripped']}\n")


def main() -> None:
    demo_pass_through()
    demo_kill_and_resume()
    demo_degradation_ladder()
    demo_circuit_breaker()


if __name__ == "__main__":
    main()

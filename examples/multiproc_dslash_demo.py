"""The shared-memory rank runtime: real processes, same answer.

Every distributed result in this repo so far came from *simulated*
ranks — one process, ``nranks`` lattice shards, halo "messages" that
are array copies.  The transport seam makes the backend a scoped
policy knob: ``engine.scope(transport="shmem")`` reruns the identical
code over a pool of OS rank processes, with lattice shards in
``multiprocessing.shared_memory`` segments and halo traffic crossing
real process boundaries through per-edge mailboxes.  This demo shows:

1. a 2-rank Wilson-Dslash sweep, bit-identical between the in-process
   reference and the shared-memory runtime — with identical message
   and byte accounting, because the wire codec (fp16 compression, CRC)
   is the same code applied to the same fields;
2. a CG solve through the rank runtime, agreeing to the last bit at
   every iteration count;
3. teardown: one ``engine.reset_all()`` joins every worker and unlinks
   every segment — nothing leaks.

Usage::

    python examples/multiproc_dslash_demo.py
"""

import numpy as np

import repro.engine as engine
from repro.grid.cartesian import GridCartesian
from repro.grid.comms import DistributedLattice
from repro.grid.dist_wilson import DistributedWilson, distribute_gauge
from repro.grid.random import random_gauge, random_spinor
from repro.grid.solver import solve_wilson_cgne
from repro.simd import get_backend

DIMS = [4, 4, 4, 4]
MPI = [2, 1, 1, 1]


def main() -> None:
    be = get_backend("generic256")
    grid = GridCartesian(DIMS, be)
    links = random_gauge(grid, seed=11)
    psi = random_spinor(grid, seed=7)

    dlinks = distribute_gauge(links, DIMS, be, MPI)
    op = DistributedWilson(dlinks, mass=0.1)
    dpsi = DistributedLattice(DIMS, be, MPI, (4, 3)).scatter(
        psi.to_canonical())

    print(f"== 1. dhop over {MPI} ranks: in-process vs shared-memory")
    ref = op.dhop(dpsi).gather()
    msgs, nbytes = dpsi.stats.messages, dpsi.stats.bytes_sent
    dpsi.stats.reset()
    with engine.scope(transport="shmem"):
        got = op.dhop(dpsi).gather()
    print(f"   in-process : {msgs} messages, {nbytes} bytes")
    print(f"   shmem      : {dpsi.stats.messages} messages, "
          f"{dpsi.stats.bytes_sent} bytes (real wire)")
    print(f"   bit-identical: {np.array_equal(ref, got)}")
    assert np.array_equal(ref, got)
    assert (dpsi.stats.messages, dpsi.stats.bytes_sent) == (msgs, nbytes)

    print("== 2. CG solve through the rank runtime")
    ref_solve = solve_wilson_cgne(op, dpsi, tol=1e-8, max_iter=50)
    with engine.scope(transport="shmem"):
        shm_solve = solve_wilson_cgne(op, dpsi, tol=1e-8, max_iter=50)
    print(f"   iterations : {ref_solve.iterations} == "
          f"{shm_solve.iterations}")
    same = np.array_equal(ref_solve.x.gather(), shm_solve.x.gather())
    print(f"   solution bit-identical: {same}")
    assert same and ref_solve.iterations == shm_solve.iterations

    print("== 3. teardown")
    summary = engine.reset_all()
    print(f"   runtimes closed  : {summary['transport_runtimes_closed']}")
    print(f"   segments released: "
          f"{summary['transport_segments_released']}")
    from repro.grid.comms.shmem import live_segments

    assert live_segments() == []
    print("   no live shared-memory segments remain")


if __name__ == "__main__":
    main()
